# Empty dependencies file for monitor.
# This may be replaced when dependencies are built.
