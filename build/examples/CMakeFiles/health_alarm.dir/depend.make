# Empty dependencies file for health_alarm.
# This may be replaced when dependencies are built.
