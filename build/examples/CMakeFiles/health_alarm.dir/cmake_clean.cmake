file(REMOVE_RECURSE
  "CMakeFiles/health_alarm.dir/health_alarm.cpp.o"
  "CMakeFiles/health_alarm.dir/health_alarm.cpp.o.d"
  "health_alarm"
  "health_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
