# Empty dependencies file for composite_events.
# This may be replaced when dependencies are built.
