file(REMOVE_RECURSE
  "CMakeFiles/composite_events.dir/composite_events.cpp.o"
  "CMakeFiles/composite_events.dir/composite_events.cpp.o.d"
  "composite_events"
  "composite_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
