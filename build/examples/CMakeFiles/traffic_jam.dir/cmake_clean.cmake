file(REMOVE_RECURSE
  "CMakeFiles/traffic_jam.dir/traffic_jam.cpp.o"
  "CMakeFiles/traffic_jam.dir/traffic_jam.cpp.o.d"
  "traffic_jam"
  "traffic_jam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_jam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
