# Empty compiler generated dependencies file for traffic_jam.
# This may be replaced when dependencies are built.
