file(REMOVE_RECURSE
  "CMakeFiles/stock_crash.dir/stock_crash.cpp.o"
  "CMakeFiles/stock_crash.dir/stock_crash.cpp.o.d"
  "stock_crash"
  "stock_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
