# Empty compiler generated dependencies file for stock_crash.
# This may be replaced when dependencies are built.
