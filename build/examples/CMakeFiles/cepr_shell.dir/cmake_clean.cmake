file(REMOVE_RECURSE
  "CMakeFiles/cepr_shell.dir/cepr_shell.cpp.o"
  "CMakeFiles/cepr_shell.dir/cepr_shell.cpp.o.d"
  "cepr_shell"
  "cepr_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cepr_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
