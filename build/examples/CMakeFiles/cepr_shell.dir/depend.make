# Empty dependencies file for cepr_shell.
# This may be replaced when dependencies are built.
