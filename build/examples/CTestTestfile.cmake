# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cepr_shell_smoke "sh" "-c" "printf 'CREATE STREAM T (x FLOAT RANGE [0, 100]);\\nSELECT a.x FROM T MATCH PATTERN SEQ(a) WHERE a.x > 1;\\n\\\\streams\\n\\\\queries\\n\\\\stats q1\\n\\\\quit\\n' | /root/repo/build/examples/cepr_shell")
set_tests_properties(cepr_shell_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "registered query q1" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
