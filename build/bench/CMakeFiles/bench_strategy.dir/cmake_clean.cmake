file(REMOVE_RECURSE
  "CMakeFiles/bench_strategy.dir/bench_strategy.cc.o"
  "CMakeFiles/bench_strategy.dir/bench_strategy.cc.o.d"
  "bench_strategy"
  "bench_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
