file(REMOVE_RECURSE
  "CMakeFiles/bench_emission.dir/bench_emission.cc.o"
  "CMakeFiles/bench_emission.dir/bench_emission.cc.o.d"
  "bench_emission"
  "bench_emission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
