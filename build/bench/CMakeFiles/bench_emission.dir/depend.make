# Empty dependencies file for bench_emission.
# This may be replaced when dependencies are built.
