file(REMOVE_RECURSE
  "CMakeFiles/bench_multiquery.dir/bench_multiquery.cc.o"
  "CMakeFiles/bench_multiquery.dir/bench_multiquery.cc.o.d"
  "bench_multiquery"
  "bench_multiquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
