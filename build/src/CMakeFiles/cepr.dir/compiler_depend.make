# Empty compiler generated dependencies file for cepr.
# This may be replaced when dependencies are built.
