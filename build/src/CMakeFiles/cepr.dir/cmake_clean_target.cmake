file(REMOVE_RECURSE
  "libcepr.a"
)
