
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/cepr.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/cepr.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/cepr.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/cepr.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/cepr.dir/common/random.cc.o" "gcc" "src/CMakeFiles/cepr.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cepr.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cepr.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/cepr.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/cepr.dir/common/strings.cc.o.d"
  "/root/repo/src/engine/matcher.cc" "src/CMakeFiles/cepr.dir/engine/matcher.cc.o" "gcc" "src/CMakeFiles/cepr.dir/engine/matcher.cc.o.d"
  "/root/repo/src/engine/partition.cc" "src/CMakeFiles/cepr.dir/engine/partition.cc.o" "gcc" "src/CMakeFiles/cepr.dir/engine/partition.cc.o.d"
  "/root/repo/src/engine/run.cc" "src/CMakeFiles/cepr.dir/engine/run.cc.o" "gcc" "src/CMakeFiles/cepr.dir/engine/run.cc.o.d"
  "/root/repo/src/engine/window.cc" "src/CMakeFiles/cepr.dir/engine/window.cc.o" "gcc" "src/CMakeFiles/cepr.dir/engine/window.cc.o.d"
  "/root/repo/src/event/event.cc" "src/CMakeFiles/cepr.dir/event/event.cc.o" "gcc" "src/CMakeFiles/cepr.dir/event/event.cc.o.d"
  "/root/repo/src/event/schema.cc" "src/CMakeFiles/cepr.dir/event/schema.cc.o" "gcc" "src/CMakeFiles/cepr.dir/event/schema.cc.o.d"
  "/root/repo/src/event/value.cc" "src/CMakeFiles/cepr.dir/event/value.cc.o" "gcc" "src/CMakeFiles/cepr.dir/event/value.cc.o.d"
  "/root/repo/src/expr/aggregate.cc" "src/CMakeFiles/cepr.dir/expr/aggregate.cc.o" "gcc" "src/CMakeFiles/cepr.dir/expr/aggregate.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/cepr.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/cepr.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/cepr.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/cepr.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/fold.cc" "src/CMakeFiles/cepr.dir/expr/fold.cc.o" "gcc" "src/CMakeFiles/cepr.dir/expr/fold.cc.o.d"
  "/root/repo/src/expr/interval.cc" "src/CMakeFiles/cepr.dir/expr/interval.cc.o" "gcc" "src/CMakeFiles/cepr.dir/expr/interval.cc.o.d"
  "/root/repo/src/expr/typecheck.cc" "src/CMakeFiles/cepr.dir/expr/typecheck.cc.o" "gcc" "src/CMakeFiles/cepr.dir/expr/typecheck.cc.o.d"
  "/root/repo/src/lang/analyzer.cc" "src/CMakeFiles/cepr.dir/lang/analyzer.cc.o" "gcc" "src/CMakeFiles/cepr.dir/lang/analyzer.cc.o.d"
  "/root/repo/src/lang/ast.cc" "src/CMakeFiles/cepr.dir/lang/ast.cc.o" "gcc" "src/CMakeFiles/cepr.dir/lang/ast.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/cepr.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/cepr.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/CMakeFiles/cepr.dir/lang/parser.cc.o" "gcc" "src/CMakeFiles/cepr.dir/lang/parser.cc.o.d"
  "/root/repo/src/plan/compiler.cc" "src/CMakeFiles/cepr.dir/plan/compiler.cc.o" "gcc" "src/CMakeFiles/cepr.dir/plan/compiler.cc.o.d"
  "/root/repo/src/plan/nfa.cc" "src/CMakeFiles/cepr.dir/plan/nfa.cc.o" "gcc" "src/CMakeFiles/cepr.dir/plan/nfa.cc.o.d"
  "/root/repo/src/plan/pattern.cc" "src/CMakeFiles/cepr.dir/plan/pattern.cc.o" "gcc" "src/CMakeFiles/cepr.dir/plan/pattern.cc.o.d"
  "/root/repo/src/rank/emitter.cc" "src/CMakeFiles/cepr.dir/rank/emitter.cc.o" "gcc" "src/CMakeFiles/cepr.dir/rank/emitter.cc.o.d"
  "/root/repo/src/rank/ranker.cc" "src/CMakeFiles/cepr.dir/rank/ranker.cc.o" "gcc" "src/CMakeFiles/cepr.dir/rank/ranker.cc.o.d"
  "/root/repo/src/rank/score.cc" "src/CMakeFiles/cepr.dir/rank/score.cc.o" "gcc" "src/CMakeFiles/cepr.dir/rank/score.cc.o.d"
  "/root/repo/src/rank/topk.cc" "src/CMakeFiles/cepr.dir/rank/topk.cc.o" "gcc" "src/CMakeFiles/cepr.dir/rank/topk.cc.o.d"
  "/root/repo/src/runtime/csv.cc" "src/CMakeFiles/cepr.dir/runtime/csv.cc.o" "gcc" "src/CMakeFiles/cepr.dir/runtime/csv.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/CMakeFiles/cepr.dir/runtime/engine.cc.o" "gcc" "src/CMakeFiles/cepr.dir/runtime/engine.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "src/CMakeFiles/cepr.dir/runtime/metrics.cc.o" "gcc" "src/CMakeFiles/cepr.dir/runtime/metrics.cc.o.d"
  "/root/repo/src/runtime/query.cc" "src/CMakeFiles/cepr.dir/runtime/query.cc.o" "gcc" "src/CMakeFiles/cepr.dir/runtime/query.cc.o.d"
  "/root/repo/src/runtime/sink.cc" "src/CMakeFiles/cepr.dir/runtime/sink.cc.o" "gcc" "src/CMakeFiles/cepr.dir/runtime/sink.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/cepr.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/cepr.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/health.cc" "src/CMakeFiles/cepr.dir/workload/health.cc.o" "gcc" "src/CMakeFiles/cepr.dir/workload/health.cc.o.d"
  "/root/repo/src/workload/stock.cc" "src/CMakeFiles/cepr.dir/workload/stock.cc.o" "gcc" "src/CMakeFiles/cepr.dir/workload/stock.cc.o.d"
  "/root/repo/src/workload/traffic.cc" "src/CMakeFiles/cepr.dir/workload/traffic.cc.o" "gcc" "src/CMakeFiles/cepr.dir/workload/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
