
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/csv_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/csv_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/csv_test.cc.o.d"
  "/root/repo/tests/runtime/derived_stream_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/derived_stream_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/derived_stream_test.cc.o.d"
  "/root/repo/tests/runtime/engine_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/engine_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/engine_test.cc.o.d"
  "/root/repo/tests/runtime/sink_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/sink_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/sink_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cepr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
