
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/extended_pattern_test.cc" "tests/CMakeFiles/engine_test.dir/engine/extended_pattern_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/extended_pattern_test.cc.o.d"
  "/root/repo/tests/engine/matcher_test.cc" "tests/CMakeFiles/engine_test.dir/engine/matcher_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/matcher_test.cc.o.d"
  "/root/repo/tests/engine/partition_test.cc" "tests/CMakeFiles/engine_test.dir/engine/partition_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/partition_test.cc.o.d"
  "/root/repo/tests/engine/run_test.cc" "tests/CMakeFiles/engine_test.dir/engine/run_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/run_test.cc.o.d"
  "/root/repo/tests/engine/window_test.cc" "tests/CMakeFiles/engine_test.dir/engine/window_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/window_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cepr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
