// Interactive CEPR shell — the command-line counterpart of the demo's
// interactive UI: declare streams, register ranked queries, feed events
// (from CSV files or the built-in generators), and watch ordered results
// arrive live.
//
//   $ build/examples/cepr_shell
//   cepr> CREATE STREAM Stock (symbol STRING, price FLOAT RANGE [1,1000],
//         volume INT RANGE [1,10000]);
//   cepr> SELECT a.symbol, MIN(b.price) FROM Stock
//         MATCH PATTERN SEQ(a, b+, c)
//         WHERE b[i].price < b[i-1].price AND c.price > a.price
//         WITHIN 1 SECONDS RANK BY a.price - MIN(b.price) DESC LIMIT 3
//         EMIT ON WINDOW CLOSE;
//   cepr> \gen stock 10000
//   cepr> \stats q1
//   cepr> \quit
//
// Statements end with ';'. Meta commands start with '\'.

#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "lang/parser.h"
#include "plan/compiler.h"
#include "runtime/csv.h"
#include "runtime/engine.h"
#include "workload/health.h"
#include "workload/stock.h"
#include "workload/traffic.h"

namespace {

using cepr::Engine;
using cepr::Status;

// Print sink for \restore'd queries: the sink must exist while Restore is
// still registering the query, before its compiled plan (and thus its
// column labels) is reachable — so resolve the labels lazily on the first
// result instead.
class LazyPrintSink : public cepr::Sink {
 public:
  LazyPrintSink(Engine* engine, std::string name)
      : engine_(engine), name_(std::move(name)) {}

  void OnResult(const cepr::RankedResult& result) override {
    if (inner_ == nullptr) {
      std::vector<std::string> columns;
      auto query = engine_->GetQuery(name_);
      if (query.ok()) columns = (*query)->plan()->analyzed.output_names;
      inner_ = std::make_unique<cepr::PrintSink>(std::cout, std::move(columns),
                                                 name_);
    }
    inner_->OnResult(result);
  }

 private:
  Engine* engine_;
  std::string name_;
  std::unique_ptr<cepr::PrintSink> inner_;
};

class Shell {
 public:
  int Run() {
    std::cout << "CEPR shell — \\help for commands\n";
    std::string buffer;
    std::string line;
    while (Prompt(buffer.empty()), std::getline(std::cin, line)) {
      const std::string_view trimmed = cepr::Trim(line);
      if (trimmed.empty()) continue;
      if (trimmed[0] == '\\') {
        if (!MetaCommand(std::string(trimmed))) return 0;
        continue;
      }
      buffer += line;
      buffer += "\n";
      if (trimmed.back() == ';') {
        Execute(buffer);
        buffer.clear();
      }
    }
    engine_->Finish();
    return 0;
  }

 private:
  void Prompt(bool fresh) { std::cout << (fresh ? "cepr> " : "  ... ") << std::flush; }

  void Execute(const std::string& text) {
    auto statement = cepr::ParseStatement(text);
    if (!statement.ok()) {
      std::cout << statement.status() << "\n";
      return;
    }
    if (statement->create_stream != nullptr) {
      const Status s = engine_->ExecuteDdl(text);
      std::cout << (s.ok() ? "stream created" : s.ToString()) << "\n";
      return;
    }
    // A query: compile a preview for the column names, then register with a
    // printing sink under an auto-assigned name.
    auto schema = engine_->GetSchema(statement->query->stream_name);
    if (!schema.ok()) {
      std::cout << schema.status() << "\n";
      return;
    }
    auto preview = cepr::CompileQueryText(text, schema.value());
    if (!preview.ok()) {
      std::cout << preview.status() << "\n";
      return;
    }
    const std::string name = "q" + std::to_string(next_query_id_++);
    sinks_[name] = std::make_unique<cepr::PrintSink>(
        std::cout, (*preview)->analyzed.output_names, name);
    const Status s =
        engine_->RegisterQuery(name, text, cepr::QueryOptions{}, sinks_[name].get());
    if (!s.ok()) {
      std::cout << s << "\n";
      sinks_.erase(name);
      return;
    }
    std::cout << "registered query " << name << "\n";
  }

  // Returns false to exit the shell.
  bool MetaCommand(const std::string& command) {
    std::istringstream in(command);
    std::string op;
    in >> op;
    if (op == "\\quit" || op == "\\q") {
      engine_->Finish();
      return false;
    }
    if (op == "\\help") {
      std::cout << "  CREATE STREAM ...;        declare a stream\n"
                   "  SELECT ...;               register a CEPR-QL query\n"
                   "  \\gen stock|health|traffic <n>   push n generated events\n"
                   "  \\load <stream> <file.csv>       push events from CSV\n"
                   "  \\plan <query>             show the compiled plan + NFA\n"
                   "  \\stats [query]            runtime metrics\n"
                   "  \\streams  \\queries        registries\n"
                   "  \\lateness <stream> <micros> [reject|drop|clamp]\n"
                   "                            tolerate out-of-order events\n"
                   "  \\drop <query>             remove a query (flushes it)\n"
                   "  \\finish                   close all open windows\n"
                   "  \\wal <path>               journal arrivals to a write-ahead log\n"
                   "  \\checkpoint <path>        atomic snapshot of all engine state\n"
                   "  \\restore <snapshot> [wal] rebuild from a snapshot (+ WAL replay)\n"
                   "  \\quit\n";
      return true;
    }
    if (op == "\\streams") {
      for (const auto& name : engine_->StreamNames()) {
        std::cout << "  " << engine_->GetSchema(name).value()->ToString() << "\n";
      }
      return true;
    }
    if (op == "\\queries") {
      for (const auto& name : engine_->QueryNames()) std::cout << "  " << name << "\n";
      return true;
    }
    if (op == "\\gen") {
      std::string domain;
      size_t n = 0;
      in >> domain >> n;
      Generate(domain, n);
      return true;
    }
    if (op == "\\load") {
      std::string stream;
      std::string path;
      in >> stream >> path;
      Load(stream, path);
      return true;
    }
    if (op == "\\plan") {
      std::string name;
      in >> name;
      auto query = engine_->GetQuery(name);
      if (!query.ok()) {
        std::cout << query.status() << "\n";
      } else {
        std::cout << (*query)->plan()->Describe()
                  << (*query)->plan()->nfa.ToDot();
      }
      return true;
    }
    if (op == "\\stats") {
      std::string name;
      in >> name;
      if (name.empty()) {
        std::cout << "events ingested: " << engine_->events_ingested() << "\n";
        const cepr::MetricsSnapshot snap = engine_->Snapshot();
        const cepr::ReorderStats& reorder = snap.reorder;
        if (reorder.events_reordered > 0 || reorder.events_late_dropped > 0 ||
            reorder.events_clamped > 0) {
          std::cout << "reordered: " << reorder.events_reordered
                    << "  late dropped: " << reorder.events_late_dropped
                    << "  clamped: " << reorder.events_clamped
                    << "  buffer peak: " << reorder.reorder_buffer_peak << "\n";
        }
        std::cout << "sharing: " << snap.sharing.ToString() << "\n";
        const cepr::DurabilityStats& d = snap.durability;
        if (d.checkpoints_written > 0 || d.wal_records_appended > 0 ||
            d.recovery_events_replayed > 0) {
          std::cout << "durability: " << d.ToString() << "\n";
        }
        for (const auto& qname : engine_->QueryNames()) PrintStats(qname);
      } else {
        PrintStats(name);
      }
      return true;
    }
    if (op == "\\lateness") {
      std::string stream;
      std::string policy = "reject";
      cepr::Timestamp micros = -1;
      in >> stream >> micros >> policy;
      cepr::ReorderConfig config;
      config.max_lateness_micros = micros;
      if (policy == "reject") {
        config.late_policy = cepr::LatePolicy::kReject;
      } else if (policy == "drop") {
        config.late_policy = cepr::LatePolicy::kDropAndCount;
      } else if (policy == "clamp") {
        config.late_policy = cepr::LatePolicy::kClamp;
      } else {
        micros = -1;  // force the usage message
      }
      if (stream.empty() || micros < 0) {
        std::cout << "usage: \\lateness <stream> <micros> [reject|drop|clamp]\n";
        return true;
      }
      const Status s = engine_->ConfigureStreamIngest(stream, config);
      std::cout << (s.ok() ? "ingest configured" : s.ToString()) << "\n";
      return true;
    }
    if (op == "\\drop") {
      std::string name;
      in >> name;
      const Status s = engine_->RemoveQuery(name);
      std::cout << (s.ok() ? "dropped" : s.ToString()) << "\n";
      if (s.ok()) sinks_.erase(name);
      return true;
    }
    if (op == "\\finish") {
      engine_->Finish();
      std::cout << "flushed\n";
      return true;
    }
    if (op == "\\wal") {
      std::string path;
      in >> path;
      if (path.empty()) {
        std::cout << "usage: \\wal <path>\n";
        return true;
      }
      const Status s = engine_->OpenWal(path);
      std::cout << (s.ok() ? "journaling to " + path : s.ToString()) << "\n";
      return true;
    }
    if (op == "\\checkpoint") {
      std::string path;
      in >> path;
      if (path.empty()) {
        std::cout << "usage: \\checkpoint <path>\n";
        return true;
      }
      const Status s = engine_->Checkpoint(path);
      if (s.ok()) {
        std::cout << "snapshot written (" << engine_->durability().checkpoint_bytes
                  << " bytes)\n";
      } else {
        std::cout << s << "\n";
      }
      return true;
    }
    if (op == "\\restore") {
      std::string snap;
      std::string wal;
      in >> snap >> wal;
      if (snap.empty()) {
        std::cout << "usage: \\restore <snapshot> [wal]\n";
        return true;
      }
      // Restore wants a pristine engine; build one on the side and swap it
      // in only on success, so a bad file leaves the current session alone.
      auto fresh = std::make_unique<Engine>();
      std::map<std::string, std::unique_ptr<cepr::Sink>> fresh_sinks;
      Engine* eng = fresh.get();
      const Status s = fresh->Restore(
          snap, wal, [&](const std::string& name) -> cepr::Sink* {
            auto [it, inserted] = fresh_sinks.emplace(
                name, std::make_unique<LazyPrintSink>(eng, name));
            return it->second.get();
          });
      if (!s.ok()) {
        std::cout << s << "\n";
        return true;
      }
      engine_ = std::move(fresh);
      sinks_ = std::move(fresh_sinks);
      std::cout << "restored: " << engine_->QueryNames().size() << " queries, "
                << engine_->events_ingested() << " events ingested, "
                << engine_->durability().recovery_events_replayed
                << " replayed from wal\n";
      return true;
    }
    std::cout << "unknown command " << op << " (try \\help)\n";
    return true;
  }

  void PrintStats(const std::string& name) {
    auto query = engine_->GetQuery(name);
    if (!query.ok()) {
      std::cout << query.status() << "\n";
      return;
    }
    std::cout << "[" << name << "] " << (*query)->metrics().ToString() << "\n";
  }

  void Generate(const std::string& domain, size_t n) {
    if (n == 0) {
      std::cout << "usage: \\gen stock|health|traffic <n>\n";
      return;
    }
    std::unique_ptr<cepr::WorkloadGenerator>& gen = generators_[domain];
    if (gen == nullptr) {
      if (domain == "stock") {
        cepr::StockOptions options;
        options.v_probability = 0.01;
        gen = std::make_unique<cepr::StockGenerator>(options);
      } else if (domain == "health") {
        gen = std::make_unique<cepr::HealthGenerator>(cepr::HealthOptions{});
      } else if (domain == "traffic") {
        gen = std::make_unique<cepr::TrafficGenerator>(cepr::TrafficOptions{});
      } else {
        std::cout << "unknown domain '" << domain << "'\n";
        return;
      }
      // Auto-register the generator's schema on first use.
      if (!engine_->GetSchema(gen->schema()->name()).ok()) {
        (void)engine_->RegisterSchema(gen->schema());
        std::cout << "registered stream " << gen->schema()->ToString() << "\n";
      }
    }
    // Rebind to the engine's schema handle: after a \restore the engine
    // holds its own deserialized Schema object, and ingest checks identity.
    auto schema = engine_->GetSchema(gen->schema()->name());
    if (!schema.ok()) {
      std::cout << schema.status() << "\n";
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      cepr::Event raw = gen->Next();
      cepr::Event e(schema.value(), raw.timestamp(), raw.values());
      e.set_type_tag(raw.type_tag());
      const Status s = engine_->Push(std::move(e));
      if (!s.ok()) {
        std::cout << s << "\n";
        return;
      }
    }
    std::cout << "pushed " << n << " events\n";
  }

  void Load(const std::string& stream, const std::string& path) {
    auto schema = engine_->GetSchema(stream);
    if (!schema.ok()) {
      std::cout << schema.status() << "\n";
      return;
    }
    auto events = cepr::ReadEventsCsv(path, schema.value());
    if (!events.ok()) {
      std::cout << events.status() << "\n";
      return;
    }
    size_t pushed = 0;
    for (cepr::Event& e : *events) {
      const Status s = engine_->Push(std::move(e));
      if (!s.ok()) {
        std::cout << s << " (after " << pushed << " events)\n";
        return;
      }
      ++pushed;
    }
    std::cout << "pushed " << pushed << " events from " << path << "\n";
  }

  // unique_ptr so \restore can swap in a pristine engine (Restore's
  // contract) without tearing down the shell.
  std::unique_ptr<Engine> engine_ = std::make_unique<Engine>();
  std::map<std::string, std::unique_ptr<cepr::Sink>> sinks_;
  std::map<std::string, std::unique_ptr<cepr::WorkloadGenerator>> generators_;
  int next_query_id_ = 1;
};

}  // namespace

int main() { return Shell().Run(); }
