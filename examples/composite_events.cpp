// Hierarchical CEP with derived streams (EMIT ... INTO): a two-level
// pattern over the traffic domain.
//
// Level 1 turns raw sensor readings into "Slowdown" composite events (a
// fast reading followed by a sharply slower one). Level 2 matches waves of
// three or more slowdowns on the Slowdown stream itself and ranks the
// waves by total speed lost — a pattern that would be awkward to express
// in one level.
//
// Usage: composite_events [num_events]

#include <cstdlib>
#include <iostream>

#include "runtime/engine.h"
#include "workload/traffic.h"

int main(int argc, char** argv) {
  const size_t num_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  cepr::TrafficOptions gen_options;
  gen_options.num_sensors = 6;
  gen_options.jam_probability = 0.004;
  cepr::TrafficGenerator gen(gen_options);

  cepr::Engine engine;
  cepr::Status s = engine.RegisterSchema(gen.schema());
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Level 1: adjacent reading pairs with a >15% speed drop become events of
  // the derived stream Slowdown(sensor, before, after).
  s = engine.RegisterQuery(
      "slowdowns",
      "SELECT a.sensor AS sensor, a.speed AS before, d.speed AS after "
      "FROM Traffic MATCH PATTERN SEQ(a, d) "
      "USING STRICT "
      "PARTITION BY sensor "
      "WHERE d.speed < a.speed * 0.85 "
      "WITHIN 5 SECONDS "
      "EMIT ON COMPLETE INTO Slowdown",
      cepr::QueryOptions{}, nullptr);
  if (!s.ok()) {
    std::cerr << "level 1: " << s << "\n";
    return 1;
  }

  // Level 2: three or more consecutive slowdowns of the same sensor, ranked
  // by the total speed collapse across the wave.
  uint64_t waves = 0;
  cepr::CallbackSink sink([&waves](const cepr::RankedResult& r) {
    ++waves;
    std::cout << "wave #" << (r.rank + 1) << " sensor=" << r.match.row[0]
              << " start_speed=" << r.match.row[1]
              << " end_speed=" << r.match.row[2]
              << " slowdowns=" << r.match.row[3]
              << " severity=" << r.match.score << "\n";
  });
  s = engine.RegisterQuery(
      "waves",
      "SELECT FIRST(w).sensor AS sensor, FIRST(w).before AS start_speed, "
      "       LAST(w).after AS end_speed, COUNT(w) AS slowdowns "
      "FROM Slowdown MATCH PATTERN SEQ(w{3,}, x) "
      "PARTITION BY sensor "
      "WHERE w[i].before <= w[i-1].after * 1.1 "
      "  AND x.after >= 0 "
      "WITHIN 60 SECONDS "
      "RANK BY FIRST(w).before - LAST(w).after DESC "
      "LIMIT 3 "
      "EMIT EVERY 2000 EVENTS",
      cepr::QueryOptions{}, &sink);
  if (!s.ok()) {
    std::cerr << "level 2: " << s << "\n";
    return 1;
  }

  for (cepr::Event& e : gen.Take(num_events)) {
    s = engine.Push(std::move(e));
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  engine.Finish();

  const auto level1 = engine.GetQuery("slowdowns").value()->metrics();
  const auto level2 = engine.GetQuery("waves").value()->metrics();
  std::cout << "\nlevel 1: " << level1.matches << " slowdowns from "
            << level1.events << " raw readings\n";
  std::cout << "level 2: " << level2.matches << " waves from " << level2.events
            << " slowdown events; reported top " << waves << "\n";
  return 0;
}
