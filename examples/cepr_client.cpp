// cepr_client: demo client for cepr_serverd.
//
//   cepr_client [--port N] [--host ADDR] [--events N] [--metrics-only]
//
// Connects to a running cepr_serverd, creates the Stock stream, hot-deploys
// the canonical dip-and-recovery ranked query, streams generated stock
// events over the wire, and prints the ranked matches as they arrive,
// followed by the server's metrics JSON. With --metrics-only it just
// fetches and prints the metrics endpoint — handy for smoke checks against
// a server another process is feeding.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/client.h"
#include "workload/stock.h"

namespace {

constexpr char kStockDdl[] =
    "CREATE STREAM Stock (symbol STRING, price FLOAT RANGE [1, 1000], "
    "volume INT RANGE [1, 10000])";

constexpr char kDipQuery[] =
    "SELECT a.symbol, a.price, MIN(b.price), c.price "
    "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
    "PARTITION BY symbol "
    "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
    "  AND c.price > a.price "
    "WITHIN 100 MILLISECONDS "
    "RANK BY (a.price - MIN(b.price)) / a.price DESC "
    "LIMIT 5 EMIT ON WINDOW CLOSE";

void PrintResult(const cepr::net::WireResult& r) {
  std::string row;
  for (const cepr::Value& v : r.row) {
    if (!row.empty()) row += ", ";
    row += v.ToString();
  }
  std::printf("  window %lld rank %llu score %.6f [%s]%s\n",
              static_cast<long long>(r.window_id),
              static_cast<unsigned long long>(r.rank), r.score, row.c_str(),
              r.provisional ? " (provisional)" : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7687;
  size_t num_events = 20000;
  bool metrics_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--port" && has_next) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && has_next) {
      host = argv[++i];
    } else if (arg == "--events" && has_next) {
      num_events = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--metrics-only") {
      metrics_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--host ADDR] [--events N] "
                   "[--metrics-only]\n",
                   argv[0]);
      return 2;
    }
  }

  cepr::net::CeprClient client;
  cepr::Status s = client.Connect(host, port);
  if (!s.ok()) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", host.c_str(), port,
                 s.ToString().c_str());
    return 1;
  }

  if (metrics_only) {
    auto json = client.MetricsJson();
    if (!json.ok()) {
      std::fprintf(stderr, "metrics failed: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json.value().c_str());
    return 0;
  }

  s = client.Ddl(kStockDdl);
  if (!s.ok() && s.code() != cepr::StatusCode::kAlreadyExists) {
    std::fprintf(stderr, "ddl failed: %s\n", s.ToString().c_str());
    return 1;
  }
  s = client.Deploy("dip", kDipQuery, cepr::QueryOptions{});
  if (!s.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto binding = client.BindStream("Stock");
  if (!binding.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 binding.status().ToString().c_str());
    return 1;
  }

  cepr::StockOptions options;
  options.v_probability = 0.02;
  cepr::StockGenerator gen(options);
  std::vector<cepr::Event> batch;
  batch.reserve(1024);
  size_t sent = 0;
  for (const cepr::Event& e : gen.Take(num_events)) {
    cepr::Event wire(cepr::SchemaPtr{}, e.timestamp(), e.values());
    wire.set_type_tag(e.type_tag());
    batch.push_back(std::move(wire));
    if (batch.size() == 1024) {
      s = client.PushBatch(binding.value(), batch);
      if (!s.ok()) {
        std::fprintf(stderr, "push failed: %s\n", s.ToString().c_str());
        return 1;
      }
      sent += batch.size();
      batch.clear();
    }
  }
  if (!batch.empty()) {
    s = client.PushBatch(binding.value(), batch);
    if (!s.ok()) {
      std::fprintf(stderr, "push failed: %s\n", s.ToString().c_str());
      return 1;
    }
    sent += batch.size();
  }
  s = client.Flush();
  if (!s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("pushed %zu events; ranked dip matches so far:\n", sent);
  for (const auto& r : client.results("dip")) PrintResult(r);

  auto json = client.MetricsJson();
  if (json.ok()) std::printf("server metrics: %s\n", json.value().c_str());
  client.Undeploy("dip");  // serial servers drop the query; sharded refuse
  return 0;
}
