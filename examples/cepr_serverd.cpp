// cepr_serverd: long-running CEPR network server.
//
//   cepr_serverd [--port N] [--host ADDR] [--shards N] [--data-dir DIR]
//                [--checkpoint-ms N] [--ddl "CREATE STREAM ..."]
//
// Serves the length-prefixed CRC-framed binary protocol (src/net/protocol.h):
// clients connect, issue DDL, bind streams, hot-deploy ranked pattern
// queries, push events and subscribe to ranked results. With --data-dir the
// server journals ingest to a WAL and cuts checkpoints every
// --checkpoint-ms; after a crash it restarts from the last snapshot and
// replays the WAL tail, resuming result delivery exactly where it stopped.
//
// Stops cleanly on SIGINT/SIGTERM: quiesces sessions, syncs the WAL and
// cuts a final checkpoint.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--host ADDR] [--shards N]\n"
               "          [--data-dir DIR] [--checkpoint-ms N]\n"
               "          [--ddl \"CREATE STREAM ...\"]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  cepr::net::ServerOptions options;
  options.port = 7687;
  std::string ddl;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--port" && has_next) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && has_next) {
      options.host = argv[++i];
    } else if (arg == "--shards" && has_next) {
      options.num_shards = std::atoi(argv[++i]);
    } else if (arg == "--data-dir" && has_next) {
      options.data_dir = argv[++i];
    } else if (arg == "--checkpoint-ms" && has_next) {
      options.checkpoint_interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--ddl" && has_next) {
      ddl = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  cepr::net::CeprServer server(options);
  const cepr::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cepr_serverd: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (!ddl.empty()) {
    const cepr::Status s = server.Ddl(ddl);
    if (!s.ok()) {
      std::fprintf(stderr, "cepr_serverd: --ddl failed: %s\n",
                   s.ToString().c_str());
      server.Stop();
      return 1;
    }
  }
  std::printf("cepr_serverd: listening on %s:%u%s%s\n", options.host.c_str(),
              static_cast<unsigned>(server.port()),
              options.num_shards > 0 ? " (sharded)" : " (serial)",
              options.data_dir.empty() ? "" : " [durable]");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    // Sessions run on their own threads; the main thread just waits.
    struct timespec ts = {0, 200 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("cepr_serverd: shutting down\n");
  server.Stop();  // quiesce sessions, sync WAL, final checkpoint
  return 0;
}
