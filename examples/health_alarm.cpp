// Health-monitoring scenario from the CEPR demo: detect sustained patient
// deterioration — three or more consecutive readings with sharply rising
// heart rate — and rank alarms by severity so the most critical patient
// surfaces first. Eager emission (EMIT ON COMPLETE) streams alarms the
// moment they fire, as a live dashboard would.
//
// Usage: health_alarm [num_events] [num_patients]

#include <cstdlib>
#include <iostream>

#include "runtime/engine.h"
#include "workload/health.h"

int main(int argc, char** argv) {
  const size_t num_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const int num_patients = argc > 2 ? std::atoi(argv[2]) : 12;

  cepr::HealthOptions gen_options;
  gen_options.num_patients = num_patients;
  gen_options.episode_probability = 0.002;
  cepr::HealthGenerator gen(gen_options);

  cepr::Engine engine;
  cepr::Status s = engine.RegisterSchema(gen.schema());
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  const char* query =
      "SELECT a.patient, a.heart_rate AS baseline, "
      "       MAX(r.heart_rate) AS peak, MIN(r.spo2) AS worst_spo2, "
      "       COUNT(r) AS readings "
      "FROM Vitals "
      "MATCH PATTERN SEQ(a, r+) "
      "PARTITION BY patient "
      "WHERE r[i].heart_rate > r[i-1].heart_rate + 5 "
      "  AND r[1].heart_rate > a.heart_rate + 5 "
      "  AND COUNT(r) >= 3 "
      "WITHIN 30 SECONDS "
      "RANK BY MAX(r.heart_rate) - a.heart_rate DESC "
      "LIMIT 10 "
      "EMIT ON COMPLETE";

  uint64_t alarms = 0;
  cepr::CallbackSink sink([&alarms](const cepr::RankedResult& r) {
    ++alarms;
    std::cout << "ALARM rank#" << (r.rank + 1)
              << " patient=" << r.match.row[0]
              << " baseline=" << r.match.row[1] << " peak=" << r.match.row[2]
              << " spo2=" << r.match.row[3]
              << " severity=" << r.match.score << "\n";
  });
  s = engine.RegisterQuery("alarm", query, cepr::QueryOptions{}, &sink);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  for (cepr::Event& e : gen.Take(num_events)) {
    s = engine.Push(std::move(e));
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  engine.Finish();

  std::cout << "\n" << alarms << " alarms over " << num_events
            << " readings from " << num_patients << " patients\n";
  std::cout << engine.GetQuery("alarm").value()->metrics().ToString() << "\n";
  return 0;
}
