// Traffic-monitoring scenario from the CEPR demo: detect congestion waves —
// free-flowing traffic followed by a run of collapsing speed readings — and
// rank them by how hard the speed dropped. Results are also exported to CSV
// (the demo's downloadable report).
//
// Usage: traffic_jam [num_events] [num_sensors] [out.csv]

#include <cstdlib>
#include <iostream>

#include "runtime/csv.h"
#include "runtime/engine.h"
#include "workload/traffic.h"

int main(int argc, char** argv) {
  const size_t num_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const int num_sensors = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string csv_path = argc > 3 ? argv[3] : "traffic_jams.csv";

  cepr::TrafficOptions gen_options;
  gen_options.num_sensors = num_sensors;
  gen_options.jam_probability = 0.003;
  cepr::TrafficGenerator gen(gen_options);

  cepr::Engine engine;
  cepr::Status s = engine.RegisterSchema(gen.schema());
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  const char* query =
      "SELECT a.sensor, a.speed AS free_flow, MIN(d.speed) AS floor_speed, "
      "       COUNT(d) AS readings "
      "FROM Traffic "
      "MATCH PATTERN SEQ(a, d+) "
      "PARTITION BY sensor "
      "WHERE a.speed > 60 "
      "  AND d[i].speed < d[i-1].speed * 0.9 "
      "  AND d[1].speed < a.speed * 0.9 "
      "  AND COUNT(d) >= 3 "
      "WITHIN 10 SECONDS "
      "RANK BY a.speed - MIN(d.speed) DESC "
      "LIMIT 3 "
      "EMIT ON WINDOW CLOSE";

  cepr::CsvResultSink csv_sink(csv_path,
                               {"sensor", "free_flow", "floor_speed", "readings"});
  if (!csv_sink.status().ok()) {
    std::cerr << csv_sink.status() << "\n";
    return 1;
  }
  s = engine.RegisterQuery("jam", query, cepr::QueryOptions{}, &csv_sink);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  for (cepr::Event& e : gen.Take(num_events)) {
    s = engine.Push(std::move(e));
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  engine.Finish();

  const cepr::QueryMetrics metrics = engine.GetQuery("jam").value()->metrics();
  std::cout << "detected " << metrics.matches << " congestion waves, wrote top "
            << metrics.results << " ranked jams to " << csv_path << "\n";
  std::cout << metrics.ToString() << "\n";
  return 0;
}
