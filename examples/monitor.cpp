// Live monitoring demo: all three domain streams run through the sharded
// engine while a background monitor thread polls Engine::Snapshot() — the
// thread-safe metrics API — and repaints a dashboard with each query's
// counters, latency percentiles, per-shard queue pressure, and the current
// top ranked results. On exit it dumps the final snapshot as JSON (the wire
// format an external poller would scrape).
//
// Usage: monitor [rounds] [events_per_round] [num_shards]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/sharded_engine.h"
#include "workload/health.h"
#include "workload/stock.h"
#include "workload/traffic.h"

namespace {

// Keeps the latest closed-window results per query. Results arrive on the
// ingest thread while the monitor thread repaints, so access is locked.
class PanelSink : public cepr::Sink {
 public:
  void OnResult(const cepr::RankedResult& result) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.window_id != window_) {
      window_ = result.window_id;
      rows_.clear();
    }
    rows_.push_back(result);
  }

  // Copies under the lock; the monitor paints from the copy.
  std::vector<cepr::RankedResult> rows() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_;
  }
  int64_t window() const {
    std::lock_guard<std::mutex> lock(mu_);
    return window_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<cepr::RankedResult> rows_;
  int64_t window_ = -1;
};

void PaintQuery(const cepr::MetricsSnapshot::QueryEntry& entry,
                const PanelSink& panel) {
  const cepr::QueryMetrics& m = entry.metrics;
  std::ostringstream out;
  out << "┌─ " << entry.name << " ── window " << panel.window()
      << " ── events " << m.events << ", matches " << m.matches
      << ", results " << m.results;
  if (m.event_processing_ns.count() > 0) {
    out << ", p99 " << static_cast<int64_t>(m.event_processing_ns.Percentile(99))
        << "ns";
  }
  out << "\n│  hot path: cloned " << m.matcher.runs_cloned << ", binding nodes "
      << m.matcher.binding_nodes_allocated << ", predcache "
      << m.matcher.predcache_hits << "/"
      << (m.matcher.predcache_hits + m.matcher.predcache_misses) << " hits\n";
  if (m.matcher.dag_nodes_allocated > 0) {
    out << "│  match dag: nodes " << m.matcher.dag_nodes_allocated << " (shared "
        << m.matcher.dag_nodes_shared << ", peak " << m.matcher.peak_dag_nodes
        << "), enumerated " << m.matches_enumerated << ", cutoffs "
        << m.enumeration_cutoffs << "\n";
  }
  const std::vector<cepr::RankedResult> rows = panel.rows();
  if (rows.empty()) out << "│  (no ranked results yet)\n";
  for (const cepr::RankedResult& r : rows) {
    out << "│  #" << (r.rank + 1) << "  score=" << std::setw(10)
        << r.match.score << "  ";
    for (size_t i = 0; i < r.match.row.size(); ++i) {
      if (i > 0) out << ", ";
      out << r.match.row[i].ToString();
    }
    out << "\n";
  }
  out << "└─\n";
  std::cout << out.str();
}

void PaintShards(const cepr::MetricsSnapshot& snap) {
  std::ostringstream out;
  out << "shards:";
  for (size_t s = 0; s < snap.shards.size(); ++s) {
    const cepr::ShardStats& st = snap.shards[s];
    out << "  [" << s << "] ev=" << st.events << " hw=" << st.queue_high_water
        << " stalls=" << st.enqueue_stalls;
  }
  out << "  merge: " << snap.merge.ToString() << "\n";
  out << "ingest: reordered=" << snap.reorder.events_reordered
      << " late_dropped=" << snap.reorder.events_late_dropped
      << " clamped=" << snap.reorder.events_clamped
      << " buffer_peak=" << snap.reorder.reorder_buffer_peak << "\n";
  out << "sharing: " << snap.sharing.ToString() << "\n";
  out << "durability: " << snap.durability.ToString() << "\n";
  std::cout << out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 5;
  const size_t per_round = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  const size_t num_shards = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;

  cepr::StockGenerator stock([] {
    cepr::StockOptions o;
    o.v_probability = 0.01;
    return o;
  }());
  cepr::HealthGenerator health([] {
    cepr::HealthOptions o;
    o.episode_probability = 0.002;
    return o;
  }());
  cepr::TrafficGenerator traffic([] {
    cepr::TrafficOptions o;
    o.jam_probability = 0.003;
    return o;
  }());

  cepr::ShardedEngineOptions engine_options;
  engine_options.num_shards = num_shards;
  cepr::ShardedEngine engine(engine_options);
  for (const auto& schema :
       {stock.schema(), health.schema(), traffic.schema()}) {
    auto s = engine.RegisterSchema(schema);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  PanelSink stock_panel;
  PanelSink health_panel;
  PanelSink traffic_panel;
  struct Spec {
    const char* name;
    const char* text;
    PanelSink* sink;
  };
  const std::vector<Spec> specs = {
      {"crashes",
       "SELECT a.symbol, a.price, MIN(b.price) FROM Stock "
       "MATCH PATTERN SEQ(a, b+, c) PARTITION BY symbol "
       "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
       "  AND c.price > a.price "
       "WITHIN 500 MILLISECONDS "
       "RANK BY (a.price - MIN(b.price)) / a.price DESC LIMIT 3 "
       "EMIT ON WINDOW CLOSE",
       &stock_panel},
      {"alarms",
       "SELECT a.patient, MAX(r.heart_rate) FROM Vitals "
       "MATCH PATTERN SEQ(a, r+) PARTITION BY patient "
       "WHERE r[i].heart_rate > r[i-1].heart_rate + 5 "
       "  AND r[1].heart_rate > a.heart_rate + 5 AND COUNT(r) >= 3 "
       "WITHIN 1 SECONDS "
       "RANK BY MAX(r.heart_rate) - a.heart_rate DESC LIMIT 3 "
       "EMIT ON WINDOW CLOSE",
       &health_panel},
      {"jams",
       "SELECT a.sensor, a.speed, MIN(d.speed) FROM Traffic "
       "MATCH PATTERN SEQ(a, d+) PARTITION BY sensor "
       "WHERE a.speed > 60 AND d[i].speed < d[i-1].speed * 0.9 "
       "  AND d[1].speed < a.speed * 0.9 AND COUNT(d) >= 3 "
       "WITHIN 2 SECONDS "
       "RANK BY a.speed - MIN(d.speed) DESC LIMIT 3 "
       "EMIT ON WINDOW CLOSE",
       &traffic_panel},
  };
  for (const Spec& spec : specs) {
    auto s =
        engine.RegisterQuery(spec.name, spec.text, cepr::QueryOptions{}, spec.sink);
    if (!s.ok()) {
      std::cerr << spec.name << ": " << s << "\n";
      return 1;
    }
  }

  // Durability, monitored live: journal every arrival and snapshot once per
  // round while the monitor thread concurrently reads the counters.
  const std::string wal_path = "/tmp/cepr_monitor.wal";
  const std::string ckpt_path = "/tmp/cepr_monitor.ckpt";
  std::remove(wal_path.c_str());
  if (const cepr::Status s = engine.OpenWal(wal_path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // The monitor thread: polls the engine concurrently with ingest — no
  // coordination with the ingest loop beyond the stop flag. Snapshot() is
  // safe to call from here at any time (see docs/OPERATIONS.md).
  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    int repaint = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const cepr::MetricsSnapshot snap = engine.Snapshot();
      std::cout << "═══ live snapshot " << ++repaint << " ── ingested "
                << snap.events_ingested << " ═══\n";
      for (const auto& entry : snap.queries) {
        const PanelSink* panel = nullptr;
        for (const Spec& spec : specs) {
          if (entry.name == spec.name) panel = spec.sink;
        }
        if (panel != nullptr) PaintQuery(entry, *panel);
      }
      PaintShards(snap);
      std::cout << "\n";
    }
  });

  for (int round = 1; round <= rounds; ++round) {
    for (size_t i = 0; i < per_round; ++i) {
      // Interleave the three domains, as the demo's multiplexed feed does.
      cepr::Status s = engine.Push(stock.Next());
      if (s.ok()) s = engine.Push(health.Next());
      if (s.ok()) s = engine.Push(traffic.Next());
      if (!s.ok()) {
        std::cerr << s << "\n";
        stop.store(true, std::memory_order_release);
        monitor.join();
        return 1;
      }
    }
    if (const cepr::Status s = engine.Checkpoint(ckpt_path); !s.ok()) {
      std::cerr << "checkpoint: " << s << "\n";
      stop.store(true, std::memory_order_release);
      monitor.join();
      return 1;
    }
  }
  engine.Finish();
  stop.store(true, std::memory_order_release);
  monitor.join();

  // Final state, both human- and machine-readable.
  const cepr::MetricsSnapshot final_snap = engine.Snapshot();
  std::cout << "═══ final ═══\n" << final_snap.ToString() << "\n\n"
            << "JSON: " << final_snap.ToJson() << "\n";
  return 0;
}
