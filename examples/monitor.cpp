// Terminal stand-in for the CEPR demo's interactive monitor UI: runs all
// three domain streams side by side, registers one ranked query per domain,
// and periodically repaints a dashboard with each query's current top
// results, live metrics, and the compiled NFA of a selected query.
//
// Usage: monitor [rounds] [events_per_round]

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "runtime/engine.h"
#include "workload/health.h"
#include "workload/stock.h"
#include "workload/traffic.h"

namespace {

// Keeps the latest closed-window results per query for repainting.
class PanelSink : public cepr::Sink {
 public:
  void OnResult(const cepr::RankedResult& result) override {
    if (result.window_id != window_) {
      window_ = result.window_id;
      rows_.clear();
    }
    rows_.push_back(result);
  }

  const std::vector<cepr::RankedResult>& rows() const { return rows_; }
  int64_t window() const { return window_; }

 private:
  std::vector<cepr::RankedResult> rows_;
  int64_t window_ = -1;
};

void Paint(const cepr::Engine& engine, const char* name, const PanelSink& panel) {
  const auto* query = engine.GetQuery(name).value();
  const cepr::QueryMetrics metrics = query->metrics();
  std::cout << "┌─ " << name << " ── window " << panel.window()
            << " ── events " << metrics.events << ", matches "
            << metrics.matches << ", active runs " << query->active_runs()
            << "\n";
  if (panel.rows().empty()) {
    std::cout << "│  (no ranked results yet)\n";
  }
  for (const cepr::RankedResult& r : panel.rows()) {
    std::cout << "│  #" << (r.rank + 1) << "  score=" << std::setw(10)
              << r.match.score << "  ";
    for (size_t i = 0; i < r.match.row.size(); ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << r.match.row[i].ToString();
    }
    std::cout << "\n";
  }
  std::cout << "└─\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 5;
  const size_t per_round = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

  cepr::StockGenerator stock([] {
    cepr::StockOptions o;
    o.v_probability = 0.01;
    return o;
  }());
  cepr::HealthGenerator health([] {
    cepr::HealthOptions o;
    o.episode_probability = 0.002;
    return o;
  }());
  cepr::TrafficGenerator traffic([] {
    cepr::TrafficOptions o;
    o.jam_probability = 0.003;
    return o;
  }());

  cepr::Engine engine;
  for (const auto& schema :
       {stock.schema(), health.schema(), traffic.schema()}) {
    auto s = engine.RegisterSchema(schema);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  PanelSink stock_panel;
  PanelSink health_panel;
  PanelSink traffic_panel;
  struct Spec {
    const char* name;
    const char* text;
    PanelSink* sink;
  };
  const std::vector<Spec> specs = {
      {"crashes",
       "SELECT a.symbol, a.price, MIN(b.price) FROM Stock "
       "MATCH PATTERN SEQ(a, b+, c) PARTITION BY symbol "
       "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
       "  AND c.price > a.price "
       "WITHIN 500 MILLISECONDS "
       "RANK BY (a.price - MIN(b.price)) / a.price DESC LIMIT 3 "
       "EMIT ON WINDOW CLOSE",
       &stock_panel},
      {"alarms",
       "SELECT a.patient, MAX(r.heart_rate) FROM Vitals "
       "MATCH PATTERN SEQ(a, r+) PARTITION BY patient "
       "WHERE r[i].heart_rate > r[i-1].heart_rate + 5 "
       "  AND r[1].heart_rate > a.heart_rate + 5 AND COUNT(r) >= 3 "
       "WITHIN 1 SECONDS "
       "RANK BY MAX(r.heart_rate) - a.heart_rate DESC LIMIT 3 "
       "EMIT ON WINDOW CLOSE",
       &health_panel},
      {"jams",
       "SELECT a.sensor, a.speed, MIN(d.speed) FROM Traffic "
       "MATCH PATTERN SEQ(a, d+) PARTITION BY sensor "
       "WHERE a.speed > 60 AND d[i].speed < d[i-1].speed * 0.9 "
       "  AND d[1].speed < a.speed * 0.9 AND COUNT(d) >= 3 "
       "WITHIN 2 SECONDS "
       "RANK BY a.speed - MIN(d.speed) DESC LIMIT 3 "
       "EMIT ON WINDOW CLOSE",
       &traffic_panel},
  };
  for (const Spec& spec : specs) {
    auto s =
        engine.RegisterQuery(spec.name, spec.text, cepr::QueryOptions{}, spec.sink);
    if (!s.ok()) {
      std::cerr << spec.name << ": " << s << "\n";
      return 1;
    }
  }

  // Show the plan view the demo exposed for the selected query.
  auto plan = cepr::CompileQueryText(specs[0].text, stock.schema());
  std::cout << "NFA of query 'crashes' (Graphviz):\n"
            << (*plan)->nfa.ToDot() << "\n";

  for (int round = 1; round <= rounds; ++round) {
    for (size_t i = 0; i < per_round; ++i) {
      // Interleave the three domains, as the demo's multiplexed feed does.
      cepr::Status s = engine.Push(stock.Next());
      if (s.ok()) s = engine.Push(health.Next());
      if (s.ok()) s = engine.Push(traffic.Next());
      if (!s.ok()) {
        std::cerr << s << "\n";
        return 1;
      }
    }
    std::cout << "═══ monitor refresh " << round << "/" << rounds << " ═══\n";
    Paint(engine, "crashes", stock_panel);
    Paint(engine, "alarms", health_panel);
    Paint(engine, "jams", traffic_panel);
    std::cout << "\n";
  }
  engine.Finish();
  return 0;
}
