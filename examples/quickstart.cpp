// CEPR quickstart: declare a stream, register a ranked pattern query, push
// a handful of hand-written events, and read the ordered results.
//
// The query finds "dip and recovery" shapes — a start tick, one or more
// falling ticks, then a tick above the start — and ranks them by relative
// dip depth, keeping the top 3.

#include <iostream>

#include "runtime/engine.h"

int main() {
  cepr::Engine engine;

  // 1. Declare the stream (ranges power the ranking pruner).
  cepr::Status s = engine.ExecuteDdl(
      "CREATE STREAM Ticks (price FLOAT RANGE [1, 1000])");
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 2. Register a ranked query. Results go to a collecting sink.
  cepr::CollectSink sink;
  s = engine.RegisterQuery("dips",
                           "SELECT a.price AS start_price, "
                           "       MIN(b.price) AS bottom, "
                           "       c.price AS recovery "
                           "FROM Ticks "
                           "MATCH PATTERN SEQ(a, b+, c) "
                           "USING SKIP_TILL_NEXT_MATCH "
                           "WHERE b[i].price < b[i-1].price "
                           "  AND b[1].price < a.price "
                           "  AND c.price > a.price "
                           "WITHIN 10 SECONDS "
                           "RANK BY (a.price - MIN(b.price)) / a.price DESC "
                           "LIMIT 3 "
                           "EMIT ON WINDOW CLOSE",
                           cepr::QueryOptions{}, &sink);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 3. Push a stream with two dips: a shallow one and a deep one.
  const double prices[] = {100, 98,  95, 104,  // dip of depth 5%
                           110, 90, 70, 60, 115,  // dip of depth ~45%
                           120, 119, 125};
  auto schema = engine.GetSchema("Ticks").value();
  cepr::Timestamp ts = 0;
  for (double p : prices) {
    cepr::Event e(schema, ts, {cepr::Value::Float(p)});
    s = engine.Push(std::move(e));
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    ts += 500 * 1000;  // one tick every 0.5 simulated seconds
  }
  engine.Finish();

  // 4. Read the ordered results.
  std::cout << "ranked dips (deepest first):\n";
  for (const cepr::RankedResult& r : sink.results()) {
    std::cout << "  window " << r.window_id << " rank " << (r.rank + 1)
              << ": start=" << r.match.row[0] << " bottom=" << r.match.row[1]
              << " recovery=" << r.match.row[2] << " depth-score="
              << r.match.score << "\n";
  }

  const cepr::QueryMetrics metrics = engine.GetQuery("dips").value()->metrics();
  std::cout << "stats: " << metrics.matcher.ToString() << "\n";
  return 0;
}
