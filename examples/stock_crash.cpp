// Stock-market scenario from the CEPR demo: find "crash and recovery"
// episodes (a reference tick, a strictly falling run, then a rebound above
// the reference), rank them by relative crash depth, and report the top 5
// per symbol-partitioned report window.
//
// Usage: stock_crash [num_events] [num_symbols] [seed]

#include <cstdlib>
#include <iostream>

#include "common/stopwatch.h"
#include "runtime/engine.h"
#include "workload/stock.h"

int main(int argc, char** argv) {
  const size_t num_events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const int num_symbols = argc > 2 ? std::atoi(argv[2]) : 8;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  cepr::StockOptions gen_options;
  gen_options.num_symbols = num_symbols;
  gen_options.v_probability = 0.01;
  gen_options.base.seed = seed;
  cepr::StockGenerator gen(gen_options);

  cepr::Engine engine;
  cepr::Status s = engine.RegisterSchema(gen.schema());
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  const char* query =
      "SELECT a.symbol, a.price AS reference, MIN(b.price) AS bottom, "
      "       c.price AS rebound, COUNT(b) AS fall_ticks "
      "FROM Stock "
      "MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price "
      "  AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 500 MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price DESC "
      "LIMIT 5 "
      "EMIT ON WINDOW CLOSE";

  // Stream the ranked crashes to stdout as windows close.
  auto plan_preview = cepr::CompileQueryText(query, gen.schema());
  if (!plan_preview.ok()) {
    std::cerr << plan_preview.status() << "\n";
    return 1;
  }
  std::cout << "compiled plan:\n" << (*plan_preview)->Describe() << "\n";

  cepr::PrintSink sink(std::cout,
                       {"symbol", "reference", "bottom", "rebound", "fall_ticks"},
                       "crash");
  s = engine.RegisterQuery("crash", query, cepr::QueryOptions{}, &sink);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  cepr::Stopwatch timer;
  for (cepr::Event& e : gen.Take(num_events)) {
    s = engine.Push(std::move(e));
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  engine.Finish();

  const cepr::QueryMetrics metrics = engine.GetQuery("crash").value()->metrics();
  const double secs = timer.ElapsedSeconds();
  std::cout << "\nprocessed " << num_events << " events in " << secs << "s ("
            << static_cast<uint64_t>(static_cast<double>(num_events) / secs)
            << " events/s)\n";
  std::cout << "matches=" << metrics.matches << " results=" << metrics.results
            << " pruned_runs=" << metrics.prunes << "\n";
  return 0;
}
