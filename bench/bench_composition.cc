// E10 — Hierarchical CEP (derived streams) ablation.
//
// The same two-level slowdown/wave detection as examples/composite_events,
// compared against a single flat query approximating level 2 directly over
// raw events. Measures the overhead of re-ingesting composite events and
// the state reduction the two-level factoring buys.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/traffic.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 50000;

const std::vector<Event>& TrafficStream() {
  static std::vector<Event>* cache = nullptr;
  if (cache == nullptr) {
    TrafficOptions options;
    options.num_sensors = 6;
    options.jam_probability = 0.004;
    TrafficGenerator gen(options);
    cache = new std::vector<Event>(gen.Take(kEvents));
  }
  return *cache;
}

void BM_TwoLevelComposition(benchmark::State& state) {
  const auto& events = TrafficStream();
  uint64_t level1_matches = 0;
  uint64_t level2_matches = 0;
  for (auto _ : state) {
    Engine engine;
    CEPR_CHECK(engine.RegisterSchema(TrafficGenerator::MakeSchema()).ok());
    NullSink sink;
    Status s = engine.RegisterQuery(
        "slowdowns",
        "SELECT a.sensor AS sensor, a.speed AS before, d.speed AS after "
        "FROM Traffic MATCH PATTERN SEQ(a, d) USING STRICT "
        "PARTITION BY sensor "
        "WHERE d.speed < a.speed * 0.85 "
        "WITHIN 5 SECONDS EMIT ON COMPLETE INTO Slowdown",
        QueryOptions{}, nullptr);
    CEPR_CHECK(s.ok()) << s.ToString();
    s = engine.RegisterQuery(
        "waves",
        "SELECT FIRST(w).sensor, COUNT(w) "
        "FROM Slowdown MATCH PATTERN SEQ(w{3,}, x) "
        "PARTITION BY sensor "
        "WHERE w[i].before <= w[i-1].after * 1.1 AND x.after >= 0 "
        "WITHIN 10 SECONDS "
        "RANK BY FIRST(w).before - LAST(w).after DESC "
        "LIMIT 3 EMIT EVERY 2000 EVENTS",
        QueryOptions{}, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    for (const Event& e : events) CEPR_CHECK(engine.Push(Event(e)).ok());
    engine.Finish();
    level1_matches = engine.GetQuery("slowdowns").value()->metrics().matches;
    level2_matches = engine.GetQuery("waves").value()->metrics().matches;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["level1_matches"] = static_cast<double>(level1_matches);
  state.counters["level2_matches"] = static_cast<double>(level2_matches);
}

BENCHMARK(BM_TwoLevelComposition)->Unit(benchmark::kMillisecond);

// Flat single-level approximation: one Kleene pattern over raw readings
// that encodes the whole collapse (a fast anchor then a falling run).
void BM_FlatSingleLevel(benchmark::State& state) {
  const auto& events = TrafficStream();
  uint64_t matches = 0;
  for (auto _ : state) {
    Engine engine;
    CEPR_CHECK(engine.RegisterSchema(TrafficGenerator::MakeSchema()).ok());
    NullSink sink;
    const Status s = engine.RegisterQuery(
        "flat",
        "SELECT a.sensor, COUNT(d) "
        "FROM Traffic MATCH PATTERN SEQ(a, d{3,}) "
        "PARTITION BY sensor "
        "WHERE a.speed > 60 AND d[i].speed < d[i-1].speed * 0.9 "
        "  AND d[1].speed < a.speed * 0.9 "
        "WITHIN 10 SECONDS "
        "RANK BY a.speed - MIN(d.speed) DESC "
        "LIMIT 3 EMIT EVERY 2000 EVENTS",
        QueryOptions{}, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    for (const Event& e : events) CEPR_CHECK(engine.Push(Event(e)).ok());
    engine.Finish();
    matches = engine.GetQuery("flat").value()->metrics().matches;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["matches"] = static_cast<double>(matches);
}

BENCHMARK(BM_FlatSingleLevel)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
