// E5 — Event-selection strategy cost.
//
// The dip pattern under the three strategies on identical streams.
// SKIP_TILL_ANY_MATCH is run-capped (it explores subsets); counters expose
// match counts, forks, and peak run populations so throughput differences
// can be attributed.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 50000;

void BM_Strategy(benchmark::State& state) {
  static const char* kStrategies[] = {"STRICT_CONTIGUITY", "SKIP_TILL_NEXT_MATCH",
                                      "SKIP_TILL_ANY_MATCH"};
  const char* strategy = kStrategies[state.range(0)];
  // Tight window keeps skip-till-any's subset enumeration finite.
  const auto& events = StockStream(kEvents, 0.02);
  QueryMetrics metrics;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kPassthrough;
    options.matcher.max_active_runs = 20000;
    const Status s = engine->RegisterQuery(
        "q", DipQuery(/*limit=*/-1, /*within_ms=*/20, strategy,
                      "EMIT ON COMPLETE"),
        options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    metrics = engine->GetQuery("q").value()->metrics();
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["matches"] = static_cast<double>(metrics.matches);
  state.counters["forks"] = static_cast<double>(metrics.matcher.runs_forked);
  state.counters["peak_runs"] =
      static_cast<double>(metrics.matcher.peak_active_runs);
  state.counters["dropped"] =
      static_cast<double>(metrics.matcher.runs_dropped_capacity);
}

BENCHMARK(BM_Strategy)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("strategy(0=strict,1=next,2=any)")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
