// E15 — Out-of-order ingest: the watermark-driven reorder buffer.
//
// Two sweeps over the dip-and-recovery workload:
//  * BM_DisorderIngest — ingest throughput as the disorder fraction and
//    the lateness bound grow, with every event's displacement kept inside
//    the bound. Recall against the in-order baseline must stay 1.0 (the
//    buffer reconstructs the exact stream: identical matches, scores and
//    tie-order), so the counters isolate the pure cost of buffering:
//    events_reordered and the buffer's peak depth.
//  * BM_LatenessRecall — a stream with a fixed 50 ms disorder span pushed
//    through LatePolicy::kDropAndCount engines with tighter bounds. Events
//    whose displacement exceeds the bound are dropped (counted), and
//    recall climbs back to 1.0 as the bound reaches the disorder span —
//    the lateness/completeness trade the operator actually tunes.

#include <benchmark/benchmark.h>

#include <set>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "common/random.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 100000;

// Identity of one emitted result, stable across engine instances.
using ResultKey = std::tuple<int64_t, Timestamp, Timestamp, double>;

std::set<ResultKey> Keys(const std::vector<RankedResult>& results) {
  std::set<ResultKey> keys;
  for (const RankedResult& r : results) {
    keys.insert({r.window_id, r.match.first_ts, r.match.last_ts,
                 r.match.score});
  }
  return keys;
}

// Shuffles `fraction` of each event-time block of span <= bound (partial
// Fisher-Yates), so every displacement stays within the bound.
std::vector<Event> BlockShuffle(const std::vector<Event>& events,
                                Timestamp bound, double fraction,
                                uint64_t seed) {
  std::vector<Event> out;
  out.reserve(events.size());
  for (const Event& e : events) out.push_back(Event(e));
  if (bound <= 0 || fraction <= 0) return out;
  Random rng(seed);
  for (size_t lo = 0; lo < out.size();) {
    size_t hi = lo;
    while (hi + 1 < out.size() &&
           out[hi + 1].timestamp() - out[lo].timestamp() <= bound) {
      ++hi;
    }
    const size_t span = hi - lo + 1;
    const size_t moves = static_cast<size_t>(fraction * span);
    for (size_t m = 0; m < moves && hi > lo; ++m) {
      const size_t i = hi - (m % span);
      if (i <= lo) break;
      const size_t j = lo + rng.Uniform(static_cast<uint64_t>(i - lo + 1));
      std::swap(out[i], out[j]);
    }
    lo = hi + 1;
  }
  return out;
}

std::vector<RankedResult> Run(const std::vector<Event>& arrivals,
                              Timestamp lateness, LatePolicy policy,
                              ReorderStats* stats) {
  EngineOptions engine_options;
  engine_options.max_lateness_micros = lateness;
  engine_options.late_policy = policy;
  Engine engine(engine_options);
  Status s = engine.RegisterSchema(StockGenerator::MakeSchema());
  CEPR_CHECK(s.ok()) << s.ToString();
  CollectSink sink;
  s = engine.RegisterQuery("q", DipQuery(10), QueryOptions{}, &sink);
  CEPR_CHECK(s.ok()) << s.ToString();
  for (const Event& e : arrivals) {
    s = engine.Push(Event(e));
    CEPR_CHECK(s.ok()) << s.ToString();
  }
  engine.Finish();
  if (stats != nullptr) *stats = engine.Snapshot().reorder;
  return sink.results();
}

const std::set<ResultKey>& BaselineKeys() {
  static const std::set<ResultKey>* cache = new std::set<ResultKey>(Keys(
      Run(StockStream(kEvents, 0.02), 0, LatePolicy::kReject, nullptr)));
  return *cache;
}

double Recall(const std::vector<RankedResult>& results) {
  const std::set<ResultKey>& baseline = BaselineKeys();
  if (baseline.empty()) return 1.0;
  size_t hits = 0;
  for (const ResultKey& key : Keys(results)) {
    if (baseline.count(key) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(baseline.size());
}

// args: {lateness_ms, disorder_pct}; disorder displacement == the bound.
void BM_DisorderIngest(benchmark::State& state) {
  const Timestamp lateness = state.range(0) * 1000;
  const double fraction = static_cast<double>(state.range(1)) / 100.0;
  const std::vector<Event> arrivals =
      BlockShuffle(StockStream(kEvents, 0.02), lateness, fraction, 42);

  std::vector<RankedResult> results;
  ReorderStats stats;
  for (auto _ : state) {
    results = Run(arrivals, lateness, LatePolicy::kReject, &stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["recall"] = Recall(results);
  state.counters["reordered"] = static_cast<double>(stats.events_reordered);
  state.counters["buffer_peak"] =
      static_cast<double>(stats.reorder_buffer_peak);
}

// args: {lateness_ms}; the stream's disorder span is fixed at 50 ms, so
// bounds below that drop stragglers and trade recall for freshness.
void BM_LatenessRecall(benchmark::State& state) {
  constexpr Timestamp kDisorderSpan = 50000;
  const Timestamp lateness = state.range(0) * 1000;
  const std::vector<Event> arrivals =
      BlockShuffle(StockStream(kEvents, 0.02), kDisorderSpan, 1.0, 7);

  std::vector<RankedResult> results;
  ReorderStats stats;
  for (auto _ : state) {
    results = Run(arrivals, lateness, LatePolicy::kDropAndCount, &stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["recall"] = Recall(results);
  state.counters["dropped"] = static_cast<double>(stats.events_late_dropped);
  state.counters["buffer_peak"] =
      static_cast<double>(stats.reorder_buffer_peak);
}

void DisorderArgs(benchmark::internal::Benchmark* b) {
  b->ArgNames({"lateness_ms", "disorder_pct"});
  b->Args({0, 0});  // strict in-order baseline
  for (int lateness_ms : {5, 20, 50}) {
    for (int pct : {10, 50, 100}) {
      b->Args({lateness_ms, pct});
    }
  }
}

BENCHMARK(BM_DisorderIngest)
    ->Apply(DisorderArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LatenessRecall)
    ->ArgName("lateness_ms")
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
