// E1 — Detection throughput vs. ranking mode.
//
// One tumbling-window dip query over the stock stream, in three
// configurations: pure detection (no RANK BY), ranked with the incremental
// heap, and ranked with heap + partial-match pruning. The headline series:
// events/s per mode, plus match counts as sanity.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 200000;
constexpr double kVProbability = 0.01;

enum Mode : int64_t { kDetectOnly = 0, kRankedHeap = 1, kRankedPruned = 2 };

void BM_Throughput(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  const auto& events = StockStream(kEvents, kVProbability);

  uint64_t matches = 0;
  uint64_t results = 0;
  for (auto _ : state) {
    auto engine = StockEngine();
    QueryOptions options;
    std::string query;
    switch (mode) {
      case kDetectOnly:
        query = DetectQuery();
        options.ranker = RankerPolicy::kPassthrough;
        break;
      case kRankedHeap:
        query = DipQuery(/*limit=*/10);
        options.ranker = RankerPolicy::kHeap;
        break;
      case kRankedPruned:
        query = DipQuery(/*limit=*/10);
        options.ranker = RankerPolicy::kPruned;
        break;
    }
    NullSink sink;
    const Status s = engine->RegisterQuery("q", query, options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    const QueryMetrics m = engine->GetQuery("q").value()->metrics();
    matches = m.matches;
    results = m.results;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["results"] = static_cast<double>(results);
}

BENCHMARK(BM_Throughput)
    ->Arg(kDetectOnly)
    ->Arg(kRankedHeap)
    ->Arg(kRankedPruned)
    ->ArgName("mode(0=detect,1=heap,2=pruned)")
    ->Unit(benchmark::kMillisecond);

// Scaling with planted-pattern density: how throughput degrades as the
// stream gets "interesting" (mode fixed to pruned).
void BM_ThroughputVsDensity(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  const auto& events = StockStream(kEvents, density);
  uint64_t matches = 0;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kPruned;
    const Status s = engine->RegisterQuery("q", DipQuery(10), options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    matches = engine->GetQuery("q").value()->metrics().matches;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["matches"] = static_cast<double>(matches);
}

BENCHMARK(BM_ThroughputVsDensity)
    ->Arg(0)
    ->Arg(5)
    ->Arg(20)
    ->Arg(50)
    ->ArgName("v_prob_x1000")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
