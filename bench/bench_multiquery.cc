// E7 — Multi-query scale-out.
//
// The demo ran several live query panels over one feed. Every ingested
// event visits every registered query, so aggregate ingest throughput is
// expected to fall ~1/q while per-query processed-events/s stays flat.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 50000;

void BM_MultiQuery(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  const auto& events = StockStream(kEvents, 0.01);
  for (auto _ : state) {
    auto engine = StockEngine();
    std::vector<std::unique_ptr<NullSink>> sinks;
    for (int i = 0; i < num_queries; ++i) {
      sinks.push_back(std::make_unique<NullSink>());
      // Vary the anchor threshold per query so plans differ slightly, as
      // the demo's independently-authored panels would.
      std::string query =
          "SELECT a.symbol, MIN(b.price) FROM Stock "
          "MATCH PATTERN SEQ(a, b+, c) PARTITION BY symbol "
          "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
          "  AND c.price > a.price AND a.price > " +
          std::to_string(5 + i) +
          " WITHIN 100 MILLISECONDS "
          "RANK BY (a.price - MIN(b.price)) / a.price DESC "
          "LIMIT 5 EMIT ON WINDOW CLOSE";
      const Status s = engine->RegisterQuery("q" + std::to_string(i), query,
                                             QueryOptions{}, sinks.back().get());
      CEPR_CHECK(s.ok()) << s.ToString();
    }
    Replay(engine.get(), events);
  }
  // items = ingested events (not event*query visits): the counter shows the
  // ingest rate an external producer would observe.
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["query_visits_per_s"] = benchmark::Counter(
      static_cast<double>(kEvents) * num_queries * state.iterations(),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_MultiQuery)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->ArgName("queries")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
