// E7 — Multi-query scale-out, and E16 — shared multi-query evaluation.
//
// E7: the demo ran several live query panels over one feed. Every ingested
// event visits every registered query, so aggregate ingest throughput is
// expected to fall ~1/q while per-query processed-events/s stays flat.
//
// E16: a fleet of queries that differ only in one selection constant
// (`a.volume = V`). With shared evaluation the engine interns one NFA
// template for the whole fleet and the predicate index dispatches each
// event to the handful of queries whose entry predicate can match, so
// per-event cost stays near-flat as the fleet grows; unshared, every event
// visits every query. Compare `shared=1` vs `shared=0` rows at equal
// fleet sizes (docs/BENCHMARKS.md, EXPERIMENTS.md E16).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 50000;

void BM_MultiQuery(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  const auto& events = StockStream(kEvents, 0.01);
  for (auto _ : state) {
    auto engine = StockEngine();
    std::vector<std::unique_ptr<NullSink>> sinks;
    for (int i = 0; i < num_queries; ++i) {
      sinks.push_back(std::make_unique<NullSink>());
      // Vary the anchor threshold per query so plans differ slightly, as
      // the demo's independently-authored panels would.
      std::string query =
          "SELECT a.symbol, MIN(b.price) FROM Stock "
          "MATCH PATTERN SEQ(a, b+, c) PARTITION BY symbol "
          "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
          "  AND c.price > a.price AND a.price > " +
          std::to_string(5 + i) +
          " WITHIN 100 MILLISECONDS "
          "RANK BY (a.price - MIN(b.price)) / a.price DESC "
          "LIMIT 5 EMIT ON WINDOW CLOSE";
      const Status s = engine->RegisterQuery("q" + std::to_string(i), query,
                                             QueryOptions{}, sinks.back().get());
      CEPR_CHECK(s.ok()) << s.ToString();
    }
    Replay(engine.get(), events);
  }
  // items = ingested events (not event*query visits): the counter shows the
  // ingest rate an external producer would observe.
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["query_visits_per_s"] = benchmark::Counter(
      static_cast<double>(kEvents) * num_queries * state.iterations(),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_MultiQuery)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->ArgName("queries")
    ->Unit(benchmark::kMillisecond);

// One fleet member: anchor on an exact volume so the predicate index can
// dispatch (volume is INT RANGE [1, 10000] in the Stock schema — each
// query is entered by ~1/10000 of the feed), then a short ranked
// rebound pattern so candidate visits do real matcher work.
std::string FleetQuery(int volume) {
  return "SELECT a.symbol, a.price, b.price FROM Stock "
         "MATCH PATTERN SEQ(a, b) PARTITION BY symbol "
         "WHERE a.volume = " + std::to_string(volume) +
         "  AND b.price > a.price "
         "WITHIN 10 MILLISECONDS "
         "RANK BY b.price - a.price DESC "
         "LIMIT 5 EMIT ON WINDOW CLOSE";
}

void BM_QueryFleet(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));
  const bool shared = state.range(1) != 0;
  // Unshared 10k-query runs cost events*queries matcher visits; trim the
  // replay so the slowest cell stays benchmarkable. Throughput counters
  // normalize by the actual event count.
  const size_t events_n = num_queries >= 10000 ? 5000 : kEvents;
  const auto& events = StockStream(events_n, 0.01);
  for (auto _ : state) {
    state.PauseTiming();  // fleet registration (compile) is setup, not ingest
    EngineOptions options;
    options.shared_eval = shared;
    auto engine = std::make_unique<Engine>(options);
    Status s = engine->RegisterSchema(StockGenerator::MakeSchema());
    CEPR_CHECK(s.ok()) << s.ToString();
    std::vector<std::unique_ptr<NullSink>> sinks;
    sinks.reserve(num_queries);
    for (int i = 0; i < num_queries; ++i) {
      sinks.push_back(std::make_unique<NullSink>());
      s = engine->RegisterQuery("q" + std::to_string(i),
                                FleetQuery(i % 10000 + 1), QueryOptions{},
                                sinks.back().get());
      CEPR_CHECK(s.ok()) << s.ToString();
    }
    state.ResumeTiming();
    Replay(engine.get(), events);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events_n) * state.iterations());
  state.counters["ns_per_event"] = benchmark::Counter(
      static_cast<double>(events_n) * state.iterations(),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

BENCHMARK(BM_QueryFleet)
    ->ArgsProduct({{10, 100, 1000, 10000}, {0, 1}})
    ->ArgNames({"queries", "shared"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
