// E19 — shared partial-match DAG vs per-run fan-out on the fork-heavy
// trailing-Kleene workload (workload/forkheavy.h): SEQ(a, b+) under
// SKIP_TILL_ANY_MATCH, where every qualifying event doubles each group's
// suffix-subset population. The per-run path materializes that fan-out as
// forked runs (state ~ 2^window, bounded here by a run cap that sheds
// oldest-first); the DAG path adds one extend + one union node per group
// per event (state ~ window) and enumerates matches lazily at window close.
//
// Sweeps window size x fork factor (anchor probability: fewer anchors =
// longer doubling cascades) with shared_match_dag off/on. Key counters:
//   events/s            throughput (items_per_second)
//   peak_runs           max simultaneously live runs (per-run state)
//   peak_dag_nodes      max simultaneously live DAG nodes (dag state)
//   enumerated/cutoffs  lazy-enumeration work at window closes
//   shed                runs dropped by the cap (per-run path only; >0
//                       means the per-run numbers UNDERSTATE true cost)
//
// Before timing, dag-on output is checked bit-identical to dag-off at the
// smallest window of each fork factor. Numbers land in docs/BENCHMARKS.md
// (E19).

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "workload/forkheavy.h"

namespace cepr {
namespace bench {
namespace {

std::string DagQuery(int window_ms) {
  return "SELECT a.price, SUM(b.price), COUNT(b) "
         "FROM ForkTick MATCH PATTERN SEQ(a, b+) "
         "USING SKIP_TILL_ANY_MATCH "
         "PARTITION BY sym "
         "WHERE a.anchor = 1 AND b[i].anchor = 0 "
         "WITHIN " +
         std::to_string(window_ms) +
         " MILLISECONDS "
         "RANK BY SUM(b.price) DESC "
         "LIMIT 10 EMIT ON WINDOW CLOSE";
}

// One event per simulated millisecond: a window of W ms spans W events, so
// the per-run path's worst-case fan-out per group is 2^(W-1).
const std::vector<Event>& DagStream(size_t n, double anchor_probability) {
  static std::vector<Event>* cache = nullptr;
  static size_t cache_n = 0;
  static double cache_p = -1;
  if (cache == nullptr || cache_n != n || cache_p != anchor_probability) {
    ForkHeavyOptions options;
    options.num_streams = 1;
    options.anchor_probability = anchor_probability;
    ForkHeavyGenerator gen(options);
    delete cache;
    cache = new std::vector<Event>(gen.Take(n));
    cache_n = n;
    cache_p = anchor_probability;
  }
  return *cache;
}

QueryOptions DagOptions(bool dag) {
  QueryOptions options;
  options.matcher.shared_match_dag = dag;
  // The cap keeps the per-run sweep finishable at the larger windows; it
  // binds only there (`shed` counter), and shedding only ever UNDERSTATES
  // the per-run cost the DAG avoids.
  options.matcher.max_active_runs = 65536;
  return options;
}

struct RunOutcome {
  std::vector<RankedResult> results;
  QueryMetrics metrics;
};

RunOutcome RunOnce(bool dag, int window_ms, double anchor_probability,
                   size_t n) {
  auto engine = std::make_unique<Engine>();
  CEPR_CHECK(engine->RegisterSchema(ForkHeavyGenerator::MakeSchema()).ok());
  CollectSink sink;
  const Status s = engine->RegisterQuery("q", DagQuery(window_ms),
                                         DagOptions(dag), &sink);
  CEPR_CHECK(s.ok()) << s.ToString();
  Replay(engine.get(), DagStream(n, anchor_probability));
  RunOutcome out;
  out.results = sink.results();
  out.metrics = engine->GetQueryMetrics("q").value();
  return out;
}

// Equivalence gate: dag on must equal dag off bit-for-bit before any number
// is reported (checked once per fork factor, at a window both paths handle
// comfortably).
void VerifyOnce(double anchor_probability) {
  static bool done[2] = {false, false};
  bool& flag = done[anchor_probability < 0.2 ? 0 : 1];
  if (flag) return;
  flag = true;
  constexpr size_t kVerifyEvents = 3000;
  const RunOutcome off = RunOnce(false, 8, anchor_probability, kVerifyEvents);
  const RunOutcome on = RunOnce(true, 8, anchor_probability, kVerifyEvents);
  CEPR_CHECK(!off.results.empty()) << "verification workload had no results";
  CEPR_CHECK(off.results.size() == on.results.size()) << "result count";
  for (size_t i = 0; i < off.results.size(); ++i) {
    const RankedResult& e = off.results[i];
    const RankedResult& a = on.results[i];
    CEPR_CHECK(e.window_id == a.window_id && e.rank == a.rank &&
               e.match.last_sequence == a.match.last_sequence &&
               e.match.score == a.match.score && e.match.row == a.match.row)
        << "dag result " << i << " diverged";
  }
  CEPR_CHECK(on.metrics.matcher.dag_nodes_allocated > 0)
      << "dag mode did not engage";
}

void BM_DagSweep(benchmark::State& state, bool dag) {
  const int window_ms = static_cast<int>(state.range(0));
  // Fork factor: anchor probability in permille (300 = light cascades,
  // 100 = heavy doubling chains).
  const double anchor_probability = static_cast<double>(state.range(1)) / 1e3;
  constexpr size_t kEvents = 4000;
  VerifyOnce(anchor_probability);
  const std::vector<Event>& events = DagStream(kEvents, anchor_probability);

  QueryMetrics last;
  uint64_t results = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = std::make_unique<Engine>();
    CEPR_CHECK(engine->RegisterSchema(ForkHeavyGenerator::MakeSchema()).ok());
    CollectSink sink;
    const Status s = engine->RegisterQuery("q", DagQuery(window_ms),
                                           DagOptions(dag), &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    state.ResumeTiming();

    Replay(engine.get(), events);

    state.PauseTiming();
    last = engine->GetQueryMetrics("q").value();
    results += sink.results().size();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kEvents));
  state.counters["peak_runs"] =
      static_cast<double>(last.matcher.peak_active_runs);
  state.counters["peak_dag_nodes"] =
      static_cast<double>(last.matcher.peak_dag_nodes);
  state.counters["enumerated"] = static_cast<double>(last.matches_enumerated);
  state.counters["cutoffs"] = static_cast<double>(last.enumeration_cutoffs);
  state.counters["shed"] =
      static_cast<double>(last.matcher.runs_dropped_capacity);
  state.counters["results"] =
      static_cast<double>(results) / static_cast<double>(state.iterations());
}

// Window sweep (ms == events) x fork factor (anchor probability, permille).
#define DAG_SWEEP_ARGS                                      \
  ->Args({4, 300})->Args({8, 300})->Args({12, 300})         \
      ->Args({16, 300})->Args({4, 100})->Args({8, 100})     \
      ->Args({12, 100})->Args({16, 100})                    \
      ->Unit(benchmark::kMillisecond)

BENCHMARK_CAPTURE(BM_DagSweep, per_run, false) DAG_SWEEP_ARGS;
BENCHMARK_CAPTURE(BM_DagSweep, shared_dag, true) DAG_SWEEP_ARGS;

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
