// E8 — Emission-policy latency ablation.
//
// Eager (EMIT ON COMPLETE) vs. buffered (EMIT ON WINDOW CLOSE / EVERY N):
// the event-time delay between a match's completion and its emission, and
// the number of results delivered. Eager trades provisional ordering for
// freshness; buffered delivers the exact ordered top-k once per window.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 100000;

void BM_Emission(benchmark::State& state) {
  static const char* kPolicies[] = {"EMIT ON COMPLETE", "EMIT ON WINDOW CLOSE",
                                    "EMIT EVERY 1000 EVENTS"};
  const char* policy = kPolicies[state.range(0)];
  const auto& events = StockStream(kEvents, 0.02);
  QueryMetrics metrics;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    const Status s = engine->RegisterQuery(
        "q", DipQuery(5, 100, "SKIP_TILL_NEXT_MATCH", policy), QueryOptions{},
        &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    metrics = engine->GetQuery("q").value()->metrics();
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["results"] = static_cast<double>(metrics.results);
  state.counters["delay_us_p50"] = metrics.emission_delay_us.Percentile(50);
  state.counters["delay_us_p99"] = metrics.emission_delay_us.Percentile(99);
  state.counters["delay_us_max"] =
      static_cast<double>(metrics.emission_delay_us.max());
}

BENCHMARK(BM_Emission)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("policy(0=eager,1=window,2=every1k)")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
