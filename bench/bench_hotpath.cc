// E14/E17 — hot-path ablation: copy-on-write run state, the run/binding
// arena, the per-event predicate cache, the bytecode VM and batched
// columnar ingest, measured on a fork-heavy SKIP_TILL_ANY_MATCH workload
// (every Kleene extension forks a run, so run-clone and predicate cost
// dominate the matcher). Reports throughput and heap allocations per event
// for the layered configurations:
//
//   legacy_deep_copy     cow_bindings=0 use_arena=0 predicate_cache=0
//   cow                  cow_bindings=1
//   cow_arena            cow_bindings=1 use_arena=1
//   cow_arena_predcache  all three on
//   full_bytecode        + bytecode_eval=1 (the engine default)
//   full_bytecode_batch  + PushAll batched ingest (ProbeBatch screening)
//
// Before timing, every mode's ranked output — serial and sharded(2) — is
// checked bit-identical against the legacy baseline, so the numbers can
// only come from configurations proven observationally equivalent.
// Numbers are recorded in docs/BENCHMARKS.md (E14, E17).

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "runtime/sharded_engine.h"

// -- Global allocation counter ----------------------------------------------
// Counts every heap allocation in the process; the benchmark reads the
// delta around the replay loop. Relaxed atomics keep the probe cheap.

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cepr {
namespace bench {
namespace {

struct Mode {
  const char* label;
  bool cow_bindings;
  bool use_arena;
  bool predicate_cache;
  bool bytecode_eval;
  bool batch_ingest;  // replay via PushAll (batched screening) vs Push
};

constexpr Mode kLegacy = {"legacy_deep_copy", false, false, false, false, false};
constexpr Mode kCow = {"cow", true, false, false, false, false};
constexpr Mode kCowArena = {"cow_arena", true, true, false, false, false};
constexpr Mode kFull = {"cow_arena_predcache", true, true, true, false, false};
constexpr Mode kBytecode = {"full_bytecode", true, true, true, true, false};
constexpr Mode kBytecodeBatch = {"full_bytecode_batch", true, true, true, true,
                                 true};

// Fork-heavy dip query: SKIP_TILL_ANY_MATCH + a mixed event-only /
// correlated WHERE. The run cap keeps the fork population bounded the same
// deterministic way in every mode.
std::string HotQuery() {
  return "SELECT a.symbol, a.price, MIN(b.price), c.price "
         "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
         "USING SKIP_TILL_ANY_MATCH "
         "PARTITION BY symbol "
         "WHERE b[i].price < b[i-1].price AND b[i].price < 900 "
         "  AND b[1].price < a.price AND c.price > a.price "
         "WITHIN 100 MILLISECONDS "
         "RANK BY (a.price - MIN(b.price)) / a.price DESC "
         "LIMIT 10 EMIT ON WINDOW CLOSE";
}

QueryOptions HotOptions(const Mode& mode) {
  QueryOptions options;
  options.matcher.max_active_runs = 256;
  options.matcher.cow_bindings = mode.cow_bindings;
  options.matcher.use_arena = mode.use_arena;
  options.matcher.predicate_cache = mode.predicate_cache;
  options.matcher.bytecode_eval = mode.bytecode_eval;
  return options;
}

const std::vector<Event>& HotStream(size_t n) {
  return StockStream(n, /*v_probability=*/0.05, /*num_symbols=*/4);
}

std::vector<RankedResult> RunSerialMode(const Mode& mode, size_t n) {
  auto engine = StockEngine();
  CollectSink sink;
  const Status s =
      engine->RegisterQuery("q", HotQuery(), HotOptions(mode), &sink);
  CEPR_CHECK(s.ok()) << s.ToString();
  if (mode.batch_ingest) {
    ReplayBatch(engine.get(), HotStream(n));
  } else {
    Replay(engine.get(), HotStream(n));
  }
  return sink.results();
}

std::vector<RankedResult> RunShardedMode(const Mode& mode, size_t n) {
  ShardedEngineOptions engine_options;
  engine_options.num_shards = 2;
  ShardedEngine engine(engine_options);
  CEPR_CHECK(engine.RegisterSchema(StockGenerator::MakeSchema()).ok());
  CollectSink sink;
  const Status s =
      engine.RegisterQuery("q", HotQuery(), HotOptions(mode), &sink);
  CEPR_CHECK(s.ok()) << s.ToString();
  if (mode.batch_ingest) {
    const Status push = engine.PushAll(std::vector<Event>(HotStream(n)));
    CEPR_CHECK(push.ok()) << push.ToString();
  } else {
    for (const Event& e : HotStream(n)) {
      const Status push = engine.Push(Event(e));
      CEPR_CHECK(push.ok()) << push.ToString();
    }
  }
  engine.Finish();
  return sink.results();
}

// Bit-exact output identity (match.id excluded: matcher-local by design).
void CheckIdentical(const std::vector<RankedResult>& expected,
                    const std::vector<RankedResult>& actual,
                    const std::string& label) {
  CEPR_CHECK(expected.size() == actual.size()) << label << ": result count";
  for (size_t i = 0; i < expected.size(); ++i) {
    const RankedResult& e = expected[i];
    const RankedResult& a = actual[i];
    CEPR_CHECK(e.window_id == a.window_id && e.rank == a.rank &&
               e.provisional == a.provisional &&
               e.match.first_ts == a.match.first_ts &&
               e.match.last_ts == a.match.last_ts &&
               e.match.last_sequence == a.match.last_sequence &&
               e.match.score == a.match.score && e.match.row == a.match.row)
        << label << ": result " << i << " diverged";
  }
}

// One-time cross-mode verification on a smaller stream, so a benchmark run
// can never silently time a configuration that changes the output.
void VerifyModesOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    constexpr size_t kVerifyEvents = 4000;
    const auto baseline = RunSerialMode(kLegacy, kVerifyEvents);
    CEPR_CHECK(!baseline.empty()) << "verification workload had no results";
    for (const Mode& mode :
         {kLegacy, kCow, kCowArena, kFull, kBytecode, kBytecodeBatch}) {
      CheckIdentical(baseline, RunSerialMode(mode, kVerifyEvents),
                     std::string("serial ") + mode.label);
      CheckIdentical(baseline, RunShardedMode(mode, kVerifyEvents),
                     std::string("sharded ") + mode.label);
    }
  });
}

void BM_HotPath(benchmark::State& state, const Mode& mode) {
  constexpr size_t kEvents = 20000;
  // Verify first: it replays shorter streams through the shared StockStream
  // cache, so the timed stream must be (re)fetched after it.
  VerifyModesOnce();
  const std::vector<Event>& events = HotStream(kEvents);  // pre-generated
  uint64_t allocs = 0;
  uint64_t matches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = StockEngine();
    CollectSink sink;
    const Status s =
        engine->RegisterQuery("q", HotQuery(), HotOptions(mode), &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    state.ResumeTiming();

    const uint64_t before = g_allocs.load(std::memory_order_relaxed);
    if (mode.batch_ingest) {
      ReplayBatch(engine.get(), events);
    } else {
      Replay(engine.get(), events);
    }
    allocs += g_allocs.load(std::memory_order_relaxed) - before;
    matches += sink.results().size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kEvents));
  const double per_event =
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * kEvents);
  state.counters["allocs_per_event"] = per_event;
  state.counters["results"] =
      static_cast<double>(matches) / static_cast<double>(state.iterations());
}

BENCHMARK_CAPTURE(BM_HotPath, legacy_deep_copy, kLegacy)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HotPath, cow, kCow)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HotPath, cow_arena, kCowArena)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HotPath, cow_arena_predcache, kFull)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HotPath, full_bytecode, kBytecode)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_HotPath, full_bytecode_batch, kBytecodeBatch)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
