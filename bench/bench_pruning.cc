// E3 — Partial-match pruning effectiveness.
//
// The pruner engages under global (EMIT ON COMPLETE) ranking, where the
// top-k bar persists and only rises. Two score shapes bracket the design
// space:
//  * "tight": RANK BY dip-depth ASC — a partial match's lower bound equals
//    the score it would get if completed now, so the bar bites early;
//  * "loose": RANK BY dip-depth DESC — the upper bound assumes the dip
//    could still fall to the range floor, so pruning rarely fires.
// Sweeping k and match density shows where the optimization pays.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 100000;

std::string GlobalDipQuery(int k, bool desc) {
  return "SELECT a.symbol, a.price, MIN(b.price) "
         "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
         "PARTITION BY symbol "
         "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
         "  AND c.price > a.price "
         "WITHIN 100 MILLISECONDS "
         "RANK BY (a.price - MIN(b.price)) / a.price " +
         std::string(desc ? "DESC" : "ASC") + " LIMIT " + std::to_string(k) +
         " EMIT ON COMPLETE";
}

void BM_Pruning(benchmark::State& state) {
  const bool pruned = state.range(0) != 0;
  const int k = static_cast<int>(state.range(1));
  const bool desc = state.range(2) != 0;  // DESC = loose bound
  const auto& events = StockStream(kEvents, 0.02);
  QueryMetrics metrics;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = pruned ? RankerPolicy::kPruned : RankerPolicy::kHeap;
    const Status s =
        engine->RegisterQuery("q", GlobalDipQuery(k, desc), options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    metrics = engine->GetQuery("q").value()->metrics();
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["matches"] = static_cast<double>(metrics.matches);
  state.counters["runs_created"] =
      static_cast<double>(metrics.matcher.runs_created);
  state.counters["runs_pruned"] =
      static_cast<double>(metrics.matcher.runs_pruned_score);
  state.counters["prune_checks"] = static_cast<double>(metrics.prune_checks);
}

BENCHMARK(BM_Pruning)
    ->ArgsProduct({{0, 1}, {1, 5, 25}, {0, 1}})
    ->ArgNames({"pruned", "k", "desc"})
    ->Unit(benchmark::kMillisecond);

// Density sweep at the sweet spot (tight bound, k=1).
void BM_PruningVsDensity(benchmark::State& state) {
  const bool pruned = state.range(0) != 0;
  const double density = static_cast<double>(state.range(1)) / 1000.0;
  const auto& events = StockStream(kEvents, density);
  QueryMetrics metrics;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = pruned ? RankerPolicy::kPruned : RankerPolicy::kHeap;
    const Status s = engine->RegisterQuery("q", GlobalDipQuery(1, false),
                                           options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    metrics = engine->GetQuery("q").value()->metrics();
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["runs_pruned"] =
      static_cast<double>(metrics.matcher.runs_pruned_score);
  state.counters["matches"] = static_cast<double>(metrics.matches);
}

BENCHMARK(BM_PruningVsDensity)
    ->ArgsProduct({{0, 1}, {5, 20, 50}})
    ->ArgNames({"pruned", "v_prob_x1000"})
    ->Unit(benchmark::kMillisecond);

// Disengagement overhead: an unboundable score (COUNT DESC) must make
// kPruned behave exactly like kHeap (no pruner is even constructed).
void BM_PruningDisengaged(benchmark::State& state) {
  const bool pruned = state.range(0) != 0;
  const auto& events = StockStream(kEvents, 0.02);
  const std::string query =
      "SELECT a.symbol FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN 100 MILLISECONDS "
      "RANK BY COUNT(b) DESC LIMIT 5 EMIT ON COMPLETE";
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = pruned ? RankerPolicy::kPruned : RankerPolicy::kHeap;
    const Status s = engine->RegisterQuery("q", query, options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
}

BENCHMARK(BM_PruningDisengaged)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("pruned")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
