// E6 — Active-run state vs. WITHIN span.
//
// Runs whose WITHIN has not elapsed stay live; this bench sweeps the span
// and reports the peak run population and the estimated resident bytes of
// the run state (the engine's dominant memory consumer).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 50000;

void BM_WindowSpan(benchmark::State& state) {
  const auto within_ms = static_cast<Timestamp>(state.range(0));
  const auto& events = StockStream(kEvents, 0.01);
  uint64_t peak_runs = 0;
  size_t peak_bytes = 0;
  uint64_t expired = 0;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kHeap;
    const Status s =
        engine->RegisterQuery("q", DipQuery(10, within_ms), options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    const RunningQuery* query = engine->GetQuery("q").value();
    peak_bytes = 0;
    size_t i = 0;
    for (const Event& e : events) {
      CEPR_CHECK(engine->Push(Event(e)).ok());
      if (++i % 1000 == 0) {
        peak_bytes = std::max(peak_bytes, query->MemoryEstimate());
      }
    }
    engine->Finish();
    const QueryMetrics m = query->metrics();
    peak_runs = m.matcher.peak_active_runs;
    expired = m.matcher.runs_expired;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["peak_runs"] = static_cast<double>(peak_runs);
  state.counters["peak_bytes"] = static_cast<double>(peak_bytes);
  state.counters["expired"] = static_cast<double>(expired);
}

BENCHMARK(BM_WindowSpan)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->ArgName("within_ms")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
