// E20 — Network ingest throughput vs. in-process Push.
//
// The same ranked dip query and stock stream, ingested four ways:
// in-process Push (the E1 baseline), in-process PushAll, over-the-wire
// single-event frames, and over-the-wire batched frames. Headline series:
// events/s per transport, with the result count as a cross-check that all
// four paths computed the same query. The gap between wire/batched and
// in-process PushAll is the protocol + loopback tax; the gap between
// wire/single and wire/batched is the per-frame round-trip tax.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 100000;
constexpr double kVProbability = 0.01;
constexpr size_t kWireBatch = 4096;

enum Mode : int64_t {
  kInProcessPush = 0,
  kInProcessPushAll = 1,
  kWireSingle = 2,
  kWireBatched = 3,
};

/// Schema-less copies for the wire, built once and reused across
/// iterations (the client re-encodes each send either way).
const std::vector<Event>& WireStream() {
  static std::vector<Event>* cache = nullptr;
  if (cache == nullptr) {
    cache = new std::vector<Event>();
    for (const Event& e : StockStream(kEvents, kVProbability)) {
      Event wire(SchemaPtr{}, e.timestamp(), e.values());
      wire.set_type_tag(e.type_tag());
      cache->push_back(std::move(wire));
    }
  }
  return *cache;
}

uint64_t RunInProcess(bool batched) {
  auto engine = StockEngine();
  QueryOptions options;
  options.ranker = RankerPolicy::kPruned;
  NullSink sink;
  const Status s = engine->RegisterQuery("q", DipQuery(10), options, &sink);
  CEPR_CHECK(s.ok()) << s.ToString();
  const auto& events = StockStream(kEvents, kVProbability);
  if (batched) {
    ReplayBatch(engine.get(), events);
  } else {
    Replay(engine.get(), events);
  }
  return engine->GetQuery("q").value()->metrics().results;
}

uint64_t RunOverWire(bool batched) {
  net::CeprServer server(net::ServerOptions{});
  Status s = server.Start();
  CEPR_CHECK(s.ok()) << s.ToString();
  s = server.Ddl(
      "CREATE STREAM Stock (symbol STRING, price FLOAT RANGE [1, 1000], "
      "volume INT RANGE [1, 10000])");
  CEPR_CHECK(s.ok()) << s.ToString();

  net::CeprClient client;
  s = client.Connect("127.0.0.1", server.port());
  CEPR_CHECK(s.ok()) << s.ToString();
  QueryOptions options;
  options.ranker = RankerPolicy::kPruned;
  s = client.Deploy("q", DipQuery(10), options);
  CEPR_CHECK(s.ok()) << s.ToString();
  auto binding = client.BindStream("Stock");
  CEPR_CHECK(binding.ok()) << binding.status().ToString();

  const std::vector<Event>& events = WireStream();
  if (batched) {
    for (size_t i = 0; i < events.size(); i += kWireBatch) {
      const size_t end = std::min(events.size(), i + kWireBatch);
      std::vector<Event> chunk(events.begin() + i, events.begin() + end);
      s = client.PushBatch(binding.value(), chunk);
      CEPR_CHECK(s.ok()) << s.ToString();
    }
  } else {
    for (const Event& e : events) {
      s = client.Push(binding.value(), e);
      CEPR_CHECK(s.ok()) << s.ToString();
    }
  }
  s = client.Finish();
  CEPR_CHECK(s.ok()) << s.ToString();
  const uint64_t results = client.results("q").size();
  client.Close();
  server.Stop();
  return results;
}

void BM_ServerIngest(benchmark::State& state) {
  const Mode mode = static_cast<Mode>(state.range(0));
  (void)StockStream(kEvents, kVProbability);  // pre-generate outside timing
  (void)WireStream();

  uint64_t results = 0;
  for (auto _ : state) {
    switch (mode) {
      case kInProcessPush:
        results = RunInProcess(/*batched=*/false);
        break;
      case kInProcessPushAll:
        results = RunInProcess(/*batched=*/true);
        break;
      case kWireSingle:
        results = RunOverWire(/*batched=*/false);
        break;
      case kWireBatched:
        results = RunOverWire(/*batched=*/true);
        break;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["results"] = static_cast<double>(results);
}

BENCHMARK(BM_ServerIngest)
    ->Arg(kInProcessPush)
    ->Arg(kInProcessPushAll)
    ->Arg(kWireSingle)
    ->Arg(kWireBatched)
    ->ArgNames({"mode"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
