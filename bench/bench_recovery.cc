// E18 — Durability cost: WAL append, checkpointing, and restore latency.
//
// Three measurements over the dip-and-recovery workload:
//  * BM_DurabilityIngest — ingest throughput as durability is layered on:
//    no durability (baseline), WAL journaling every arrival, and WAL plus
//    a full snapshot every N events. The acceptance bar is checkpointing
//    at the default interval (10k events) costing <= 10% events/s against
//    the WAL-off baseline.
//  * BM_CheckpointWrite — the cost of one snapshot as the amount of live
//    state grows (more events in flight = more runs, windows and heap
//    entries to serialize). Counters report the snapshot size.
//  * BM_Restore — cold-start recovery latency: load a mid-stream snapshot
//    and replay the WAL tail past the cut. Swept over the tail length to
//    separate the fixed snapshot-load cost from the per-record replay
//    cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 100000;

// Files live in /tmp; each run overwrites its own.
const char kWalPath[] = "/tmp/cepr_bench_recovery.wal";
const char kSnapPath[] = "/tmp/cepr_bench_recovery.ckpt";

std::unique_ptr<Engine> FreshEngine(CollectSink* sink) {
  auto engine = StockEngine();
  const Status s = engine->RegisterQuery("q", DipQuery(10), QueryOptions{}, sink);
  CEPR_CHECK(s.ok()) << s.ToString();
  return engine;
}

// args: {mode, ckpt_interval}; mode 0 = no durability, 1 = WAL only,
// 2 = WAL + checkpoint every ckpt_interval events.
void BM_DurabilityIngest(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const size_t interval = static_cast<size_t>(state.range(1));
  const std::vector<Event>& events = StockStream(kEvents, 0.02);

  DurabilityStats stats;
  for (auto _ : state) {
    std::remove(kWalPath);
    CollectSink sink;
    auto engine = FreshEngine(&sink);
    if (mode >= 1) {
      const Status s = engine->OpenWal(kWalPath);
      CEPR_CHECK(s.ok()) << s.ToString();
    }
    size_t since_ckpt = 0;
    for (const Event& e : events) {
      const Status s = engine->Push(Event(e));
      CEPR_CHECK(s.ok()) << s.ToString();
      if (mode == 2 && ++since_ckpt >= interval) {
        since_ckpt = 0;
        const Status c = engine->Checkpoint(kSnapPath);
        CEPR_CHECK(c.ok()) << c.ToString();
      }
    }
    engine->Finish();
    stats = engine->Snapshot().durability;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["ckpts"] = static_cast<double>(stats.checkpoints_written);
  state.counters["ckpt_bytes"] = static_cast<double>(stats.checkpoint_bytes);
  state.counters["wal_records"] =
      static_cast<double>(stats.wal_records_appended);
}

// args: {events_before_ckpt}; measures one Checkpoint() call against the
// state accumulated by that many events.
void BM_CheckpointWrite(benchmark::State& state) {
  const size_t prefix = static_cast<size_t>(state.range(0));
  const std::vector<Event>& events = StockStream(kEvents, 0.02);
  CollectSink sink;
  auto engine = FreshEngine(&sink);
  for (size_t i = 0; i < prefix && i < events.size(); ++i) {
    const Status s = engine->Push(Event(events[i]));
    CEPR_CHECK(s.ok()) << s.ToString();
  }

  for (auto _ : state) {
    const Status s = engine->Checkpoint(kSnapPath);
    CEPR_CHECK(s.ok()) << s.ToString();
  }
  state.counters["snap_bytes"] =
      static_cast<double>(engine->Snapshot().durability.checkpoint_bytes);
}

// args: {wal_tail}; checkpoint is cut at kEvents/2 and the WAL carries
// `wal_tail` records past it — the replay work Restore must redo.
void BM_Restore(benchmark::State& state) {
  const size_t tail = static_cast<size_t>(state.range(0));
  const size_t cut = kEvents / 2;
  const std::vector<Event>& events = StockStream(kEvents, 0.02);
  CEPR_CHECK(cut + tail <= events.size());

  // Build the durable state once: WAL from the start, snapshot at the cut,
  // then `tail` more journaled events.
  std::remove(kWalPath);
  std::remove(kSnapPath);
  {
    CollectSink sink;
    auto engine = FreshEngine(&sink);
    Status s = engine->OpenWal(kWalPath);
    CEPR_CHECK(s.ok()) << s.ToString();
    for (size_t i = 0; i < cut; ++i) {
      s = engine->Push(Event(events[i]));
      CEPR_CHECK(s.ok()) << s.ToString();
    }
    const Status c = engine->Checkpoint(kSnapPath);
    CEPR_CHECK(c.ok()) << c.ToString();
    for (size_t i = cut; i < cut + tail; ++i) {
      s = engine->Push(Event(events[i]));
      CEPR_CHECK(s.ok()) << s.ToString();
    }
    // Engine dropped without Finish — the crash this bench recovers from.
  }

  DurabilityStats stats;
  for (auto _ : state) {
    CollectSink sink;
    Engine engine;
    const Status s = engine.Restore(
        kSnapPath, kWalPath, [&sink](const std::string&) { return &sink; });
    CEPR_CHECK(s.ok()) << s.ToString();
    stats = engine.Snapshot().durability;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tail) * state.iterations());
  state.counters["replayed"] =
      static_cast<double>(stats.recovery_events_replayed);
}

void DurabilityArgs(benchmark::internal::Benchmark* b) {
  b->ArgNames({"mode", "ckpt_every"});
  b->Args({0, 0});        // baseline: no durability
  b->Args({1, 0});        // WAL journaling only
  b->Args({2, 10000});    // WAL + checkpoint at the default interval
  b->Args({2, 2000});     // aggressive checkpointing
}

BENCHMARK(BM_DurabilityIngest)
    ->Apply(DurabilityArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointWrite)
    ->ArgName("events")
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Restore)
    ->ArgName("wal_tail")
    ->Arg(0)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
