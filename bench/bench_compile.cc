// E9 — Query registration cost (lex + parse + analyze + compile).
//
// The demo registers queries interactively; compilation must be
// microsecond-scale. Sweeps the number of pattern components (which also
// grows the WHERE clause linearly).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "lang/parser.h"
#include "plan/compiler.h"

namespace cepr {
namespace bench {
namespace {

std::string GeneratedQuery(int components) {
  std::string q = "SELECT v0.price FROM Stock MATCH PATTERN SEQ(";
  for (int i = 0; i < components; ++i) {
    if (i > 0) q += ", ";
    q += "v" + std::to_string(i);
    if (i == components / 2) q += "+";  // one Kleene in the middle
  }
  q += ") PARTITION BY symbol WHERE v0.price > 10";
  for (int i = 1; i < components; ++i) {
    const std::string var = "v" + std::to_string(i);
    if (i == components / 2) {
      q += " AND " + var + "[i].price < " + var + "[i-1].price";
    } else if (i == components / 2 + 1) {
      q += " AND " + var + ".price > MIN(v" + std::to_string(components / 2) +
           ".price)";
    } else {
      q += " AND " + var + ".price > v" + std::to_string(i - 1) + ".price";
    }
  }
  q += " WITHIN 10 SECONDS RANK BY v0.price DESC LIMIT 5 EMIT ON WINDOW CLOSE";
  return q;
}

void BM_ParseOnly(benchmark::State& state) {
  const std::string text = GeneratedQuery(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto ast = ParseQuery(text);
    CEPR_CHECK(ast.ok()) << ast.status().ToString();
    benchmark::DoNotOptimize(ast);
  }
  state.counters["query_bytes"] = static_cast<double>(text.size());
}

BENCHMARK(BM_ParseOnly)->Arg(3)->Arg(5)->Arg(8)->ArgName("components");

void BM_FullCompile(benchmark::State& state) {
  const std::string text = GeneratedQuery(static_cast<int>(state.range(0)));
  const SchemaPtr schema = StockGenerator::MakeSchema();
  for (auto _ : state) {
    auto plan = CompileQueryText(text, schema);
    CEPR_CHECK(plan.ok()) << plan.status().ToString();
    benchmark::DoNotOptimize(plan);
  }
  state.counters["query_bytes"] = static_cast<double>(text.size());
}

BENCHMARK(BM_FullCompile)->Arg(3)->Arg(5)->Arg(8)->ArgName("components");

void BM_CompileHundredDistinctQueries(benchmark::State& state) {
  const SchemaPtr schema = StockGenerator::MakeSchema();
  std::vector<std::string> texts;
  for (int i = 0; i < 100; ++i) {
    texts.push_back(DipQuery(1 + i % 20, 10 + i));
  }
  for (auto _ : state) {
    for (const std::string& text : texts) {
      auto plan = CompileQueryText(text, schema);
      CEPR_CHECK(plan.ok()) << plan.status().ToString();
      benchmark::DoNotOptimize(plan);
    }
  }
  state.SetItemsProcessed(100 * state.iterations());
}

BENCHMARK(BM_CompileHundredDistinctQueries)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
