#ifndef CEPR_BENCH_BENCH_UTIL_H_
#define CEPR_BENCH_BENCH_UTIL_H_

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "runtime/engine.h"
#include "workload/stock.h"

namespace cepr {
namespace bench {

/// Shared benchmark entry point with two convenience flags on top of the
/// google-benchmark set: `--quick` (short min-time per benchmark, for CI
/// smoke runs) and `--json` (machine-readable output for artifacts).
/// Everything else is forwarded to the library untouched.
inline int BenchMain(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> translated;
  translated.reserve(args.size() + 2);
  translated.push_back(args.empty() ? "bench" : args[0]);
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--quick") {
      translated.push_back("--benchmark_min_time=0.05");
    } else if (args[i] == "--json") {
      translated.push_back("--benchmark_format=json");
    } else {
      translated.push_back(args[i]);
    }
  }
  std::vector<char*> cargs;
  cargs.reserve(translated.size());
  for (std::string& arg : translated) cargs.push_back(arg.data());
  int cargc = static_cast<int>(cargs.size());
  ::benchmark::Initialize(&cargc, cargs.data());
  if (::benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

/// Drop-in replacement for BENCHMARK_MAIN() that routes through BenchMain.
#define CEPR_BENCH_MAIN()                                            \
  int main(int argc, char** argv) {                                  \
    return ::cepr::bench::BenchMain(argc, argv);                     \
  }                                                                  \
  static_assert(true, "require a trailing semicolon")

/// The canonical CEPR evaluation query: dip-and-recovery over Stock,
/// ranked by relative dip depth.
inline std::string DipQuery(int limit, Timestamp within_ms = 100,
                            const std::string& strategy = "SKIP_TILL_NEXT_MATCH",
                            const std::string& emit = "EMIT ON WINDOW CLOSE") {
  std::string q =
      "SELECT a.symbol, a.price, MIN(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "USING " + strategy + " " +
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN " + std::to_string(within_ms) + " MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price DESC ";
  if (limit >= 0) q += "LIMIT " + std::to_string(limit) + " ";
  q += emit;
  return q;
}

/// Unranked variant (pure detection).
inline std::string DetectQuery(Timestamp within_ms = 100) {
  return "SELECT a.symbol, a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
         "PARTITION BY symbol "
         "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
         "  AND c.price > a.price "
         "WITHIN " + std::to_string(within_ms) + " MILLISECONDS";
}

/// Pre-generates a deterministic stock stream shared across benchmark
/// repetitions (events are copied into each run).
inline const std::vector<Event>& StockStream(size_t n, double v_probability,
                                             int num_symbols = 10) {
  static std::vector<Event>* cache = nullptr;
  static size_t cache_n = 0;
  static double cache_p = -1;
  static int cache_s = 0;
  if (cache == nullptr || cache_n != n || cache_p != v_probability ||
      cache_s != num_symbols) {
    StockOptions options;
    options.num_symbols = num_symbols;
    options.v_probability = v_probability;
    StockGenerator gen(options);
    delete cache;
    cache = new std::vector<Event>(gen.Take(n));
    cache_n = n;
    cache_p = v_probability;
    cache_s = num_symbols;
  }
  return *cache;
}

/// Builds an engine with the Stock schema registered.
inline std::unique_ptr<Engine> StockEngine() {
  auto engine = std::make_unique<Engine>();
  const Status s = engine->RegisterSchema(StockGenerator::MakeSchema());
  CEPR_CHECK(s.ok()) << s.ToString();
  return engine;
}

/// Pushes a copy of `events` through `engine`, finishing at the end.
inline void Replay(Engine* engine, const std::vector<Event>& events) {
  for (const Event& e : events) {
    const Status s = engine->Push(Event(e));
    CEPR_CHECK(s.ok()) << s.ToString();
  }
  engine->Finish();
}

/// Replay through PushAll: same-stream runs flow through the batched
/// columnar ingest path (EngineOptions::batch_ingest) instead of per-event
/// Push.
inline void ReplayBatch(Engine* engine, const std::vector<Event>& events) {
  const Status s = engine->PushAll(std::vector<Event>(events));
  CEPR_CHECK(s.ok()) << s.ToString();
  engine->Finish();
}

}  // namespace bench
}  // namespace cepr

#endif  // CEPR_BENCH_BENCH_UTIL_H_
