#ifndef CEPR_BENCH_BENCH_UTIL_H_
#define CEPR_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "runtime/engine.h"
#include "workload/stock.h"

namespace cepr {
namespace bench {

/// The canonical CEPR evaluation query: dip-and-recovery over Stock,
/// ranked by relative dip depth.
inline std::string DipQuery(int limit, Timestamp within_ms = 100,
                            const std::string& strategy = "SKIP_TILL_NEXT_MATCH",
                            const std::string& emit = "EMIT ON WINDOW CLOSE") {
  std::string q =
      "SELECT a.symbol, a.price, MIN(b.price), c.price "
      "FROM Stock MATCH PATTERN SEQ(a, b+, c) "
      "USING " + strategy + " " +
      "PARTITION BY symbol "
      "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
      "  AND c.price > a.price "
      "WITHIN " + std::to_string(within_ms) + " MILLISECONDS "
      "RANK BY (a.price - MIN(b.price)) / a.price DESC ";
  if (limit >= 0) q += "LIMIT " + std::to_string(limit) + " ";
  q += emit;
  return q;
}

/// Unranked variant (pure detection).
inline std::string DetectQuery(Timestamp within_ms = 100) {
  return "SELECT a.symbol, a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
         "PARTITION BY symbol "
         "WHERE b[i].price < b[i-1].price AND b[1].price < a.price "
         "  AND c.price > a.price "
         "WITHIN " + std::to_string(within_ms) + " MILLISECONDS";
}

/// Pre-generates a deterministic stock stream shared across benchmark
/// repetitions (events are copied into each run).
inline const std::vector<Event>& StockStream(size_t n, double v_probability,
                                             int num_symbols = 10) {
  static std::vector<Event>* cache = nullptr;
  static size_t cache_n = 0;
  static double cache_p = -1;
  static int cache_s = 0;
  if (cache == nullptr || cache_n != n || cache_p != v_probability ||
      cache_s != num_symbols) {
    StockOptions options;
    options.num_symbols = num_symbols;
    options.v_probability = v_probability;
    StockGenerator gen(options);
    delete cache;
    cache = new std::vector<Event>(gen.Take(n));
    cache_n = n;
    cache_p = v_probability;
    cache_s = num_symbols;
  }
  return *cache;
}

/// Builds an engine with the Stock schema registered.
inline std::unique_ptr<Engine> StockEngine() {
  auto engine = std::make_unique<Engine>();
  const Status s = engine->RegisterSchema(StockGenerator::MakeSchema());
  CEPR_CHECK(s.ok()) << s.ToString();
  return engine;
}

/// Pushes a copy of `events` through `engine`, finishing at the end.
inline void Replay(Engine* engine, const std::vector<Event>& events) {
  for (const Event& e : events) {
    const Status s = engine->Push(Event(e));
    CEPR_CHECK(s.ok()) << s.ToString();
  }
  engine->Finish();
}

}  // namespace bench
}  // namespace cepr

#endif  // CEPR_BENCH_BENCH_UTIL_H_
