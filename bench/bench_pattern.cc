// E4 — Scaling with pattern length and Kleene closure.
//
// Chains SEQ(v1, ..., vn) with a per-step "next price higher" predicate for
// n in 2..6, plus a Kleene variant, over the same stream. Longer patterns
// keep more live runs per event.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 100000;

// SEQ(v0, ..., v{n-1}) where each step's price must exceed the previous
// step's, anchored by v0.price < 100 (~half of the stream).
std::string ChainQuery(int n) {
  std::string q = "SELECT v0.price FROM Stock MATCH PATTERN SEQ(";
  for (int i = 0; i < n; ++i) {
    if (i > 0) q += ", ";
    q += "v" + std::to_string(i);
  }
  q += ") PARTITION BY symbol WHERE v0.price < 100";
  for (int i = 1; i < n; ++i) {
    q += " AND v" + std::to_string(i) + ".price > v" + std::to_string(i - 1) +
         ".price";
  }
  q += " WITHIN 50 MILLISECONDS";
  return q;
}

void BM_PatternLength(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto& events = StockStream(kEvents, 0.0);
  uint64_t matches = 0;
  uint64_t peak_runs = 0;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kPassthrough;
    const Status s = engine->RegisterQuery("q", ChainQuery(n), options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    const QueryMetrics m = engine->GetQuery("q").value()->metrics();
    matches = m.matches;
    peak_runs = m.matcher.peak_active_runs;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["matches"] = static_cast<double>(matches);
  state.counters["peak_runs"] = static_cast<double>(peak_runs);
}

BENCHMARK(BM_PatternLength)
    ->DenseRange(2, 6)
    ->ArgName("components")
    ->Unit(benchmark::kMillisecond);

// Kleene variant: SEQ(a, b+, c) with iteration predicates, vs. the length-3
// chain above — the cost of per-iteration evaluation and longer run lives.
void BM_KleeneVsChain(benchmark::State& state) {
  const bool kleene = state.range(0) != 0;
  const auto& events = StockStream(kEvents, 0.01);
  const std::string query = kleene ? DetectQuery(50) : ChainQuery(3);
  uint64_t matches = 0;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kPassthrough;
    const Status s = engine->RegisterQuery("q", query, options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    matches = engine->GetQuery("q").value()->metrics().matches;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["matches"] = static_cast<double>(matches);
}

BENCHMARK(BM_KleeneVsChain)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("kleene")
    ->Unit(benchmark::kMillisecond);

// Negation watcher cost: the same chain with and without an interposed
// negated component.
void BM_NegationCost(benchmark::State& state) {
  const bool negated = state.range(0) != 0;
  const auto& events = StockStream(kEvents, 0.0);
  std::string query =
      "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, ";
  query += negated ? "!n, " : "";
  query += "c) PARTITION BY symbol WHERE a.price < 100 AND c.price > a.price";
  if (negated) query += " AND n.price > a.price * 2";
  query += " WITHIN 50 MILLISECONDS";
  uint64_t matches = 0;
  for (auto _ : state) {
    auto engine = StockEngine();
    NullSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kPassthrough;
    const Status s = engine->RegisterQuery("q", query, options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    Replay(engine.get(), events);
    matches = engine->GetQuery("q").value()->metrics().matches;
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["matches"] = static_cast<double>(matches);
}

BENCHMARK(BM_NegationCost)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("negated")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
