// E11 — Sharded-engine scaling: per-partition worker threads vs. the
// serial engine.
//
// The E1 workload (stock stream, ranked dip query partitioned by symbol,
// EMIT ON WINDOW CLOSE) replayed through the serial Engine (arg 0) and
// through ShardedEngine at 1/2/4/8 shards. The headline series: events/s
// per shard count. Output equivalence between the two engines is asserted
// by tests/integration/sharded_equivalence_test.cc, so this binary only
// measures.
//
// Scaling expectation: near-linear up to the machine's core count for
// partition-rich streams (10 symbols here), then flat; a single-core host
// shows queue overhead instead of speedup (see docs/BENCHMARKS.md §E11).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "runtime/sharded_engine.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 200000;
constexpr double kVProbability = 0.01;

void BM_ParallelScaling(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  const auto& events = StockStream(kEvents, kVProbability);
  const std::string query = DipQuery(/*limit=*/10);

  uint64_t results = 0;
  uint64_t stalls = 0;
  uint64_t high_water = 0;
  for (auto _ : state) {
    if (num_shards == 0) {
      // Serial baseline.
      auto engine = StockEngine();
      NullSink sink;
      QueryOptions options;
      options.ranker = RankerPolicy::kPruned;
      const Status s = engine->RegisterQuery("q", query, options, &sink);
      CEPR_CHECK(s.ok()) << s.ToString();
      Replay(engine.get(), events);
      results = engine->GetQuery("q").value()->metrics().results;
    } else {
      ShardedEngineOptions engine_options;
      engine_options.num_shards = num_shards;
      ShardedEngine engine(engine_options);
      Status s = engine.RegisterSchema(StockGenerator::MakeSchema());
      CEPR_CHECK(s.ok()) << s.ToString();
      NullSink sink;
      QueryOptions options;
      options.ranker = RankerPolicy::kPruned;
      s = engine.RegisterQuery("q", query, options, &sink);
      CEPR_CHECK(s.ok()) << s.ToString();
      for (const Event& e : events) {
        s = engine.Push(Event(e));
        CEPR_CHECK(s.ok()) << s.ToString();
      }
      engine.Finish();
      results = engine.GetQueryMetrics("q").value().results;
      stalls = 0;
      high_water = 0;
      for (const ShardStats& shard : engine.shard_stats()) {
        stalls += shard.enqueue_stalls;
        high_water = std::max<uint64_t>(high_water, shard.queue_high_water);
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["results"] = static_cast<double>(results);
  state.counters["enqueue_stalls"] = static_cast<double>(stalls);
  state.counters["queue_high_water"] = static_cast<double>(high_water);
}

BENCHMARK(BM_ParallelScaling)
    ->Arg(0)  // serial Engine baseline
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("shards(0=serial)")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Shard-count sweep on a partition-rich stream (64 symbols): how routing
// spread affects balance when partitions outnumber shards comfortably.
void BM_ParallelManyPartitions(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  const auto& events = StockStream(kEvents, kVProbability, /*num_symbols=*/64);
  const std::string query = DipQuery(/*limit=*/10);

  for (auto _ : state) {
    ShardedEngineOptions engine_options;
    engine_options.num_shards = num_shards;
    ShardedEngine engine(engine_options);
    Status s = engine.RegisterSchema(StockGenerator::MakeSchema());
    CEPR_CHECK(s.ok()) << s.ToString();
    NullSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kPruned;
    s = engine.RegisterQuery("q", query, options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();
    for (const Event& e : events) {
      s = engine.Push(Event(e));
      CEPR_CHECK(s.ok()) << s.ToString();
    }
    engine.Finish();
    // Imbalance: max shard events / mean shard events (1.0 = perfect).
    uint64_t total = 0;
    uint64_t worst = 0;
    for (const ShardStats& shard : engine.shard_stats()) {
      total += shard.events;
      worst = std::max(worst, shard.events);
    }
    if (total > 0) {
      state.counters["imbalance"] =
          static_cast<double>(worst) * static_cast<double>(num_shards) /
          static_cast<double>(total);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
}

BENCHMARK(BM_ParallelManyPartitions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("shards")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// E12 — Monitoring overhead: the E11 4-shard run with a monitor thread
// polling Snapshot() at the given frequency (poll_hz; 0 = no monitor —
// the baseline the others are read against). Quantifies the cost of the
// live-metrics contract: relaxed counters are free, so any delta comes
// from the per-shard histogram mutexes the snapshot path takes.
void BM_ParallelSnapshotOverhead(benchmark::State& state) {
  const int poll_hz = static_cast<int>(state.range(0));
  const auto& events = StockStream(kEvents, kVProbability);
  const std::string query = DipQuery(/*limit=*/10);

  uint64_t polls = 0;
  for (auto _ : state) {
    ShardedEngineOptions engine_options;
    engine_options.num_shards = 4;
    ShardedEngine engine(engine_options);
    Status s = engine.RegisterSchema(StockGenerator::MakeSchema());
    CEPR_CHECK(s.ok()) << s.ToString();
    NullSink sink;
    QueryOptions options;
    options.ranker = RankerPolicy::kPruned;
    s = engine.RegisterQuery("q", query, options, &sink);
    CEPR_CHECK(s.ok()) << s.ToString();

    std::atomic<bool> done{false};
    std::thread monitor;
    if (poll_hz > 0) {
      monitor = std::thread([&] {
        const auto period = std::chrono::microseconds(1000000 / poll_hz);
        while (!done.load(std::memory_order_acquire)) {
          benchmark::DoNotOptimize(engine.Snapshot());
          ++polls;
          std::this_thread::sleep_for(period);
        }
      });
    }
    for (const Event& e : events) {
      s = engine.Push(Event(e));
      CEPR_CHECK(s.ok()) << s.ToString();
    }
    engine.Finish();
    done.store(true, std::memory_order_release);
    if (monitor.joinable()) monitor.join();
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());
  state.counters["polls"] = static_cast<double>(polls);
}

BENCHMARK(BM_ParallelSnapshotOverhead)
    ->Arg(0)  // no monitor thread
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->ArgName("poll_hz")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
