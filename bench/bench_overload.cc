// E13 — Overload protection: run budgets and load shedding.
//
// An adversarial single-partition stream drives the live-run population
// well past any sane budget: every event opens a run, the Kleene body
// absorbs ~99% of events, and runs only complete at rare high-volume
// marker events (volume > 9900, ~1%), so dozens of runs are live at any
// instant. Sweeping the per-partition cap across the three shed policies
// measures the two sides of the trade:
//  * throughput — shedding bounds matcher state as the budget tightens;
//  * result quality — top-k recall against the unbounded baseline.
// RANK BY a.price gives every run a point score bound at creation, and
// completion (the volume marker) is independent of that score — the
// regime where keeping the strongest bounds (kShedLowestScoreBound) is
// the optimal policy, and the ranking-blind kRejectNew / kShedOldest
// discard future top-k matches.

#include <benchmark/benchmark.h>

#include <set>
#include <tuple>

#include "bench_util.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kEvents = 100000;
constexpr int kLimit = 10;

std::string OverloadQuery() {
  return "SELECT a.symbol, a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
         "PARTITION BY symbol "
         "WHERE b[i].volume <= 9900 AND c.volume > 9900 "
         "WITHIN 100 MILLISECONDS "
         "RANK BY a.price DESC LIMIT " + std::to_string(kLimit) +
         " EMIT ON WINDOW CLOSE";
}

// Identity of one emitted result, stable across engine instances.
using ResultKey = std::tuple<int64_t, Timestamp, Timestamp, double>;

std::set<ResultKey> Keys(const std::vector<RankedResult>& results) {
  std::set<ResultKey> keys;
  for (const RankedResult& r : results) {
    keys.insert({r.window_id, r.match.first_ts, r.match.last_ts,
                 r.match.score});
  }
  return keys;
}

// The single-symbol stream concentrates every run in one partition, so
// max_runs_per_partition is the whole budget.
const std::vector<Event>& OverloadStream() {
  return StockStream(kEvents, 0.02, /*num_symbols=*/1);
}

std::vector<RankedResult> RunWithBudget(size_t budget, ShedPolicy policy,
                                        uint64_t* sheds) {
  EngineOptions engine_options;
  engine_options.max_runs_per_partition = budget;
  engine_options.shed_policy = policy;
  auto engine = std::make_unique<Engine>(engine_options);
  const Status s = engine->RegisterSchema(StockGenerator::MakeSchema());
  CEPR_CHECK(s.ok()) << s.ToString();
  CollectSink sink;
  const Status q =
      engine->RegisterQuery("q", OverloadQuery(), QueryOptions{}, &sink);
  CEPR_CHECK(q.ok()) << q.ToString();
  Replay(engine.get(), OverloadStream());
  if (sheds != nullptr) {
    *sheds = engine->GetQuery("q").value()->metrics().matcher
                 .runs_dropped_capacity;
  }
  return sink.results();
}

const std::set<ResultKey>& BaselineKeys() {
  static const std::set<ResultKey>* cache = new std::set<ResultKey>(
      Keys(RunWithBudget(0, ShedPolicy::kShedOldest, nullptr)));
  return *cache;
}

void BM_OverloadShed(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));  // 0 = unbounded
  const ShedPolicy policy = static_cast<ShedPolicy>(state.range(1));
  const std::set<ResultKey>& baseline = BaselineKeys();

  std::vector<RankedResult> results;
  uint64_t sheds = 0;
  for (auto _ : state) {
    results = RunWithBudget(budget, policy, &sheds);
  }
  state.SetItemsProcessed(static_cast<int64_t>(kEvents) * state.iterations());

  size_t hits = 0;
  for (const ResultKey& key : Keys(results)) {
    if (baseline.count(key) > 0) ++hits;
  }
  state.counters["recall"] =
      baseline.empty() ? 1.0
                       : static_cast<double>(hits) /
                             static_cast<double>(baseline.size());
  state.counters["sheds"] = static_cast<double>(sheds);
}

void OverloadArgs(benchmark::internal::Benchmark* b) {
  b->ArgNames({"budget", "policy"});
  b->Args({0, static_cast<int>(ShedPolicy::kShedOldest)});  // baseline
  for (int budget : {20, 40, 80, 160}) {
    for (ShedPolicy policy :
         {ShedPolicy::kRejectNew, ShedPolicy::kShedOldest,
          ShedPolicy::kShedLowestScoreBound}) {
      b->Args({budget, static_cast<int>(policy)});
    }
  }
}

BENCHMARK(BM_OverloadShed)->Apply(OverloadArgs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
