// E2 — Top-k maintenance cost vs. k.
//
// Isolates the ranking layer: a fixed pre-generated match stream is offered
// to each ranker policy with varying k. The incremental heap should scale
// ~log k per offer; naive-sort pays O(n log n) at window close regardless
// of k.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "rank/ranker.h"

namespace cepr {
namespace bench {
namespace {

constexpr size_t kMatches = 100000;

// Pre-generated scored matches (same for every configuration).
const std::vector<Match>& MatchStream() {
  static std::vector<Match>* cache = nullptr;
  if (cache == nullptr) {
    cache = new std::vector<Match>();
    Random rng(7);
    cache->reserve(kMatches);
    for (uint64_t i = 0; i < kMatches; ++i) {
      Match m;
      m.id = i;
      m.score = rng.UniformDouble(0.0, 1.0);
      cache->push_back(std::move(m));
    }
  }
  return *cache;
}

CompiledQueryPtr PlanWithLimit(int limit) {
  return CompileQueryText(DipQuery(limit, 100, "SKIP_TILL_NEXT_MATCH",
                                   "EMIT EVERY 1000000 EVENTS"),
                          StockGenerator::MakeSchema())
      .value();
}

void BM_TopKOffer(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool naive = state.range(1) != 0;
  const auto plan = PlanWithLimit(k);
  const auto& matches = MatchStream();

  for (auto _ : state) {
    Ranker ranker(plan, naive ? RankerPolicy::kNaiveSort : RankerPolicy::kHeap);
    std::vector<RankedResult> out;
    for (const Match& m : matches) {
      ranker.OnMatch(Match(m), 0, &out);
    }
    ranker.Finish(&out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kMatches) * state.iterations());
}

BENCHMARK(BM_TopKOffer)
    ->ArgsProduct({{1, 10, 100, 1000}, {0, 1}})
    ->ArgNames({"k", "naive"})
    ->Unit(benchmark::kMillisecond);

// Unlimited ranked emission: heap degenerates to keep-everything.
void BM_TopKUnlimited(benchmark::State& state) {
  const bool naive = state.range(0) != 0;
  const auto plan = PlanWithLimit(-1);
  const auto& matches = MatchStream();
  for (auto _ : state) {
    Ranker ranker(plan, naive ? RankerPolicy::kNaiveSort : RankerPolicy::kHeap);
    std::vector<RankedResult> out;
    for (const Match& m : matches) ranker.OnMatch(Match(m), 0, &out);
    ranker.Finish(&out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(kMatches) * state.iterations());
}

BENCHMARK(BM_TopKUnlimited)->Arg(0)->Arg(1)->ArgName("naive")->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace cepr

CEPR_BENCH_MAIN();
