#ifndef CEPR_COMMON_FAULT_H_
#define CEPR_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cepr {

/// What an engine does when a runtime fault surfaces mid-stream (an eval
/// error, a poison event, a bad CSV record): stop, or contain and count.
enum class FaultPolicy {
  /// Propagate the first error to the caller; the stream stops there.
  kFailFast,
  /// Quarantine the offending event/run/record, count it, keep flowing.
  kSkipAndCount,
};

/// Stable name ("FailFast" / "SkipAndCount") for logs and dumps.
const char* FaultPolicyToString(FaultPolicy policy);

/// Well-known fault-point names. A point name plus a deterministic key
/// (stream sequence number, CSV line, shard index) identifies one potential
/// fault site, so serial and sharded executions of the same stream see the
/// same fault schedule.
namespace fault_points {
/// Ingest found a shard's SPSC ring full (key: shard index).
inline constexpr const char kShardRingFull[] = "shard.ring_full";
/// Predicate evaluation faults on this event (key: stream sequence).
inline constexpr const char kEvalPoison[] = "eval.poison";
/// CSV record fails to parse (key: first physical line of the record).
inline constexpr const char kCsvBadRecord[] = "csv.bad_record";
/// A shard's consumer loop wedges, sleeping instead of draining its ring
/// (key: shard index). Releasable mid-run via Disarm().
inline constexpr const char kShardStall[] = "shard.stall";
/// Process dies mid-checkpoint: the temp file is left partially written and
/// never renamed over the live snapshot (key: checkpoint ordinal).
inline constexpr const char kCkptKillMidWrite[] = "ckpt.kill_mid_write";
/// Process dies mid-WAL-append: the journal ends in a torn partial frame
/// (key: WAL record ordinal).
inline constexpr const char kWalTornTail[] = "wal.torn_tail";
/// Process dies mid-recovery, after the snapshot loaded but with the WAL
/// only partially replayed (key: replayed-record ordinal).
inline constexpr const char kRestorePartialReplay[] = "restore.partial_replay";
/// Process dies during the snapshot publish step, before the rename and
/// its parent-directory fsync became durable: the fully written temp file
/// exists but the snapshot filename does not, so the previously published
/// snapshot (if any) is what recovery sees (key: checkpoint ordinal).
inline constexpr const char kFsyncParentDir[] = "fsync.parent_dir";
}  // namespace fault_points

/// Deterministic, seeded fault-injection harness. Engines and the CSV
/// reader consult an optional injector at named points; tests arm points
/// with either an explicit key list or a seeded per-key firing rate.
///
/// Determinism contract: whether ShouldFire(point, key) fires depends only
/// on (seed, point, armed configuration, key) — never on call order, thread
/// or wall clock. Feeding the same event stream through the serial and the
/// sharded engine therefore injects faults at exactly the same events.
///
/// Thread safety: ArmKeys/ArmRate mutate the point table and must finish
/// before the injector is handed to a running engine. ShouldFire and
/// fires() are safe from any thread afterwards, and Disarm/Rearm only flip
/// an atomic, so a test may release a wedged shard mid-run.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0);

  /// Arms `point` to fire exactly on the given keys.
  void ArmKeys(std::string_view point, std::vector<uint64_t> keys);

  /// Arms `point` to fire on each key independently with `probability`
  /// (derived from the seed; deterministic per key).
  void ArmRate(std::string_view point, double probability);

  /// Stops / resumes firing without forgetting the configuration.
  void Disarm(std::string_view point);
  void Rearm(std::string_view point);

  /// True iff `point` is armed and its configuration selects `key`. Counts
  /// the firing.
  bool ShouldFire(std::string_view point, uint64_t key) const;

  /// Times `point` has fired so far.
  uint64_t fires(std::string_view point) const;

 private:
  struct Point {
    std::atomic<bool> armed{true};
    std::vector<uint64_t> keys;  // sorted; used when !rate_based
    bool rate_based = false;
    double probability = 0.0;
    mutable std::atomic<uint64_t> fires{0};
  };

  Point* FindOrCreate(std::string_view point);
  const Point* Find(std::string_view point) const;

  uint64_t seed_;
  std::map<std::string, std::unique_ptr<Point>, std::less<>> points_;
};

}  // namespace cepr

#endif  // CEPR_COMMON_FAULT_H_
