#ifndef CEPR_COMMON_HISTOGRAM_H_
#define CEPR_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cepr {

class BinWriter;
class BinReader;

/// Fixed-memory histogram with exponentially sized buckets, used for latency
/// and size distributions in the metrics and benchmark layers. Records
/// non-negative integer values (e.g. nanoseconds); supports percentile
/// queries with bucket-interpolation.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to zero.
  void Record(int64_t value);

  /// Merges another histogram's observations into this one.
  void Merge(const Histogram& other);

  /// Removes all observations.
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double mean() const;
  /// Value at percentile p in [0, 100].
  double Percentile(double p) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string Summary() const;

  /// Compact JSON object with the same fields as Summary plus min, e.g.
  /// {"count":3,"mean":2.0,"p50":2.0,"p95":3.0,"p99":3.0,"min":1,"max":3}.
  std::string ToJson() const;

  /// Checkpoint serialization: full bucket-exact state (runtime/checkpoint.*).
  void Save(BinWriter* w) const;
  bool Load(BinReader* r);

 private:
  static constexpr int kNumBuckets = 64 * 4;  // 4 sub-buckets per power of two

  // Maps a value to its bucket index.
  static int BucketFor(int64_t value);
  // Lower bound of bucket i.
  static int64_t BucketLow(int i);
  // Upper bound (exclusive) of bucket i.
  static int64_t BucketHigh(int i);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace cepr

#endif  // CEPR_COMMON_HISTOGRAM_H_
