#ifndef CEPR_COMMON_LOGGING_H_
#define CEPR_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace cepr {

/// Log severity levels, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal {

/// Global minimum level below which messages are dropped. Default kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// One log statement in flight; flushes to stderr on destruction.
/// Fatal messages abort the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Converts a streamed LogMessage chain to void so it can sit in the
/// false-branch of CEPR_CHECK's ternary. operator& binds looser than <<.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal

/// Sets the process-wide minimum log level.
inline void SetLogLevel(LogLevel level) { internal::SetLogLevel(level); }

#define CEPR_LOG_INTERNAL(level)                                       \
  ::cepr::internal::LogMessage(level, __FILE__, __LINE__).stream()

/// Leveled logging: CEPR_LOG(INFO) << "msg";
#define CEPR_LOG(severity) CEPR_LOG_##severity
#define CEPR_LOG_DEBUG CEPR_LOG_INTERNAL(::cepr::LogLevel::kDebug)
#define CEPR_LOG_INFO CEPR_LOG_INTERNAL(::cepr::LogLevel::kInfo)
#define CEPR_LOG_WARNING CEPR_LOG_INTERNAL(::cepr::LogLevel::kWarning)
#define CEPR_LOG_ERROR CEPR_LOG_INTERNAL(::cepr::LogLevel::kError)
#define CEPR_LOG_FATAL CEPR_LOG_INTERNAL(::cepr::LogLevel::kFatal)

/// Fatal assertion used for internal invariants; always on. Supports
/// streaming extra context: CEPR_CHECK(x > 0) << "x was " << x;
#define CEPR_CHECK(cond)                                              \
  (cond) ? (void)0                                                    \
         : ::cepr::internal::LogMessageVoidify() &                    \
               ::cepr::internal::LogMessage(::cepr::LogLevel::kFatal, \
                                            __FILE__, __LINE__)       \
                       .stream()                                      \
                   << "Check failed: " #cond " "

#define CEPR_CHECK_EQ(a, b) CEPR_CHECK((a) == (b))
#define CEPR_CHECK_NE(a, b) CEPR_CHECK((a) != (b))
#define CEPR_CHECK_LT(a, b) CEPR_CHECK((a) < (b))
#define CEPR_CHECK_LE(a, b) CEPR_CHECK((a) <= (b))
#define CEPR_CHECK_GT(a, b) CEPR_CHECK((a) > (b))
#define CEPR_CHECK_GE(a, b) CEPR_CHECK((a) >= (b))

/// Debug-only assertion; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define CEPR_DCHECK(cond) \
  while (false) CEPR_CHECK(cond)
#else
#define CEPR_DCHECK(cond) CEPR_CHECK(cond)
#endif

}  // namespace cepr

#endif  // CEPR_COMMON_LOGGING_H_
