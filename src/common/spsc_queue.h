#ifndef CEPR_COMMON_SPSC_QUEUE_H_
#define CEPR_COMMON_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cepr {

/// Bounded lock-free single-producer / single-consumer ring buffer: the
/// ingest->shard channel of the sharded engine. Exactly one thread may call
/// TryPush and exactly one thread may call TryPop; either side may also
/// read size() (approximate under concurrency).
///
/// Capacity is rounded up to a power of two. A full queue rejects pushes
/// (the producer implements backpressure on top, see ShardedEngine); an
/// empty queue rejects pops.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the queue is full (item untouched).
  bool TryPush(T& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the queue is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy (exact only when both sides are quiescent).
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  /// Producer and consumer cursors on separate cache lines so the hot
  /// stores don't false-share.
  alignas(64) std::atomic<uint64_t> tail_{0};  // next slot to write
  alignas(64) std::atomic<uint64_t> head_{0};  // next slot to read
};

}  // namespace cepr

#endif  // CEPR_COMMON_SPSC_QUEUE_H_
