#ifndef CEPR_COMMON_STOPWATCH_H_
#define CEPR_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace cepr {

/// Monotonic wall-clock stopwatch used by metrics and benchmarks.
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Now(); }

  /// Nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - start_)
        .count();
  }

  /// Elapsed time in microseconds / milliseconds / seconds.
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  int64_t ElapsedMillis() const { return ElapsedNanos() / 1000000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static Clock::time_point Now() { return Clock::now(); }

  Clock::time_point start_;
};

}  // namespace cepr

#endif  // CEPR_COMMON_STOPWATCH_H_
