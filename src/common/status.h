#ifndef CEPR_COMMON_STATUS_H_
#define CEPR_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace cepr {

/// Error category for a Status. kOk means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // CEPR-QL text failed to lex/parse
  kTypeError,         // semantic analysis / type checking failure
  kNotFound,          // named stream / query / attribute missing
  kAlreadyExists,     // duplicate registration
  kOutOfRange,        // index or limit out of bounds
  kUnimplemented,     // feature not (yet) supported
  kInternal,          // invariant violation inside the engine
  kIoError,           // file / csv I/O failure
  kResourceExhausted, // a configured budget (runs, memory) is spent
  kUnavailable,       // a component is wedged / not responding (retryable)
  kCorrupt,           // a persisted file (checkpoint, WAL) failed validation
};

/// Returns a stable human-readable name ("ParseError" etc.) for a code.
const char* StatusCodeToString(StatusCode code);

/// Thread-safe strerror: formats `err` (an errno value) via strerror_r.
/// std::strerror may return a pointer into a shared static buffer, so
/// concurrent IO failures (shard threads, server sessions) can race on it;
/// every CEPR error path formats errno through this instead.
std::string ErrnoString(int err);

/// Result of an operation that can fail. CEPR does not use exceptions
/// (Google style); every fallible public API returns Status or Result<T>.
///
/// A Status is cheap to copy in the success case (no allocation) and carries
/// a message in the failure case. Typical use:
///
///   Status s = engine.RegisterStream(schema);
///   if (!s.ok()) { LOG(ERROR) << s.ToString(); return s; }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corrupt(std::string msg) {
    return Status(StatusCode::kCorrupt, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define CEPR_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::cepr::Status _cepr_status = (expr);         \
    if (!_cepr_status.ok()) return _cepr_status;  \
  } while (0)

}  // namespace cepr

#endif  // CEPR_COMMON_STATUS_H_
