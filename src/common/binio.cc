#include "common/binio.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>

namespace cepr {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open directory '" + dir +
                           "' for fsync: " + ErrnoString(errno));
  }
  if (::fsync(fd) != 0) {
    // Some filesystems refuse fsync on directories; that is not a caller
    // error, there is simply no directory durability to be had.
    if (errno != EINVAL && errno != EROFS) {
      const Status s = Status::IoError("fsync of directory '" + dir +
                                       "' failed: " + ErrnoString(errno));
      ::close(fd);
      return s;
    }
  }
  ::close(fd);
  return Status::OK();
}

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace cepr
