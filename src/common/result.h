#ifndef CEPR_COMMON_RESULT_H_
#define CEPR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cepr {

/// Value-or-error holder: either a T or a non-OK Status. The CEPR analogue
/// of absl::StatusOr / arrow::Result.
///
///   Result<QueryPlan> plan = Compile(text);
///   if (!plan.ok()) return plan.status();
///   Use(plan.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }
  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

/// Evaluates `rexpr` (a Result<T> expression); on failure returns its status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define CEPR_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  CEPR_ASSIGN_OR_RETURN_IMPL_(                            \
      CEPR_MACRO_CONCAT_(_cepr_result_, __LINE__), lhs, rexpr)

#define CEPR_MACRO_CONCAT_INNER_(x, y) x##y
#define CEPR_MACRO_CONCAT_(x, y) CEPR_MACRO_CONCAT_INNER_(x, y)

#define CEPR_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

}  // namespace cepr

#endif  // CEPR_COMMON_RESULT_H_
