#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/binio.h"

namespace cepr {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(int64_t value) {
  if (value < 4) return static_cast<int>(value);  // buckets 0..3 exact
  // bucket = 4 * floor(log2 v) + top-two-bits-below-msb offset
  const int msb = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  const int sub = static_cast<int>((static_cast<uint64_t>(value) >> (msb - 2)) & 3);
  const int idx = msb * 4 + sub;
  return std::min(idx, kNumBuckets - 1);
}

int64_t Histogram::BucketLow(int i) {
  if (i < 4) return i;
  const int msb = i / 4;
  const int sub = i % 4;
  return (int64_t{1} << msb) | (static_cast<int64_t>(sub) << (msb - 2));
}

int64_t Histogram::BucketHigh(int i) {
  if (i + 1 >= kNumBuckets) return BucketLow(i) * 2;
  return BucketLow(i + 1);
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

int64_t Histogram::min() const { return min_; }
int64_t Histogram::max() const { return max_; }

double Histogram::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0) return static_cast<double>(min_);
  if (p >= 100) return static_cast<double>(max_);
  const double target = p / 100.0 * static_cast<double>(count_);
  double cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      // Linear interpolation within the bucket.
      const double frac = (target - cumulative) / static_cast<double>(buckets_[i]);
      const double lo = static_cast<double>(std::max(BucketLow(i), min_));
      const double hi = static_cast<double>(std::min(BucketHigh(i), max_ + 1));
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return static_cast<double>(max_);
}

void Histogram::Save(BinWriter* w) const {
  w->U64(count_);
  w->I64(min_);
  w->I64(max_);
  w->F64(sum_);
  // Sparse bucket encoding: most histograms populate a handful of buckets.
  uint32_t nonzero = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] != 0) ++nonzero;
  }
  w->U32(nonzero);
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    w->U32(static_cast<uint32_t>(i));
    w->U64(buckets_[i]);
  }
}

bool Histogram::Load(BinReader* r) {
  Reset();
  uint32_t nonzero = 0;
  if (!r->U64(&count_) || !r->I64(&min_) || !r->I64(&max_) || !r->F64(&sum_) ||
      !r->U32(&nonzero)) {
    return false;
  }
  for (uint32_t j = 0; j < nonzero; ++j) {
    uint32_t idx = 0;
    uint64_t n = 0;
    if (!r->U32(&idx) || !r->U64(&n)) return false;
    if (idx >= static_cast<uint32_t>(kNumBuckets)) {
      r->Fail();
      return false;
    }
    buckets_[idx] = n;
  }
  return true;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " p50=" << Percentile(50)
     << " p95=" << Percentile(95) << " p99=" << Percentile(99) << " max=" << max_;
  return os.str();
}

std::string Histogram::ToJson() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"mean\":" << mean()
     << ",\"p50\":" << Percentile(50) << ",\"p95\":" << Percentile(95)
     << ",\"p99\":" << Percentile(99) << ",\"min\":" << min_
     << ",\"max\":" << max_ << "}";
  return os.str();
}

}  // namespace cepr
