#ifndef CEPR_COMMON_STRINGS_H_
#define CEPR_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace cepr {

/// Splits `s` on `sep`, keeping empty fields. Split("a,,b", ',') ->
/// {"a", "", "b"}. Splitting the empty string yields one empty field.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase / uppercase copies.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// True iff `s` begins with / ends with the given affix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Formats a double with minimal digits (trailing-zero trimmed, always at
/// least one decimal digit so it round-trips as FLOAT in CEPR-QL text).
std::string FormatDouble(double v);

}  // namespace cepr

#endif  // CEPR_COMMON_STRINGS_H_
