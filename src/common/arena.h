#ifndef CEPR_COMMON_ARENA_H_
#define CEPR_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace cepr {

/// Chunked fixed-size object pool with an intrusive freelist. New() returns
/// a constructed T from recycled or chunk storage; Delete() destroys it and
/// recycles the slot. Single-threaded by design (each matcher tree owns its
/// pool), which is what makes the freelist and the counters cheap.
///
/// Constructed with pooled=false the pool degrades to plain new/delete —
/// the ablation mode that isolates the arena's contribution from the
/// copy-on-write win (see docs/BENCHMARKS.md E14).
///
/// All objects must be Delete()d before the pool dies: the destructor only
/// reclaims raw chunk storage and never runs destructors of live objects.
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(bool pooled = true, size_t chunk_capacity = 1024)
      : pooled_(pooled), chunk_capacity_(chunk_capacity) {}

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  template <typename... Args>
  T* New(Args&&... args) {
    ++constructed_;
    if (!pooled_) return new T(std::forward<Args>(args)...);
    if (free_ == nullptr) Refill();
    Slot* slot = free_;
    free_ = slot->next_free;
    return new (slot->storage) T(std::forward<Args>(args)...);
  }

  void Delete(T* obj) {
    if (obj == nullptr) return;
    if (!pooled_) {
      delete obj;
      return;
    }
    obj->~T();
    Slot* slot = reinterpret_cast<Slot*>(obj);
    slot->next_free = free_;
    free_ = slot;
  }

  bool pooled() const { return pooled_; }

  /// Lifetime count of New() calls — the "objects allocated" metric. The
  /// count is mode-independent of where the storage came from, so it is
  /// comparable across pooled and passthrough configurations.
  uint64_t constructed() const { return constructed_; }

  /// Constructions since the previous call (single-threaded metrics
  /// attribution: the matcher consumes the delta at the end of each event).
  uint64_t TakeConstructedDelta() {
    const uint64_t delta = constructed_ - consumed_;
    consumed_ = constructed_;
    return delta;
  }

 private:
  union Slot {
    Slot* next_free;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  void Refill() {
    chunks_.push_back(std::make_unique<Slot[]>(chunk_capacity_));
    Slot* chunk = chunks_.back().get();
    for (size_t i = chunk_capacity_; i > 0; --i) {
      chunk[i - 1].next_free = free_;
      free_ = &chunk[i - 1];
    }
  }

  bool pooled_;
  size_t chunk_capacity_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  Slot* free_ = nullptr;
  uint64_t constructed_ = 0;
  uint64_t consumed_ = 0;
};

}  // namespace cepr

#endif  // CEPR_COMMON_ARENA_H_
