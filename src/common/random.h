#ifndef CEPR_COMMON_RANDOM_H_
#define CEPR_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace cepr {

/// Deterministic, fast PRNG (xoshiro256**). All CEPR workload generators use
/// this so that experiments are exactly reproducible from a seed.
class Random {
 public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Random(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Bernoulli trial with probability p of returning true.
  bool OneIn(double p);

 private:
  uint64_t state_[4];
  // Cached second Box-Muller sample.
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf-distributed sampler over {0, ..., n-1} with skew theta. theta = 0 is
/// uniform; larger theta concentrates probability on small ranks. Uses the
/// standard precomputed-CDF method with binary search: O(n) setup, O(log n)
/// per sample.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta, uint64_t seed = 42);

  /// Samples a rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
  Random rng_;
};

}  // namespace cepr

#endif  // CEPR_COMMON_RANDOM_H_
