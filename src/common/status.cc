#include "common/status.h"

#include <cstring>

namespace cepr {
namespace {

// strerror_r comes in two flavors: the XSI version returns int and fills
// the caller's buffer, the GNU version returns a char* that may point at a
// static string instead of the buffer. Overload resolution on the actual
// return type picks the right adapter at compile time.
inline const char* StrerrorAdapt(int rc, const char* buf) {
  return rc == 0 ? buf : "Unknown error";
}
inline const char* StrerrorAdapt(const char* msg, const char* /*buf*/) {
  return msg != nullptr ? msg : "Unknown error";
}

}  // namespace

std::string ErrnoString(int err) {
  char buf[256];
  buf[0] = '\0';
  return StrerrorAdapt(strerror_r(err, buf, sizeof(buf)), buf);
}

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorrupt:
      return "Corrupt";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cepr
