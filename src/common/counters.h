#ifndef CEPR_COMMON_COUNTERS_H_
#define CEPR_COMMON_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace cepr {

/// Single-writer counter that any thread may read without a data race.
///
/// The writer side uses plain load+store (no read-modify-write), which is
/// only correct under the engine's threading model: every counter has
/// exactly one designated writer thread (a shard thread, or the ingest
/// thread for the router-side counters). Readers see each counter
/// atomically but observe no ordering *between* counters — snapshots are
/// per-counter exact, cross-counter approximately consistent.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  /// Writer thread only.
  void Add(uint64_t n) {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Writer thread only: returns the pre-increment value (the engine's
  /// per-query ordinal allocator).
  uint64_t PostIncrement() {
    const uint64_t v = value_.load(std::memory_order_relaxed);
    value_.store(v + 1, std::memory_order_relaxed);
    return v;
  }

  /// Writer thread only: overwrites the value (checkpoint restore).
  void Store(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

  /// Any thread.
  uint64_t Load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Single-writer running maximum, readable from any thread.
class RelaxedMax {
 public:
  RelaxedMax() = default;
  RelaxedMax(const RelaxedMax&) = delete;
  RelaxedMax& operator=(const RelaxedMax&) = delete;

  /// Writer thread only.
  void Observe(uint64_t v) {
    if (v > value_.load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }

  /// Writer thread only: overwrites the value (checkpoint restore).
  void Store(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

  /// Any thread.
  uint64_t Load() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

}  // namespace cepr

#endif  // CEPR_COMMON_COUNTERS_H_
