#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cepr {

namespace {
// splitmix64, used to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  CEPR_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  CEPR_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Random::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform.
  double u1 = NextDouble();
  while (u1 <= 1e-12) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Random::OneIn(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  CEPR_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

uint64_t ZipfSampler::Next() {
  const double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace cepr
