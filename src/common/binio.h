#ifndef CEPR_COMMON_BINIO_H_
#define CEPR_COMMON_BINIO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace cepr {

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) over `size` bytes.
/// Used to frame every checkpoint section and WAL record, so torn or
/// bit-flipped files fail validation instead of deserializing garbage.
uint32_t Crc32(const void* data, size_t size);

/// Fsyncs the directory containing `path`. Creating a file (WAL O_CREAT)
/// or renaming one into place (snapshot publish) updates the *directory*,
/// and that update is not durable until the directory inode itself is
/// synced — a crash after an un-synced rename can lose the filename even
/// though the file's bytes were fsynced. POSIX allows fsync on a directory
/// fd opened O_RDONLY; filesystems that reject it (EINVAL) get a pass, as
/// there is nothing more we can do there.
Status FsyncParentDir(const std::string& path);

/// Little-endian append-only encoder for the checkpoint/WAL formats. All
/// multi-byte integers are written byte-by-byte, so the format is identical
/// across host endianness and free of alignment hazards.
class BinWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// Doubles travel as their IEEE-754 bit pattern — bit-identical recovery
  /// depends on never round-tripping scores through decimal text.
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void Raw(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a byte range. Failure is sticky: the first
/// out-of-bounds read marks the reader failed, every subsequent read returns
/// false/defaults, and `ToStatus()` reports the byte offset where decoding
/// ran off the rails. Callers may therefore decode a whole section and check
/// once at the end.
class BinReader {
 public:
  BinReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit BinReader(const std::string& s) : BinReader(s.data(), s.size()) {}

  bool U8(uint8_t* out) {
    if (!Need(1)) return false;
    *out = data_[pos_++];
    return true;
  }
  bool U32(uint32_t* out) {
    if (!Need(4)) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return true;
  }
  bool U64(uint64_t* out) {
    if (!Need(8)) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *out = v;
    return true;
  }
  bool I64(int64_t* out) {
    uint64_t v = 0;
    if (!U64(&v)) return false;
    *out = static_cast<int64_t>(v);
    return true;
  }
  bool F64(double* out) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(bits));
    return true;
  }
  bool Bool(bool* out) {
    uint8_t v = 0;
    if (!U8(&v)) return false;
    *out = v != 0;
    return true;
  }
  bool Str(std::string* out) {
    uint32_t len = 0;
    if (!U32(&len) || !Need(len)) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool ok() const { return !failed_; }
  bool AtEnd() const { return !failed_ && pos_ == size_; }
  size_t offset() const { return pos_; }
  size_t remaining() const { return failed_ ? 0 : size_ - pos_; }

  /// Marks the reader failed (semantic validation error at the current
  /// offset, e.g. an enum value out of range).
  void Fail() { failed_ = true; }

  /// OK while healthy; kCorrupt naming the context and byte offset after a
  /// bounds overrun or an explicit Fail().
  Status ToStatus(const std::string& context) const {
    if (!failed_) return Status::OK();
    return Status::Corrupt(context + ": truncated or malformed at byte offset " +
                           std::to_string(pos_));
  }

 private:
  bool Need(size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace cepr

#endif  // CEPR_COMMON_BINIO_H_
