#include "common/fault.h"

#include <algorithm>

namespace cepr {

namespace {

// splitmix64 finalizer: full-avalanche mixing of (seed, point, key) so
// rate-armed points fire on an arbitrary-looking but fully deterministic
// subset of keys.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashPointName(std::string_view point) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

const char* FaultPolicyToString(FaultPolicy policy) {
  switch (policy) {
    case FaultPolicy::kFailFast:
      return "FailFast";
    case FaultPolicy::kSkipAndCount:
      return "SkipAndCount";
  }
  return "Unknown";
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

FaultInjector::Point* FaultInjector::FindOrCreate(std::string_view point) {
  auto it = points_.find(point);
  if (it == points_.end()) {
    it = points_.emplace(std::string(point), std::make_unique<Point>()).first;
  }
  return it->second.get();
}

const FaultInjector::Point* FaultInjector::Find(std::string_view point) const {
  const auto it = points_.find(point);
  return it == points_.end() ? nullptr : it->second.get();
}

void FaultInjector::ArmKeys(std::string_view point, std::vector<uint64_t> keys) {
  Point* p = FindOrCreate(point);
  std::sort(keys.begin(), keys.end());
  p->keys = std::move(keys);
  p->rate_based = false;
  p->armed.store(true, std::memory_order_release);
}

void FaultInjector::ArmRate(std::string_view point, double probability) {
  Point* p = FindOrCreate(point);
  p->keys.clear();
  p->rate_based = true;
  p->probability = probability;
  p->armed.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(std::string_view point) {
  if (Point* p = FindOrCreate(point)) {
    p->armed.store(false, std::memory_order_release);
  }
}

void FaultInjector::Rearm(std::string_view point) {
  if (Point* p = FindOrCreate(point)) {
    p->armed.store(true, std::memory_order_release);
  }
}

bool FaultInjector::ShouldFire(std::string_view point, uint64_t key) const {
  const Point* p = Find(point);
  if (p == nullptr || !p->armed.load(std::memory_order_acquire)) return false;
  bool fire;
  if (p->rate_based) {
    const uint64_t h = Mix64(seed_ ^ Mix64(HashPointName(point)) ^ Mix64(key));
    // Map the hash to [0, 1); fire iff it lands under the probability.
    fire = static_cast<double>(h >> 11) * 0x1.0p-53 < p->probability;
  } else {
    fire = std::binary_search(p->keys.begin(), p->keys.end(), key);
  }
  if (fire) p->fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

uint64_t FaultInjector::fires(std::string_view point) const {
  const Point* p = Find(point);
  return p == nullptr ? 0 : p->fires.load(std::memory_order_relaxed);
}

}  // namespace cepr
