#include "plan/compiler.h"

#include "plan/signature.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "expr/fold.h"
#include "lang/parser.h"

namespace cepr {

namespace {

// Recursively splits top-level ANDs into conjuncts (moving subtrees out).
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr->kind == ExprKind::kBinary && expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(std::move(expr->children[0]), out);
    SplitConjuncts(std::move(expr->children[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

// Reference profile of one conjunct.
struct RefProfile {
  std::vector<int> vars;            // distinct referenced var indices
  std::vector<int> current_vars;    // vars referenced via v[i]
  std::vector<int> negated_vars;    // referenced vars that are negated
};

void Profile(const Expr& e, const BindingLayout& layout, RefProfile* p) {
  if (e.kind == ExprKind::kVarRef || e.kind == ExprKind::kIterRef ||
      e.kind == ExprKind::kAggregate) {
    if (std::find(p->vars.begin(), p->vars.end(), e.var_index) == p->vars.end()) {
      p->vars.push_back(e.var_index);
    }
    if (e.kind == ExprKind::kIterRef && e.iter_kind == IterKind::kCurrent) {
      p->current_vars.push_back(e.var_index);
    }
    if (layout.var(e.var_index).is_negated) {
      if (std::find(p->negated_vars.begin(), p->negated_vars.end(), e.var_index) ==
          p->negated_vars.end()) {
        p->negated_vars.push_back(e.var_index);
      }
    }
  }
  for (const auto& c : e.children) Profile(*c, layout, p);
}

bool UsesPrevOf(const Expr& e, int var_index) {
  return e.Any([var_index](const Expr& node) {
    return node.kind == ExprKind::kIterRef && node.iter_kind == IterKind::kPrev &&
           node.var_index == var_index;
  });
}

// Minimal EvalContext for static (compile-time) bound derivation: nothing
// is bound yet.
class EmptyEvalContext : public EvalContext {
 public:
  const Event* SingleEvent(int) const override { return nullptr; }
  const Event* KleeneFirst(int) const override { return nullptr; }
  const Event* KleeneLast(int) const override { return nullptr; }
  const Event* KleeneCurrent(int) const override { return nullptr; }
  int64_t KleeneCount(int) const override { return 0; }
  double AggValue(int) const override { return 0.0; }
};

// Static BoundEnv: every variable open, ranges from the schema.
class StaticBoundEnv : public BoundEnv {
 public:
  explicit StaticBoundEnv(const std::vector<Interval>* ranges) : ranges_(ranges) {}

  Interval AttrRange(int attr_index) const override {
    if (attr_index < 0 || attr_index >= static_cast<int>(ranges_->size())) {
      return Interval::Whole();
    }
    return (*ranges_)[static_cast<size_t>(attr_index)];
  }
  bool IsClosed(int) const override { return false; }
  const EvalContext& Context() const override { return ctx_; }

 private:
  const std::vector<Interval>* ranges_;
  EmptyEvalContext ctx_;
};

}  // namespace

Result<CompiledQueryPtr> Compile(AnalyzedQuery analyzed) {
  auto cq = std::make_shared<CompiledQuery>();
  const BindingLayout& layout = analyzed.layout;

  // -- Build positive components + variable positions -----------------------
  CompiledPattern& pattern = cq->pattern;
  pattern.position_of_var.assign(layout.num_vars(), -1);
  // Negated var -> index of the positive component it precedes.
  std::vector<int> negation_target(layout.num_vars(), -1);

  for (size_t i = 0; i < layout.num_vars(); ++i) {
    const PatternVar& var = layout.var(static_cast<int>(i));
    const PatternComponentAst& ast_comp = analyzed.ast.pattern[i];
    if (var.is_negated) {
      // The analyzer guarantees a positive component follows.
      continue;
    }
    CompiledComponent comp;
    comp.var_index = static_cast<int>(i);
    comp.is_kleene = var.is_kleene;
    comp.is_optional = ast_comp.optional;
    comp.min_iters = ast_comp.min_iters;
    comp.max_iters = ast_comp.max_iters;
    comp.type_tag = var.type_tag;
    pattern.position_of_var[i] = static_cast<int>(pattern.components.size());
    pattern.components.push_back(std::move(comp));
  }
  // Attach negation watchers and record their anchor positions.
  for (size_t i = 0; i < layout.num_vars(); ++i) {
    const PatternVar& var = layout.var(static_cast<int>(i));
    if (!var.is_negated) continue;
    // The next positive variable's component hosts the watcher.
    int next_pos = -1;
    for (size_t j = i + 1; j < layout.num_vars(); ++j) {
      if (pattern.position_of_var[j] >= 0) {
        next_pos = pattern.position_of_var[j];
        break;
      }
    }
    CEPR_CHECK(next_pos >= 0) << "analyzer must reject trailing negation";
    CompiledNegation neg;
    neg.var_index = static_cast<int>(i);
    neg.type_tag = var.type_tag;
    pattern.components[static_cast<size_t>(next_pos)].negation_before =
        std::move(neg);
    negation_target[i] = next_pos;
  }

  // -- Constant folding --------------------------------------------------------
  if (analyzed.ast.where != nullptr) {
    analyzed.ast.where = FoldConstants(std::move(analyzed.ast.where));
  }
  for (SelectItemAst& item : analyzed.ast.select) {
    item.expr = FoldConstants(std::move(item.expr));
  }
  if (analyzed.ast.rank_by != nullptr) {
    analyzed.ast.rank_by = FoldConstants(std::move(analyzed.ast.rank_by));
  }

  // -- Decompose WHERE -------------------------------------------------------
  std::vector<ExprPtr> conjuncts;
  if (analyzed.ast.where != nullptr) {
    SplitConjuncts(std::move(analyzed.ast.where), &conjuncts);
    analyzed.ast.where = nullptr;  // ownership moved into the pattern below
  }

  for (ExprPtr& conj : conjuncts) {
    RefProfile profile;
    Profile(*conj, layout, &profile);

    if (profile.negated_vars.size() > 1) {
      return Status::TypeError(
          "a WHERE conjunct may reference at most one negated variable: " +
          conj->ToString());
    }

    if (profile.negated_vars.size() == 1) {
      const int neg_var = profile.negated_vars[0];
      const int anchor_pos = negation_target[static_cast<size_t>(neg_var)];
      // All other referenced variables must be bound before the negation
      // point, i.e. their components must start before `anchor_pos`.
      for (int v : profile.vars) {
        if (v == neg_var) continue;
        if (layout.var(v).is_negated) continue;  // covered by the size check
        const int pos = pattern.position_of_var[static_cast<size_t>(v)];
        if (pos >= anchor_pos) {
          return Status::TypeError(
              "negation predicate " + conj->ToString() + " references '" +
              layout.var(v).name + "', which is not yet bound at the negation");
        }
      }
      if (!profile.current_vars.empty()) {
        return Status::TypeError(
            "negation predicate cannot use current-iteration references: " +
            conj->ToString());
      }
      pattern.components[static_cast<size_t>(anchor_pos)]
          .negation_before->preds.push_back(std::move(conj));
      continue;
    }

    // Latest referenced positive component.
    int max_pos = -1;
    for (int v : profile.vars) {
      max_pos = std::max(max_pos, pattern.position_of_var[static_cast<size_t>(v)]);
    }
    if (max_pos < 0) {
      // Constant conjunct: gate the start of every run.
      max_pos = 0;
    }
    CompiledComponent& comp = pattern.components[static_cast<size_t>(max_pos)];

    // Current-iteration references are only meaningful for the latest
    // component (earlier Kleene variables are already closed there).
    for (int v : profile.current_vars) {
      if (pattern.position_of_var[static_cast<size_t>(v)] != max_pos) {
        return Status::TypeError(
            "current-iteration reference to '" + layout.var(v).name +
            "' is invalid here: a later variable is referenced in " +
            conj->ToString());
      }
    }

    if (comp.is_kleene) {
      if (!profile.current_vars.empty()) {
        comp.iter_pred_uses_prev.push_back(UsesPrevOf(*conj, comp.var_index));
        comp.iter_preds.push_back(std::move(conj));
      } else {
        // Aggregate-only constraint on the Kleene variable: checked when
        // the component tries to close.
        comp.exit_preds.push_back(std::move(conj));
      }
    } else {
      comp.begin_preds.push_back(std::move(conj));
    }
  }

  // -- Event-only predicate classification ------------------------------------
  // A conjunct whose only binding reference is the candidate event itself
  // (the component's own variable for begin predicates, v[i] for iteration
  // predicates, the negated variable for watcher predicates) evaluates to
  // the same verdict for every run testing one event. Each such conjunct
  // gets a dense cache id; the matcher evaluates it once per event under an
  // EventOnlyContext and shares the cached verdict across the partition's
  // runs. Exit predicates are never event-only (they constrain aggregates /
  // iteration counts of the run).
  int num_event_preds = 0;
  const auto classify = [&num_event_preds](const std::vector<ExprPtr>& preds,
                                           int var_index, bool is_kleene,
                                           std::vector<int>* ids) {
    ids->assign(preds.size(), -1);
    for (size_t i = 0; i < preds.size(); ++i) {
      if (IsEventOnlyPredicate(*preds[i], var_index, is_kleene)) {
        (*ids)[i] = num_event_preds++;
      }
    }
  };
  for (CompiledComponent& comp : pattern.components) {
    classify(comp.begin_preds, comp.var_index, comp.is_kleene,
             &comp.begin_pred_cache_ids);
    classify(comp.iter_preds, comp.var_index, comp.is_kleene,
             &comp.iter_pred_cache_ids);
    if (comp.negation_before.has_value()) {
      CompiledNegation& neg = *comp.negation_before;
      // The negated variable binds the candidate with single-variable
      // semantics (current-iteration references are rejected above).
      classify(neg.preds, neg.var_index, /*is_kleene=*/false,
               &neg.pred_cache_ids);
    }
  }
  pattern.num_event_preds = num_event_preds;

  // -- Aggregate slot assignment ----------------------------------------------
  std::vector<Expr*> all_exprs;
  for (CompiledComponent& comp : pattern.components) {
    for (auto& p : comp.begin_preds) all_exprs.push_back(p.get());
    for (auto& p : comp.iter_preds) all_exprs.push_back(p.get());
    for (auto& p : comp.exit_preds) all_exprs.push_back(p.get());
    if (comp.negation_before.has_value()) {
      for (auto& p : comp.negation_before->preds) all_exprs.push_back(p.get());
    }
  }
  for (SelectItemAst& item : analyzed.ast.select) all_exprs.push_back(item.expr.get());
  if (analyzed.ast.rank_by != nullptr) all_exprs.push_back(analyzed.ast.rank_by.get());
  pattern.agg_specs = AssignAggSlots(all_exprs);

  // -- Plan header fields -------------------------------------------------------
  cq->rank_desc = analyzed.ast.rank_desc;
  cq->limit = analyzed.ast.limit;
  cq->strategy = analyzed.ast.strategy;
  cq->emit = analyzed.ast.emit;
  cq->emit_every_n = analyzed.ast.emit_every_n;
  cq->within_micros = analyzed.ast.within_micros;
  cq->within_events = analyzed.ast.within_events;
  cq->into_stream = analyzed.ast.into_stream;
  cq->partition_attr_index = analyzed.partition_attr_index;

  // -- Attribute ranges ------------------------------------------------------------
  const SchemaPtr& schema = analyzed.schema;
  cq->attr_ranges.reserve(schema->num_attributes());
  for (const Attribute& attr : schema->attributes()) {
    if (attr.range.has_value()) {
      cq->attr_ranges.push_back(Interval::Of(attr.range->lo, attr.range->hi));
    } else {
      cq->attr_ranges.push_back(Interval::Whole());
    }
  }

  cq->score = analyzed.ast.rank_by.get();
  if (cq->score != nullptr) {
    StaticBoundEnv env(&cq->attr_ranges);
    const Interval b = DeriveBounds(*cq->score, env);
    cq->score_prunable = cq->rank_desc ? std::isfinite(b.hi) : std::isfinite(b.lo);
  }

  cq->analyzed = std::move(analyzed);
  // `score` points into analyzed.ast which was moved; re-point it.
  cq->score = cq->analyzed.ast.rank_by.get();

  // -- Bytecode compilation ----------------------------------------------------
  // Every predicate / select / score tree gets a flat program for the VM hot
  // path (expr/vm.h). Must run after aggregate-slot assignment: programs
  // bake in agg_slot indices. A nullptr program (tree too deep for the
  // register file) falls back to the AST evaluator at that site.
  int num_progs = 0;
  const auto compile_group = [&num_progs](const std::vector<ExprPtr>& preds,
                                          std::vector<BytecodeProgramPtr>* progs) {
    progs->clear();
    progs->reserve(preds.size());
    for (const ExprPtr& p : preds) {
      BytecodeProgramPtr prog = CompileToBytecodeShared(*p);
      if (prog != nullptr) ++num_progs;
      progs->push_back(std::move(prog));
    }
  };
  for (CompiledComponent& comp : cq->pattern.components) {
    compile_group(comp.begin_preds, &comp.begin_pred_progs);
    compile_group(comp.iter_preds, &comp.iter_pred_progs);
    compile_group(comp.exit_preds, &comp.exit_pred_progs);
    if (comp.negation_before.has_value()) {
      compile_group(comp.negation_before->preds,
                    &comp.negation_before->pred_progs);
    }
  }
  cq->select_progs.reserve(cq->analyzed.ast.select.size());
  for (const SelectItemAst& item : cq->analyzed.ast.select) {
    BytecodeProgramPtr prog = CompileToBytecodeShared(*item.expr);
    if (prog != nullptr) ++num_progs;
    cq->select_progs.push_back(std::move(prog));
  }
  if (cq->score != nullptr) {
    cq->score_prog = CompileToBytecodeShared(*cq->score);
    if (cq->score_prog != nullptr) ++num_progs;
  }
  cq->num_bytecode_programs = num_progs;

  cq->nfa = NfaPlan::Build(cq->pattern, cq->analyzed.layout);
  ComputeTemplateSignature(cq.get());
  return CompiledQueryPtr(cq);
}

Result<CompiledQueryPtr> CompileQueryText(std::string_view text, SchemaPtr schema) {
  CEPR_ASSIGN_OR_RETURN(QueryAst ast, ParseQuery(text));
  CEPR_ASSIGN_OR_RETURN(AnalyzedQuery analyzed, Analyze(std::move(ast), schema));
  return Compile(std::move(analyzed));
}

std::string CompiledQuery::Describe() const {
  std::string out = "plan for stream " + schema()->name() + ":\n";
  out += pattern.ToString(layout());
  out += "  strategy: " + std::string(SelectionStrategyToString(strategy)) + "\n";
  if (within_micros > 0) {
    out += "  within: " + std::to_string(within_micros) + "us\n";
  }
  if (score != nullptr) {
    out += "  rank by: " + score->ToString() + (rank_desc ? " DESC" : " ASC");
    out += score_prunable ? " (prunable)\n" : " (not statically prunable)\n";
  }
  if (limit >= 0) out += "  limit: " + std::to_string(limit) + "\n";
  out += "  emit: " + std::string(EmitPolicyToString(emit)) + "\n";
  out += "  nfa states: " + std::to_string(nfa.states().size()) + "\n";
  return out;
}

}  // namespace cepr
