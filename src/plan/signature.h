#ifndef CEPR_PLAN_SIGNATURE_H_
#define CEPR_PLAN_SIGNATURE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/compiler.h"

namespace cepr {

/// Fills `cq->template_signature` and `cq->template_params`: a canonical
/// rendering of the compiled pattern's *structure* — stream, variable
/// layout, selection strategy, emission policy, window spans, type tags,
/// and the shape of every pushed-down predicate and of the score
/// expression — with every literal constant, the LIMIT k and the partition
/// attribute replaced by numbered parameter slots (`?0`, `?1`, ...). Two
/// queries that differ only in those constants render to the same
/// signature and differ only in the extracted slot table, which is what
/// lets the runtime share one NFA template between them (docs/MULTIQUERY.md).
///
/// Called by Compile() on every query; the signature depends only on
/// compiler output, so equal signatures imply structurally identical
/// matcher behavior modulo the slot values.
void ComputeTemplateSignature(CompiledQuery* cq);

/// One shared, immutable NFA skeleton: the unit of plan deduplication.
/// Every live query whose compiled pattern canonicalizes to `signature`
/// holds a shared_ptr to the same NfaTemplate; the template dies with its
/// last query (hot remove included), and the registry holds only weak
/// references so it never pins a template alive.
///
/// `nfa` is built from the first query interned under the signature, so
/// its edge labels show that representative's constants where a slot
/// (`?N`) conceptually sits.
struct NfaTemplate {
  std::string signature;
  NfaPlan nfa;
};

/// Interns NFA templates by canonical signature. Single-writer (the
/// engine's registration path); lookups prune dead weak references lazily.
class TemplateRegistry {
 public:
  /// Returns the shared template for `q`'s signature, building it from `q`
  /// on first use. `*deduped` (nullable) is set true iff an existing live
  /// template was reused — the `queries_deduped` sharing counter.
  std::shared_ptr<const NfaTemplate> Intern(const CompiledQuery& q,
                                            bool* deduped);

  /// Number of templates with at least one live query (prunes dead
  /// entries). Diagnostics / refcount regression tests.
  size_t live_templates() const;

 private:
  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, std::weak_ptr<const NfaTemplate>>
      by_signature_;
};

}  // namespace cepr

#endif  // CEPR_PLAN_SIGNATURE_H_
