#include "plan/nfa.h"

namespace cepr {

namespace {

std::string GuardSummary(const std::vector<ExprPtr>& preds) {
  std::string out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) out += " AND ";
    out += preds[i]->ToString();
  }
  return out;
}

}  // namespace

NfaPlan NfaPlan::Build(const CompiledPattern& pattern, const BindingLayout& layout) {
  NfaPlan plan;
  const size_t n = pattern.components.size();

  for (size_t i = 0; i <= n; ++i) {
    NfaState state;
    state.index = static_cast<int>(i);
    state.name = "q" + std::to_string(i);
    if (i > 0 && pattern.components[i - 1].is_kleene) {
      state.open_kleene_component = static_cast<int>(i - 1);
    }
    plan.states_.push_back(std::move(state));
  }
  // The final state accepts. For a trailing-Kleene pattern it is also the
  // state with the open Kleene component: every further take re-accepts.
  plan.states_.back().accepting = true;

  for (size_t i = 0; i < n; ++i) {
    const CompiledComponent& comp = pattern.components[i];
    const std::string var = layout.var(comp.var_index).name;

    NfaEdge begin;
    begin.kind = NfaEdgeKind::kBegin;
    begin.from_state = static_cast<int>(i);
    begin.to_state = static_cast<int>(i + 1);
    begin.component = static_cast<int>(i);
    begin.label =
        "begin " + var +
        (comp.is_kleene ? "+ : " + GuardSummary(comp.iter_preds)
                        : " : " + GuardSummary(comp.begin_preds));
    plan.edges_.push_back(std::move(begin));

    if (comp.is_kleene) {
      NfaEdge take;
      take.kind = NfaEdgeKind::kTake;
      take.from_state = static_cast<int>(i + 1);
      take.to_state = static_cast<int>(i + 1);
      take.component = static_cast<int>(i);
      take.label = "take " + var + " : " + GuardSummary(comp.iter_preds);
      plan.edges_.push_back(std::move(take));
    }

    if (comp.negation_before.has_value()) {
      NfaEdge kill;
      kill.kind = NfaEdgeKind::kKill;
      kill.from_state = static_cast<int>(i);
      kill.to_state = -1;
      kill.component = static_cast<int>(i);
      kill.label = "!" + layout.var(comp.negation_before->var_index).name + " : " +
                   GuardSummary(comp.negation_before->preds);
      plan.edges_.push_back(std::move(kill));
    }

    // Ignore self-loops exist in every non-strict strategy on every state
    // that is waiting for input.
    NfaEdge ignore;
    ignore.kind = NfaEdgeKind::kIgnore;
    ignore.from_state = static_cast<int>(i);
    ignore.to_state = static_cast<int>(i);
    ignore.component = -1;
    ignore.label = "ignore";
    plan.edges_.push_back(std::move(ignore));
  }
  return plan;
}

int NfaPlan::accepting_state() const {
  for (const NfaState& s : states_) {
    if (s.accepting) return s.index;
  }
  return static_cast<int>(states_.size()) - 1;
}

std::string NfaPlan::ToDot() const {
  std::string out = "digraph cepr_nfa {\n  rankdir=LR;\n";
  for (const NfaState& s : states_) {
    out += "  " + s.name + " [shape=" +
           (s.accepting ? std::string("doublecircle") : std::string("circle")) +
           "];\n";
  }
  out += "  kill [shape=point];\n";
  for (const NfaEdge& e : edges_) {
    const std::string from = "q" + std::to_string(e.from_state);
    const std::string to = e.to_state < 0 ? "kill" : "q" + std::to_string(e.to_state);
    std::string label = e.label;
    // Escape quotes for dot.
    std::string escaped;
    for (char c : label) {
      if (c == '"') escaped += "\\\"";
      else escaped += c;
    }
    out += "  " + from + " -> " + to + " [label=\"" + escaped + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace cepr
