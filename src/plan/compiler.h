#ifndef CEPR_PLAN_COMPILER_H_
#define CEPR_PLAN_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/interval.h"
#include "lang/analyzer.h"
#include "plan/nfa.h"
#include "plan/pattern.h"

namespace cepr {

/// An executable query plan: the decomposed pattern with pushed-down
/// predicates, the resolved output/score expressions with aggregate slots
/// assigned, attribute ranges for the pruner, and the formal NFA.
/// Immutable after compilation; shared by the runtime via shared_ptr.
struct CompiledQuery {
  AnalyzedQuery analyzed;   // owns SELECT / RANK BY expression trees
  CompiledPattern pattern;  // owns pushed-down predicate clones

  /// RANK BY expression (owned by analyzed.ast.rank_by), or nullptr.
  const Expr* score = nullptr;
  bool rank_desc = true;
  int64_t limit = -1;

  SelectionStrategy strategy = SelectionStrategy::kSkipTillNext;
  EmitPolicy emit = EmitPolicy::kOnComplete;
  int64_t emit_every_n = 0;
  Timestamp within_micros = 0;   // 0 = no time bound on the match span
  int64_t within_events = 0;     // 0 = no count bound ("WITHIN n EVENTS")
  int partition_attr_index = -1;
  /// Non-empty = results are re-ingested as events of this derived stream.
  std::string into_stream;

  /// Canonical structural signature of the compiled pattern with every
  /// literal constant, the LIMIT k and the partition attribute replaced by
  /// numbered parameter slots. Queries with equal signatures differ only
  /// in those slot values and can share one NFA template (see
  /// plan/signature.h and docs/MULTIQUERY.md).
  std::string template_signature;
  /// The extracted constants, in slot order (?0, ?1, ...).
  std::vector<Value> template_params;

  /// Compiled bytecode for SELECT items (parallel to analyzed.ast.select)
  /// and the RANK BY score, used by the matcher when bytecode_eval is on;
  /// nullptr entries fall back to the AST evaluator. Predicate programs
  /// live on the pattern's components (see plan/pattern.h).
  std::vector<BytecodeProgramPtr> select_progs;
  BytecodeProgramPtr score_prog;
  /// Total programs compiled for this query (predicates + selects + score);
  /// surfaced as the `bytecode_compiled_preds` metric.
  int num_bytecode_programs = 0;

  /// Declared value range per schema attribute (Whole() if undeclared).
  std::vector<Interval> attr_ranges;
  /// True iff the score's static upper bound (lower bound for ASC) is
  /// finite given the declared ranges — i.e. partial-match pruning can
  /// ever fire without learned statistics.
  bool score_prunable = false;

  NfaPlan nfa;

  const BindingLayout& layout() const { return analyzed.layout; }
  const SchemaPtr& schema() const { return analyzed.schema; }

  /// Multi-line plan description (pattern decomposition + NFA summary).
  std::string Describe() const;
};

using CompiledQueryPtr = std::shared_ptr<const CompiledQuery>;

/// Compiles an analyzed query:
///  1. splits WHERE into top-level conjuncts;
///  2. pushes each conjunct onto the latest pattern component that can
///     evaluate it (begin / iter / exit / negation groups);
///  3. assigns incremental-aggregate slots across all expressions;
///  4. captures declared attribute ranges and decides static prunability;
///  5. builds the formal NFA.
///
/// Rejects conjuncts that reference a current-iteration (v[i]) of a Kleene
/// variable that is not the conjunct's latest reference, and negation
/// conjuncts that reference more than one negated variable or variables
/// bound after the negation point.
Result<CompiledQueryPtr> Compile(AnalyzedQuery analyzed);

/// Convenience: parse + analyze + compile in one step.
Result<CompiledQueryPtr> CompileQueryText(std::string_view text, SchemaPtr schema);

}  // namespace cepr

#endif  // CEPR_PLAN_COMPILER_H_
