#ifndef CEPR_PLAN_PATTERN_H_
#define CEPR_PLAN_PATTERN_H_

#include <optional>
#include <string>
#include <vector>

#include "expr/aggregate.h"
#include "expr/bytecode.h"
#include "expr/expr.h"
#include "expr/typecheck.h"

namespace cepr {

/// A negated pattern component, compiled into a "watcher": while a run
/// waits to begin the following positive component, any event that matches
/// the watcher kills the run (the pattern requires that no such event
/// occurs there).
struct CompiledNegation {
  int var_index = -1;     // the negated variable (candidate binds here)
  std::string type_tag;   // optional event-type filter
  /// Conjuncts referencing the negated variable (as candidate) and any
  /// earlier, already-bound variables.
  std::vector<ExprPtr> preds;
  /// Parallel to `preds`: per-event predicate-cache id for conjuncts the
  /// compiler classified event-only (IsEventOnlyPredicate), -1 for
  /// correlated ones.
  std::vector<int> pred_cache_ids;
  /// Parallel to `preds`: compiled bytecode (nullptr = AST fallback).
  std::vector<BytecodeProgramPtr> pred_progs;
};

/// One positive component of the compiled pattern, with the WHERE conjuncts
/// pushed down onto it (SASE-style predicate decomposition).
struct CompiledComponent {
  int var_index = -1;  // into the query's BindingLayout
  bool is_kleene = false;
  bool is_optional = false;  // `v?`: zero or one event
  /// Kleene iteration bounds (meaningful when is_kleene); max_iters = -1
  /// means unbounded.
  int64_t min_iters = 1;
  int64_t max_iters = -1;
  std::string type_tag;  // optional event-type filter

  /// Single components: conjuncts whose latest reference is this variable;
  /// evaluated with the candidate event bound to it. The parallel
  /// `begin_pred_cache_ids` vector carries the per-event predicate-cache id
  /// of each conjunct the compiler classified event-only (its value depends
  /// only on the candidate event, so the matcher evaluates it once per
  /// event and shares the verdict across runs), or -1 for correlated
  /// conjuncts that must be evaluated against each run's bindings.
  std::vector<ExprPtr> begin_preds;
  std::vector<int> begin_pred_cache_ids;
  /// Parallel to `begin_preds`: compiled bytecode for the matcher's fast
  /// path when MatcherOptions::bytecode_eval is on (nullptr = AST fallback,
  /// e.g. a tree too deep for the register file).
  std::vector<BytecodeProgramPtr> begin_pred_progs;

  /// Kleene components: conjuncts containing a current-iteration reference
  /// (v[i]); evaluated against every candidate iteration. Parallel flags
  /// mark conjuncts that reference v[i-1] and are therefore vacuously true
  /// for the first iteration; parallel cache ids as for begin_preds
  /// (event-only iter conjuncts never reference v[i-1]).
  std::vector<ExprPtr> iter_preds;
  std::vector<bool> iter_pred_uses_prev;
  std::vector<int> iter_pred_cache_ids;
  std::vector<BytecodeProgramPtr> iter_pred_progs;

  /// Kleene components: conjuncts whose latest reference is this variable
  /// but that do not look at the current iteration (aggregate constraints
  /// like SUM(v.x) > 100). Checked whenever the component tries to close —
  /// failure blocks the transition now but does not kill the run (more
  /// iterations may satisfy it later).
  std::vector<ExprPtr> exit_preds;
  std::vector<BytecodeProgramPtr> exit_pred_progs;

  /// Watcher active while a run waits to begin this component.
  std::optional<CompiledNegation> negation_before;

  /// True iff a run may advance past this component without binding any
  /// event to it (optional, or Kleene with zero minimum).
  bool skippable() const {
    return is_optional || (is_kleene && min_iters == 0);
  }
};

/// The fully decomposed pattern: positive components in order, each
/// carrying its pushed-down predicates and any preceding negation watcher.
struct CompiledPattern {
  std::vector<CompiledComponent> components;

  /// All MIN/MAX/SUM/AVG accumulators any predicate/select/score needs,
  /// indexed by Expr::agg_slot. Runs size their accumulator arrays from it.
  std::vector<AggSpec> agg_specs;

  /// Position of each layout variable among the positive components, or -1
  /// for negated variables.
  std::vector<int> position_of_var;

  /// Number of event-only predicates across all components (dense cache-id
  /// space 0..num_event_preds-1); sizes the matcher's per-event cache.
  int num_event_preds = 0;

  /// Debug rendering of components and their predicate groups.
  std::string ToString(const BindingLayout& layout) const;
};

}  // namespace cepr

#endif  // CEPR_PLAN_PATTERN_H_
