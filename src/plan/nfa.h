#ifndef CEPR_PLAN_NFA_H_
#define CEPR_PLAN_NFA_H_

#include <string>
#include <vector>

#include "expr/typecheck.h"
#include "plan/pattern.h"

namespace cepr {

/// Kinds of NFA transitions (SASE+ NFA^b terminology).
enum class NfaEdgeKind {
  kBegin,   // bind the first/only event of a component, advance state
  kTake,    // accept one more Kleene iteration, stay in state
  kIgnore,  // skip an irrelevant event (existence depends on strategy)
  kKill,    // negation watcher: matching event destroys the run
};

/// One edge of the pattern automaton, for introspection, tests and the
/// monitor UI. Predicates are referenced from the owning CompiledPattern.
struct NfaEdge {
  NfaEdgeKind kind = NfaEdgeKind::kBegin;
  int from_state = 0;
  int to_state = 0;      // == from_state for kTake/kIgnore; -1 for kKill
  int component = -1;    // component whose predicates guard the edge; -1 none
  std::string label;     // human-readable guard summary
};

/// One state: "components 0..i-1 have begun; waiting to begin component i".
/// State components.size() is the accepting state for single-ended patterns;
/// patterns ending in a Kleene component accept in their last state once it
/// holds >= 1 iteration.
struct NfaState {
  int index = 0;
  bool accepting = false;
  /// Component currently open for kTake extensions, or -1.
  int open_kleene_component = -1;
  std::string name;  // "q0", "q1", ...
};

/// The explicit automaton view of a compiled pattern. The matcher executes
/// the equivalent logic directly over CompiledPattern; NfaPlan is the formal
/// artifact: tests assert its shape, and ToDot() renders it for the demo
/// monitor (substituting the paper's GUI plan view).
class NfaPlan {
 public:
  NfaPlan() = default;

  /// Builds the automaton for `pattern`.
  static NfaPlan Build(const CompiledPattern& pattern, const BindingLayout& layout);

  const std::vector<NfaState>& states() const { return states_; }
  const std::vector<NfaEdge>& edges() const { return edges_; }

  /// Index of the accepting state.
  int accepting_state() const;

  /// Graphviz dot rendering.
  std::string ToDot() const;

 private:
  std::vector<NfaState> states_;
  std::vector<NfaEdge> edges_;
};

}  // namespace cepr

#endif  // CEPR_PLAN_NFA_H_
