#include "plan/signature.h"

namespace cepr {

namespace {

/// Canonical structural rendering of an expression tree: every literal is
/// replaced by a numbered slot and appended to `params`; resolved variable
/// and attribute indices (not names) identify references, so queries whose
/// surface text differs but resolve identically canonicalize equally.
void CanonExpr(const Expr& e, std::string* out, std::vector<Value>* params) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      *out += "?" + std::to_string(params->size());
      params->push_back(e.literal);
      return;
    case ExprKind::kVarRef:
      *out += "v" + std::to_string(e.var_index) + "." +
              std::to_string(e.attr_index);
      return;
    case ExprKind::kIterRef:
      *out += "i" + std::to_string(static_cast<int>(e.iter_kind)) + ":" +
              std::to_string(e.var_index) + "." + std::to_string(e.attr_index);
      return;
    case ExprKind::kAggregate:
      *out += "a" + std::to_string(static_cast<int>(e.agg_func)) + ":" +
              std::to_string(e.var_index) + "." + std::to_string(e.attr_index);
      return;
    case ExprKind::kUnary:
      *out += "u" + std::to_string(static_cast<int>(e.unary_op)) + "(";
      CanonExpr(*e.children[0], out, params);
      *out += ")";
      return;
    case ExprKind::kBinary:
      *out += "b" + std::to_string(static_cast<int>(e.binary_op)) + "(";
      CanonExpr(*e.children[0], out, params);
      *out += ",";
      CanonExpr(*e.children[1], out, params);
      *out += ")";
      return;
    case ExprKind::kFunc:
      *out += "f" + std::to_string(static_cast<int>(e.func)) + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) *out += ",";
        CanonExpr(*e.children[i], out, params);
      }
      *out += ")";
      return;
    case ExprKind::kCase:
      *out += e.has_else ? "ce(" : "c(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) *out += ",";
        CanonExpr(*e.children[i], out, params);
      }
      *out += ")";
      return;
  }
}

void CanonPreds(const std::vector<ExprPtr>& preds, std::string* out,
                std::vector<Value>* params) {
  *out += "[";
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) *out += ";";
    CanonExpr(*preds[i], out, params);
  }
  *out += "]";
}

}  // namespace

void ComputeTemplateSignature(CompiledQuery* cq) {
  std::string sig;
  std::vector<Value> params;

  // Stream identity + window/strategy/emission structure. The WITHIN span
  // and kCount window size shape run expiry and report windows, so they
  // stay structural (queries with different spans do not share a template).
  sig += "s:" + cq->schema()->name();
  sig += "|st" + std::to_string(static_cast<int>(cq->strategy));
  sig += "|em" + std::to_string(static_cast<int>(cq->emit));
  sig += "/" + std::to_string(cq->emit_every_n);
  sig += "|w" + std::to_string(cq->within_micros);
  sig += "/" + std::to_string(cq->within_events);
  if (!cq->into_stream.empty()) sig += "|into:" + cq->into_stream;

  // Parameter slots for the per-query knobs that do NOT change the NFA:
  // the top-k cutoff and the partition attribute.
  sig += "|k?" + std::to_string(params.size());
  params.push_back(Value::Int(cq->limit));
  sig += "|p?" + std::to_string(params.size());
  params.push_back(Value::Int(cq->partition_attr_index));

  // Pattern skeleton: one segment per positive component, carrying its
  // Kleene/optional structure, type tag, negation watcher, and the
  // canonicalized predicate groups (literals slotted out).
  for (const CompiledComponent& comp : cq->pattern.components) {
    sig += "|C" + std::to_string(comp.var_index);
    if (comp.is_kleene) {
      sig += "k" + std::to_string(comp.min_iters) + ":" +
             std::to_string(comp.max_iters);
    }
    if (comp.is_optional) sig += "o";
    if (!comp.type_tag.empty()) sig += "t(" + comp.type_tag + ")";
    sig += "b";
    CanonPreds(comp.begin_preds, &sig, &params);
    sig += "i";
    CanonPreds(comp.iter_preds, &sig, &params);
    sig += "x";
    CanonPreds(comp.exit_preds, &sig, &params);
    if (comp.negation_before.has_value()) {
      const CompiledNegation& neg = *comp.negation_before;
      sig += "n" + std::to_string(neg.var_index);
      if (!neg.type_tag.empty()) sig += "t(" + neg.type_tag + ")";
      CanonPreds(neg.preds, &sig, &params);
    }
  }

  // Score shape (ASC/DESC structural; its constants are slots).
  if (cq->score != nullptr) {
    sig += cq->rank_desc ? "|rd:" : "|ra:";
    CanonExpr(*cq->score, &sig, &params);
  }

  cq->template_signature = std::move(sig);
  cq->template_params = std::move(params);
}

std::shared_ptr<const NfaTemplate> TemplateRegistry::Intern(
    const CompiledQuery& q, bool* deduped) {
  std::lock_guard<std::mutex> lock(mu_);
  if (deduped != nullptr) *deduped = false;
  auto it = by_signature_.find(q.template_signature);
  if (it != by_signature_.end()) {
    if (auto live = it->second.lock()) {
      if (deduped != nullptr) *deduped = true;
      return live;
    }
    by_signature_.erase(it);  // last query of the template is gone
  }
  auto made = std::make_shared<NfaTemplate>();
  made->signature = q.template_signature;
  made->nfa = NfaPlan::Build(q.pattern, q.analyzed.layout);
  by_signature_.emplace(made->signature, made);
  return made;
}

size_t TemplateRegistry::live_templates() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (auto it = by_signature_.begin(); it != by_signature_.end();) {
    if (it->second.expired()) {
      it = by_signature_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

}  // namespace cepr
