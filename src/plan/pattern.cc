#include "plan/pattern.h"

namespace cepr {

namespace {

void AppendPreds(const char* label, const std::vector<ExprPtr>& preds,
                 std::string* out) {
  if (preds.empty()) return;
  *out += "      ";
  *out += label;
  *out += ": ";
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i > 0) *out += " AND ";
    *out += preds[i]->ToString();
  }
  *out += "\n";
}

}  // namespace

std::string CompiledPattern::ToString(const BindingLayout& layout) const {
  std::string out;
  for (size_t i = 0; i < components.size(); ++i) {
    const CompiledComponent& c = components[i];
    const PatternVar& var = layout.var(c.var_index);
    if (c.negation_before.has_value()) {
      const CompiledNegation& neg = *c.negation_before;
      out += "  [negation watcher: !" + layout.var(neg.var_index).name;
      if (!neg.type_tag.empty()) out += " (" + neg.type_tag + ")";
      out += "]\n";
      AppendPreds("preds", neg.preds, &out);
    }
    out += "  component " + std::to_string(i) + ": " + var.name;
    if (c.is_optional) {
      out += "?";
    } else if (c.is_kleene) {
      if (c.min_iters == 1 && c.max_iters < 0) {
        out += "+";
      } else if (c.min_iters == 0 && c.max_iters < 0) {
        out += "*";
      } else {
        out += "{" + std::to_string(c.min_iters) + "," +
               (c.max_iters < 0 ? "" : std::to_string(c.max_iters)) + "}";
      }
    }
    if (!c.type_tag.empty()) out += " (" + c.type_tag + ")";
    out += "\n";
    AppendPreds("begin", c.begin_preds, &out);
    AppendPreds("iter", c.iter_preds, &out);
    AppendPreds("exit", c.exit_preds, &out);
  }
  return out;
}

}  // namespace cepr
