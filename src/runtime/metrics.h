#ifndef CEPR_RUNTIME_METRICS_H_
#define CEPR_RUNTIME_METRICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/histogram.h"
#include "engine/matcher.h"
#include "runtime/reorder.h"

namespace cepr {

/// Per-query runtime metrics, maintained by RunningQuery (serial engine) or
/// aggregated across shards (sharded engine) and read by the monitor
/// example, tests and benchmarks. Plain-value snapshot type.
struct QueryMetrics {
  /// Events routed to this query.
  uint64_t events = 0;
  /// Matches detected (before ranking).
  uint64_t matches = 0;
  /// Ranked results delivered to the sink.
  uint64_t results = 0;
  /// Wall-clock nanoseconds spent inside OnEvent, per event.
  Histogram event_processing_ns;
  /// Event-time delay between a match's last event and its emission point
  /// (microseconds); 0 for eager emission, up to a window span for
  /// buffered emission. In the sharded engine this is recorded at the
  /// shard-local emission point, before the merge stage cuts to LIMIT.
  Histogram emission_delay_us;
  /// Snapshot of the matcher counters (runs created/pruned/...).
  MatcherStats matcher;
  /// Pruner instrumentation (0 when pruning is off).
  uint64_t prune_checks = 0;
  uint64_t prunes = 0;
  /// Lazy-DAG enumeration instrumentation (0 outside dag mode): matches
  /// the best-first enumerator materialized at window closes, and frontier
  /// cutoffs (enumeration walks abandoned once every remaining score bound
  /// fell strictly below the k-th threshold).
  uint64_t matches_enumerated = 0;
  uint64_t enumeration_cutoffs = 0;

  std::string ToString() const;
  std::string ToJson() const;
};

/// Plain-value snapshot of one worker shard's counters. Safe to take at any
/// time via MetricsCell::Snapshot(): each counter is exact at some recent
/// instant, counters are only approximately consistent with each other.
struct ShardStats {
  /// Event messages processed by this shard (across all queries).
  uint64_t events = 0;
  /// Matches detected on this shard.
  uint64_t matches = 0;
  /// Window-barrier messages processed.
  uint64_t barriers = 0;
  /// Result batches published to the merge stage (one per window a shard
  /// closed with results).
  uint64_t batches_published = 0;
  /// Peak ingest-queue occupancy observed by the router (backpressure
  /// early-warning: capacity means stalls).
  size_t queue_high_water = 0;
  /// Push attempts that found the queue full (each is one producer
  /// yield/park cycle).
  uint64_t enqueue_stalls = 0;
  /// Cumulative microseconds the ingest thread spent waiting on this
  /// shard's full ring.
  uint64_t stall_us = 0;
  /// Times the stall budget tripped on this shard (Push failed with
  /// kUnavailable because the shard looked dead/wedged).
  uint64_t stalls_tripped = 0;

  std::string ToString() const;
  std::string ToJson() const;
};

/// Counters of the shared multi-query evaluation layer (docs/MULTIQUERY.md).
/// All zeros when shared evaluation is disabled.
struct SharingStats {
  /// Whether the engine routed events through the shared layer. False
  /// under `shared_eval = false` and when fault injection degraded the
  /// engine to full per-query visits.
  bool shared_eval = false;
  /// Query registrations that reused an already-interned NFA template
  /// (same canonical signature, different constants/k/partition slots).
  uint64_t queries_deduped = 0;
  /// Distinct live NFA templates across all registered queries.
  uint64_t live_templates = 0;
  /// Predicate-index probes (one per routed event on an indexed stream)
  /// and the total candidate queries those probes produced. candidates /
  /// probes = average fan-out per event; compare with the resident query
  /// count to see what the index saves.
  uint64_t predindex_probes = 0;
  uint64_t predindex_candidates = 0;
  /// Events screened through the vectorized batch probe (a subset of
  /// predindex_probes; zero when batch_ingest is off or ingest never
  /// released multi-event runs) and the candidate (event, query) pairs
  /// those batch scans marked in their bitmaps.
  uint64_t batch_scan_events = 0;
  uint64_t bitmap_hits = 0;
  /// Entry/matcher predicates the compiler lowered to flat bytecode across
  /// all registered queries (the VM hot path; docs/ARCHITECTURE.md).
  uint64_t bytecode_compiled_preds = 0;
  /// Live shared window-boundary trackers (one per (stream, window-scheme)
  /// group of queries whose report windows close at coincident events).
  uint64_t shared_window_buffers = 0;

  std::string ToString() const;
  std::string ToJson() const;
};

/// Counters of the durability layer (runtime/checkpoint.* + runtime/wal.*).
/// All zeros until a WAL is opened or a checkpoint is written.
struct DurabilityStats {
  /// Snapshots successfully written (temp + fsync + rename completed).
  uint64_t checkpoints_written = 0;
  /// Bytes of the most recent successfully written snapshot.
  uint64_t checkpoint_bytes = 0;
  /// Event/flush records appended to the write-ahead journal.
  uint64_t wal_records_appended = 0;
  /// Events re-ingested from the journal during the last Restore().
  uint64_t recovery_events_replayed = 0;

  std::string ToString() const;
  std::string ToJson() const;
};

/// Engine-wide counters of the sharded engine's merge stage.
struct MergeStats {
  /// Report windows combined across shards.
  uint64_t windows_merged = 0;
  /// Results delivered to sinks after merging.
  uint64_t results_emitted = 0;

  std::string ToString() const;
  std::string ToJson() const;
};

/// Live per-shard metrics cell: the write side of the monitoring subsystem.
///
/// Scalar counters are single-writer relaxed atomics (common/counters.h):
/// the shard thread owns events/matches/barriers/batches_published, the
/// ingest (router) thread owns queue_high_water/enqueue_stalls. Either side
/// may be read from any thread at any time without synchronization.
///
/// The per-query latency histograms are recorded thread-locally by the
/// owning shard thread and guarded by `mu` so snapshotters can copy them
/// while the stream is running; the lock is uncontended except during a
/// poll.
struct MetricsCell {
  // -- shard-thread-written --------------------------------------------------
  RelaxedCounter events;
  RelaxedCounter matches;
  RelaxedCounter barriers;
  RelaxedCounter batches_published;
  // -- ingest/router-thread-written -----------------------------------------
  RelaxedMax queue_high_water;
  RelaxedCounter enqueue_stalls;
  RelaxedCounter stall_us;
  RelaxedCounter stalls_tripped;

  /// Per-query wall-clock/event-time distributions (indexed by query id,
  /// sized before the shard thread starts).
  struct Timings {
    Histogram processing_ns;
    Histogram emission_delay_us;
  };
  mutable std::mutex mu;
  std::vector<Timings> timings;

  /// Scalar counters only; histograms are merged by the engine's snapshot
  /// path under `mu`.
  ShardStats Snapshot() const;
};

/// One coherent view of an engine's counters, taken by
/// Engine::Snapshot() / ShardedEngine::Snapshot(). On the sharded engine it
/// may be taken from a monitor thread while the ingest and shard threads
/// are running: every counter is exact at some instant during the call
/// (per-counter atomic), while relations *between* counters (e.g.
/// shard events vs. query events) are approximately consistent and become
/// exact once Finish() has returned.
struct MetricsSnapshot {
  /// Total events the engine accepted.
  uint64_t events_ingested = 0;
  /// Events dropped at ingest under FaultPolicy::kSkipAndCount (batch
  /// entries that failed validation or hit a fail-point). Matcher-level
  /// quarantines live in each query's MatcherStats.
  uint64_t events_quarantined = 0;
  /// Out-of-order ingest counters, aggregated across every stream's
  /// reorder buffer (counts summed; reorder_buffer_peak is the deepest any
  /// single stream's buffer got). See runtime/reorder.h.
  ReorderStats reorder;
  /// Worker shard count (1 for the serial engine).
  size_t num_shards = 1;
  /// Per-query aggregated metrics, in registration order.
  struct QueryEntry {
    std::string name;
    QueryMetrics metrics;
  };
  std::vector<QueryEntry> queries;
  /// Per-shard counters (empty for the serial engine).
  std::vector<ShardStats> shards;
  /// Merge-stage counters (zeros for the serial engine).
  MergeStats merge;
  /// Shared multi-query evaluation counters (zeros when disabled).
  SharingStats sharing;
  /// Durability-layer counters (zeros until checkpoint/WAL use).
  DurabilityStats durability;

  /// Multi-line human-readable dump.
  std::string ToString() const;
  /// Single JSON object, the wire format for external monitors:
  /// {"events_ingested":N,"num_shards":N,"queries":[{"name":...},...],
  ///  "shards":[...],"merge":{...}}.
  std::string ToJson() const;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_METRICS_H_
