#ifndef CEPR_RUNTIME_METRICS_H_
#define CEPR_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "engine/matcher.h"

namespace cepr {

/// Per-query runtime metrics, maintained by RunningQuery and read by the
/// monitor example and benchmarks.
struct QueryMetrics {
  /// Events routed to this query.
  uint64_t events = 0;
  /// Matches detected (before ranking).
  uint64_t matches = 0;
  /// Ranked results delivered to the sink.
  uint64_t results = 0;
  /// Wall-clock nanoseconds spent inside OnEvent, per event.
  Histogram event_processing_ns;
  /// Event-time delay between a match's last event and its emission point
  /// (microseconds); 0 for eager emission, up to a window span for
  /// buffered emission.
  Histogram emission_delay_us;
  /// Snapshot of the matcher counters (runs created/pruned/...).
  MatcherStats matcher;
  /// Pruner instrumentation (0 when pruning is off).
  uint64_t prune_checks = 0;
  uint64_t prunes = 0;

  std::string ToString() const;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_METRICS_H_
