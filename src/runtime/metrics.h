#ifndef CEPR_RUNTIME_METRICS_H_
#define CEPR_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "engine/matcher.h"

namespace cepr {

/// Per-query runtime metrics, maintained by RunningQuery and read by the
/// monitor example and benchmarks.
struct QueryMetrics {
  /// Events routed to this query.
  uint64_t events = 0;
  /// Matches detected (before ranking).
  uint64_t matches = 0;
  /// Ranked results delivered to the sink.
  uint64_t results = 0;
  /// Wall-clock nanoseconds spent inside OnEvent, per event.
  Histogram event_processing_ns;
  /// Event-time delay between a match's last event and its emission point
  /// (microseconds); 0 for eager emission, up to a window span for
  /// buffered emission.
  Histogram emission_delay_us;
  /// Snapshot of the matcher counters (runs created/pruned/...).
  MatcherStats matcher;
  /// Pruner instrumentation (0 when pruning is off).
  uint64_t prune_checks = 0;
  uint64_t prunes = 0;

  std::string ToString() const;
};

/// Per-worker-shard counters of the sharded engine. Written by the shard
/// thread (and the router, for the queue-side counters); read after the
/// shard has quiesced or via the engine's snapshot path.
struct ShardStats {
  /// Event messages processed by this shard (across all queries).
  uint64_t events = 0;
  /// Matches detected on this shard.
  uint64_t matches = 0;
  /// Window-barrier messages processed.
  uint64_t barriers = 0;
  /// Result batches published to the merge stage (one per window a shard
  /// closed with results).
  uint64_t batches_published = 0;
  /// Peak ingest-queue occupancy observed by the router (backpressure
  /// early-warning: capacity means stalls).
  size_t queue_high_water = 0;
  /// Push attempts that found the queue full (each is one producer
  /// yield/park cycle).
  uint64_t enqueue_stalls = 0;

  std::string ToString() const;
};

/// Engine-wide counters of the sharded engine's merge stage.
struct MergeStats {
  /// Report windows combined across shards.
  uint64_t windows_merged = 0;
  /// Results delivered to sinks after merging.
  uint64_t results_emitted = 0;

  std::string ToString() const;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_METRICS_H_
