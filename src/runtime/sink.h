#ifndef CEPR_RUNTIME_SINK_H_
#define CEPR_RUNTIME_SINK_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "rank/ranker.h"

namespace cepr {

/// Consumer of a query's ranked results. Implementations must tolerate
/// being called once per result in emission order; the engine is
/// single-threaded per Push, so no synchronization is required.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void OnResult(const RankedResult& result) = 0;
};

/// Buffers every result in memory (tests, examples, benchmarks).
class CollectSink : public Sink {
 public:
  void OnResult(const RankedResult& result) override {
    results_.push_back(result);
  }

  const std::vector<RankedResult>& results() const { return results_; }
  void Clear() { results_.clear(); }

 private:
  std::vector<RankedResult> results_;
};

/// Forwards each result to a std::function.
class CallbackSink : public Sink {
 public:
  explicit CallbackSink(std::function<void(const RankedResult&)> fn)
      : fn_(std::move(fn)) {}

  void OnResult(const RankedResult& result) override { fn_(result); }

 private:
  std::function<void(const RankedResult&)> fn_;
};

/// Discards results (throughput benchmarking).
class NullSink : public Sink {
 public:
  void OnResult(const RankedResult&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Pretty-prints each result as one line: the terminal stand-in for the
/// CEPR demo's live monitor panel.
class PrintSink : public Sink {
 public:
  /// `column_names` label the SELECT outputs (from AnalyzedQuery).
  PrintSink(std::ostream& os, std::vector<std::string> column_names,
            std::string query_name = "");

  void OnResult(const RankedResult& result) override;

 private:
  std::ostream& os_;
  std::vector<std::string> columns_;
  std::string query_name_;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_SINK_H_
