#include "runtime/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/binio.h"
#include "common/logging.h"
#include "common/strings.h"
#include "runtime/engine.h"
#include "runtime/serde.h"
#include "runtime/sharded_engine.h"

namespace cepr {
namespace {

// POSIX plumbing, local to the snapshot path (the WAL keeps its own).
bool ReadAllFd(int fd, std::string* out) {
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out->append(buf, static_cast<size_t>(n));
  }
}

bool WriteAllFd(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// -- Option blocks (format v1) ---------------------------------------------
// SaveQueryOptionsV1 / LoadQueryOptionsV1 live in runtime/serde.* now: the
// WAL's deploy records and the network deploy message share the encoding.

bool ValidatePoliciesV1(BinReader* r, uint8_t late, uint8_t shed,
                        uint8_t fault) {
  if (late > static_cast<uint8_t>(LatePolicy::kClamp) ||
      shed > static_cast<uint8_t>(ShedPolicy::kShedLowestScoreBound) ||
      fault > static_cast<uint8_t>(FaultPolicy::kSkipAndCount)) {
    r->Fail();
    return false;
  }
  return true;
}

// -- RankedResult (the sharded engine's published/pending deques) ----------

void SaveRankedResult(EventInterner* in, BinWriter* w, const RankedResult& res) {
  w->I64(res.window_id);
  w->U64(static_cast<uint64_t>(res.rank));
  w->Bool(res.provisional);
  SaveMatch(in, w, res.match);
}

bool LoadRankedResult(EventUninterner* in, BinReader* r, RankedResult* out) {
  uint64_t rank = 0;
  if (!r->I64(&out->window_id) || !r->U64(&rank) ||
      !r->Bool(&out->provisional)) {
    return false;
  }
  out->rank = static_cast<size_t>(rank);
  return LoadMatch(in, r, &out->match);
}

// Rebinds one schema-less WAL event to the registered schema for replay.
Event RebindWalEvent(const SchemaPtr& schema, const Event& bare) {
  Event event(schema, bare.timestamp(), bare.values());
  event.set_type_tag(bare.type_tag());
  return event;
}

}  // namespace

namespace ckpt {

Status WriteSnapshotFile(const std::string& path, EngineKind kind,
                         const std::string& body,
                         const FaultInjector* injector, uint64_t attempt,
                         uint64_t* bytes_written) {
  if (body.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("checkpoint: body too large (" +
                                   std::to_string(body.size()) + " bytes)");
  }
  BinWriter w;
  w.Raw(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.U8(static_cast<uint8_t>(kind));
  w.U32(static_cast<uint32_t>(body.size()));
  w.U32(Crc32(body.data(), body.size()));
  w.Raw(body.data(), body.size());
  const std::string& image = w.buffer();

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("checkpoint: cannot create '" + tmp +
                           "': " + ErrnoString(errno));
  }

  if (injector != nullptr &&
      injector->ShouldFire(fault_points::kCkptKillMidWrite, attempt)) {
    // Simulated kill mid-write: part of the image reaches the temp file and
    // the rename never happens, so the previous snapshot (if any) survives
    // untouched — exactly what the atomic-publish protocol guarantees for a
    // real crash.
    WriteAllFd(fd, image.data(), image.size() / 2 + 1);
    ::close(fd);
    return Status::IoError("checkpoint: injected crash mid-write of '" + tmp +
                           "' (attempt " + std::to_string(attempt) +
                           "); snapshot not published");
  }

  if (!WriteAllFd(fd, image.data(), image.size())) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return Status::IoError("checkpoint: write to '" + tmp + "' failed: " + err);
  }
  if (::fsync(fd) != 0) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return Status::IoError("checkpoint: fsync '" + tmp + "' failed: " + err);
  }
  if (::close(fd) != 0) {
    return Status::IoError("checkpoint: close '" + tmp +
                           "' failed: " + ErrnoString(errno));
  }

  if (injector != nullptr &&
      injector->ShouldFire(fault_points::kFsyncParentDir, attempt)) {
    // Simulated kill during the publish step: the temp file is complete and
    // fsynced, but the rename and the parent-directory fsync that would make
    // the new filename durable never happen — the durable state a crash in
    // this window leaves behind is "previous snapshot (if any) still
    // current", which is exactly what recovery must see.
    return Status::IoError(
        "checkpoint: injected crash before durable publish of '" + path +
        "' (attempt " + std::to_string(attempt) +
        "); previous snapshot still current");
  }

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("checkpoint: rename '" + tmp + "' -> '" + path +
                           "' failed: " + ErrnoString(errno));
  }
  // The rename updated the directory; until the directory inode is synced a
  // crash can lose the snapshot's filename even though its bytes are on
  // disk.
  CEPR_RETURN_IF_ERROR(FsyncParentDir(path));
  if (bytes_written != nullptr) *bytes_written = image.size();
  return Status::OK();
}

Result<std::string> ReadSnapshotBody(const std::string& path,
                                     EngineKind expected_kind) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("snapshot '" + path + "' does not exist");
    }
    return Status::IoError("snapshot: cannot open '" + path +
                           "': " + ErrnoString(errno));
  }
  std::string data;
  const bool read_ok = ReadAllFd(fd, &data);
  ::close(fd);
  if (!read_ok) {
    return Status::IoError("snapshot: cannot read '" + path +
                           "': " + ErrnoString(errno));
  }

  constexpr size_t kHeaderBytes = sizeof(kMagic) + 4 + 1 + 4 + 4;
  if (data.size() < kHeaderBytes) {
    return Status::Corrupt("snapshot '" + path + "': truncated header (" +
                           std::to_string(data.size()) + " of " +
                           std::to_string(kHeaderBytes) + " bytes)");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corrupt("snapshot '" + path +
                           "': bad magic at byte offset 0 "
                           "(not a CEPR snapshot file)");
  }
  BinReader header(data.data() + sizeof(kMagic), data.size() - sizeof(kMagic));
  uint32_t version = 0, body_len = 0, crc = 0;
  uint8_t kind = 0;
  header.U32(&version);
  header.U8(&kind);
  header.U32(&body_len);
  header.U32(&crc);
  if (version != kVersion) {
    return Status::Corrupt(
        "snapshot '" + path + "': unsupported format version " +
        std::to_string(version) + " at byte offset 8 (this build reads " +
        std::to_string(kVersion) + ")");
  }
  if (kind > static_cast<uint8_t>(EngineKind::kSharded)) {
    return Status::Corrupt("snapshot '" + path + "': invalid engine kind " +
                           std::to_string(kind) + " at byte offset 12");
  }
  if (static_cast<EngineKind>(kind) != expected_kind) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' was written by the " +
        (static_cast<EngineKind>(kind) == EngineKind::kSerial ? "serial"
                                                              : "sharded") +
        " engine; restore it with the matching engine type");
  }
  if (data.size() - kHeaderBytes != body_len) {
    return Status::Corrupt(
        "snapshot '" + path + "': body length mismatch at byte offset 13 "
        "(header says " + std::to_string(body_len) + " bytes, file holds " +
        std::to_string(data.size() - kHeaderBytes) + ")");
  }
  if (Crc32(data.data() + kHeaderBytes, body_len) != crc) {
    return Status::Corrupt("snapshot '" + path +
                           "': body CRC mismatch over " +
                           std::to_string(body_len) +
                           " bytes at byte offset " +
                           std::to_string(kHeaderBytes) +
                           " (bit flip or partial overwrite)");
  }
  return data.substr(kHeaderBytes);
}

}  // namespace ckpt

// ===========================================================================
// Serial Engine durability
// ===========================================================================

Status Engine::OpenWal(const std::string& path) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("engine: WAL already open at '" +
                                   wal_->path() + "'");
  }
  auto wal = std::make_unique<WalWriter>();
  CEPR_RETURN_IF_ERROR(wal->Open(path, options_.fault_injector));
  wal_ = std::move(wal);
  return Status::OK();
}

Status Engine::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Status Engine::Checkpoint(const std::string& path) {
  // Records appended after this sync are past the cut and will be replayed.
  if (wal_ != nullptr) CEPR_RETURN_IF_ERROR(wal_->Sync());
  BinWriter w;
  SaveBody(&w);
  uint64_t bytes = 0;
  CEPR_RETURN_IF_ERROR(ckpt::WriteSnapshotFile(
      path, ckpt::EngineKind::kSerial, w.buffer(), options_.fault_injector,
      checkpoint_attempts_++, &bytes));
  ++durability_.checkpoints_written;
  durability_.checkpoint_bytes = bytes;
  return Status::OK();
}

void Engine::SaveBody(BinWriter* w) const {
  // Engine options (scalars only; the fault injector is runtime wiring).
  w->I64(options_.max_lateness_micros);
  w->U8(static_cast<uint8_t>(options_.late_policy));
  w->Bool(options_.reject_out_of_order);
  w->U64(static_cast<uint64_t>(options_.max_runs_per_partition));
  w->U64(static_cast<uint64_t>(options_.max_total_runs));
  w->U8(static_cast<uint8_t>(options_.shed_policy));
  w->U8(static_cast<uint8_t>(options_.fault_policy));
  w->Bool(options_.shared_eval);
  w->Bool(options_.batch_ingest);

  // WAL cut: valid journal records at this snapshot. The journal is never
  // truncated at a checkpoint; Restore replays everything past the cut.
  w->U64(wal_ != nullptr ? wal_->records() : 0);

  // Streams, in map (= name) order so the byte stream is deterministic.
  w->U32(static_cast<uint32_t>(streams_.size()));
  for (const auto& [key, state] : streams_) {
    SaveSchema(w, *state.schema);
    w->U64(state.next_sequence);
    state.reorder.SaveState(w);
  }

  // Engine-wide counters.
  w->U64(events_ingested_);
  w->U64(events_quarantined_);
  w->U64(queries_deduped_);
  w->Bool(degraded_faults_);
  w->U64(durability_.checkpoints_written);
  w->U64(durability_.checkpoint_bytes);
  w->U64(durability_.wal_records_appended);
  w->U64(durability_.recovery_events_replayed);

  // Queries: original registration inputs + the full pipeline state, in
  // name order. Each query is one event-interning scope (its COW-shared
  // events are written once and back-referenced).
  w->U32(static_cast<uint32_t>(queries_.size()));
  for (const auto& [key, query] : queries_) {
    const auto rit = registrations_.find(key);
    w->Str(query->name());
    w->Str(rit != registrations_.end() ? rit->second.text : std::string());
    SaveQueryOptionsV1(w, rit != registrations_.end() ? rit->second.options
                                                      : QueryOptions{});
    EventInterner interner(w);
    query->SaveState(&interner, w);
  }
}

Status Engine::LoadBody(BinReader* r, const SinkResolver& resolve,
                        uint64_t* wal_cut) {
  // Options: restored from the snapshot, except the fault injector (the
  // constructed engine's wiring survives).
  EngineOptions opts = options_;
  uint8_t late = 0, shed = 0, fault = 0;
  uint64_t mrp = 0, mtr = 0;
  if (!r->I64(&opts.max_lateness_micros) || !r->U8(&late) ||
      !r->Bool(&opts.reject_out_of_order) || !r->U64(&mrp) || !r->U64(&mtr) ||
      !r->U8(&shed) || !r->U8(&fault) || !r->Bool(&opts.shared_eval) ||
      !r->Bool(&opts.batch_ingest) || !ValidatePoliciesV1(r, late, shed, fault)) {
    return r->ToStatus("snapshot: engine options");
  }
  opts.late_policy = static_cast<LatePolicy>(late);
  opts.max_runs_per_partition = static_cast<size_t>(mrp);
  opts.max_total_runs = static_cast<size_t>(mtr);
  opts.shed_policy = static_cast<ShedPolicy>(shed);
  opts.fault_policy = static_cast<FaultPolicy>(fault);
  options_ = opts;

  if (!r->U64(wal_cut)) return r->ToStatus("snapshot: wal cut");

  uint32_t num_streams = 0;
  if (!r->U32(&num_streams)) return r->ToStatus("snapshot: stream count");
  for (uint32_t i = 0; i < num_streams; ++i) {
    CEPR_ASSIGN_OR_RETURN(SchemaPtr schema, LoadSchema(r));
    CEPR_RETURN_IF_ERROR(RegisterSchema(schema));
    StreamState& state = streams_.find(ToLower(schema->name()))->second;
    // LoadState overwrites the default reorder config with the saved one
    // (per-stream ConfigureStreamIngest overrides survive a restore).
    if (!r->U64(&state.next_sequence) ||
        !state.reorder.LoadState(r, state.schema)) {
      return r->ToStatus("snapshot: stream '" + schema->name() + "'");
    }
  }

  uint64_t deduped = 0, d0 = 0, d1 = 0, d2 = 0, d3 = 0;
  bool degraded = false;
  if (!r->U64(&events_ingested_) || !r->U64(&events_quarantined_) ||
      !r->U64(&deduped) || !r->Bool(&degraded) || !r->U64(&d0) ||
      !r->U64(&d1) || !r->U64(&d2) || !r->U64(&d3)) {
    return r->ToStatus("snapshot: engine counters");
  }
  durability_.checkpoints_written = d0;
  durability_.checkpoint_bytes = d1;
  durability_.wal_records_appended = d2;
  durability_.recovery_events_replayed = d3;

  uint32_t num_queries = 0;
  if (!r->U32(&num_queries)) return r->ToStatus("snapshot: query count");
  for (uint32_t i = 0; i < num_queries; ++i) {
    std::string name, text;
    QueryOptions qopts;
    if (!r->Str(&name) || !r->Str(&text) || !LoadQueryOptionsV1(r, &qopts)) {
      return r->ToStatus("snapshot: query registration " + std::to_string(i));
    }
    // Re-register from the original inputs (plan recompiled against the
    // restored schema), then load the saved pipeline state over the fresh
    // instance.
    CEPR_RETURN_IF_ERROR(
        RegisterQuery(name, text, qopts, resolve ? resolve(name) : nullptr));
    RunningQuery* query = queries_.find(ToLower(name))->second.get();
    EventUninterner uninterner(r, query->plan()->schema());
    if (!query->LoadState(&uninterner, r)) {
      return r->ToStatus("snapshot: query '" + name + "' state");
    }
  }
  // Re-registration recomputed these; the saved values are the exact ones.
  queries_deduped_ = deduped;
  degraded_faults_ = degraded_faults_ || degraded;
  // The loaded registration offsets invalidate the window-group layout
  // RegisterQuery built from the fresh queries; rebuild each stream's
  // shared layer from the final state. (Group cursors restart at INT64_MIN;
  // re-observing an old boundary only triggers AdvanceTo no-ops.)
  if (options_.shared_eval) {
    for (auto& [key, state] : streams_) RebuildSharedStream(state);
  }
  return r->ToStatus("snapshot: engine body");
}

Status Engine::ReplayWal(const std::string& wal_path, uint64_t skip,
                         const SinkResolver& resolve) {
  std::vector<WalRecord> records;
  uint64_t dropped = 0;
  CEPR_RETURN_IF_ERROR(WalReader::ReadAll(wal_path, &records, &dropped));
  if (dropped > 0) {
    CEPR_LOG(WARNING) << "wal replay: dropped " << dropped
                      << " torn-tail byte(s) of '" << wal_path << "'";
  }
  if (records.size() < skip) {
    return Status::Corrupt(
        "wal '" + wal_path + "' holds " + std::to_string(records.size()) +
        " records but the snapshot cut is " + std::to_string(skip) +
        " (journal truncated after the checkpoint?)");
  }

  replaying_ = true;
  durability_.recovery_events_replayed = 0;
  Status failed = Status::OK();
  for (size_t i = skip; i < records.size() && failed.ok(); ++i) {
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->ShouldFire(fault_points::kRestorePartialReplay,
                                            i - skip)) {
      failed = Status::Unavailable(
          "restore: injected crash after replaying " + std::to_string(i - skip) +
          " of " + std::to_string(records.size() - skip) + " wal records");
      break;
    }
    const WalRecord& rec = records[i];
    if (rec.kind == WalRecord::Kind::kFlush) {
      failed = Flush();
      continue;
    }
    if (rec.kind == WalRecord::Kind::kSchema) {
      BinReader pr(rec.payload);
      auto loaded = LoadSchema(&pr);
      if (!loaded.ok() || !pr.AtEnd()) {
        failed = Status::Corrupt("wal replay: record " + std::to_string(i) +
                                 " holds a malformed schema registration");
        break;
      }
      failed = RegisterSchema(loaded.value());
      continue;
    }
    if (rec.kind == WalRecord::Kind::kDeploy) {
      BinReader pr(rec.payload);
      std::string text;
      QueryOptions qopts;
      if (!pr.Str(&text) || !LoadQueryOptionsV1(&pr, &qopts) || !pr.AtEnd()) {
        failed = Status::Corrupt("wal replay: record " + std::to_string(i) +
                                 " holds a malformed deploy of query '" +
                                 rec.name + "'");
        break;
      }
      failed = RegisterQuery(rec.name, text, qopts,
                             resolve ? resolve(rec.name) : nullptr);
      continue;
    }
    if (rec.kind == WalRecord::Kind::kUndeploy) {
      failed = RemoveQuery(rec.name);
      continue;
    }
    auto schema = GetSchema(rec.stream);
    if (!schema.ok()) {
      failed = Status::Corrupt("wal replay: record " + std::to_string(i) +
                               " targets unregistered stream '" + rec.stream +
                               "'");
      break;
    }
    const Status s = Push(RebindWalEvent(schema.value(), rec.event));
    ++durability_.recovery_events_replayed;
    // kInvalidArgument is a reproduced late-rejection verdict: the original
    // Push failed identically, so the engine states agree — keep replaying.
    if (!s.ok() && s.code() != StatusCode::kInvalidArgument) failed = s;
  }
  replaying_ = false;
  return failed;
}

Status Engine::Restore(const std::string& snapshot_path,
                       const std::string& wal_path,
                       const SinkResolver& resolve) {
  if (!streams_.empty() || !queries_.empty() || events_ingested_ != 0 ||
      wal_ != nullptr) {
    return Status::InvalidArgument(
        "Restore requires a pristine engine (no streams, no queries, nothing "
        "ingested, no open WAL — pass the journal via wal_path)");
  }
  CEPR_ASSIGN_OR_RETURN(
      std::string body,
      ckpt::ReadSnapshotBody(snapshot_path, ckpt::EngineKind::kSerial));
  BinReader reader(body);
  uint64_t wal_cut = 0;
  CEPR_RETURN_IF_ERROR(LoadBody(&reader, resolve, &wal_cut));
  if (!reader.AtEnd()) {
    return Status::Corrupt("snapshot '" + snapshot_path + "': " +
                           std::to_string(reader.remaining()) +
                           " trailing byte(s) after the engine body");
  }
  if (!wal_path.empty()) {
    CEPR_RETURN_IF_ERROR(ReplayWal(wal_path, wal_cut, resolve));
    // Reopen for continued appending: the restored engine journals new
    // arrivals after the replayed tail.
    auto wal = std::make_unique<WalWriter>();
    CEPR_RETURN_IF_ERROR(wal->Open(wal_path, options_.fault_injector));
    wal_ = std::move(wal);
  }
  return Status::OK();
}

// ===========================================================================
// ShardedEngine durability
// ===========================================================================

Status ShardedEngine::OpenWal(const std::string& path) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("sharded engine: WAL already open at '" +
                                   wal_->path() + "'");
  }
  auto wal = std::make_unique<WalWriter>();
  CEPR_RETURN_IF_ERROR(wal->Open(path, options_.fault_injector));
  wal_ = std::move(wal);
  return Status::OK();
}

Status ShardedEngine::SyncWal() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Sync();
}

Status ShardedEngine::Checkpoint(const std::string& path) {
  if (finished_) {
    return Status::InvalidArgument(
        "sharded engine is finished; checkpoint before Finish()");
  }
  if (wal_ != nullptr) CEPR_RETURN_IF_ERROR(wal_->Sync());
  // The cut: drain every shard to the end of its ring so the cell state is
  // complete and visible to this thread (window-barrier-style round trip).
  CEPR_RETURN_IF_ERROR(Quiesce());
  BinWriter w;
  SaveBody(&w);
  uint64_t bytes = 0;
  CEPR_RETURN_IF_ERROR(ckpt::WriteSnapshotFile(
      path, ckpt::EngineKind::kSharded, w.buffer(), options_.fault_injector,
      checkpoint_attempts_++, &bytes));
  ckpt_written_.Increment();
  ckpt_bytes_.Store(bytes);
  return Status::OK();
}

void ShardedEngine::SaveBody(BinWriter* w) const {
  // Options scalars. num_shards is structural: per-shard run state cannot
  // be re-hashed, so Restore validates the constructed engine matches.
  w->U64(static_cast<uint64_t>(num_shards_));
  w->U64(static_cast<uint64_t>(options_.queue_capacity));
  w->I64(options_.max_lateness_micros);
  w->U8(static_cast<uint8_t>(options_.late_policy));
  w->Bool(options_.reject_out_of_order);
  w->I64(options_.enqueue_stall_budget_ms);
  w->U64(static_cast<uint64_t>(options_.max_runs_per_partition));
  w->U64(static_cast<uint64_t>(options_.max_total_runs));
  w->U8(static_cast<uint8_t>(options_.shed_policy));
  w->U8(static_cast<uint8_t>(options_.fault_policy));
  w->Bool(options_.shared_eval);
  w->Bool(options_.batch_ingest);

  w->U64(wal_ != nullptr ? wal_->records() : 0);

  w->U32(static_cast<uint32_t>(streams_.size()));
  for (const auto& [key, state] : streams_) {
    SaveSchema(w, *state.schema);
    w->U64(state.next_sequence);
    state.reorder.SaveState(w);
  }

  w->U64(events_ingested_.Load());
  w->U64(events_quarantined_.Load());
  w->U64(queries_deduped_.Load());
  w->Bool(query_injector_);
  w->U64(merge_windows_.Load());
  w->U64(merge_results_.Load());
  w->U64(ckpt_written_.Load());
  w->U64(ckpt_bytes_.Load());
  w->U64(wal_appended_.Load());
  w->U64(replayed_.Load());

  // Queries (registration order) with their router-side merge state.
  w->U32(static_cast<uint32_t>(queries_.size()));
  for (const auto& q : queries_) {
    w->Str(q->name);
    w->Str(q->text);
    SaveQueryOptionsV1(w, q->options);
    w->U64(q->ordinal.Load());
    w->I64(q->current_window);
    w->I64(q->merged_upto);
    w->U64(q->results_delivered.Load());
    EventInterner interner(w);
    for (const auto& pending : q->pending) {
      w->U32(static_cast<uint32_t>(pending.size()));
      for (const RankedResult& res : pending) {
        SaveRankedResult(&interner, w, res);
      }
    }
  }

  // Shard-side cell state, present only once workers exist. The engine is
  // quiesced (Checkpoint's contract), so every cell write is visible and
  // no shard thread touches its cells while we read.
  const bool started = WorkersStarted();
  w->Bool(started);
  if (!started) return;
  for (const auto& shard : shards_) {
    for (uint32_t qi = 0; qi < queries_.size(); ++qi) {
      w->I64(shard->acked_window[qi].load(std::memory_order_acquire));
      EventInterner interner(w);
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        const auto& published = shard->published[qi];
        w->U32(static_cast<uint32_t>(published.size()));
        for (const RankedResult& res : published) {
          SaveRankedResult(&interner, w, res);
        }
      }
      const QueryCell& cell = shard->cells[qi];
      cell.emitter->SaveState(&interner, w);
      cell.matcher->SaveState(&interner, w);
    }
    const MetricsCell& m = shard->metrics;
    w->U64(m.events.Load());
    w->U64(m.matches.Load());
    w->U64(m.barriers.Load());
    w->U64(m.batches_published.Load());
    w->U64(m.queue_high_water.Load());
    w->U64(m.enqueue_stalls.Load());
    w->U64(m.stall_us.Load());
    w->U64(m.stalls_tripped.Load());
    std::lock_guard<std::mutex> lock(m.mu);
    for (const MetricsCell::Timings& t : m.timings) {
      t.processing_ns.Save(w);
      t.emission_delay_us.Save(w);
    }
  }
}

Status ShardedEngine::LoadBody(BinReader* r, const SinkResolver& resolve,
                               uint64_t* wal_cut) {
  ShardedEngineOptions opts = options_;
  uint64_t snap_shards = 0, queue_cap = 0, mrp = 0, mtr = 0;
  uint8_t late = 0, shed = 0, fault = 0;
  if (!r->U64(&snap_shards) || !r->U64(&queue_cap) ||
      !r->I64(&opts.max_lateness_micros) || !r->U8(&late) ||
      !r->Bool(&opts.reject_out_of_order) ||
      !r->I64(&opts.enqueue_stall_budget_ms) || !r->U64(&mrp) ||
      !r->U64(&mtr) || !r->U8(&shed) || !r->U8(&fault) ||
      !r->Bool(&opts.shared_eval) || !r->Bool(&opts.batch_ingest) ||
      !ValidatePoliciesV1(r, late, shed, fault)) {
    return r->ToStatus("snapshot: sharded engine options");
  }
  if (snap_shards != num_shards_) {
    return Status::InvalidArgument(
        "snapshot was written with " + std::to_string(snap_shards) +
        " shards but this engine has " + std::to_string(num_shards_) +
        "; construct the restoring engine with num_shards = " +
        std::to_string(snap_shards) +
        " (per-shard run state cannot be re-hashed)");
  }
  opts.num_shards = options_.num_shards;  // constructed value, already equal
  opts.queue_capacity = static_cast<size_t>(queue_cap);
  opts.late_policy = static_cast<LatePolicy>(late);
  opts.max_runs_per_partition = static_cast<size_t>(mrp);
  opts.max_total_runs = static_cast<size_t>(mtr);
  opts.shed_policy = static_cast<ShedPolicy>(shed);
  opts.fault_policy = static_cast<FaultPolicy>(fault);
  options_ = opts;

  if (!r->U64(wal_cut)) return r->ToStatus("snapshot: wal cut");

  uint32_t num_streams = 0;
  if (!r->U32(&num_streams)) return r->ToStatus("snapshot: stream count");
  for (uint32_t i = 0; i < num_streams; ++i) {
    CEPR_ASSIGN_OR_RETURN(SchemaPtr schema, LoadSchema(r));
    CEPR_RETURN_IF_ERROR(RegisterSchema(schema));
    StreamState& state = streams_.find(ToLower(schema->name()))->second;
    if (!r->U64(&state.next_sequence) ||
        !state.reorder.LoadState(r, state.schema)) {
      return r->ToStatus("snapshot: stream '" + schema->name() + "'");
    }
  }

  uint64_t ingested = 0, quarantined = 0, deduped = 0, mw = 0, mr = 0;
  uint64_t d0 = 0, d1 = 0, d2 = 0, d3 = 0;
  bool qinj = false;
  if (!r->U64(&ingested) || !r->U64(&quarantined) || !r->U64(&deduped) ||
      !r->Bool(&qinj) || !r->U64(&mw) || !r->U64(&mr) || !r->U64(&d0) ||
      !r->U64(&d1) || !r->U64(&d2) || !r->U64(&d3)) {
    return r->ToStatus("snapshot: sharded engine counters");
  }
  events_ingested_.Store(ingested);
  events_quarantined_.Store(quarantined);
  merge_windows_.Store(mw);
  merge_results_.Store(mr);
  ckpt_written_.Store(d0);
  ckpt_bytes_.Store(d1);
  wal_appended_.Store(d2);
  replayed_.Store(d3);

  uint32_t num_queries = 0;
  if (!r->U32(&num_queries)) return r->ToStatus("snapshot: query count");
  for (uint32_t qi = 0; qi < num_queries; ++qi) {
    std::string name, text;
    QueryOptions qopts;
    if (!r->Str(&name) || !r->Str(&text) || !LoadQueryOptionsV1(r, &qopts)) {
      return r->ToStatus("snapshot: query registration " +
                         std::to_string(qi));
    }
    CEPR_RETURN_IF_ERROR(
        RegisterQuery(name, text, qopts, resolve ? resolve(name) : nullptr));
    QueryState& q = *queries_[qi];
    uint64_t ordinal = 0, delivered = 0;
    if (!r->U64(&ordinal) || !r->I64(&q.current_window) ||
        !r->I64(&q.merged_upto) || !r->U64(&delivered)) {
      return r->ToStatus("snapshot: query '" + name + "' router state");
    }
    q.ordinal.Store(ordinal);
    q.results_delivered.Store(delivered);
    EventUninterner uninterner(r, q.plan->schema());
    for (size_t s = 0; s < num_shards_; ++s) {
      uint32_t n = 0;
      if (!r->U32(&n)) return r->ToStatus("snapshot: query pending count");
      for (uint32_t j = 0; j < n; ++j) {
        RankedResult res;
        if (!LoadRankedResult(&uninterner, r, &res)) {
          return r->ToStatus("snapshot: query '" + name + "' pending results");
        }
        q.pending[s].push_back(std::move(res));
      }
    }
  }
  // Re-registration recomputed these; the saved values are the exact ones.
  queries_deduped_.Store(deduped);
  query_injector_ = query_injector_ || qinj;

  bool started = false;
  if (!r->Bool(&started)) return r->ToStatus("snapshot: worker flag");
  if (started) {
    // Build the cells on this thread, load their state, then spawn the
    // workers — std::thread creation publishes all prior writes to the new
    // threads.
    BuildShards();
    for (auto& shard : shards_) {
      for (uint32_t qi = 0; qi < queries_.size(); ++qi) {
        int64_t acked = 0;
        if (!r->I64(&acked)) return r->ToStatus("snapshot: shard ack");
        shard->acked_window[qi].store(acked, std::memory_order_relaxed);
        EventUninterner uninterner(r, queries_[qi]->plan->schema());
        uint32_t n = 0;
        if (!r->U32(&n)) return r->ToStatus("snapshot: shard publish count");
        for (uint32_t j = 0; j < n; ++j) {
          RankedResult res;
          if (!LoadRankedResult(&uninterner, r, &res)) {
            return r->ToStatus("snapshot: shard published results");
          }
          shard->published[qi].push_back(std::move(res));
        }
        QueryCell& cell = shard->cells[qi];
        if (!cell.emitter->LoadState(&uninterner, r) ||
            !cell.matcher->LoadState(&uninterner, r)) {
          return r->ToStatus("snapshot: shard " +
                             std::to_string(shard->index) + " query '" +
                             queries_[qi]->name + "' cell state");
        }
      }
      MetricsCell& m = shard->metrics;
      uint64_t c[8] = {0};
      for (auto& v : c) {
        if (!r->U64(&v)) return r->ToStatus("snapshot: shard metrics");
      }
      m.events.Store(c[0]);
      m.matches.Store(c[1]);
      m.barriers.Store(c[2]);
      m.batches_published.Store(c[3]);
      m.queue_high_water.Store(c[4]);
      m.enqueue_stalls.Store(c[5]);
      m.stall_us.Store(c[6]);
      m.stalls_tripped.Store(c[7]);
      for (MetricsCell::Timings& t : m.timings) {
        if (!t.processing_ns.Load(r) || !t.emission_delay_us.Load(r)) {
          return r->ToStatus("snapshot: shard latency histograms");
        }
      }
    }
    SpawnWorkers();
  }
  return r->ToStatus("snapshot: sharded engine body");
}

Status ShardedEngine::ReplayWal(const std::string& wal_path, uint64_t skip,
                                const SinkResolver& resolve) {
  std::vector<WalRecord> records;
  uint64_t dropped = 0;
  CEPR_RETURN_IF_ERROR(WalReader::ReadAll(wal_path, &records, &dropped));
  if (dropped > 0) {
    CEPR_LOG(WARNING) << "wal replay: dropped " << dropped
                      << " torn-tail byte(s) of '" << wal_path << "'";
  }
  if (records.size() < skip) {
    return Status::Corrupt(
        "wal '" + wal_path + "' holds " + std::to_string(records.size()) +
        " records but the snapshot cut is " + std::to_string(skip) +
        " (journal truncated after the checkpoint?)");
  }

  replaying_ = true;
  replayed_.Store(0);
  Status failed = Status::OK();
  for (size_t i = skip; i < records.size() && failed.ok(); ++i) {
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->ShouldFire(fault_points::kRestorePartialReplay,
                                            i - skip)) {
      failed = Status::Unavailable(
          "restore: injected crash after replaying " + std::to_string(i - skip) +
          " of " + std::to_string(records.size() - skip) + " wal records");
      break;
    }
    const WalRecord& rec = records[i];
    if (rec.kind == WalRecord::Kind::kFlush) {
      failed = Flush();
      continue;
    }
    if (rec.kind == WalRecord::Kind::kSchema) {
      BinReader pr(rec.payload);
      auto loaded = LoadSchema(&pr);
      if (!loaded.ok() || !pr.AtEnd()) {
        failed = Status::Corrupt("wal replay: record " + std::to_string(i) +
                                 " holds a malformed schema registration");
        break;
      }
      failed = RegisterSchema(loaded.value());
      continue;
    }
    if (rec.kind == WalRecord::Kind::kDeploy) {
      BinReader pr(rec.payload);
      std::string text;
      QueryOptions qopts;
      if (!pr.Str(&text) || !LoadQueryOptionsV1(&pr, &qopts) || !pr.AtEnd()) {
        failed = Status::Corrupt("wal replay: record " + std::to_string(i) +
                                 " holds a malformed deploy of query '" +
                                 rec.name + "'");
        break;
      }
      failed = RegisterQuery(rec.name, text, qopts,
                             resolve ? resolve(rec.name) : nullptr);
      continue;
    }
    if (rec.kind == WalRecord::Kind::kUndeploy) {
      // The sharded engine has no RemoveQuery; its WAL never holds one.
      failed = Status::Corrupt("wal replay: record " + std::to_string(i) +
                               " undeploys query '" + rec.name +
                               "' but the sharded engine cannot remove "
                               "queries");
      break;
    }
    auto schema = GetSchema(rec.stream);
    if (!schema.ok()) {
      failed = Status::Corrupt("wal replay: record " + std::to_string(i) +
                               " targets unregistered stream '" + rec.stream +
                               "'");
      break;
    }
    const Status s = Push(RebindWalEvent(schema.value(), rec.event));
    replayed_.Increment();
    if (!s.ok() && s.code() != StatusCode::kInvalidArgument) failed = s;
  }
  replaying_ = false;
  return failed;
}

Status ShardedEngine::Restore(const std::string& snapshot_path,
                              const std::string& wal_path,
                              const SinkResolver& resolve) {
  if (!streams_.empty() || !queries_.empty() || WorkersStarted() ||
      events_ingested_.Load() != 0 || wal_ != nullptr) {
    return Status::InvalidArgument(
        "Restore requires a pristine sharded engine (no streams, no queries, "
        "workers not started, no open WAL — pass the journal via wal_path)");
  }
  CEPR_ASSIGN_OR_RETURN(
      std::string body,
      ckpt::ReadSnapshotBody(snapshot_path, ckpt::EngineKind::kSharded));
  BinReader reader(body);
  uint64_t wal_cut = 0;
  CEPR_RETURN_IF_ERROR(LoadBody(&reader, resolve, &wal_cut));
  if (!reader.AtEnd()) {
    return Status::Corrupt("snapshot '" + snapshot_path + "': " +
                           std::to_string(reader.remaining()) +
                           " trailing byte(s) after the engine body");
  }
  if (!wal_path.empty()) {
    CEPR_RETURN_IF_ERROR(ReplayWal(wal_path, wal_cut, resolve));
    auto wal = std::make_unique<WalWriter>();
    CEPR_RETURN_IF_ERROR(wal->Open(wal_path, options_.fault_injector));
    wal_ = std::move(wal);
  }
  return Status::OK();
}

}  // namespace cepr
