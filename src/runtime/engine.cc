#include "runtime/engine.h"

#include "common/logging.h"
#include "common/strings.h"
#include "lang/parser.h"
#include "plan/compiler.h"

namespace cepr {

Engine::Engine(EngineOptions options) : options_(options) {}

ReorderConfig Engine::DefaultReorderConfig() const {
  ReorderConfig config;
  config.max_lateness_micros = options_.max_lateness_micros;
  config.late_policy =
      options_.late_policy != LatePolicy::kReject
          ? options_.late_policy
          : (options_.reject_out_of_order ? LatePolicy::kReject
                                          : LatePolicy::kClamp);
  return config;
}

Status Engine::ExecuteDdl(std::string_view ddl_text) {
  CEPR_ASSIGN_OR_RETURN(CreateStreamAst ast, ParseCreateStream(ddl_text));
  CEPR_ASSIGN_OR_RETURN(SchemaPtr schema,
                        Schema::Make(ast.name, std::move(ast.attributes)));
  return RegisterSchema(std::move(schema));
}

Status Engine::RegisterSchema(SchemaPtr schema) {
  if (schema == nullptr) return Status::InvalidArgument("schema is null");
  const std::string key = ToLower(schema->name());
  if (streams_.count(key) > 0) {
    return Status::AlreadyExists("stream '" + schema->name() +
                                 "' is already registered");
  }
  // StreamState is non-movable (the reorder buffer's atomic counters), so
  // build it in place.
  const auto [it, inserted] = streams_.try_emplace(key);
  it->second.schema = std::move(schema);
  it->second.reorder.set_config(DefaultReorderConfig());
  return Status::OK();
}

Status Engine::ConfigureStreamIngest(std::string_view stream_name,
                                     ReorderConfig config) {
  const auto it = streams_.find(ToLower(stream_name));
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + std::string(stream_name) +
                            "'");
  }
  if (it->second.reorder.saw_event()) {
    return Status::InvalidArgument(
        "stream '" + it->second.schema->name() +
        "' already has events; configure ingest before the first Push");
  }
  it->second.reorder.set_config(config);
  return Status::OK();
}

Result<SchemaPtr> Engine::GetSchema(std::string_view stream_name) const {
  const auto it = streams_.find(ToLower(stream_name));
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + std::string(stream_name) + "'");
  }
  return it->second.schema;
}

std::vector<std::string> Engine::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [key, state] : streams_) names.push_back(state.schema->name());
  return names;
}

Status Engine::RegisterQuery(std::string name, std::string_view query_text,
                             const QueryOptions& options, Sink* sink) {
  const std::string key = ToLower(name);
  if (queries_.count(key) > 0) {
    return Status::AlreadyExists("query '" + name + "' is already registered");
  }
  CEPR_ASSIGN_OR_RETURN(QueryAst ast, ParseQuery(query_text));
  CEPR_ASSIGN_OR_RETURN(SchemaPtr schema, GetSchema(ast.stream_name));
  CEPR_ASSIGN_OR_RETURN(AnalyzedQuery analyzed, Analyze(std::move(ast), schema));
  CEPR_ASSIGN_OR_RETURN(CompiledQueryPtr plan, Compile(std::move(analyzed)));

  RunningQuery::ForwardFn forward;
  if (!plan->into_stream.empty()) {
    if (EqualsIgnoreCase(plan->into_stream, plan->schema()->name())) {
      return Status::InvalidArgument(
          "EMIT INTO cannot target the query's own input stream");
    }
    CEPR_ASSIGN_OR_RETURN(forward, MakeForwarder(plan));
  }

  QueryOptions effective = options;
  effective.matcher = MergeEngineCaps(
      options.matcher, options_.max_runs_per_partition, options_.max_total_runs,
      options_.shed_policy, options_.fault_policy, options_.fault_injector);
  queries_.emplace(key, std::make_unique<RunningQuery>(
                            std::move(name), std::move(plan), effective, sink,
                            std::move(forward), &live_runs_));
  return Status::OK();
}

Result<RunningQuery::ForwardFn> Engine::MakeForwarder(
    const CompiledQueryPtr& plan) {
  // The derived stream's schema is the query's output row.
  std::vector<Attribute> attributes;
  for (size_t i = 0; i < plan->analyzed.output_names.size(); ++i) {
    attributes.push_back(Attribute{plan->analyzed.output_names[i],
                                   plan->analyzed.output_types[i], std::nullopt});
  }
  SchemaPtr derived;
  auto existing = GetSchema(plan->into_stream);
  if (existing.ok()) {
    // Validate the existing stream's shape against the query's outputs.
    derived = existing.value();
    if (derived->num_attributes() != attributes.size()) {
      return Status::InvalidArgument(
          "EMIT INTO " + plan->into_stream + ": stream has " +
          std::to_string(derived->num_attributes()) + " attributes but the "
          "query produces " + std::to_string(attributes.size()));
    }
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (!EqualsIgnoreCase(derived->attribute(i).name, attributes[i].name) ||
          derived->attribute(i).type != attributes[i].type) {
        return Status::InvalidArgument(
            "EMIT INTO " + plan->into_stream + ": attribute " +
            std::to_string(i) + " mismatch (stream has " +
            derived->attribute(i).name + " " +
            ValueTypeToString(derived->attribute(i).type) + ", query produces " +
            attributes[i].name + " " + ValueTypeToString(attributes[i].type) +
            ")");
      }
    }
  } else {
    CEPR_ASSIGN_OR_RETURN(derived,
                          Schema::Make(plan->into_stream, std::move(attributes)));
    CEPR_RETURN_IF_ERROR(RegisterSchema(derived));
    // Derived streams (EMIT INTO) receive score-ordered results whose event
    // times may interleave; they clamp instead of rejecting.
    streams_[ToLower(plan->into_stream)].reorder.set_config(
        ReorderConfig{0, LatePolicy::kClamp});
  }

  return RunningQuery::ForwardFn([this, derived](const RankedResult& r) {
    Event event(derived, r.match.last_ts, r.match.row);
    const Status s = Push(std::move(event));
    if (!s.ok()) {
      CEPR_LOG(WARNING) << "derived-stream push into " << derived->name()
                        << " failed: " << s.ToString();
    }
  });
}

Status Engine::RemoveQuery(std::string_view name) {
  const auto it = queries_.find(ToLower(name));
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + std::string(name) + "'");
  }
  it->second->Finish();
  queries_.erase(it);
  return Status::OK();
}

Result<const RunningQuery*> Engine::GetQuery(std::string_view name) const {
  const auto it = queries_.find(ToLower(name));
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + std::string(name) + "'");
  }
  return static_cast<const RunningQuery*>(it->second.get());
}

std::vector<std::string> Engine::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [key, query] : queries_) names.push_back(query->name());
  return names;
}

Result<QueryMetrics> Engine::GetQueryMetrics(std::string_view name) const {
  CEPR_ASSIGN_OR_RETURN(const RunningQuery* query, GetQuery(name));
  return query->metrics();
}

MetricsSnapshot Engine::Snapshot() const {
  MetricsSnapshot snap;
  snap.events_ingested = events_ingested_;
  snap.events_quarantined = events_quarantined_;
  for (const auto& [key, state] : streams_) {
    snap.reorder.Accumulate(state.reorder.stats());
  }
  snap.num_shards = 1;
  snap.queries.reserve(queries_.size());
  for (const auto& [key, query] : queries_) {
    snap.queries.push_back({query->name(), query->metrics()});
  }
  return snap;
}

Status Engine::Push(Event event) {
  if (event.schema() == nullptr) {
    return Status::InvalidArgument("event has no schema");
  }
  const auto it = streams_.find(ToLower(event.schema()->name()));
  if (it == streams_.end()) {
    return Status::NotFound("event stream '" + event.schema()->name() +
                            "' is not registered");
  }
  StreamState& state = it->second;
  if (event.schema() != state.schema) {
    return Status::InvalidArgument("event schema object does not match the "
                                   "registered schema for stream '" +
                                   state.schema->name() + "'");
  }
  if (event.values().size() != state.schema->num_attributes()) {
    return Status::InvalidArgument("event arity mismatch for stream '" +
                                   state.schema->name() + "'");
  }

  const Timestamp offered_ts = event.timestamp();
  std::vector<Event> released;
  switch (state.reorder.Offer(std::move(event), &released)) {
    case ReorderBuffer::Verdict::kLateRejected:
      return Status::InvalidArgument(
          "out-of-order event on stream '" + state.schema->name() +
          "': ts " + std::to_string(offered_ts) + " < watermark " +
          std::to_string(state.reorder.watermark()) +
          (state.reorder.config().max_lateness_micros > 0
               ? " (missed the lateness bound of " +
                     std::to_string(state.reorder.config().max_lateness_micros) +
                     "us)"
               : ""));
    case ReorderBuffer::Verdict::kLateDropped:
      // Counted in events_late_dropped; the stream proceeds.
      return Status::OK();
    case ReorderBuffer::Verdict::kAccepted:
      break;
  }
  return Route(state, std::move(released));
}

Status Engine::Route(StreamState& state, std::vector<Event> released) {
  for (Event& event : released) {
    event.set_sequence(state.next_sequence++);
    ++events_ingested_;

    if (push_depth_ >= kMaxPushDepth) {
      return Status::InvalidArgument(
          "derived-stream recursion exceeds depth " +
          std::to_string(kMaxPushDepth) + " (query composition cycle?)");
    }
    ++push_depth_;
    const auto shared = std::make_shared<const Event>(std::move(event));
    for (auto& [key, query] : queries_) {
      if (query->plan()->schema() == state.schema) {
        const Status s = query->OnEvent(shared);
        if (!s.ok()) {
          // Only kFailFast faults surface here (kSkipAndCount is contained
          // inside the matcher); the event was ingested, the stream stops.
          --push_depth_;
          return s;
        }
      }
    }
    --push_depth_;
  }
  return Status::OK();
}

Status Engine::Flush() {
  for (auto& [key, state] : streams_) {
    if (state.reorder.resident() == 0) continue;
    std::vector<Event> released;
    state.reorder.Flush(&released);
    CEPR_RETURN_IF_ERROR(Route(state, std::move(released)));
  }
  return Status::OK();
}

Status Engine::PushAll(std::vector<Event> events) {
  for (size_t i = 0; i < events.size(); ++i) {
    Status s = Push(std::move(events[i]));
    if (s.ok()) continue;
    if (options_.fault_policy == FaultPolicy::kSkipAndCount) {
      ++events_quarantined_;
      continue;
    }
    return Status(s.code(), "PushAll: event at index " + std::to_string(i) +
                                " of " + std::to_string(events.size()) +
                                " failed (prefix [0, " + std::to_string(i) +
                                ") already ingested): " + s.message());
  }
  return Status::OK();
}

void Engine::Finish() {
  // Flushing a query may forward results into derived streams, waking
  // downstream queries that may themselves need another flush; iterate to a
  // fixpoint (bounded by the composition-depth cap). Each round first
  // drains the reorder buffers so resident (still-unreleased) events reach
  // the queries before their windows close.
  for (int round = 0; round <= kMaxPushDepth; ++round) {
    const uint64_t before = events_ingested_;
    const Status flushed = Flush();
    if (!flushed.ok()) {
      CEPR_LOG(WARNING) << "Finish: reorder flush failed: "
                        << flushed.ToString();
    }
    for (auto& [key, query] : queries_) query->Finish();
    if (events_ingested_ == before) return;
  }
}

}  // namespace cepr
