#include "runtime/engine.h"

#include <algorithm>
#include <cstdint>

#include "common/logging.h"
#include "common/strings.h"
#include "lang/parser.h"
#include "plan/compiler.h"
#include "runtime/serde.h"

namespace cepr {

Engine::Engine(EngineOptions options) : options_(options) {}

ReorderConfig Engine::DefaultReorderConfig() const {
  ReorderConfig config;
  config.max_lateness_micros = options_.max_lateness_micros;
  config.late_policy =
      options_.late_policy != LatePolicy::kReject
          ? options_.late_policy
          : (options_.reject_out_of_order ? LatePolicy::kReject
                                          : LatePolicy::kClamp);
  return config;
}

Status Engine::ExecuteDdl(std::string_view ddl_text) {
  CEPR_ASSIGN_OR_RETURN(CreateStreamAst ast, ParseCreateStream(ddl_text));
  CEPR_ASSIGN_OR_RETURN(SchemaPtr schema,
                        Schema::Make(ast.name, std::move(ast.attributes)));
  return RegisterSchema(std::move(schema));
}

Status Engine::RegisterSchema(SchemaPtr schema) {
  if (schema == nullptr) return Status::InvalidArgument("schema is null");
  const std::string key = ToLower(schema->name());
  if (streams_.count(key) > 0) {
    return Status::AlreadyExists("stream '" + schema->name() +
                                 "' is already registered");
  }
  // StreamState is non-movable (the reorder buffer's atomic counters), so
  // build it in place.
  const auto [it, inserted] = streams_.try_emplace(key);
  it->second.schema = std::move(schema);
  it->second.reorder.set_config(DefaultReorderConfig());
  // Journal the registration so a crash before the next checkpoint does not
  // lose the stream (replay re-registers it before any of its events).
  if (wal_ != nullptr && !replaying_) {
    BinWriter blob;
    SaveSchema(&blob, *it->second.schema);
    CEPR_RETURN_IF_ERROR(wal_->AppendSchema(blob.buffer()));
    ++durability_.wal_records_appended;
  }
  return Status::OK();
}

Status Engine::ConfigureStreamIngest(std::string_view stream_name,
                                     ReorderConfig config) {
  const auto it = streams_.find(ToLower(stream_name));
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + std::string(stream_name) +
                            "'");
  }
  if (it->second.reorder.saw_event()) {
    return Status::InvalidArgument(
        "stream '" + it->second.schema->name() +
        "' already has events; configure ingest before the first Push");
  }
  it->second.reorder.set_config(config);
  return Status::OK();
}

Result<SchemaPtr> Engine::GetSchema(std::string_view stream_name) const {
  const auto it = streams_.find(ToLower(stream_name));
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + std::string(stream_name) + "'");
  }
  return it->second.schema;
}

std::vector<std::string> Engine::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [key, state] : streams_) names.push_back(state.schema->name());
  return names;
}

Status Engine::RegisterQuery(std::string name, std::string_view query_text,
                             const QueryOptions& options, Sink* sink) {
  const std::string key = ToLower(name);
  if (queries_.count(key) > 0) {
    return Status::AlreadyExists("query '" + name + "' is already registered");
  }
  CEPR_ASSIGN_OR_RETURN(QueryAst ast, ParseQuery(query_text));
  CEPR_ASSIGN_OR_RETURN(SchemaPtr schema, GetSchema(ast.stream_name));
  CEPR_ASSIGN_OR_RETURN(AnalyzedQuery analyzed, Analyze(std::move(ast), schema));
  CEPR_ASSIGN_OR_RETURN(CompiledQueryPtr plan, Compile(std::move(analyzed)));

  RunningQuery::ForwardFn forward;
  if (!plan->into_stream.empty()) {
    if (EqualsIgnoreCase(plan->into_stream, plan->schema()->name())) {
      return Status::InvalidArgument(
          "EMIT INTO cannot target the query's own input stream");
    }
    CEPR_ASSIGN_OR_RETURN(forward, MakeForwarder(plan));
  }

  QueryOptions effective = options;
  effective.matcher = MergeEngineCaps(
      options.matcher, options_.max_runs_per_partition, options_.max_total_runs,
      options_.shed_policy, options_.fault_policy, options_.fault_injector);
  auto running = std::make_unique<RunningQuery>(std::move(name), plan,
                                                effective, sink,
                                                std::move(forward), &live_runs_);
  if (options_.shared_eval) {
    bool deduped = false;
    running->set_nfa_template(template_registry_.Intern(*plan, &deduped));
    if (deduped) ++queries_deduped_;
    if (effective.matcher.fault_injector != nullptr) {
      // Injected fault schedules count matcher visits; only full per-query
      // visits reproduce the per-query path's positions exactly.
      degraded_faults_ = true;
    }
    StreamState* stream = StreamOf(plan);
    running->BindSharedStream(&stream->next_sequence, stream->next_sequence);
    queries_.emplace(key, std::move(running));
    RebuildSharedStream(*stream);
  } else {
    queries_.emplace(key, std::move(running));
  }
  // Keep the original (pre-merge) registration inputs: a checkpoint stores
  // them so Restore can re-register the query under its own engine caps.
  registrations_.insert_or_assign(
      key, QueryRegistration{std::string(query_text), options});
  RecomputeForwardTargets();
  // Journal the deploy (pre-merge options, like the snapshot) so a hot
  // deploy between checkpoints survives a crash at its stream position.
  if (wal_ != nullptr && !replaying_) {
    BinWriter blob;
    blob.Str(std::string(query_text));
    SaveQueryOptionsV1(&blob, options);
    CEPR_RETURN_IF_ERROR(
        wal_->AppendDeploy(queries_.find(key)->second->name(), blob.buffer()));
    ++durability_.wal_records_appended;
  }
  return Status::OK();
}

Engine::StreamState* Engine::StreamOf(const CompiledQueryPtr& plan) {
  const auto it = streams_.find(ToLower(plan->schema()->name()));
  return it == streams_.end() ? nullptr : &it->second;
}

void Engine::RebuildSharedStream(StreamState& state) {
  SharedStreamState& sh = state.shared;
  sh.by_slot.clear();
  sh.index.Clear();
  sh.hot.clear();
  sh.window_groups.clear();
  // queries_ is name-ordered, so slots come out name-sorted: the predicate
  // index's ascending-slot candidate lists are already in visit order.
  uint32_t slot = 0;
  for (auto& [key, query] : queries_) {
    if (query->plan()->schema() != state.schema) continue;
    sh.by_slot.push_back(query.get());
    sh.index.AddQuery(slot, query->plan().get());
    if (query->active_runs() > 0) sh.hot.insert(slot);
    const ReportWindowAssigner& w = query->emitter().windows();
    if (w.mode() == ReportWindowAssigner::Mode::kTime) {
      sh.window_groups[{0, w.span(), 0}].slots.push_back(slot);
    } else if (w.mode() == ReportWindowAssigner::Mode::kCount) {
      // Queries whose per-query ordinals agree mod n cross count-window
      // boundaries at the same stream positions.
      const int64_t n = w.every_n();
      const int64_t off =
          static_cast<int64_t>(query->registration_offset() %
                               static_cast<uint64_t>(n));
      sh.window_groups[{1, n, off}].slots.push_back(slot);
    }
    // kSingle windows never close on progress; no group needed.
    ++slot;
  }
}

Result<RunningQuery::ForwardFn> Engine::MakeForwarder(
    const CompiledQueryPtr& plan) {
  // The derived stream's schema is the query's output row.
  std::vector<Attribute> attributes;
  for (size_t i = 0; i < plan->analyzed.output_names.size(); ++i) {
    attributes.push_back(Attribute{plan->analyzed.output_names[i],
                                   plan->analyzed.output_types[i], std::nullopt});
  }
  SchemaPtr derived;
  auto existing = GetSchema(plan->into_stream);
  if (existing.ok()) {
    // Validate the existing stream's shape against the query's outputs.
    derived = existing.value();
    if (derived->num_attributes() != attributes.size()) {
      return Status::InvalidArgument(
          "EMIT INTO " + plan->into_stream + ": stream has " +
          std::to_string(derived->num_attributes()) + " attributes but the "
          "query produces " + std::to_string(attributes.size()));
    }
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (!EqualsIgnoreCase(derived->attribute(i).name, attributes[i].name) ||
          derived->attribute(i).type != attributes[i].type) {
        return Status::InvalidArgument(
            "EMIT INTO " + plan->into_stream + ": attribute " +
            std::to_string(i) + " mismatch (stream has " +
            derived->attribute(i).name + " " +
            ValueTypeToString(derived->attribute(i).type) + ", query produces " +
            attributes[i].name + " " + ValueTypeToString(attributes[i].type) +
            ")");
      }
    }
  } else {
    CEPR_ASSIGN_OR_RETURN(derived,
                          Schema::Make(plan->into_stream, std::move(attributes)));
    CEPR_RETURN_IF_ERROR(RegisterSchema(derived));
    // Derived streams (EMIT INTO) receive score-ordered results whose event
    // times may interleave; they clamp instead of rejecting.
    streams_[ToLower(plan->into_stream)].reorder.set_config(
        ReorderConfig{0, LatePolicy::kClamp});
  }

  return RunningQuery::ForwardFn([this, derived](const RankedResult& r) {
    Event event(derived, r.match.last_ts, r.match.row);
    const Status s = Push(std::move(event));
    if (!s.ok()) {
      CEPR_LOG(WARNING) << "derived-stream push into " << derived->name()
                        << " failed: " << s.ToString();
    }
  });
}

Status Engine::RemoveQuery(std::string_view name) {
  const auto it = queries_.find(ToLower(name));
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + std::string(name) + "'");
  }
  it->second->Finish();
  StreamState* stream =
      options_.shared_eval ? StreamOf(it->second->plan()) : nullptr;
  // Erasing drops the query's template reference: the last sharer of a
  // signature frees the interned NfaTemplate (weak registry entry).
  registrations_.erase(ToLower(name));
  queries_.erase(it);
  if (stream != nullptr) RebuildSharedStream(*stream);
  RecomputeForwardTargets();
  if (wal_ != nullptr && !replaying_) {
    CEPR_RETURN_IF_ERROR(wal_->AppendUndeploy(std::string(name)));
    ++durability_.wal_records_appended;
  }
  return Status::OK();
}

Result<const RunningQuery*> Engine::GetQuery(std::string_view name) const {
  const auto it = queries_.find(ToLower(name));
  if (it == queries_.end()) {
    return Status::NotFound("no query named '" + std::string(name) + "'");
  }
  return static_cast<const RunningQuery*>(it->second.get());
}

std::vector<std::string> Engine::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [key, query] : queries_) names.push_back(query->name());
  return names;
}

Result<QueryMetrics> Engine::GetQueryMetrics(std::string_view name) const {
  CEPR_ASSIGN_OR_RETURN(const RunningQuery* query, GetQuery(name));
  return query->metrics();
}

MetricsSnapshot Engine::Snapshot() const {
  MetricsSnapshot snap;
  snap.events_ingested = events_ingested_;
  snap.events_quarantined = events_quarantined_;
  snap.sharing.shared_eval = shared_eval_active();
  snap.sharing.queries_deduped = queries_deduped_;
  snap.sharing.live_templates = template_registry_.live_templates();
  for (const auto& [key, state] : streams_) {
    snap.reorder.Accumulate(state.reorder.stats());
    snap.sharing.predindex_probes += state.shared.index.probes();
    snap.sharing.predindex_candidates += state.shared.index.candidates();
    snap.sharing.batch_scan_events += state.shared.index.batch_scan_events();
    snap.sharing.bitmap_hits += state.shared.index.bitmap_hits();
    snap.sharing.shared_window_buffers += state.shared.window_groups.size();
  }
  snap.num_shards = 1;
  snap.durability = durability_;
  snap.queries.reserve(queries_.size());
  for (const auto& [key, query] : queries_) {
    snap.sharing.bytecode_compiled_preds += static_cast<uint64_t>(
        query->plan()->num_bytecode_programs);
    snap.queries.push_back({query->name(), query->metrics()});
  }
  return snap;
}

Result<Engine::StreamState*> Engine::OfferEvent(Event event,
                                                std::vector<Event>* released) {
  if (event.schema() == nullptr) {
    return Status::InvalidArgument("event has no schema");
  }
  const auto it = streams_.find(ToLower(event.schema()->name()));
  if (it == streams_.end()) {
    return Status::NotFound("event stream '" + event.schema()->name() +
                            "' is not registered");
  }
  StreamState& state = it->second;
  if (event.schema() != state.schema) {
    return Status::InvalidArgument("event schema object does not match the "
                                   "registered schema for stream '" +
                                   state.schema->name() + "'");
  }
  if (event.values().size() != state.schema->num_attributes()) {
    return Status::InvalidArgument("event arity mismatch for stream '" +
                                   state.schema->name() + "'");
  }

  // Journal the arrival before any state changes. Only top-level arrivals
  // are logged: derived-stream re-ingestion (push_depth_ > 0) is
  // regenerated deterministically by replaying its inputs, and replayed
  // records must not re-journal themselves. Late-rejected events ARE
  // journaled — the append precedes the verdict — so replay reproduces the
  // identical rejection at the identical position. On an append failure
  // (torn tail = simulated crash) the event is NOT applied: the dead
  // process and the recovered one agree the arrival never happened.
  if (wal_ != nullptr && !replaying_ && push_depth_ == 0) {
    CEPR_RETURN_IF_ERROR(wal_->AppendEvent(state.schema->name(), event));
    ++durability_.wal_records_appended;
  }

  const Timestamp offered_ts = event.timestamp();
  switch (state.reorder.Offer(std::move(event), released)) {
    case ReorderBuffer::Verdict::kLateRejected:
      return Status::InvalidArgument(
          "out-of-order event on stream '" + state.schema->name() +
          "': ts " + std::to_string(offered_ts) + " < watermark " +
          std::to_string(state.reorder.watermark()) +
          (state.reorder.config().max_lateness_micros > 0
               ? " (missed the lateness bound of " +
                     std::to_string(state.reorder.config().max_lateness_micros) +
                     "us)"
               : ""));
    case ReorderBuffer::Verdict::kLateDropped:
      // Counted in events_late_dropped; the stream proceeds.
      break;
    case ReorderBuffer::Verdict::kAccepted:
      break;
  }
  return &state;
}

Status Engine::Push(Event event) {
  std::vector<Event> released;
  CEPR_ASSIGN_OR_RETURN(StreamState * state,
                        OfferEvent(std::move(event), &released));
  return Route(*state, std::move(released));
}

bool Engine::RouteBatchable(const StreamState& state,
                            size_t num_released) const {
  // Batched screening needs the shared layer's probe, at least two events
  // to amortize the column build, and a stream no query re-ingests into
  // (forwarded events must interleave with the batch exactly as they would
  // per event, so forward targets stay on the per-event path).
  return options_.batch_ingest && num_released > 1 && shared_eval_active() &&
         !state.forward_target;
}

Status Engine::Route(StreamState& state, std::vector<Event> released) {
  if (RouteBatchable(state, released.size())) {
    return RouteBatch(state, std::move(released));
  }
  for (Event& event : released) {
    event.set_sequence(state.next_sequence++);
    ++events_ingested_;

    if (push_depth_ >= kMaxPushDepth) {
      return Status::InvalidArgument(
          "derived-stream recursion exceeds depth " +
          std::to_string(kMaxPushDepth) + " (query composition cycle?)");
    }
    ++push_depth_;
    const auto shared = std::make_shared<const Event>(std::move(event));
    const Status s = shared_eval_active() ? RouteShared(state, shared)
                                          : RouteAll(state, shared);
    --push_depth_;
    // Only kFailFast faults surface here (kSkipAndCount is contained
    // inside the matcher); the event was ingested, the stream stops.
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status Engine::RouteAll(StreamState& state, const EventPtr& event) {
  for (auto& [key, query] : queries_) {
    if (query->plan()->schema() != state.schema) continue;
    Status s;
    if (options_.shared_eval) {
      // Degraded shared mode: full visits, but ordinals stay derived from
      // the stream position (the query never self-counts in shared mode).
      bool evaluated = false;
      s = query->OnEventAt(event,
                           event->sequence() - query->registration_offset(),
                           /*candidate=*/true, &evaluated);
    } else {
      s = query->OnEvent(event);
    }
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status Engine::RouteBatch(StreamState& state, std::vector<Event> released) {
  SharedStreamState& sh = state.shared;

  // 1. One columnar screen for the whole release: cands[i] is exactly what
  // the per-event Probe would return for released[i] (sequence numbers are
  // not assigned yet, but probes never read them). The batch view borrows
  // the events; it is fully consumed before the visit loop moves them out.
  const EventBatch batch(released.data(), released.size(),
                         state.schema->num_attributes());
  std::vector<std::vector<uint32_t>> cands;
  cands.swap(sh.batch_cand_scratch);
  sh.index.ProbeBatch(batch, &cands);

  // 2. The per-event visit loop, unchanged from the scalar path: sequence
  // assignment, ingest accounting and delivery interleaving are identical.
  Status failed = Status::OK();
  for (size_t i = 0; i < released.size(); ++i) {
    Event& event = released[i];
    event.set_sequence(state.next_sequence++);
    ++events_ingested_;

    if (push_depth_ >= kMaxPushDepth) {
      failed = Status::InvalidArgument(
          "derived-stream recursion exceeds depth " +
          std::to_string(kMaxPushDepth) + " (query composition cycle?)");
      break;
    }
    ++push_depth_;
    const auto shared = std::make_shared<const Event>(std::move(event));
    const Status s = VisitShared(state, shared, cands[i]);
    --push_depth_;
    if (!s.ok()) {
      failed = s;
      break;
    }
  }
  cands.swap(sh.batch_cand_scratch);
  return failed;
}

Status Engine::RouteShared(StreamState& state, const EventPtr& event) {
  SharedStreamState& sh = state.shared;

  // Scratch is swapped out for the duration of the call: a query's EMIT
  // INTO forwarding can re-enter Route (even for this stream, through a
  // composition cycle) and must not clobber the vectors we iterate.
  std::vector<uint32_t> cand;
  cand.swap(sh.cand_scratch);
  cand.clear();

  // 1. Which queries can this event begin a run for?
  sh.index.Probe(*event, &cand);

  const Status s = VisitShared(state, event, cand);
  cand.swap(sh.cand_scratch);
  return s;
}

Status Engine::VisitShared(StreamState& state, const EventPtr& event,
                           const std::vector<uint32_t>& cand) {
  SharedStreamState& sh = state.shared;
  const uint64_t seq = event->sequence();
  const Timestamp ts = event->timestamp();

  std::vector<uint32_t> due;
  due.swap(sh.due_scratch);
  due.clear();

  // 2. Which skipped queries have a buffered report window closing here?
  // One boundary check per window scheme, not per query.
  for (auto& [group_key, group] : sh.window_groups) {
    const int64_t boundary =
        std::get<0>(group_key) == 0
            ? ts / std::get<1>(group_key)
            : static_cast<int64_t>(
                  (seq - static_cast<uint64_t>(std::get<2>(group_key))) /
                  static_cast<uint64_t>(std::get<1>(group_key)));
    if (boundary <= group.last) continue;
    group.last = boundary;
    for (const uint32_t slot : group.slots) {
      if (sh.by_slot[slot]->has_pending_window()) due.push_back(slot);
    }
  }
  std::sort(due.begin(), due.end());

  // 3. Visit candidates ∪ hot ∪ due ascending (= name order, the classic
  // path's delivery interleaving). Build the list first: visits mutate the
  // hot set.
  struct Visit {
    uint32_t slot;
    bool candidate;
    bool was_hot;
  };
  std::vector<Visit> visits;
  visits.reserve(cand.size() + sh.hot.size() + due.size());
  {
    auto ci = cand.begin();
    auto hi = sh.hot.begin();
    auto di = due.begin();
    while (ci != cand.end() || hi != sh.hot.end() || di != due.end()) {
      uint32_t next = UINT32_MAX;
      if (ci != cand.end()) next = std::min(next, *ci);
      if (hi != sh.hot.end()) next = std::min(next, *hi);
      if (di != due.end()) next = std::min(next, *di);
      Visit v{next, false, false};
      if (ci != cand.end() && *ci == next) {
        v.candidate = true;
        ++ci;
      }
      if (hi != sh.hot.end() && *hi == next) {
        v.was_hot = true;
        ++hi;
      }
      if (di != due.end() && *di == next) ++di;
      visits.push_back(v);
    }
  }

  Status failed = Status::OK();
  for (const Visit& v : visits) {
    RunningQuery* query = sh.by_slot[v.slot];
    if (!v.candidate && !v.was_hot) {
      // Window-due only: pure report-window progress, no matcher work.
      query->AdvanceWindows(ts, seq - query->registration_offset());
      continue;
    }
    bool evaluated = false;
    const Status s = query->OnEventAt(
        event, seq - query->registration_offset(), v.candidate, &evaluated);
    const bool now_hot = query->active_runs() > 0;
    if (now_hot != v.was_hot) {
      if (now_hot) {
        sh.hot.insert(v.slot);
      } else {
        sh.hot.erase(v.slot);
      }
    }
    if (!s.ok()) {
      failed = s;
      break;
    }
  }

  due.swap(sh.due_scratch);
  return failed;
}

Status Engine::Flush() {
  // A flush moves the release frontier, so replay must reproduce it at the
  // same journal position (Finish's flush rounds included — the markers are
  // idempotent against drained buffers).
  if (wal_ != nullptr && !replaying_) {
    CEPR_RETURN_IF_ERROR(wal_->AppendFlush());
    ++durability_.wal_records_appended;
  }
  for (auto& [key, state] : streams_) {
    if (state.reorder.resident() == 0) continue;
    std::vector<Event> released;
    state.reorder.Flush(&released);
    CEPR_RETURN_IF_ERROR(Route(state, std::move(released)));
  }
  return Status::OK();
}

Status Engine::PushAll(std::vector<Event> events) {
  // Maximal same-stream runs are screened in one columnar batch each
  // (RouteBatch); the boundaries — a stream change, an offer error, a
  // forward-target stream — flush the accumulated release so cross-stream
  // ordering and error positions stay exactly those of per-event Push.
  StreamState* current = nullptr;
  std::vector<Event> pending;
  const auto flush = [&]() -> Status {
    if (current == nullptr || pending.empty()) return Status::OK();
    StreamState& state = *current;
    std::vector<Event> batch;
    batch.swap(pending);
    return Route(state, std::move(batch));
  };

  for (size_t i = 0; i < events.size(); ++i) {
    std::vector<Event> released;
    auto offered = OfferEvent(std::move(events[i]), &released);
    Status s = offered.ok() ? Status::OK() : offered.status();
    if (s.ok()) {
      StreamState* state = offered.value();
      if (state != current) {
        CEPR_RETURN_IF_ERROR(flush());
        current = state;
      }
      if (!released.empty() && !RouteBatchable(*state, /*num_released=*/2)) {
        // Per-event streams (forward targets, batching off): route now,
        // keeping release order against any accumulated batch.
        CEPR_RETURN_IF_ERROR(flush());
        s = Route(*state, std::move(released));
      } else {
        for (Event& e : released) pending.push_back(std::move(e));
      }
    } else {
      // Offer-time failures (validation, late rejection) happen before any
      // routing; the accumulated release still precedes them in stream
      // order, so flush first.
      CEPR_RETURN_IF_ERROR(flush());
    }
    if (s.ok()) continue;
    if (options_.fault_policy == FaultPolicy::kSkipAndCount) {
      ++events_quarantined_;
      continue;
    }
    return Status(s.code(), "PushAll: event at index " + std::to_string(i) +
                                " of " + std::to_string(events.size()) +
                                " failed (prefix [0, " + std::to_string(i) +
                                ") already ingested): " + s.message());
  }
  return flush();
}

void Engine::RecomputeForwardTargets() {
  for (auto& [key, state] : streams_) state.forward_target = false;
  for (const auto& [key, query] : queries_) {
    const std::string& target = query->plan()->into_stream;
    if (target.empty()) continue;
    const auto it = streams_.find(ToLower(target));
    if (it != streams_.end()) it->second.forward_target = true;
  }
}

void Engine::Finish() {
  // Flushing a query may forward results into derived streams, waking
  // downstream queries that may themselves need another flush; iterate to a
  // fixpoint (bounded by the composition-depth cap). Each round first
  // drains the reorder buffers so resident (still-unreleased) events reach
  // the queries before their windows close.
  for (int round = 0; round <= kMaxPushDepth; ++round) {
    const uint64_t before = events_ingested_;
    const Status flushed = Flush();
    if (!flushed.ok()) {
      CEPR_LOG(WARNING) << "Finish: reorder flush failed: "
                        << flushed.ToString();
    }
    for (auto& [key, query] : queries_) query->Finish();
    if (events_ingested_ == before) return;
  }
}

}  // namespace cepr
