#ifndef CEPR_RUNTIME_CHECKPOINT_H_
#define CEPR_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/fault.h"
#include "common/result.h"
#include "common/status.h"

namespace cepr {

class Sink;

/// Supplies each restored query's sink during Engine::Restore /
/// ShardedEngine::Restore. Sinks hold user callbacks and cannot live inside
/// a snapshot, so recovery re-wires them by query name; returning null
/// drops that query's results (same contract as RegisterQuery).
using SinkResolver = std::function<Sink*(const std::string& query_name)>;

namespace ckpt {

/// Snapshot file layout, all little-endian:
///
///   [8-byte magic "CEPRCKPT"][u32 version][u8 engine_kind]
///   [u32 body_len][u32 crc32(body)][body]
///
/// The body is one opaque BinWriter blob produced by the owning engine's
/// SaveBody; the frame makes truncation and bit flips detectable before a
/// single body byte is decoded. Files are written atomically: the full
/// image goes to "<path>.tmp", is fsynced, then renamed over `path`, so a
/// crash mid-checkpoint leaves either the old snapshot or none — never a
/// half-written one (the `ckpt.kill_mid_write` fault point simulates
/// exactly that crash by abandoning the temp file).
inline constexpr char kMagic[8] = {'C', 'E', 'P', 'R', 'C', 'K', 'P', 'T'};
/// v2: MatcherStats gained the dag counters, matcher bodies gained the
/// DAG-group section, ranker bodies gained enumeration counters + pending
/// lazy sets (the shared-match-DAG feature). v1 snapshots are rejected.
inline constexpr uint32_t kVersion = 2;

enum class EngineKind : uint8_t { kSerial = 0, kSharded = 1 };

/// Frames `body` and writes it atomically to `path`. `attempt` is the
/// engine's checkpoint ordinal — the key the `ckpt.kill_mid_write` fault
/// point fires on (a firing writes a deliberately truncated temp file and
/// returns kIoError without renaming). On success *bytes_written is the
/// full snapshot file size.
Status WriteSnapshotFile(const std::string& path, EngineKind kind,
                         const std::string& body,
                         const FaultInjector* injector, uint64_t attempt,
                         uint64_t* bytes_written);

/// Reads `path`, validates magic/version/kind/CRC, and returns the body.
/// Truncated, bit-flipped or wrong-kind files fail with kCorrupt naming the
/// file and offset; a missing file is kNotFound.
Result<std::string> ReadSnapshotBody(const std::string& path,
                                     EngineKind expected_kind);

}  // namespace ckpt
}  // namespace cepr

#endif  // CEPR_RUNTIME_CHECKPOINT_H_
