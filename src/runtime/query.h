#ifndef CEPR_RUNTIME_QUERY_H_
#define CEPR_RUNTIME_QUERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/partition.h"
#include "rank/emitter.h"
#include "runtime/metrics.h"
#include "runtime/sink.h"

namespace cepr {

/// Per-query execution knobs.
struct QueryOptions {
  /// Ranking policy; kPruned is the full CEPR configuration, the others
  /// exist as evaluation baselines and for ablations.
  RankerPolicy ranker = RankerPolicy::kPruned;
  MatcherOptions matcher;
};

/// One registered query's executable pipeline:
///   event -> PartitionedMatcher -> matches -> Emitter(Ranker) -> Sink.
/// Owned by the Engine; single-threaded.
class RunningQuery {
 public:
  /// `forward` (nullable) re-ingests each emitted result as a derived-stream
  /// event (EMIT ... INTO); installed by the Engine.
  using ForwardFn = std::function<void(const RankedResult&)>;

  /// `live_runs` (nullable) is the engine-wide budget counter shared by
  /// all queries (see MatcherOptions::max_total_runs).
  RunningQuery(std::string name, CompiledQueryPtr plan, QueryOptions options,
               Sink* sink, ForwardFn forward = nullptr,
               size_t* live_runs = nullptr);

  /// Feeds one event (already validated against the query's stream).
  /// Fails only on a runtime fault under FaultPolicy::kFailFast; the
  /// window/ranking state stays coherent either way.
  Status OnEvent(const EventPtr& event);

  /// End of stream: flushes buffered windows to the sink.
  void Finish();

  const std::string& name() const { return name_; }
  const CompiledQueryPtr& plan() const { return plan_; }
  /// Snapshot of the metrics (matcher counters copied on call).
  QueryMetrics metrics() const;
  size_t active_runs() const { return matcher_.active_runs(); }
  size_t MemoryEstimate() const { return matcher_.MemoryEstimate(); }

 private:
  void Deliver(std::vector<RankedResult> results);

  std::string name_;
  CompiledQueryPtr plan_;
  QueryOptions options_;
  Sink* sink_;  // not owned; must outlive the query
  ForwardFn forward_;
  Emitter emitter_;
  PartitionedMatcher matcher_;
  QueryMetrics metrics_;
  uint64_t ordinal_ = 0;        // events seen by this query
  Timestamp last_event_ts_ = 0; // emission-delay bookkeeping
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_QUERY_H_
