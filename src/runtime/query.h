#ifndef CEPR_RUNTIME_QUERY_H_
#define CEPR_RUNTIME_QUERY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/partition.h"
#include "plan/signature.h"
#include "rank/emitter.h"
#include "runtime/metrics.h"
#include "runtime/sink.h"

namespace cepr {

/// Per-query execution knobs.
struct QueryOptions {
  /// Ranking policy; kPruned is the full CEPR configuration, the others
  /// exist as evaluation baselines and for ablations.
  RankerPolicy ranker = RankerPolicy::kPruned;
  MatcherOptions matcher;
};

/// One registered query's executable pipeline:
///   event -> PartitionedMatcher -> matches -> Emitter(Ranker) -> Sink.
/// Owned by the Engine; single-threaded.
class RunningQuery {
 public:
  /// `forward` (nullable) re-ingests each emitted result as a derived-stream
  /// event (EMIT ... INTO); installed by the Engine.
  using ForwardFn = std::function<void(const RankedResult&)>;

  /// `live_runs` (nullable) is the engine-wide budget counter shared by
  /// all queries (see MatcherOptions::max_total_runs).
  RunningQuery(std::string name, CompiledQueryPtr plan, QueryOptions options,
               Sink* sink, ForwardFn forward = nullptr,
               size_t* live_runs = nullptr);

  /// Feeds one event (already validated against the query's stream).
  /// Fails only on a runtime fault under FaultPolicy::kFailFast; the
  /// window/ranking state stays coherent either way.
  Status OnEvent(const EventPtr& event);

  /// Shared-evaluation entry: like OnEvent but with the per-query ordinal
  /// supplied by the caller (stream sequence minus registration offset —
  /// the shared layer does not visit this query on every event, so it
  /// cannot count locally) and the predicate-index verdict. When
  /// `candidate` is false and the event's partition holds no runs the
  /// matcher visit is skipped (`*evaluated` = false); the emitter still
  /// advances so report windows close at the same positions as the
  /// per-query path. Timing is recorded only for evaluated events.
  Status OnEventAt(const EventPtr& event, uint64_t ordinal, bool candidate,
                   bool* evaluated);

  /// Pure window progress for an event this query was not visited on:
  /// closes any report window the position (ts, ordinal) moves past and
  /// delivers its results, exactly as the matcher-visiting path would.
  void AdvanceWindows(Timestamp ts, uint64_t ordinal);

  /// True iff a buffered report window is open — i.e. skipping window
  /// advancement on a boundary-crossing event would delay emission.
  bool has_pending_window() const { return emitter_.has_buffered_results(); }

  /// End of stream: flushes buffered windows to the sink.
  void Finish();

  const std::string& name() const { return name_; }
  const CompiledQueryPtr& plan() const { return plan_; }
  const Emitter& emitter() const { return emitter_; }
  /// Snapshot of the metrics (matcher counters copied on call). Under
  /// shared evaluation `events` is derived from the stream position (every
  /// stream event logically reaches every query, visited or skipped).
  QueryMetrics metrics() const;
  size_t active_runs() const { return matcher_.active_runs(); }
  size_t MemoryEstimate() const { return matcher_.MemoryEstimate(); }

  /// Shared-evaluation bookkeeping, installed at registration: the owning
  /// stream's sequence counter and this query's registration offset
  /// (`*stream_sequence - offset` = events logically seen).
  void BindSharedStream(const uint64_t* stream_sequence, uint64_t offset) {
    stream_sequence_ = stream_sequence;
    registration_offset_ = offset;
  }
  uint64_t registration_offset() const { return registration_offset_; }

  /// Checkpoint serialization of the query's full mutable pipeline state:
  /// metric counters/histograms, the per-query event ordinal, the emitter's
  /// ranking state and every partition's run set. Load expects a freshly
  /// registered query with the same plan and options; the shared-stream
  /// pointer installed by BindSharedStream is left untouched (the engine
  /// rebinds it at re-registration).
  void SaveState(EventInterner* in, BinWriter* w) const;
  bool LoadState(EventUninterner* in, BinReader* r);

  /// The interned NFA template this query shares (null when shared
  /// evaluation is off). Held here so the template's refcount tracks query
  /// lifetime — hot-removing the last sharer frees it.
  void set_nfa_template(std::shared_ptr<const NfaTemplate> t) {
    nfa_template_ = std::move(t);
  }
  const std::shared_ptr<const NfaTemplate>& nfa_template() const {
    return nfa_template_;
  }

 private:
  void Deliver(std::vector<RankedResult> results);

  std::string name_;
  CompiledQueryPtr plan_;
  QueryOptions options_;
  Sink* sink_;  // not owned; must outlive the query
  ForwardFn forward_;
  Emitter emitter_;
  PartitionedMatcher matcher_;
  QueryMetrics metrics_;
  uint64_t ordinal_ = 0;        // events seen by this query (per-query path)
  Timestamp last_event_ts_ = 0; // emission-delay bookkeeping
  const uint64_t* stream_sequence_ = nullptr;  // shared mode; not owned
  uint64_t registration_offset_ = 0;
  std::shared_ptr<const NfaTemplate> nfa_template_;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_QUERY_H_
