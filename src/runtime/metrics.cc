#include "runtime/metrics.h"

namespace cepr {

std::string QueryMetrics::ToString() const {
  std::string out;
  out += "events=" + std::to_string(events);
  out += " matches=" + std::to_string(matches);
  out += " results=" + std::to_string(results);
  out += " | " + matcher.ToString();
  out += " | prune_checks=" + std::to_string(prune_checks);
  out += " prunes=" + std::to_string(prunes);
  out += "\n  processing_ns: " + event_processing_ns.Summary();
  out += "\n  emission_delay_us: " + emission_delay_us.Summary();
  return out;
}

std::string ShardStats::ToString() const {
  std::string out;
  out += "events=" + std::to_string(events);
  out += " matches=" + std::to_string(matches);
  out += " barriers=" + std::to_string(barriers);
  out += " batches=" + std::to_string(batches_published);
  out += " queue_high_water=" + std::to_string(queue_high_water);
  out += " enqueue_stalls=" + std::to_string(enqueue_stalls);
  return out;
}

std::string MergeStats::ToString() const {
  return "windows_merged=" + std::to_string(windows_merged) +
         " results_emitted=" + std::to_string(results_emitted);
}

}  // namespace cepr
