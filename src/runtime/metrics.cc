#include "runtime/metrics.h"

namespace cepr {

std::string QueryMetrics::ToString() const {
  std::string out;
  out += "events=" + std::to_string(events);
  out += " matches=" + std::to_string(matches);
  out += " results=" + std::to_string(results);
  out += " | " + matcher.ToString();
  out += " | prune_checks=" + std::to_string(prune_checks);
  out += " prunes=" + std::to_string(prunes);
  out += "\n  processing_ns: " + event_processing_ns.Summary();
  out += "\n  emission_delay_us: " + emission_delay_us.Summary();
  return out;
}

}  // namespace cepr
