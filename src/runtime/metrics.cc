#include "runtime/metrics.h"

namespace cepr {

namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MatcherJson(const MatcherStats& m) {
  std::string out = "{";
  out += "\"events\":" + std::to_string(m.events);
  out += ",\"runs_created\":" + std::to_string(m.runs_created);
  out += ",\"runs_forked\":" + std::to_string(m.runs_forked);
  out += ",\"runs_completed\":" + std::to_string(m.runs_completed);
  out += ",\"runs_expired\":" + std::to_string(m.runs_expired);
  out += ",\"runs_killed_strict\":" + std::to_string(m.runs_killed_strict);
  out += ",\"runs_killed_negation\":" + std::to_string(m.runs_killed_negation);
  out += ",\"runs_pruned_score\":" + std::to_string(m.runs_pruned_score);
  out += ",\"runs_dropped_capacity\":" + std::to_string(m.runs_dropped_capacity);
  out += ",\"events_quarantined\":" + std::to_string(m.events_quarantined);
  out += ",\"runs_poisoned\":" + std::to_string(m.runs_poisoned);
  out += ",\"matches\":" + std::to_string(m.matches);
  out += ",\"runs_cloned\":" + std::to_string(m.runs_cloned);
  out += ",\"binding_nodes_allocated\":" + std::to_string(m.binding_nodes_allocated);
  out += ",\"predcache_hits\":" + std::to_string(m.predcache_hits);
  out += ",\"predcache_misses\":" + std::to_string(m.predcache_misses);
  out += ",\"dag_nodes_allocated\":" + std::to_string(m.dag_nodes_allocated);
  out += ",\"dag_nodes_shared\":" + std::to_string(m.dag_nodes_shared);
  out += ",\"peak_active_runs\":" + std::to_string(m.peak_active_runs);
  out += ",\"peak_dag_nodes\":" + std::to_string(m.peak_dag_nodes);
  out += "}";
  return out;
}

}  // namespace

std::string QueryMetrics::ToString() const {
  std::string out;
  out += "events=" + std::to_string(events);
  out += " matches=" + std::to_string(matches);
  out += " results=" + std::to_string(results);
  out += " | " + matcher.ToString();
  out += " | prune_checks=" + std::to_string(prune_checks);
  out += " prunes=" + std::to_string(prunes);
  out += " matches_enumerated=" + std::to_string(matches_enumerated);
  out += " enumeration_cutoffs=" + std::to_string(enumeration_cutoffs);
  out += "\n  processing_ns: " + event_processing_ns.Summary();
  out += "\n  emission_delay_us: " + emission_delay_us.Summary();
  return out;
}

std::string QueryMetrics::ToJson() const {
  std::string out = "{";
  out += "\"events\":" + std::to_string(events);
  out += ",\"matches\":" + std::to_string(matches);
  out += ",\"results\":" + std::to_string(results);
  out += ",\"prune_checks\":" + std::to_string(prune_checks);
  out += ",\"prunes\":" + std::to_string(prunes);
  out += ",\"matches_enumerated\":" + std::to_string(matches_enumerated);
  out += ",\"enumeration_cutoffs\":" + std::to_string(enumeration_cutoffs);
  out += ",\"matcher\":" + MatcherJson(matcher);
  out += ",\"processing_ns\":" + event_processing_ns.ToJson();
  out += ",\"emission_delay_us\":" + emission_delay_us.ToJson();
  out += "}";
  return out;
}

std::string ShardStats::ToString() const {
  std::string out;
  out += "events=" + std::to_string(events);
  out += " matches=" + std::to_string(matches);
  out += " barriers=" + std::to_string(barriers);
  out += " batches=" + std::to_string(batches_published);
  out += " queue_high_water=" + std::to_string(queue_high_water);
  out += " enqueue_stalls=" + std::to_string(enqueue_stalls);
  out += " stall_us=" + std::to_string(stall_us);
  out += " stalls_tripped=" + std::to_string(stalls_tripped);
  return out;
}

std::string ShardStats::ToJson() const {
  std::string out = "{";
  out += "\"events\":" + std::to_string(events);
  out += ",\"matches\":" + std::to_string(matches);
  out += ",\"barriers\":" + std::to_string(barriers);
  out += ",\"batches_published\":" + std::to_string(batches_published);
  out += ",\"queue_high_water\":" + std::to_string(queue_high_water);
  out += ",\"enqueue_stalls\":" + std::to_string(enqueue_stalls);
  out += ",\"stall_us\":" + std::to_string(stall_us);
  out += ",\"stalls_tripped\":" + std::to_string(stalls_tripped);
  out += "}";
  return out;
}

std::string SharingStats::ToString() const {
  std::string out;
  out += "shared_eval=" + std::string(shared_eval ? "on" : "off");
  out += " queries_deduped=" + std::to_string(queries_deduped);
  out += " live_templates=" + std::to_string(live_templates);
  out += " predindex_probes=" + std::to_string(predindex_probes);
  out += " predindex_candidates=" + std::to_string(predindex_candidates);
  out += " batch_scan_events=" + std::to_string(batch_scan_events);
  out += " bitmap_hits=" + std::to_string(bitmap_hits);
  out += " bytecode_compiled_preds=" + std::to_string(bytecode_compiled_preds);
  out += " shared_window_buffers=" + std::to_string(shared_window_buffers);
  return out;
}

std::string SharingStats::ToJson() const {
  std::string out = "{";
  out += "\"shared_eval\":" + std::string(shared_eval ? "true" : "false");
  out += ",\"queries_deduped\":" + std::to_string(queries_deduped);
  out += ",\"live_templates\":" + std::to_string(live_templates);
  out += ",\"predindex_probes\":" + std::to_string(predindex_probes);
  out += ",\"predindex_candidates\":" + std::to_string(predindex_candidates);
  out += ",\"batch_scan_events\":" + std::to_string(batch_scan_events);
  out += ",\"bitmap_hits\":" + std::to_string(bitmap_hits);
  out += ",\"bytecode_compiled_preds\":" +
         std::to_string(bytecode_compiled_preds);
  out += ",\"shared_window_buffers\":" + std::to_string(shared_window_buffers);
  out += "}";
  return out;
}

std::string DurabilityStats::ToString() const {
  std::string out;
  out += "checkpoints_written=" + std::to_string(checkpoints_written);
  out += " checkpoint_bytes=" + std::to_string(checkpoint_bytes);
  out += " wal_records_appended=" + std::to_string(wal_records_appended);
  out += " recovery_events_replayed=" + std::to_string(recovery_events_replayed);
  return out;
}

std::string DurabilityStats::ToJson() const {
  std::string out = "{";
  out += "\"checkpoints_written\":" + std::to_string(checkpoints_written);
  out += ",\"checkpoint_bytes\":" + std::to_string(checkpoint_bytes);
  out += ",\"wal_records_appended\":" + std::to_string(wal_records_appended);
  out += ",\"recovery_events_replayed\":" +
         std::to_string(recovery_events_replayed);
  out += "}";
  return out;
}

std::string MergeStats::ToString() const {
  return "windows_merged=" + std::to_string(windows_merged) +
         " results_emitted=" + std::to_string(results_emitted);
}

std::string MergeStats::ToJson() const {
  return "{\"windows_merged\":" + std::to_string(windows_merged) +
         ",\"results_emitted\":" + std::to_string(results_emitted) + "}";
}

ShardStats MetricsCell::Snapshot() const {
  ShardStats s;
  s.events = events.Load();
  s.matches = matches.Load();
  s.barriers = barriers.Load();
  s.batches_published = batches_published.Load();
  s.queue_high_water = static_cast<size_t>(queue_high_water.Load());
  s.enqueue_stalls = enqueue_stalls.Load();
  s.stall_us = stall_us.Load();
  s.stalls_tripped = stalls_tripped.Load();
  return s;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  out += "events_ingested=" + std::to_string(events_ingested);
  out += " events_quarantined=" + std::to_string(events_quarantined);
  out += " events_reordered=" + std::to_string(reorder.events_reordered);
  out += " events_late_dropped=" + std::to_string(reorder.events_late_dropped);
  out += " events_clamped=" + std::to_string(reorder.events_clamped);
  out += " reorder_buffer_peak=" + std::to_string(reorder.reorder_buffer_peak);
  out += " num_shards=" + std::to_string(num_shards);
  out += "\nsharing: " + sharing.ToString();
  out += "\ndurability: " + durability.ToString();
  for (const QueryEntry& q : queries) {
    out += "\nquery " + q.name + ": " + q.metrics.ToString();
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    out += "\nshard " + std::to_string(s) + ": " + shards[s].ToString();
  }
  if (!shards.empty()) out += "\nmerge: " + merge.ToString();
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  out += "\"events_ingested\":" + std::to_string(events_ingested);
  out += ",\"events_quarantined\":" + std::to_string(events_quarantined);
  out += ",\"reorder\":{";
  out += "\"events_reordered\":" + std::to_string(reorder.events_reordered);
  out += ",\"events_late_dropped\":" + std::to_string(reorder.events_late_dropped);
  out += ",\"events_clamped\":" + std::to_string(reorder.events_clamped);
  out += ",\"reorder_buffer_peak\":" + std::to_string(reorder.reorder_buffer_peak);
  out += "}";
  out += ",\"num_shards\":" + std::to_string(num_shards);
  out += ",\"queries\":[";
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(queries[i].name) +
           "\",\"metrics\":" + queries[i].metrics.ToJson() + "}";
  }
  out += "],\"shards\":[";
  for (size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) out += ",";
    out += shards[i].ToJson();
  }
  out += "],\"merge\":" + merge.ToJson();
  out += ",\"sharing\":" + sharing.ToJson();
  out += ",\"durability\":" + durability.ToJson();
  out += "}";
  return out;
}

}  // namespace cepr
