#include "runtime/query.h"

#include "common/binio.h"
#include "common/stopwatch.h"
#include "runtime/serde.h"

namespace cepr {

namespace {

/// Dag mode defers matches to window close, so it composes only with the
/// buffered heap-based policies; every other ranking policy falls back to
/// the per-run path regardless of the knob.
MatcherOptions GateDagMode(MatcherOptions options, RankerPolicy policy) {
  if (policy != RankerPolicy::kHeap && policy != RankerPolicy::kPruned) {
    options.shared_match_dag = false;
  }
  return options;
}

}  // namespace

RunningQuery::RunningQuery(std::string name, CompiledQueryPtr plan,
                           QueryOptions options, Sink* sink, ForwardFn forward,
                           size_t* live_runs)
    : name_(std::move(name)),
      plan_(std::move(plan)),
      options_(options),
      sink_(sink),
      forward_(std::move(forward)),
      emitter_(plan_, options.ranker),
      // Note: the emitter's ranker may itself have degraded the policy
      // (e.g. no RANK BY -> passthrough), so gate on its resolved policy.
      matcher_(plan_,
               GateDagMode(options.matcher, emitter_.ranker().policy()),
               emitter_.pruner(), live_runs) {
  emitter_.BindDagStore(matcher_.dag_store());
}

Status RunningQuery::OnEvent(const EventPtr& event) {
  Stopwatch timer;
  ++metrics_.events;
  last_event_ts_ = event->timestamp();

  std::vector<Match> matches;
  std::vector<LazyMatchSet> lazy;
  const bool dag = matcher_.dag_store() != nullptr;
  const Status matched =
      matcher_.OnEvent(event, &matches, dag ? &lazy : nullptr);
  metrics_.matches += matches.size() + lazy.size();

  // The emitter advances even on a fault so the window state stays
  // coherent; `matches` is empty in that case.
  std::vector<RankedResult> results;
  emitter_.OnEvent(event->timestamp(), ordinal_++, std::move(matches),
                   std::move(lazy), &results);
  Deliver(std::move(results));

  metrics_.event_processing_ns.Record(timer.ElapsedNanos());
  return matched;
}

Status RunningQuery::OnEventAt(const EventPtr& event, uint64_t ordinal,
                               bool candidate, bool* evaluated) {
  Stopwatch timer;
  last_event_ts_ = event->timestamp();

  std::vector<Match> matches;
  std::vector<LazyMatchSet> lazy;
  const bool dag = matcher_.dag_store() != nullptr;
  const Status matched = matcher_.OnEvent(event, &matches, candidate,
                                          evaluated, dag ? &lazy : nullptr);
  metrics_.matches += matches.size() + lazy.size();

  // The emitter advances unconditionally — even when the matcher visit was
  // skipped or faulted — so window closes land at the same (ts, ordinal)
  // positions the per-query path produces.
  std::vector<RankedResult> results;
  emitter_.OnEvent(event->timestamp(), ordinal, std::move(matches),
                   std::move(lazy), &results);
  Deliver(std::move(results));

  if (*evaluated) metrics_.event_processing_ns.Record(timer.ElapsedNanos());
  return matched;
}

void RunningQuery::AdvanceWindows(Timestamp ts, uint64_t ordinal) {
  last_event_ts_ = ts;
  std::vector<RankedResult> results;
  emitter_.OnEvent(ts, ordinal, {}, &results);
  Deliver(std::move(results));
}

void RunningQuery::Finish() {
  std::vector<RankedResult> results;
  emitter_.Finish(&results);
  Deliver(std::move(results));
}

void RunningQuery::Deliver(std::vector<RankedResult> results) {
  for (RankedResult& r : results) {
    metrics_.emission_delay_us.Record(last_event_ts_ - r.match.last_ts);
    ++metrics_.results;
    if (sink_ != nullptr) sink_->OnResult(r);
    if (forward_ != nullptr) forward_(r);
  }
}

void RunningQuery::SaveState(EventInterner* in, BinWriter* w) const {
  w->U64(metrics_.events);
  w->U64(metrics_.matches);
  w->U64(metrics_.results);
  metrics_.event_processing_ns.Save(w);
  metrics_.emission_delay_us.Save(w);
  w->U64(ordinal_);
  w->I64(last_event_ts_);
  w->U64(registration_offset_);
  emitter_.SaveState(in, w);
  matcher_.SaveState(in, w);
}

bool RunningQuery::LoadState(EventUninterner* in, BinReader* r) {
  return r->U64(&metrics_.events) && r->U64(&metrics_.matches) &&
         r->U64(&metrics_.results) && metrics_.event_processing_ns.Load(r) &&
         metrics_.emission_delay_us.Load(r) && r->U64(&ordinal_) &&
         r->I64(&last_event_ts_) && r->U64(&registration_offset_) &&
         emitter_.LoadState(in, r) && matcher_.LoadState(in, r);
}

QueryMetrics RunningQuery::metrics() const {
  QueryMetrics snapshot = metrics_;
  if (stream_sequence_ != nullptr) {
    // Shared evaluation: the engine does not visit this query per event,
    // so count events from the stream position instead — every stream
    // event since registration logically reached the query.
    snapshot.events = *stream_sequence_ - registration_offset_;
  }
  snapshot.matcher = matcher_.stats();
  if (emitter_.score_pruner() != nullptr) {
    snapshot.prune_checks = emitter_.score_pruner()->checks();
    snapshot.prunes = emitter_.score_pruner()->prunes();
  }
  snapshot.matches_enumerated = emitter_.ranker().matches_enumerated();
  snapshot.enumeration_cutoffs = emitter_.ranker().enumeration_cutoffs();
  return snapshot;
}

}  // namespace cepr
