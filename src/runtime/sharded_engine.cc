#include "runtime/sharded_engine.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "lang/parser.h"
#include "plan/compiler.h"
#include "runtime/serde.h"

namespace cepr {

namespace {
constexpr int64_t kAckedAll = std::numeric_limits<int64_t>::max();
}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineOptions options)
    : options_(options),
      num_shards_(options.num_shards != 0
                      ? options.num_shards
                      : std::max(1u, std::thread::hardware_concurrency())) {}

ShardedEngine::~ShardedEngine() {
  if (WorkersStarted() && !finished_) {
    // Stop workers without delivering: the user's sinks may already be
    // gone. Finish() is the orderly path. The abort flag (instead of a
    // kFinish message) guarantees teardown even when a shard's ring is
    // full or its consumer is wedged in an injected stall.
    abort_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->park_mu);
      shard->park_cv.notify_one();
    }
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }
}

Status ShardedEngine::ExecuteDdl(std::string_view ddl_text) {
  CEPR_ASSIGN_OR_RETURN(CreateStreamAst ast, ParseCreateStream(ddl_text));
  CEPR_ASSIGN_OR_RETURN(SchemaPtr schema,
                        Schema::Make(ast.name, std::move(ast.attributes)));
  return RegisterSchema(std::move(schema));
}

Status ShardedEngine::RegisterSchema(SchemaPtr schema) {
  if (schema == nullptr) return Status::InvalidArgument("schema is null");
  const std::string key = ToLower(schema->name());
  if (streams_.count(key) > 0) {
    return Status::AlreadyExists("stream '" + schema->name() +
                                 "' is already registered");
  }
  // StreamState is non-movable (the reorder buffer's atomic counters), so
  // build it in place.
  const auto [it, inserted] = streams_.try_emplace(key);
  it->second.schema = std::move(schema);
  it->second.reorder.set_config(DefaultReorderConfig());
  // Journal the registration so a crash before the next checkpoint does not
  // lose the stream (replay re-registers it before any of its events).
  if (wal_ != nullptr && !replaying_) {
    BinWriter blob;
    SaveSchema(&blob, *it->second.schema);
    CEPR_RETURN_IF_ERROR(wal_->AppendSchema(blob.buffer()));
    wal_appended_.Increment();
  }
  return Status::OK();
}

ReorderConfig ShardedEngine::DefaultReorderConfig() const {
  ReorderConfig config;
  config.max_lateness_micros = options_.max_lateness_micros;
  config.late_policy =
      options_.late_policy != LatePolicy::kReject
          ? options_.late_policy
          : (options_.reject_out_of_order ? LatePolicy::kReject
                                          : LatePolicy::kClamp);
  return config;
}

Status ShardedEngine::ConfigureStreamIngest(std::string_view stream_name,
                                            ReorderConfig config) {
  const auto it = streams_.find(ToLower(stream_name));
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + std::string(stream_name) +
                            "'");
  }
  if (it->second.reorder.saw_event()) {
    return Status::InvalidArgument(
        "stream '" + it->second.schema->name() +
        "' already has events; configure ingest before the first Push");
  }
  it->second.reorder.set_config(config);
  return Status::OK();
}

Result<SchemaPtr> ShardedEngine::GetSchema(std::string_view stream_name) const {
  const auto it = streams_.find(ToLower(stream_name));
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + std::string(stream_name) +
                            "'");
  }
  return it->second.schema;
}

Status ShardedEngine::RegisterQuery(std::string name,
                                    std::string_view query_text,
                                    const QueryOptions& options, Sink* sink) {
  if (WorkersStarted()) {
    return Status::InvalidArgument(
        "sharded engine: queries must be registered before the first Push");
  }
  const std::string key = ToLower(name);
  if (query_index_.count(key) > 0) {
    return Status::AlreadyExists("query '" + name + "' is already registered");
  }
  CEPR_ASSIGN_OR_RETURN(QueryAst ast, ParseQuery(query_text));
  CEPR_ASSIGN_OR_RETURN(SchemaPtr schema, GetSchema(ast.stream_name));
  CEPR_ASSIGN_OR_RETURN(AnalyzedQuery analyzed, Analyze(std::move(ast), schema));
  CEPR_ASSIGN_OR_RETURN(CompiledQueryPtr plan, Compile(std::move(analyzed)));

  if (plan->emit == EmitPolicy::kOnComplete) {
    return Status::InvalidArgument(
        "sharded engine: EMIT ON COMPLETE (eager emission) is "
        "order-dependent across shards; use EMIT ON WINDOW CLOSE or "
        "EMIT EVERY n EVENTS");
  }
  if (!plan->into_stream.empty()) {
    return Status::InvalidArgument(
        "sharded engine: EMIT INTO derived streams are not supported "
        "(re-ingestion would create cross-shard feedback)");
  }

  ShardMergeOptions merge;
  merge.by_score =
      plan->score != nullptr && options.ranker != RankerPolicy::kPassthrough;
  merge.desc = plan->rank_desc;
  merge.limit = plan->limit < 0 ? static_cast<size_t>(-1)
                                : static_cast<size_t>(plan->limit);

  auto q = std::make_unique<QueryState>(
      std::move(name), plan, options, sink,
      ShardRouter(*plan, num_shards_, queries_.size()),
      ReportWindowAssigner::ForQuery(*plan), merge);
  q->text = std::string(query_text);
  q->pending.resize(num_shards_);
  const uint32_t qi = static_cast<uint32_t>(queries_.size());
  if (options_.shared_eval) {
    bool deduped = false;
    q->nfa_template = template_registry_.Intern(*plan, &deduped);
    if (deduped) queries_deduped_.Increment();
    if (options.matcher.fault_injector != nullptr) query_injector_ = true;
    // Index the query's entry predicates on its stream (registration is
    // pre-start, so the global query index is a stable key).
    const auto sit = streams_.find(ToLower(plan->schema()->name()));
    if (sit != streams_.end()) sit->second.index.AddQuery(qi, plan.get());
  }
  query_index_.emplace(key, qi);
  queries_.push_back(std::move(q));
  // Journal the deploy (pre-merge options, like the snapshot) so a
  // registration after the last checkpoint survives a crash.
  if (wal_ != nullptr && !replaying_) {
    BinWriter blob;
    blob.Str(std::string(query_text));
    SaveQueryOptionsV1(&blob, options);
    CEPR_RETURN_IF_ERROR(
        wal_->AppendDeploy(queries_.back()->name, blob.buffer()));
    wal_appended_.Increment();
  }
  return Status::OK();
}

std::vector<std::string> ShardedEngine::QueryNames() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& q : queries_) names.push_back(q->name);
  return names;
}

void ShardedEngine::StartWorkers() {
  BuildShards();
  SpawnWorkers();
}

void ShardedEngine::BuildShards() {
  shards_.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->queue = std::make_unique<SpscQueue<Message>>(options_.queue_capacity);
    shard->published.resize(queries_.size());
    shard->acked_window =
        std::make_unique<std::atomic<int64_t>[]>(queries_.size());
    shard->metrics.timings.resize(queries_.size());
    shard->cells.reserve(queries_.size());
    for (const auto& q : queries_) {
      shard->acked_window[shard->cells.size()].store(
          0, std::memory_order_relaxed);
      QueryCell cell;
      cell.emitter = std::make_unique<Emitter>(q->plan, q->options.ranker);
      MatcherOptions matcher_options = MergeEngineCaps(
          q->options.matcher, options_.max_runs_per_partition,
          options_.max_total_runs, options_.shed_policy, options_.fault_policy,
          options_.fault_injector);
      if (matcher_options.max_total_runs > 0) {
        // Each shard enforces its even share of the engine-wide budget
        // against its own live-run counter (shard threads never touch each
        // other's state).
        matcher_options.max_total_runs =
            std::max<size_t>(1, matcher_options.max_total_runs / num_shards_);
      }
      // Dag mode defers matches to window close, so it composes only with
      // the buffered heap-based policies (gate on the ranker's resolved
      // policy — it may have degraded, e.g. no RANK BY -> passthrough).
      const RankerPolicy resolved = cell.emitter->ranker().policy();
      if (resolved != RankerPolicy::kHeap && resolved != RankerPolicy::kPruned) {
        matcher_options.shared_match_dag = false;
      }
      cell.matcher = std::make_unique<PartitionedMatcher>(
          q->plan, matcher_options, cell.emitter->pruner(), &shard->live_runs);
      cell.emitter->BindDagStore(cell.matcher->dag_store());
      shard->cells.push_back(std::move(cell));
    }
    shards_.push_back(std::move(shard));
  }
}

void ShardedEngine::SpawnWorkers() {
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s]->thread = std::thread([this, s] { ShardMain(s); });
  }
  started_.store(true, std::memory_order_release);
}

Status ShardedEngine::Quiesce() {
  // Nothing to drain before the first Push; after Finish the workers are
  // joined (the join is the happens-before edge a quiesce would provide).
  if (!WorkersStarted() || finished_) return Status::OK();
  const uint64_t gen = ++quiesce_generation_;
  for (auto& shard : shards_) {
    Message msg;
    msg.kind = Message::Kind::kQuiesce;
    msg.ordinal = gen;
    CEPR_RETURN_IF_ERROR(Enqueue(shard.get(), std::move(msg)));
  }
  // The ring is FIFO, so the acknowledgment means everything enqueued
  // before the quiesce has been fully processed; the release/acquire pair
  // on `quiesced` makes those cell writes visible to this thread.
  Stopwatch wait;
  const int64_t budget_us = options_.enqueue_stall_budget_ms * 1000;
  for (auto& shard : shards_) {
    while (shard->quiesced.load(std::memory_order_acquire) < gen) {
      if (abort_.load(std::memory_order_acquire)) {
        return Status::Unavailable("checkpoint quiesce: engine aborted");
      }
      if (budget_us > 0 && wait.ElapsedMicros() > budget_us) {
        return Status::Unavailable(
            "checkpoint quiesce: shard " + std::to_string(shard->index) +
            " did not acknowledge within " +
            std::to_string(options_.enqueue_stall_budget_ms) +
            " ms; consumer presumed dead or wedged");
      }
      std::this_thread::yield();
    }
  }
  return Status::OK();
}

Status ShardedEngine::Enqueue(Shard* shard, Message msg) {
  // Injected ring-full probe: behaves as one failed push attempt so the
  // backpressure accounting is exercised deterministically.
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->ShouldFire(fault_points::kShardRingFull,
                                          shard->index)) {
    shard->metrics.enqueue_stalls.Increment();
  }
  if (!shard->queue->TryPush(msg)) {
    // Full ring: backpressure with a bounded patience. Yield-spin briefly
    // (the consumer usually frees a slot within microseconds), then back
    // off to short sleeps; past the stall budget the shard is presumed
    // dead and the push fails rather than hanging the ingest thread.
    Stopwatch stall;
    const int64_t budget_us = options_.enqueue_stall_budget_ms * 1000;
    uint64_t attempts = 0;
    do {
      shard->metrics.enqueue_stalls.Increment();
      if (++attempts <= 256) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      if (budget_us > 0 && stall.ElapsedMicros() > budget_us) {
        shard->metrics.stall_us.Add(
            static_cast<uint64_t>(stall.ElapsedMicros()));
        shard->metrics.stalls_tripped.Increment();
        return Status::Unavailable(
            "shard " + std::to_string(shard->index) + " ingest ring (" +
            std::to_string(shard->queue->capacity()) +
            " slots) stayed full for " +
            std::to_string(options_.enqueue_stall_budget_ms) +
            " ms; consumer presumed dead or wedged");
      }
    } while (!shard->queue->TryPush(msg));
    shard->metrics.stall_us.Add(static_cast<uint64_t>(stall.ElapsedMicros()));
  }
  shard->metrics.queue_high_water.Observe(shard->queue->size());
  if (shard->parked.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(shard->park_mu);
    shard->park_cv.notify_one();
  }
  return Status::OK();
}

void ShardedEngine::PublishResults(Shard* shard, uint32_t query,
                                   std::vector<RankedResult> results) {
  if (results.empty()) return;
  shard->metrics.batches_published.Increment();
  std::lock_guard<std::mutex> lock(shard->mu);
  auto& out = shard->published[query];
  for (RankedResult& r : results) out.push_back(std::move(r));
}

void ShardedEngine::ShardMain(size_t shard_index) {
  Shard* shard = shards_[shard_index].get();
  std::vector<RankedResult> scratch;
  Message msg;
  for (;;) {
    if (abort_.load(std::memory_order_acquire)) return;
    // Injected wedge: the consumer sleeps instead of draining its ring
    // until the point is disarmed (or the engine aborts). Exercises the
    // producer-side stall budget.
    if (options_.fault_injector != nullptr) {
      while (options_.fault_injector->ShouldFire(fault_points::kShardStall,
                                                 shard_index)) {
        if (abort_.load(std::memory_order_acquire)) return;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    if (!shard->queue->TryPop(&msg)) {
      // Spin briefly, then park with a bounded wait (the router nudges on
      // push; the timeout self-heals a missed nudge).
      bool got = false;
      for (int spin = 0; spin < 64 && !got; ++spin) {
        std::this_thread::yield();
        got = shard->queue->TryPop(&msg);
      }
      if (!got) {
        std::unique_lock<std::mutex> lock(shard->park_mu);
        shard->parked.store(true, std::memory_order_release);
        shard->park_cv.wait_for(lock, std::chrono::microseconds(200),
                                [&] {
                                  return !shard->queue->Empty() ||
                                         abort_.load(std::memory_order_acquire);
                                });
        shard->parked.store(false, std::memory_order_release);
        continue;
      }
    }

    // NOTE: the (shard, query) cell is bound inside the kEvent/kBarrier
    // arms only — a kFinish message carries a default-initialized `query`
    // index, and a shard with zero registered queries has no cell 0 at all.
    scratch.clear();
    switch (msg.kind) {
      case Message::Kind::kEvent: {
        // A faulted (kFailFast) engine only drains: events are dropped so
        // the rings empty out, while barriers and finish flushes keep the
        // merge machinery consistent.
        if (faulted_.load(std::memory_order_acquire)) break;
        QueryCell& cell = shard->cells[msg.query];
        Stopwatch timer;
        shard->metrics.events.Increment();
        std::vector<Match> matches;
        std::vector<LazyMatchSet> lazy;
        // Non-candidate events still visit the matcher when this shard
        // holds live runs for the query (runs can extend/expire/die); with
        // no runs the visit is a proven no-op and is skipped. The emitter
        // always runs so window closes land at identical positions.
        bool evaluated = true;
        const bool dag = cell.matcher->dag_store() != nullptr;
        const Status matched =
            cell.matcher->OnEvent(msg.event, &matches, msg.candidate,
                                  &evaluated, dag ? &lazy : nullptr);
        shard->metrics.matches.Add(matches.size() + lazy.size());
        cell.emitter->OnEvent(msg.ts, msg.ordinal, std::move(matches),
                              std::move(lazy), &scratch);
        RecordTimings(shard, msg.query,
                      evaluated ? timer.ElapsedNanos() : -1, scratch);
        PublishResults(shard, msg.query, std::move(scratch));
        if (!matched.ok()) RecordFault(matched);
        break;
      }
      case Message::Kind::kBarrier: {
        // Advance this shard's windows to the barrier position (an empty
        // event batch closes any window the stream has moved past), then
        // acknowledge so the router may merge.
        QueryCell& cell = shard->cells[msg.query];
        shard->metrics.barriers.Increment();
        cell.emitter->OnEvent(msg.ts, msg.ordinal, {}, &scratch);
        const int64_t window =
            cell.emitter->windows().WindowOf(msg.ts, msg.ordinal);
        RecordTimings(shard, msg.query, /*processing_ns=*/-1, scratch);
        PublishResults(shard, msg.query, std::move(scratch));
        shard->acked_window[msg.query].store(window, std::memory_order_release);
        break;
      }
      case Message::Kind::kQuiesce: {
        // FIFO ring: everything enqueued before this message is fully
        // processed. Publish the generation (release) so the checkpointing
        // ingest thread observes every cell write made up to here.
        shard->quiesced.store(msg.ordinal, std::memory_order_release);
        break;
      }
      case Message::Kind::kFinish: {
        for (uint32_t q = 0; q < shard->cells.size(); ++q) {
          scratch.clear();
          shard->cells[q].emitter->Finish(&scratch);
          RecordTimings(shard, q, /*processing_ns=*/-1, scratch);
          PublishResults(shard, q, std::move(scratch));
          shard->acked_window[q].store(kAckedAll, std::memory_order_release);
        }
        return;
      }
    }
  }
}

void ShardedEngine::RecordTimings(Shard* shard, uint32_t query,
                                  int64_t processing_ns,
                                  const std::vector<RankedResult>& emitted) {
  if (processing_ns < 0 && emitted.empty()) return;
  const Timestamp now = shard->cells[query].emitter->last_event_ts();
  std::lock_guard<std::mutex> lock(shard->metrics.mu);
  MetricsCell::Timings& t = shard->metrics.timings[query];
  if (processing_ns >= 0) t.processing_ns.Record(processing_ns);
  for (const RankedResult& r : emitted) {
    t.emission_delay_us.Record(now - r.match.last_ts);
  }
}

void ShardedEngine::RecordFault(const Status& status) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (first_fault_.ok()) {
    first_fault_ = status;
    faulted_.store(true, std::memory_order_release);
  }
}

Status ShardedEngine::first_fault() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return first_fault_;
}

Result<ShardedEngine::StreamState*> ShardedEngine::OfferEvent(
    Event event, std::vector<Event>* released) {
  if (finished_) {
    return Status::InvalidArgument("sharded engine is finished");
  }
  if (faulted_.load(std::memory_order_acquire)) {
    return first_fault();
  }
  if (event.schema() == nullptr) {
    return Status::InvalidArgument("event has no schema");
  }
  const auto it = streams_.find(ToLower(event.schema()->name()));
  if (it == streams_.end()) {
    return Status::NotFound("event stream '" + event.schema()->name() +
                            "' is not registered");
  }
  StreamState& state = it->second;
  if (event.schema() != state.schema) {
    return Status::InvalidArgument(
        "event schema object does not match the registered schema for "
        "stream '" +
        state.schema->name() + "'");
  }
  if (event.values().size() != state.schema->num_attributes()) {
    return Status::InvalidArgument("event arity mismatch for stream '" +
                                   state.schema->name() + "'");
  }
  // Journal the arrival before any state changes (same contract as the
  // serial engine: late-rejected events are journaled — replay reproduces
  // the verdict — and a failed append means the arrival never happened).
  if (wal_ != nullptr && !replaying_) {
    CEPR_RETURN_IF_ERROR(wal_->AppendEvent(state.schema->name(), event));
    wal_appended_.Increment();
  }
  const Timestamp offered_ts = event.timestamp();
  switch (state.reorder.Offer(std::move(event), released)) {
    case ReorderBuffer::Verdict::kLateRejected:
      return Status::InvalidArgument(
          "out-of-order event on stream '" + state.schema->name() + "': ts " +
          std::to_string(offered_ts) + " < watermark " +
          std::to_string(state.reorder.watermark()) +
          (state.reorder.config().max_lateness_micros > 0
               ? " (missed the lateness bound of " +
                     std::to_string(state.reorder.config().max_lateness_micros) +
                     "us)"
               : ""));
    case ReorderBuffer::Verdict::kLateDropped:
      // Counted in events_late_dropped; the stream proceeds (released stays
      // empty, so the caller routes nothing).
      break;
    case ReorderBuffer::Verdict::kAccepted:
      break;
  }
  return &state;
}

Status ShardedEngine::Push(Event event) {
  std::vector<Event> released;
  CEPR_ASSIGN_OR_RETURN(StreamState * state,
                        OfferEvent(std::move(event), &released));
  if (RouteBatchable(*state, released.size())) {
    return RouteReleasedBatch(*state, std::move(released));
  }
  for (Event& e : released) {
    CEPR_RETURN_IF_ERROR(RouteReleased(*state, std::move(e)));
  }
  return Status::OK();
}

bool ShardedEngine::RouteBatchable(const StreamState& state,
                                   size_t num_released) const {
  // A batch probe only pays off past one event, and only computes anything
  // while the shared layer's index is actually consulted. (EMIT INTO is
  // rejected at registration, so unlike the serial engine there is no
  // re-ingestion interleaving concern.)
  return options_.batch_ingest && num_released > 1 && shared_eval_active() &&
         state.index.num_queries() > 0;
}

Status ShardedEngine::RouteReleasedBatch(StreamState& state,
                                         std::vector<Event> released) {
  // One probe over the whole batch (tight column scans into per-row
  // bitmaps; see PredicateIndex::ProbeBatch). Probes never read sequence
  // numbers, so screening before stamping is equivalence-safe.
  EventBatch batch(released.data(), released.size(),
                   state.schema->num_attributes());
  std::vector<std::vector<uint32_t>> cands;
  std::swap(cands, state.batch_cand_scratch);
  state.index.ProbeBatch(batch, &cands);
  Status status;
  for (size_t i = 0; i < released.size(); ++i) {
    status = RouteStamped(state, std::move(released[i]), /*use_index=*/true,
                          cands[i]);
    if (!status.ok()) break;
  }
  std::swap(cands, state.batch_cand_scratch);
  return status;
}

Status ShardedEngine::RouteReleased(StreamState& state, Event event) {
  // One predicate-index probe per released event: the router tags each
  // per-query message with the verdict so shards can skip matcher visits
  // that are provably no-ops (docs/MULTIQUERY.md). Degraded (everything a
  // candidate) while a fault injector is armed.
  const bool use_index = shared_eval_active() && state.index.num_queries() > 0;
  std::vector<uint32_t>& cand = state.cand_scratch;
  cand.clear();
  if (use_index) state.index.Probe(event, &cand);
  return RouteStamped(state, std::move(event), use_index, cand);
}

Status ShardedEngine::RouteStamped(StreamState& state, Event event,
                                   bool use_index,
                                   const std::vector<uint32_t>& cand) {
  event.set_sequence(state.next_sequence++);
  events_ingested_.Increment();

  if (!WorkersStarted()) StartWorkers();

  const auto shared = std::make_shared<const Event>(std::move(event));
  for (uint32_t qi = 0; qi < queries_.size(); ++qi) {
    QueryState& q = *queries_[qi];
    if (q.plan->schema() != state.schema) continue;

    const uint64_t ordinal = q.ordinal.PostIncrement();
    const Timestamp ts = shared->timestamp();
    const int64_t window = q.windows.WindowOf(ts, ordinal);
    if (window > q.current_window) {
      // The stream crossed a report-window boundary: tell every shard so
      // each closes and publishes its slice of the old window(s). If a
      // shard refuses the barrier (stall budget tripped) the broadcast is
      // abandoned mid-way; current_window stays put, so a later Push
      // re-broadcasts — re-processing a barrier at the same position is a
      // no-op on shards that already advanced.
      for (auto& shard : shards_) {
        Message barrier;
        barrier.kind = Message::Kind::kBarrier;
        barrier.query = qi;
        barrier.ordinal = ordinal;
        barrier.ts = ts;
        CEPR_RETURN_IF_ERROR(Enqueue(shard.get(), std::move(barrier)));
      }
      q.current_window = window;
    }

    Message msg;
    msg.kind = Message::Kind::kEvent;
    msg.query = qi;
    msg.event = shared;
    msg.ordinal = ordinal;
    msg.ts = ts;
    msg.candidate =
        !use_index || std::binary_search(cand.begin(), cand.end(), qi);
    CEPR_RETURN_IF_ERROR(
        Enqueue(shards_[q.router.ShardOf(*shared)].get(), std::move(msg)));

    DrainReady(&q, qi, /*final=*/false);
  }
  return Status::OK();
}

Status ShardedEngine::PushAll(std::vector<Event> events) {
  // Accumulate maximal same-stream runs of reorder-released events so each
  // run is screened with one batched probe. Ordering is preserved exactly:
  // a run is flushed before any event of another stream (or any error)
  // proceeds, so shards observe the same release order as per-event Push.
  StreamState* current = nullptr;
  std::vector<Event> pending;
  const auto flush = [&]() -> Status {
    if (current == nullptr || pending.empty()) return Status::OK();
    StreamState* state = current;
    std::vector<Event> run;
    run.swap(pending);
    if (RouteBatchable(*state, run.size())) {
      return RouteReleasedBatch(*state, std::move(run));
    }
    for (Event& e : run) {
      CEPR_RETURN_IF_ERROR(RouteReleased(*state, std::move(e)));
    }
    return Status::OK();
  };
  for (size_t i = 0; i < events.size(); ++i) {
    std::vector<Event> released;
    auto offered = OfferEvent(std::move(events[i]), &released);
    if (!offered.ok()) {
      // Route what came before the failing event first, so the "prefix
      // already ingested" contract below stays truthful.
      CEPR_RETURN_IF_ERROR(flush());
      const Status& s = offered.status();
      if (options_.fault_policy == FaultPolicy::kSkipAndCount &&
          s.code() != StatusCode::kUnavailable) {
        // Contained per-event failure: count it and keep the batch flowing.
        // A tripped stall budget (kUnavailable) is an engine-level outage,
        // not a poison event — it always surfaces.
        events_quarantined_.Increment();
        continue;
      }
      return Status(s.code(), "PushAll: event at index " + std::to_string(i) +
                                  " of " + std::to_string(events.size()) +
                                  " failed (prefix [0, " + std::to_string(i) +
                                  ") already ingested): " + s.message());
    }
    if (offered.value() != current) {
      CEPR_RETURN_IF_ERROR(flush());
      current = offered.value();
    }
    for (Event& e : released) pending.push_back(std::move(e));
  }
  return flush();
}

void ShardedEngine::DrainReady(QueryState* q, uint32_t query_index,
                               bool final) {
  int64_t complete = kAckedAll;
  if (!final) {
    for (auto& shard : shards_) {
      complete = std::min(
          complete,
          shard->acked_window[query_index].load(std::memory_order_acquire));
    }
    if (complete <= q->merged_upto) return;
  }

  // Pull each shard's published prefix below the completion point. The
  // published deques are window-ordered, so this is a front splice.
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard* shard = shards_[s].get();
    std::lock_guard<std::mutex> lock(shard->mu);
    auto& published = shard->published[query_index];
    while (!published.empty() &&
           (final || published.front().window_id < complete)) {
      q->pending[s].push_back(std::move(published.front()));
      published.pop_front();
    }
  }

  // Merge window by window, in ascending window order (windows nobody
  // produced results for are skipped — the serial engine emits nothing for
  // them either).
  for (;;) {
    int64_t window = kAckedAll;
    for (const auto& pending : q->pending) {
      if (!pending.empty()) window = std::min(window, pending.front().window_id);
    }
    if (window == kAckedAll || (!final && window >= complete)) break;

    std::vector<std::vector<RankedResult>> lists(q->pending.size());
    for (size_t s = 0; s < q->pending.size(); ++s) {
      auto& pending = q->pending[s];
      while (!pending.empty() && pending.front().window_id == window) {
        lists[s].push_back(std::move(pending.front()));
        pending.pop_front();
      }
    }
    std::vector<RankedResult> merged = MergeShardResults(std::move(lists), q->merge);
    merge_windows_.Increment();
    merge_results_.Add(merged.size());
    q->results_delivered.Add(merged.size());
    if (q->sink != nullptr) {
      for (const RankedResult& r : merged) q->sink->OnResult(r);
    }
  }
  if (!final) q->merged_upto = complete;
}

Status ShardedEngine::Flush() {
  if (finished_) {
    return Status::InvalidArgument("sharded engine is finished");
  }
  // A flush moves the release frontier; journal it so replay reproduces it
  // at the same position.
  if (wal_ != nullptr && !replaying_) {
    CEPR_RETURN_IF_ERROR(wal_->AppendFlush());
    wal_appended_.Increment();
  }
  for (auto& [key, state] : streams_) {
    if (state.reorder.resident() == 0) continue;
    std::vector<Event> released;
    state.reorder.Flush(&released);
    if (RouteBatchable(state, released.size())) {
      CEPR_RETURN_IF_ERROR(RouteReleasedBatch(state, std::move(released)));
      continue;
    }
    for (Event& e : released) {
      CEPR_RETURN_IF_ERROR(RouteReleased(state, std::move(e)));
    }
  }
  return Status::OK();
}

void ShardedEngine::Finish() {
  if (finished_) return;
  // Resident (still-unreleased) events must reach the shards before the
  // kFinish flush closes their windows.
  const Status drained = Flush();
  if (!drained.ok()) {
    CEPR_LOG(WARNING) << "Finish: reorder flush failed: "
                      << drained.ToString();
  }
  finished_ = true;
  if (!WorkersStarted()) return;  // no events: nothing buffered anywhere
  bool degraded = false;
  for (auto& shard : shards_) {
    Message finish;
    finish.kind = Message::Kind::kFinish;
    const Status s = Enqueue(shard.get(), std::move(finish));
    if (!s.ok()) {
      // A wedged shard will not take its finish message; degrade to an
      // abort so Finish still terminates. Healthy shards flush normally
      // first (each got its kFinish before the abort flag goes up).
      CEPR_LOG(WARNING) << "Finish: " << s.ToString()
                        << "; aborting instead of flushing";
      degraded = true;
    }
  }
  if (degraded) {
    abort_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->park_mu);
      shard->park_cv.notify_one();
    }
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (uint32_t qi = 0; qi < queries_.size(); ++qi) {
    DrainReady(queries_[qi].get(), qi, /*final=*/true);
  }
}

std::vector<ShardStats> ShardedEngine::shard_stats() const {
  std::vector<ShardStats> out;
  if (!WorkersStarted()) return out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->metrics.Snapshot());
  }
  return out;
}

MergeStats ShardedEngine::merge_stats() const {
  MergeStats m;
  m.windows_merged = merge_windows_.Load();
  m.results_emitted = merge_results_.Load();
  return m;
}

QueryMetrics ShardedEngine::AggregateQueryMetrics(uint32_t query_index) const {
  const QueryState& q = *queries_[query_index];
  QueryMetrics m;
  m.events = q.ordinal.Load();
  m.results = q.results_delivered.Load();
  if (!WorkersStarted()) return m;
  for (const auto& shard : shards_) {
    const QueryCell& cell = shard->cells[query_index];
    const MatcherStats s = cell.matcher->stats();
    m.matches += s.matches;
    m.matcher.Accumulate(s);
    if (cell.emitter->score_pruner() != nullptr) {
      m.prune_checks += cell.emitter->score_pruner()->checks();
      m.prunes += cell.emitter->score_pruner()->prunes();
    }
    m.matches_enumerated += cell.emitter->ranker().matches_enumerated();
    m.enumeration_cutoffs += cell.emitter->ranker().enumeration_cutoffs();
    std::lock_guard<std::mutex> lock(shard->metrics.mu);
    const MetricsCell::Timings& t = shard->metrics.timings[query_index];
    m.event_processing_ns.Merge(t.processing_ns);
    m.emission_delay_us.Merge(t.emission_delay_us);
  }
  return m;
}

Result<QueryMetrics> ShardedEngine::GetQueryMetrics(
    std::string_view name) const {
  const auto it = query_index_.find(ToLower(name));
  if (it == query_index_.end()) {
    return Status::NotFound("no query named '" + std::string(name) + "'");
  }
  return AggregateQueryMetrics(it->second);
}

MetricsSnapshot ShardedEngine::Snapshot() const {
  MetricsSnapshot snap;
  snap.events_ingested = events_ingested_.Load();
  snap.events_quarantined = events_quarantined_.Load();
  // The reorder buffers live on the ingest thread but their counters are
  // single-writer atomics, so a monitor-thread snapshot is safe (streams_
  // itself is not mutated after the pre-start registration phase).
  for (const auto& [key, state] : streams_) {
    snap.reorder.Accumulate(state.reorder.stats());
  }
  snap.num_shards = num_shards_;
  snap.queries.reserve(queries_.size());
  for (uint32_t qi = 0; qi < queries_.size(); ++qi) {
    snap.queries.push_back({queries_[qi]->name, AggregateQueryMetrics(qi)});
  }
  snap.shards = shard_stats();
  snap.merge = merge_stats();
  snap.sharing.shared_eval = shared_eval_active();
  snap.sharing.queries_deduped = queries_deduped_.Load();
  snap.sharing.live_templates = template_registry_.live_templates();
  for (const auto& [key, state] : streams_) {
    snap.sharing.predindex_probes += state.index.probes();
    snap.sharing.predindex_candidates += state.index.candidates();
    snap.sharing.batch_scan_events += state.index.batch_scan_events();
    snap.sharing.bitmap_hits += state.index.bitmap_hits();
  }
  for (const auto& q : queries_) {
    snap.sharing.bytecode_compiled_preds +=
        static_cast<uint64_t>(q->plan->num_bytecode_programs);
  }
  // Window boundaries are already tracked once per query on the router
  // (the barrier broadcast), not per (query, shard): there is no separate
  // shared window-buffer structure to count in this mode.
  snap.sharing.shared_window_buffers = 0;
  snap.durability = durability();
  return snap;
}

}  // namespace cepr
