#include "runtime/serde.h"

#include <utility>

#include "runtime/query.h"

namespace cepr {

void SaveValue(BinWriter* w, const Value& v) {
  w->U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->Bool(v.AsBool());
      break;
    case ValueType::kInt:
      w->I64(v.AsInt());
      break;
    case ValueType::kFloat:
      w->F64(v.AsFloat());
      break;
    case ValueType::kString:
      w->Str(v.AsString());
      break;
  }
}

bool LoadValue(BinReader* r, Value* out) {
  uint8_t tag = 0;
  if (!r->U8(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kBool: {
      bool b = false;
      if (!r->Bool(&b)) return false;
      *out = Value::Bool(b);
      return true;
    }
    case ValueType::kInt: {
      int64_t i = 0;
      if (!r->I64(&i)) return false;
      *out = Value::Int(i);
      return true;
    }
    case ValueType::kFloat: {
      double d = 0;
      if (!r->F64(&d)) return false;
      *out = Value::Float(d);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!r->Str(&s)) return false;
      *out = Value::String(std::move(s));
      return true;
    }
  }
  r->Fail();
  return false;
}

void SaveEventBody(BinWriter* w, const Event& e) {
  w->I64(e.timestamp());
  w->U64(e.sequence());
  w->Str(e.type_tag());
  w->U32(static_cast<uint32_t>(e.values().size()));
  for (const Value& v : e.values()) SaveValue(w, v);
}

bool LoadEventBody(BinReader* r, SchemaPtr schema, Event* out) {
  int64_t ts = 0;
  uint64_t seq = 0;
  std::string tag;
  uint32_t n = 0;
  if (!r->I64(&ts) || !r->U64(&seq) || !r->Str(&tag) || !r->U32(&n)) {
    return false;
  }
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    if (!LoadValue(r, &v)) return false;
    values.push_back(std::move(v));
  }
  *out = Event(std::move(schema), ts, std::move(values));
  out->set_sequence(seq);
  if (!tag.empty()) out->set_type_tag(std::move(tag));
  return true;
}

void SaveSchema(BinWriter* w, const Schema& s) {
  w->Str(s.name());
  w->U32(static_cast<uint32_t>(s.num_attributes()));
  for (const Attribute& a : s.attributes()) {
    w->Str(a.name);
    w->U8(static_cast<uint8_t>(a.type));
    w->Bool(a.range.has_value());
    if (a.range.has_value()) {
      w->F64(a.range->lo);
      w->F64(a.range->hi);
    }
  }
}

void EventInterner::Save(const EventPtr& event) {
  const auto it = ids_.find(event.get());
  if (it != ids_.end()) {
    w_->U32(it->second);
    return;
  }
  const uint32_t id = static_cast<uint32_t>(ids_.size());
  ids_.emplace(event.get(), id);
  w_->U32(id);
  SaveEventBody(w_, *event);
}

bool EventUninterner::Load(EventPtr* out) {
  uint32_t ref = 0;
  if (!r_->U32(&ref)) return false;
  if (ref < table_.size()) {
    *out = table_[ref];
    return true;
  }
  if (ref != table_.size()) {
    r_->Fail();  // forward reference: impossible in a well-formed stream
    return false;
  }
  Event event;
  if (!LoadEventBody(r_, schema_, &event)) return false;
  table_.push_back(std::make_shared<const Event>(std::move(event)));
  *out = table_.back();
  return true;
}

void SaveMatch(EventInterner* in, BinWriter* w, const Match& m) {
  w->U64(m.id);
  w->U64(m.last_sequence);
  w->I64(m.first_ts);
  w->I64(m.last_ts);
  w->F64(m.score);
  w->U32(static_cast<uint32_t>(m.bindings.size()));
  for (const auto& var : m.bindings) {
    w->U32(static_cast<uint32_t>(var.size()));
    for (const EventPtr& e : var) in->Save(e);
  }
  w->U32(static_cast<uint32_t>(m.row.size()));
  for (const Value& v : m.row) SaveValue(w, v);
}

bool LoadMatch(EventUninterner* in, BinReader* r, Match* out) {
  uint32_t num_vars = 0;
  if (!r->U64(&out->id) || !r->U64(&out->last_sequence) ||
      !r->I64(&out->first_ts) || !r->I64(&out->last_ts) ||
      !r->F64(&out->score) || !r->U32(&num_vars)) {
    return false;
  }
  out->bindings.clear();
  out->bindings.resize(num_vars);
  for (uint32_t v = 0; v < num_vars; ++v) {
    uint32_t n = 0;
    if (!r->U32(&n)) return false;
    out->bindings[v].reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      EventPtr e;
      if (!in->Load(&e)) return false;
      out->bindings[v].push_back(std::move(e));
    }
  }
  uint32_t num_row = 0;
  if (!r->U32(&num_row)) return false;
  out->row.clear();
  out->row.reserve(num_row);
  for (uint32_t i = 0; i < num_row; ++i) {
    Value v;
    if (!LoadValue(r, &v)) return false;
    out->row.push_back(std::move(v));
  }
  return true;
}

Result<SchemaPtr> LoadSchema(BinReader* r) {
  std::string name;
  uint32_t n = 0;
  if (!r->Str(&name) || !r->U32(&n)) {
    return r->ToStatus("schema");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Attribute a;
    uint8_t type = 0;
    bool has_range = false;
    if (!r->Str(&a.name) || !r->U8(&type) || !r->Bool(&has_range)) {
      return r->ToStatus("schema attribute");
    }
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      r->Fail();
      return r->ToStatus("schema attribute type");
    }
    a.type = static_cast<ValueType>(type);
    if (has_range) {
      AttributeRange range;
      if (!r->F64(&range.lo) || !r->F64(&range.hi)) {
        return r->ToStatus("schema attribute range");
      }
      a.range = range;
    }
    attrs.push_back(std::move(a));
  }
  return Schema::Make(std::move(name), std::move(attrs));
}

void SaveQueryOptionsV1(BinWriter* w, const QueryOptions& o) {
  w->U8(static_cast<uint8_t>(o.ranker));
  w->U64(static_cast<uint64_t>(o.matcher.max_active_runs));
  w->U64(static_cast<uint64_t>(o.matcher.max_total_runs));
  w->U8(static_cast<uint8_t>(o.matcher.shed_policy));
  w->U8(static_cast<uint8_t>(o.matcher.fault_policy));
  w->Bool(o.matcher.cow_bindings);
  w->Bool(o.matcher.use_arena);
  w->Bool(o.matcher.predicate_cache);
  w->Bool(o.matcher.bytecode_eval);
}

bool LoadQueryOptionsV1(BinReader* r, QueryOptions* o) {
  uint8_t ranker = 0, shed = 0, fault = 0;
  uint64_t max_active = 0, max_total = 0;
  if (!r->U8(&ranker) || !r->U64(&max_active) || !r->U64(&max_total) ||
      !r->U8(&shed) || !r->U8(&fault) || !r->Bool(&o->matcher.cow_bindings) ||
      !r->Bool(&o->matcher.use_arena) || !r->Bool(&o->matcher.predicate_cache) ||
      !r->Bool(&o->matcher.bytecode_eval)) {
    return false;
  }
  if (ranker > static_cast<uint8_t>(RankerPolicy::kPruned) ||
      shed > static_cast<uint8_t>(ShedPolicy::kShedLowestScoreBound) ||
      fault > static_cast<uint8_t>(FaultPolicy::kSkipAndCount)) {
    r->Fail();
    return false;
  }
  o->ranker = static_cast<RankerPolicy>(ranker);
  o->matcher.max_active_runs = static_cast<size_t>(max_active);
  o->matcher.max_total_runs = static_cast<size_t>(max_total);
  o->matcher.shed_policy = static_cast<ShedPolicy>(shed);
  o->matcher.fault_policy = static_cast<FaultPolicy>(fault);
  return true;
}

}  // namespace cepr
