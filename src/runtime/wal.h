#ifndef CEPR_RUNTIME_WAL_H_
#define CEPR_RUNTIME_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "event/event.h"

namespace cepr {

/// One journal record. Events are logged as they *arrive* (after schema
/// validation, before the reorder buffer sees them), not as they are
/// released: replaying arrivals through the normal ingest path reproduces
/// the reorder buffer's release order, sequence stamping and late verdicts
/// exactly, so recovery needs no second code path. Explicit Flush() calls
/// are journaled too — a flush changes the release frontier, so replay must
/// reproduce it at the same position.
///
/// Registrations are journaled as well (kSchema / kDeploy / kUndeploy), so
/// a query deployed on a live server between two checkpoints survives a
/// crash: replay re-registers it at exactly the stream position it joined.
/// Registration payloads are opaque serde blobs encoded by the engine
/// (SaveSchema; query text + SaveQueryOptionsV1) — the WAL layer frames
/// them without understanding them.
struct WalRecord {
  enum class Kind : uint8_t {
    kEvent = 0,
    kFlush = 1,
    kSchema = 2,    // stream registration: payload = SaveSchema blob
    kDeploy = 3,    // query registration: name + payload (text, options)
    kUndeploy = 4,  // query removal: name
  };
  Kind kind = Kind::kEvent;
  /// Target stream (kEvent only).
  std::string stream;
  /// Schema-less event body (kEvent only); re-bound to the registered
  /// schema at replay time.
  Event event;
  /// Query name (kDeploy / kUndeploy only).
  std::string name;
  /// Opaque registration blob (kSchema / kDeploy only).
  std::string payload;
};

/// Append-only CRC-framed event journal. Frame layout, all little-endian:
///
///   [u32 payload_len][u32 crc32(payload)][payload]
///
/// On open, an existing file is scanned front to back; a torn tail (partial
/// frame or CRC mismatch at the end, the signature of a crash mid-append)
/// is truncated away and appending resumes after the last valid record —
/// the same recovery convention as LevelDB's log reader.
///
/// Single-writer: owned by the engine's ingest thread.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { Close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (or creates) the journal at `path` for appending, scanning any
  /// existing content in fixed-size chunks (memory stays bounded however
  /// large the log grew). After Open, records() is the number of valid
  /// records already in the file. A newly created file is made durable by
  /// fsyncing the parent directory. `injector` (optional, not owned)
  /// drives the `wal.torn_tail` crash point.
  Status Open(const std::string& path, const FaultInjector* injector = nullptr);

  /// Appends one arrival record. The event's schema pointer is not
  /// serialized; the stream name re-binds it at replay.
  Status AppendEvent(const std::string& stream, const Event& event);

  /// Appends a flush marker.
  Status AppendFlush();

  /// Appends a stream registration (`schema_blob` = SaveSchema output).
  Status AppendSchema(const std::string& schema_blob);

  /// Appends a query registration (`blob` = query text + options, encoded
  /// by the engine) / removal.
  Status AppendDeploy(const std::string& name, const std::string& blob);
  Status AppendUndeploy(const std::string& name);

  /// Forces appended records to stable storage (fdatasync).
  Status Sync();

  void Close();

  bool is_open() const { return fd_ >= 0; }
  /// Valid records in the file: scanned at open + appended since.
  uint64_t records() const { return records_; }
  const std::string& path() const { return path_; }

 private:
  Status AppendPayload(const std::string& payload);

  int fd_ = -1;
  std::string path_;
  uint64_t records_ = 0;
  const FaultInjector* injector_ = nullptr;
  /// Set after an injected torn append: the simulated process is dead, all
  /// further appends fail.
  bool torn_ = false;
};

/// Reads every valid record of a journal file. Stops cleanly at the first
/// bad frame: a torn tail is expected after a crash and is not an error
/// (the dropped byte count is reported so callers can log it); an
/// unopenable file is kIoError.
class WalReader {
 public:
  static Status ReadAll(const std::string& path, std::vector<WalRecord>* out,
                        uint64_t* dropped_bytes = nullptr);
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_WAL_H_
