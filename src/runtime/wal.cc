#include "runtime/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/binio.h"
#include "runtime/serde.h"

namespace cepr {
namespace {

// Frames larger than this are garbage (a bit-flipped length field), not
// records; the scanner treats them as a torn/corrupt tail.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

std::string EncodeRecord(const WalRecord& rec) {
  BinWriter payload;
  payload.U8(static_cast<uint8_t>(rec.kind));
  if (rec.kind == WalRecord::Kind::kEvent) {
    payload.Str(rec.stream);
    SaveEventBody(&payload, rec.event);
  }
  return payload.Take();
}

// Decodes one payload; false = corrupt (unknown kind / malformed body).
bool DecodeRecord(const std::string& payload, WalRecord* out) {
  BinReader r(payload);
  uint8_t kind = 0;
  if (!r.U8(&kind)) return false;
  if (kind > static_cast<uint8_t>(WalRecord::Kind::kFlush)) return false;
  out->kind = static_cast<WalRecord::Kind>(kind);
  if (out->kind == WalRecord::Kind::kEvent) {
    if (!r.Str(&out->stream)) return false;
    if (!LoadEventBody(&r, nullptr, &out->event)) return false;
  }
  return r.AtEnd();
}

// Reads the whole file behind `fd` into `out`. Returns false on read error.
bool ReadFile(int fd, std::string* out) {
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out->append(buf, static_cast<size_t>(n));
  }
}

bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Scans `data` frame by frame; returns the byte length of the valid prefix
// and counts the records in it. Optionally collects decoded records.
size_t ScanValid(const std::string& data, uint64_t* num_records,
                 std::vector<WalRecord>* out) {
  size_t pos = 0;
  *num_records = 0;
  while (data.size() - pos >= 8) {
    BinReader header(data.data() + pos, 8);
    uint32_t len = 0;
    uint32_t crc = 0;
    header.U32(&len);
    header.U32(&crc);
    if (len > kMaxRecordBytes || data.size() - pos - 8 < len) break;
    const char* payload = data.data() + pos + 8;
    if (Crc32(payload, len) != crc) break;
    WalRecord rec;
    if (!DecodeRecord(std::string(payload, len), &rec)) break;
    if (out != nullptr) out->push_back(std::move(rec));
    pos += 8 + len;
    ++*num_records;
  }
  return pos;
}

}  // namespace

Status WalWriter::Open(const std::string& path, const FaultInjector* injector) {
  if (is_open()) return Status::InvalidArgument("wal: already open");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("wal: cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  std::string data;
  if (!ReadFile(fd, &data)) {
    ::close(fd);
    return Status::IoError("wal: cannot read '" + path +
                           "': " + std::strerror(errno));
  }
  uint64_t num_records = 0;
  const size_t valid = ScanValid(data, &num_records, nullptr);
  if (valid < data.size()) {
    // Crash signature: a torn or corrupt tail. Drop it and resume after the
    // last intact record.
    if (::ftruncate(fd, static_cast<off_t>(valid)) != 0) {
      ::close(fd);
      return Status::IoError("wal: cannot truncate torn tail of '" + path +
                             "' at byte " + std::to_string(valid) + ": " +
                             std::strerror(errno));
    }
  }
  if (::lseek(fd, static_cast<off_t>(valid), SEEK_SET) < 0) {
    ::close(fd);
    return Status::IoError("wal: cannot seek '" + path +
                           "': " + std::strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  records_ = num_records;
  injector_ = injector;
  torn_ = false;
  return Status::OK();
}

Status WalWriter::AppendPayload(const std::string& payload) {
  if (!is_open()) return Status::InvalidArgument("wal: not open");
  if (torn_) {
    return Status::Unavailable("wal: writer died mid-append (injected crash)");
  }
  BinWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload.data(), payload.size()));
  frame.Raw(payload.data(), payload.size());
  const std::string& bytes = frame.buffer();

  if (injector_ != nullptr &&
      injector_->ShouldFire(fault_points::kWalTornTail, records_)) {
    // Simulated kill mid-write: half the frame reaches the file, then the
    // process is gone. The record is NOT counted — it never became durable.
    const size_t partial = bytes.size() / 2 + 1;
    WriteAll(fd_, bytes.data(), partial);
    torn_ = true;
    return Status::Unavailable(
        "wal: injected crash mid-append at record " + std::to_string(records_) +
        " of '" + path_ + "' (torn tail)");
  }

  if (!WriteAll(fd_, bytes.data(), bytes.size())) {
    return Status::IoError("wal: append to '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  ++records_;
  return Status::OK();
}

Status WalWriter::AppendEvent(const std::string& stream, const Event& event) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kEvent;
  rec.stream = stream;
  rec.event = event;
  return AppendPayload(EncodeRecord(rec));
}

Status WalWriter::AppendFlush() {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kFlush;
  return AppendPayload(EncodeRecord(rec));
}

Status WalWriter::Sync() {
  if (!is_open()) return Status::InvalidArgument("wal: not open");
  if (::fdatasync(fd_) != 0) {
    return Status::IoError("wal: fdatasync '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  records_ = 0;
  injector_ = nullptr;
  torn_ = false;
}

Status WalReader::ReadAll(const std::string& path, std::vector<WalRecord>* out,
                          uint64_t* dropped_bytes) {
  out->clear();
  if (dropped_bytes != nullptr) *dropped_bytes = 0;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("wal: cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  std::string data;
  const bool read_ok = ReadFile(fd, &data);
  ::close(fd);
  if (!read_ok) {
    return Status::IoError("wal: cannot read '" + path +
                           "': " + std::strerror(errno));
  }
  uint64_t num_records = 0;
  const size_t valid = ScanValid(data, &num_records, out);
  if (dropped_bytes != nullptr) {
    *dropped_bytes = static_cast<uint64_t>(data.size() - valid);
  }
  return Status::OK();
}

}  // namespace cepr
