#include "runtime/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/binio.h"
#include "runtime/serde.h"

namespace cepr {
namespace {

// Frames larger than this are garbage (a bit-flipped length field), not
// records; the scanner treats them as a torn/corrupt tail.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

// Chunk size of the open-time tail scan. The scan buffer never holds more
// than one chunk plus one partially buffered frame, so reopening a multi-GB
// journal costs bounded memory instead of the whole file.
constexpr size_t kScanChunkBytes = 256u << 10;

std::string EncodeRecord(const WalRecord& rec) {
  BinWriter payload;
  payload.U8(static_cast<uint8_t>(rec.kind));
  switch (rec.kind) {
    case WalRecord::Kind::kEvent:
      payload.Str(rec.stream);
      SaveEventBody(&payload, rec.event);
      break;
    case WalRecord::Kind::kFlush:
      break;
    case WalRecord::Kind::kSchema:
      payload.Str(rec.payload);
      break;
    case WalRecord::Kind::kDeploy:
      payload.Str(rec.name);
      payload.Str(rec.payload);
      break;
    case WalRecord::Kind::kUndeploy:
      payload.Str(rec.name);
      break;
  }
  return payload.Take();
}

// Decodes one payload; false = corrupt (unknown kind / malformed body).
bool DecodeRecord(const char* payload, size_t size, WalRecord* out) {
  BinReader r(payload, size);
  uint8_t kind = 0;
  if (!r.U8(&kind)) return false;
  if (kind > static_cast<uint8_t>(WalRecord::Kind::kUndeploy)) return false;
  out->kind = static_cast<WalRecord::Kind>(kind);
  switch (out->kind) {
    case WalRecord::Kind::kEvent:
      if (!r.Str(&out->stream)) return false;
      if (!LoadEventBody(&r, nullptr, &out->event)) return false;
      break;
    case WalRecord::Kind::kFlush:
      break;
    case WalRecord::Kind::kSchema:
      if (!r.Str(&out->payload)) return false;
      break;
    case WalRecord::Kind::kDeploy:
      if (!r.Str(&out->name) || !r.Str(&out->payload)) return false;
      break;
    case WalRecord::Kind::kUndeploy:
      if (!r.Str(&out->name)) return false;
      break;
  }
  return r.AtEnd();
}

bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Streams the file behind `fd` (positioned at byte 0) frame by frame in
// fixed-size chunks. On return *valid_bytes is the length of the valid
// prefix and *num_records the frames in it; anything past that is a torn or
// corrupt tail. Optionally collects decoded records. Returns false on a
// read error (errno holds the cause); the scan itself cannot fail — a bad
// frame just ends the valid prefix, matching the LevelDB-style recovery
// convention.
bool ScanFdValid(int fd, uint64_t* num_records, size_t* valid_bytes,
                 std::vector<WalRecord>* out) {
  *num_records = 0;
  *valid_bytes = 0;
  std::string buf;
  size_t pos = 0;   // consumed bytes within buf
  size_t base = 0;  // file offset of buf[0]
  bool eof = false;
  for (;;) {
    // Parse every complete frame the buffer holds.
    for (;;) {
      if (buf.size() - pos < 8) break;
      BinReader header(buf.data() + pos, 8);
      uint32_t len = 0;
      uint32_t crc = 0;
      header.U32(&len);
      header.U32(&crc);
      if (len > kMaxRecordBytes) return true;  // garbage length: tail starts here
      if (buf.size() - pos - 8 < len) break;   // frame not fully buffered yet
      const char* payload = buf.data() + pos + 8;
      if (Crc32(payload, len) != crc) return true;
      WalRecord rec;
      if (!DecodeRecord(payload, len, &rec)) return true;
      if (out != nullptr) out->push_back(std::move(rec));
      pos += 8 + static_cast<size_t>(len);
      ++*num_records;
      *valid_bytes = base + pos;
    }
    if (eof) return true;
    // Drop the consumed prefix before reading more so the buffer stays at
    // one chunk plus the partially buffered frame (if any).
    if (pos > 0) {
      buf.erase(0, pos);
      base += pos;
      pos = 0;
    }
    const size_t old = buf.size();
    buf.resize(old + kScanChunkBytes);
    ssize_t n;
    do {
      n = ::read(fd, buf.data() + old, kScanChunkBytes);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return false;
    buf.resize(old + static_cast<size_t>(n));
    if (n == 0) eof = true;
  }
}

}  // namespace

Status WalWriter::Open(const std::string& path, const FaultInjector* injector) {
  if (is_open()) return Status::InvalidArgument("wal: already open");
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("wal: cannot open '" + path +
                           "': " + ErrnoString(errno));
  }
  // A crash right after O_CREAT must not lose the journal's filename; the
  // directory entry is only durable once the directory itself is synced.
  {
    const Status s = FsyncParentDir(path);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  }
  uint64_t num_records = 0;
  size_t valid = 0;
  if (!ScanFdValid(fd, &num_records, &valid, nullptr)) {
    const Status s = Status::IoError("wal: cannot read '" + path +
                                     "': " + ErrnoString(errno));
    ::close(fd);
    return s;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IoError("wal: cannot stat '" + path +
                                     "': " + ErrnoString(errno));
    ::close(fd);
    return s;
  }
  if (valid < static_cast<size_t>(st.st_size)) {
    // Crash signature: a torn or corrupt tail. Drop it and resume after the
    // last intact record.
    if (::ftruncate(fd, static_cast<off_t>(valid)) != 0) {
      const Status s = Status::IoError(
          "wal: cannot truncate torn tail of '" + path + "' at byte " +
          std::to_string(valid) + ": " + ErrnoString(errno));
      ::close(fd);
      return s;
    }
  }
  if (::lseek(fd, static_cast<off_t>(valid), SEEK_SET) < 0) {
    const Status s = Status::IoError("wal: cannot seek '" + path +
                                     "': " + ErrnoString(errno));
    ::close(fd);
    return s;
  }
  fd_ = fd;
  path_ = path;
  records_ = num_records;
  injector_ = injector;
  torn_ = false;
  return Status::OK();
}

Status WalWriter::AppendPayload(const std::string& payload) {
  if (!is_open()) return Status::InvalidArgument("wal: not open");
  if (torn_) {
    return Status::Unavailable("wal: writer died mid-append (injected crash)");
  }
  BinWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32(payload.data(), payload.size()));
  frame.Raw(payload.data(), payload.size());
  const std::string& bytes = frame.buffer();

  if (injector_ != nullptr &&
      injector_->ShouldFire(fault_points::kWalTornTail, records_)) {
    // Simulated kill mid-write: half the frame reaches the file, then the
    // process is gone. The record is NOT counted — it never became durable.
    const size_t partial = bytes.size() / 2 + 1;
    WriteAll(fd_, bytes.data(), partial);
    torn_ = true;
    return Status::Unavailable(
        "wal: injected crash mid-append at record " + std::to_string(records_) +
        " of '" + path_ + "' (torn tail)");
  }

  if (!WriteAll(fd_, bytes.data(), bytes.size())) {
    return Status::IoError("wal: append to '" + path_ +
                           "' failed: " + ErrnoString(errno));
  }
  ++records_;
  return Status::OK();
}

Status WalWriter::AppendEvent(const std::string& stream, const Event& event) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kEvent;
  rec.stream = stream;
  rec.event = event;
  return AppendPayload(EncodeRecord(rec));
}

Status WalWriter::AppendFlush() {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kFlush;
  return AppendPayload(EncodeRecord(rec));
}

Status WalWriter::AppendSchema(const std::string& schema_blob) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kSchema;
  rec.payload = schema_blob;
  return AppendPayload(EncodeRecord(rec));
}

Status WalWriter::AppendDeploy(const std::string& name,
                               const std::string& blob) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kDeploy;
  rec.name = name;
  rec.payload = blob;
  return AppendPayload(EncodeRecord(rec));
}

Status WalWriter::AppendUndeploy(const std::string& name) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kUndeploy;
  rec.name = name;
  return AppendPayload(EncodeRecord(rec));
}

Status WalWriter::Sync() {
  if (!is_open()) return Status::InvalidArgument("wal: not open");
  if (::fdatasync(fd_) != 0) {
    return Status::IoError("wal: fdatasync '" + path_ +
                           "' failed: " + ErrnoString(errno));
  }
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  records_ = 0;
  injector_ = nullptr;
  torn_ = false;
}

Status WalReader::ReadAll(const std::string& path, std::vector<WalRecord>* out,
                          uint64_t* dropped_bytes) {
  out->clear();
  if (dropped_bytes != nullptr) *dropped_bytes = 0;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("wal: cannot open '" + path +
                           "': " + ErrnoString(errno));
  }
  uint64_t num_records = 0;
  size_t valid = 0;
  const bool read_ok = ScanFdValid(fd, &num_records, &valid, out);
  struct stat st;
  const bool stat_ok = ::fstat(fd, &st) == 0;
  ::close(fd);
  if (!read_ok || !stat_ok) {
    return Status::IoError("wal: cannot read '" + path +
                           "': " + ErrnoString(errno));
  }
  if (dropped_bytes != nullptr) {
    *dropped_bytes = static_cast<uint64_t>(st.st_size) - valid;
  }
  return Status::OK();
}

}  // namespace cepr
