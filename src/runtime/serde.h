#ifndef CEPR_RUNTIME_SERDE_H_
#define CEPR_RUNTIME_SERDE_H_

#include <unordered_map>
#include <vector>

#include "common/binio.h"
#include "engine/binding.h"
#include "engine/run.h"
#include "event/event.h"
#include "event/schema.h"

namespace cepr {

/// Shared binary encodings of the event-layer value types, used by both the
/// write-ahead journal (runtime/wal.*) and the snapshot format
/// (runtime/checkpoint.*). Every Load* mirrors its Save* exactly; all
/// decoding is bounds-checked through BinReader, and semantic violations
/// (unknown enum tags) mark the reader failed so the caller's ToStatus()
/// reports the offending offset.

void SaveValue(BinWriter* w, const Value& v);
bool LoadValue(BinReader* r, Value* out);

/// Event body: timestamp, sequence, type tag, values — everything except
/// the schema pointer, which the reader supplies from context (the stream
/// registry for checkpoints, null for WAL records that are re-bound at
/// replay time).
void SaveEventBody(BinWriter* w, const Event& e);
bool LoadEventBody(BinReader* r, SchemaPtr schema, Event* out);

/// Full schema: name plus attribute list with declared ranges, so a restore
/// into a pristine engine can re-register every stream byte-exactly.
void SaveSchema(BinWriter* w, const Schema& s);
Result<SchemaPtr> LoadSchema(BinReader* r);

/// Single-pass event interning for one serialization scope (one query's
/// state section). COW run bindings and retained matches share events
/// heavily; the interner writes each distinct Event object once and
/// back-references later occurrences:
///
///   [u32 ref]            ref <  table_size: reuse table[ref]
///   [u32 ref][body]      ref == table_size: new event, appended to table
///
/// The loader mirrors the table, so shared events come back as shared
/// pointers (memory parity; pointer identity within the scope preserved).
class EventInterner {
 public:
  explicit EventInterner(BinWriter* w) : w_(w) {}
  void Save(const EventPtr& event);

 private:
  BinWriter* w_;
  std::unordered_map<const Event*, uint32_t> ids_;
};

class EventUninterner {
 public:
  EventUninterner(BinReader* r, SchemaPtr schema)
      : r_(r), schema_(std::move(schema)) {}
  bool Load(EventPtr* out);

 private:
  BinReader* r_;
  SchemaPtr schema_;
  std::vector<EventPtr> table_;
};

/// Completed-match serialization (top-k heaps, naive-sort buffers, the
/// sharded engine's pending/published result queues). Bound events go
/// through the scope's interner.
void SaveMatch(EventInterner* in, BinWriter* w, const Match& m);
bool LoadMatch(EventUninterner* in, BinReader* r, Match* out);

/// Per-query option block (format v1), shared by snapshot query
/// registrations, WAL deploy records and the network deploy message. Fault
/// injectors are runtime pointers and are never serialized: the restoring
/// engine's constructed options supply them (MergeEngineCaps runs again at
/// re-registration). Load validates every enum and marks the reader failed
/// on an out-of-range value.
struct QueryOptions;
void SaveQueryOptionsV1(BinWriter* w, const QueryOptions& o);
bool LoadQueryOptionsV1(BinReader* r, QueryOptions* o);

}  // namespace cepr

#endif  // CEPR_RUNTIME_SERDE_H_
