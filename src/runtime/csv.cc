#include "runtime/csv.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace cepr {

namespace {

// Quotes a cell if it contains a comma, quote, or newline.
std::string CsvQuote(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

// Plain rendering of a Value for CSV (no SQL quoting).
std::string CsvCell(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kString:
      return CsvQuote(v.AsString());
    case ValueType::kBool:
      return v.AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kFloat:
      return FormatDouble(v.AsFloat());
  }
  return "";
}

// True iff `text` ends inside an unterminated double-quoted cell (same
// quote state machine as SplitCsvLine: "" inside quotes is an escaped
// quote, not a close-then-open).
bool EndsInsideQuote(const std::string& text) {
  bool quoted = false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '"') continue;
    if (quoted && i + 1 < text.size() && text[i + 1] == '"') {
      ++i;  // escaped quote
    } else {
      quoted = !quoted;
    }
  }
  return quoted;
}

// Reads one logical CSV record: a physical line, plus continuation lines
// while a quoted cell is still open (quoted cells may embed newlines —
// WriteEventsCsv produces them, RFC 4180 allows them). `line_no` advances
// by the number of physical lines consumed. Returns false at EOF with no
// input; `*unterminated` is set when EOF hits inside an open quote.
bool ReadCsvRecord(std::istream& in, std::string* record, int* line_no,
                   bool* unterminated) {
  record->clear();
  *unterminated = false;
  std::string line;
  if (!std::getline(in, line)) return false;
  ++*line_no;
  *record = std::move(line);
  while (EndsInsideQuote(*record)) {
    if (!std::getline(in, line)) {
      *unterminated = true;
      return true;
    }
    ++*line_no;
    *record += '\n';
    *record += line;
  }
  return true;
}

// Splits one CSV record honoring double-quoted cells (which may contain
// commas, escaped quotes, and newlines).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(std::move(cur));
  return cells;
}

Result<Value> ParseCell(const std::string& text, ValueType type, int line_no) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case ValueType::kBool:
      if (EqualsIgnoreCase(text, "true") || text == "1") return Value::Bool(true);
      if (EqualsIgnoreCase(text, "false") || text == "0") return Value::Bool(false);
      return Status::IoError("line " + std::to_string(line_no) +
                             ": bad BOOL cell '" + text + "'");
    case ValueType::kInt: {
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::IoError("line " + std::to_string(line_no) +
                               ": bad INT cell '" + text + "'");
      }
      if (errno == ERANGE) {
        // Silent saturation to LLONG_MIN/MAX would corrupt the stream.
        return Status::IoError("line " + std::to_string(line_no) +
                               ": INT cell out of range '" + text + "'");
      }
      return Value::Int(v);
    }
    case ValueType::kFloat: {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::IoError("line " + std::to_string(line_no) +
                               ": bad FLOAT cell '" + text + "'");
      }
      if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
        // Overflow only; denormal underflow still returns a usable value.
        return Status::IoError("line " + std::to_string(line_no) +
                               ": FLOAT cell out of range '" + text + "'");
      }
      return Value::Float(v);
    }
    case ValueType::kString:
      return Value::String(text);
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

}  // namespace

Status WriteEventsCsv(const std::string& path, const std::vector<Event>& events) {
  errno = 0;
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + ": " + ErrnoString(errno));
  }
  if (events.empty()) return Status::OK();

  const SchemaPtr& schema = events.front().schema();
  out << "ts,type";
  for (const Attribute& attr : schema->attributes()) out << "," << attr.name;
  out << "\n";

  for (const Event& e : events) {
    out << e.timestamp() << "," << CsvQuote(e.type_tag());
    for (const Value& v : e.values()) out << "," << CsvCell(v);
    out << "\n";
  }
  if (!out.good()) return Status::IoError("write failed for " + path);
  return Status::OK();
}

namespace {

// Parses one data record (already split from the stream) into an Event;
// record-level errors come back as a Status the caller may skip past.
Result<Event> ParseCsvRecord(const std::string& path, const std::string& record,
                             const SchemaPtr& schema, int record_line) {
  const std::vector<std::string> cells = SplitCsvLine(record);
  if (cells.size() != schema->num_attributes() + 2) {
    return Status::IoError(path + " line " + std::to_string(record_line) +
                           ": expected " +
                           std::to_string(schema->num_attributes() + 2) +
                           " cells, got " + std::to_string(cells.size()));
  }
  char* end = nullptr;
  errno = 0;
  const long long ts = std::strtoll(cells[0].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::IoError(path + " line " + std::to_string(record_line) +
                           ": bad timestamp '" + cells[0] + "'");
  }
  if (errno == ERANGE) {
    return Status::IoError(path + " line " + std::to_string(record_line) +
                           ": timestamp out of range '" + cells[0] + "'");
  }
  std::vector<Value> values;
  values.reserve(schema->num_attributes());
  for (size_t i = 0; i < schema->num_attributes(); ++i) {
    CEPR_ASSIGN_OR_RETURN(
        Value v, ParseCell(cells[i + 2], schema->attribute(i).type, record_line));
    values.push_back(std::move(v));
  }
  Event e(schema, ts, std::move(values));
  if (!cells[1].empty()) e.set_type_tag(cells[1]);
  return e;
}

}  // namespace

Result<std::vector<Event>> ReadEventsCsv(const std::string& path, SchemaPtr schema) {
  return ReadEventsCsv(path, std::move(schema), CsvReadOptions{}, nullptr);
}

Result<std::vector<Event>> ReadEventsCsv(const std::string& path,
                                         SchemaPtr schema,
                                         const CsvReadOptions& options,
                                         CsvReadStats* stats) {
  errno = 0;
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path + ": " + ErrnoString(errno));
  }

  std::vector<Event> events;
  std::string record;
  int line_no = 0;
  bool unterminated = false;
  bool header_seen = false;
  while (ReadCsvRecord(in, &record, &line_no, &unterminated)) {
    // First physical line of this record, for error messages (`line_no`
    // has already advanced past any quoted-cell continuation lines).
    const int record_line =
        line_no - static_cast<int>(std::count(record.begin(), record.end(), '\n'));
    if (unterminated) {
      // Structural, not record-level: the rest of the file cannot be
      // delimited reliably, so even skip-and-count stops here.
      return Status::IoError(path + " line " + std::to_string(record_line) +
                             ": unterminated quoted cell at end of file");
    }
    if (record.empty()) continue;
    if (!header_seen) {
      header_seen = true;  // header validated loosely: must start with "ts"
      if (!StartsWith(record, "ts")) {
        return Status::IoError(path + ": missing 'ts,type,...' header");
      }
      continue;
    }
    Result<Event> parsed =
        options.fault_injector != nullptr &&
                options.fault_injector->ShouldFire(
                    fault_points::kCsvBadRecord,
                    static_cast<uint64_t>(record_line))
            ? Result<Event>(Status::IoError(
                  path + " line " + std::to_string(record_line) +
                  ": injected bad record"))
            : ParseCsvRecord(path, record, schema, record_line);
    if (!parsed.ok()) {
      if (options.fault_policy != FaultPolicy::kSkipAndCount) {
        return parsed.status();
      }
      if (stats != nullptr) {
        ++stats->records_skipped;
        if (stats->skipped.size() < CsvReadStats::kMaxAttributed) {
          stats->skipped.push_back({record_line, parsed.status().message()});
        }
      }
      continue;
    }
    if (stats != nullptr) ++stats->records_read;
    events.push_back(std::move(parsed).value());
  }
  return events;
}

CsvResultSink::CsvResultSink(const std::string& path,
                             std::vector<std::string> column_names)
    : out_(path, std::ios::trunc) {
  if (!out_.is_open()) {
    status_ = Status::IoError("cannot open " + path + ": " + ErrnoString(errno));
    return;
  }
  out_ << "window,rank,provisional,score,first_ts,last_ts";
  for (const std::string& name : column_names) out_ << "," << CsvQuote(name);
  out_ << "\n";
}

void CsvResultSink::OnResult(const RankedResult& result) {
  if (!status_.ok()) return;
  out_ << result.window_id << "," << result.rank << ","
       << (result.provisional ? 1 : 0) << "," << FormatDouble(result.match.score)
       << "," << result.match.first_ts << "," << result.match.last_ts;
  for (const Value& v : result.match.row) out_ << "," << CsvCell(v);
  out_ << "\n";
}

}  // namespace cepr
