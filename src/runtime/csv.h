#ifndef CEPR_RUNTIME_CSV_H_
#define CEPR_RUNTIME_CSV_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/result.h"
#include "event/event.h"
#include "runtime/sink.h"

namespace cepr {

/// Writes events as CSV with the header "ts,type,<attr>,<attr>...". String
/// cells containing separators or quotes are double-quoted.
Status WriteEventsCsv(const std::string& path, const std::vector<Event>& events);

/// Record-level fault handling for ReadEventsCsv.
struct CsvReadOptions {
  /// kFailFast (default) aborts the whole file on the first bad record;
  /// kSkipAndCount skips the record, attributes it to its line number in
  /// CsvReadStats, and keeps reading. Structural errors (unopenable file,
  /// missing header, unterminated quote at EOF) are always fatal.
  FaultPolicy fault_policy = FaultPolicy::kFailFast;
  /// Optional injection harness; fault_points::kCsvBadRecord keyed by the
  /// record's first physical line number makes that record fail to parse.
  /// Not owned; may be null.
  const FaultInjector* fault_injector = nullptr;
};

/// Counters filled by the skip-and-count read path.
struct CsvReadStats {
  uint64_t records_read = 0;     // events successfully parsed
  uint64_t records_skipped = 0;  // bad records dropped (kSkipAndCount)
  struct SkippedRecord {
    int line = 0;  // first physical line of the record
    std::string error;
  };
  /// Line-attributed skip reasons, capped at kMaxAttributed (the counter
  /// above keeps the true total).
  static constexpr size_t kMaxAttributed = 64;
  std::vector<SkippedRecord> skipped;
};

/// Reads events from a CSV produced by WriteEventsCsv (or hand-written with
/// the same header): the first column is the microsecond timestamp, the
/// second the optional event-type tag (may be empty), and the remaining
/// columns must match `schema`'s attributes by position. Cell text is
/// parsed per the attribute type; empty numeric cells become NULL. Rows
/// need not be timestamp-sorted if the destination stream has a lateness
/// bound configured (Engine::ConfigureStreamIngest); under the default
/// strict ingest, unsorted rows fail at Push.
Result<std::vector<Event>> ReadEventsCsv(const std::string& path, SchemaPtr schema);

/// As above with record-level fault policy; `stats` (nullable) receives
/// read/skip counters either way.
Result<std::vector<Event>> ReadEventsCsv(const std::string& path,
                                         SchemaPtr schema,
                                         const CsvReadOptions& options,
                                         CsvReadStats* stats = nullptr);

/// Sink that appends ranked results to a CSV file:
/// "window,rank,provisional,score,first_ts,last_ts,<output columns...>".
class CsvResultSink : public Sink {
 public:
  /// Opens (truncates) `path` and writes the header. Check ok() before use.
  CsvResultSink(const std::string& path, std::vector<std::string> column_names);

  /// Whether the file opened successfully.
  const Status& status() const { return status_; }

  void OnResult(const RankedResult& result) override;

 private:
  std::ofstream out_;
  Status status_;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_CSV_H_
