#ifndef CEPR_RUNTIME_CSV_H_
#define CEPR_RUNTIME_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"
#include "runtime/sink.h"

namespace cepr {

/// Writes events as CSV with the header "ts,type,<attr>,<attr>...". String
/// cells containing separators or quotes are double-quoted.
Status WriteEventsCsv(const std::string& path, const std::vector<Event>& events);

/// Reads events from a CSV produced by WriteEventsCsv (or hand-written with
/// the same header): the first column is the microsecond timestamp, the
/// second the optional event-type tag (may be empty), and the remaining
/// columns must match `schema`'s attributes by position. Cell text is
/// parsed per the attribute type; empty numeric cells become NULL.
Result<std::vector<Event>> ReadEventsCsv(const std::string& path, SchemaPtr schema);

/// Sink that appends ranked results to a CSV file:
/// "window,rank,provisional,score,first_ts,last_ts,<output columns...>".
class CsvResultSink : public Sink {
 public:
  /// Opens (truncates) `path` and writes the header. Check ok() before use.
  CsvResultSink(const std::string& path, std::vector<std::string> column_names);

  /// Whether the file opened successfully.
  const Status& status() const { return status_; }

  void OnResult(const RankedResult& result) override;

 private:
  std::ofstream out_;
  Status status_;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_CSV_H_
