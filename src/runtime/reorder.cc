#include "runtime/reorder.h"

#include <algorithm>
#include <limits>

namespace cepr {

const char* LatePolicyToString(LatePolicy policy) {
  switch (policy) {
    case LatePolicy::kReject:
      return "Reject";
    case LatePolicy::kDropAndCount:
      return "DropAndCount";
    case LatePolicy::kClamp:
      return "Clamp";
  }
  return "?";
}

void ReorderStats::Accumulate(const ReorderStats& other) {
  events_reordered += other.events_reordered;
  events_late_dropped += other.events_late_dropped;
  events_clamped += other.events_clamped;
  reorder_buffer_peak = std::max(reorder_buffer_peak, other.reorder_buffer_peak);
}

Timestamp ReorderBuffer::watermark() const {
  // Saturating high_ts - lateness, floored by anything already flushed out.
  Timestamp wm = std::numeric_limits<Timestamp>::min();
  if (saw_event_) {
    wm = high_ts_ >= std::numeric_limits<Timestamp>::min() +
                         config_.max_lateness_micros
             ? high_ts_ - config_.max_lateness_micros
             : std::numeric_limits<Timestamp>::min();
  }
  if (flushed_any_ && flushed_upto_ > wm) wm = flushed_upto_;
  return wm;
}

ReorderBuffer::Verdict ReorderBuffer::Offer(Event event,
                                            std::vector<Event>* released) {
  const Timestamp ts = event.timestamp();
  if (saw_event_ && ts < watermark()) {
    switch (config_.late_policy) {
      case LatePolicy::kReject:
        return Verdict::kLateRejected;
      case LatePolicy::kDropAndCount:
        events_late_dropped_.Increment();
        return Verdict::kLateDropped;
      case LatePolicy::kClamp:
        events_clamped_.Increment();
        event.set_timestamp(watermark());
        break;
    }
  } else if (saw_event_ && ts < high_ts_) {
    events_reordered_.Increment();
  }

  Entry entry;
  entry.ts = event.timestamp();
  entry.arrival = next_arrival_++;
  entry.event = std::move(event);
  if (entry.ts > high_ts_ || !saw_event_) high_ts_ = entry.ts;
  saw_event_ = true;
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), ReleasesLater);
  buffer_peak_.Observe(heap_.size());

  ReleaseRipe(released);
  return Verdict::kAccepted;
}

void ReorderBuffer::ReleaseRipe(std::vector<Event>* released) {
  const Timestamp frontier = watermark();
  while (!heap_.empty() && heap_.front().ts <= frontier) {
    std::pop_heap(heap_.begin(), heap_.end(), ReleasesLater);
    released->push_back(std::move(heap_.back().event));
    heap_.pop_back();
  }
}

void ReorderBuffer::Flush(std::vector<Event>* released) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), ReleasesLater);
    flushed_upto_ = heap_.back().ts;
    flushed_any_ = true;
    released->push_back(std::move(heap_.back().event));
    heap_.pop_back();
  }
}

ReorderStats ReorderBuffer::stats() const {
  ReorderStats s;
  s.events_reordered = events_reordered_.Load();
  s.events_late_dropped = events_late_dropped_.Load();
  s.events_clamped = events_clamped_.Load();
  s.reorder_buffer_peak = buffer_peak_.Load();
  return s;
}

}  // namespace cepr
