#include "runtime/reorder.h"

#include <algorithm>
#include <limits>

#include "common/binio.h"
#include "runtime/serde.h"

namespace cepr {

const char* LatePolicyToString(LatePolicy policy) {
  switch (policy) {
    case LatePolicy::kReject:
      return "Reject";
    case LatePolicy::kDropAndCount:
      return "DropAndCount";
    case LatePolicy::kClamp:
      return "Clamp";
  }
  return "?";
}

void ReorderStats::Accumulate(const ReorderStats& other) {
  events_reordered += other.events_reordered;
  events_late_dropped += other.events_late_dropped;
  events_clamped += other.events_clamped;
  reorder_buffer_peak = std::max(reorder_buffer_peak, other.reorder_buffer_peak);
}

Timestamp ReorderBuffer::watermark() const {
  // Saturating high_ts - lateness, floored by anything already flushed out.
  Timestamp wm = std::numeric_limits<Timestamp>::min();
  if (saw_event_) {
    wm = high_ts_ >= std::numeric_limits<Timestamp>::min() +
                         config_.max_lateness_micros
             ? high_ts_ - config_.max_lateness_micros
             : std::numeric_limits<Timestamp>::min();
  }
  if (flushed_any_ && flushed_upto_ > wm) wm = flushed_upto_;
  return wm;
}

ReorderBuffer::Verdict ReorderBuffer::Offer(Event event,
                                            std::vector<Event>* released) {
  const Timestamp ts = event.timestamp();
  if (saw_event_ && ts < watermark()) {
    switch (config_.late_policy) {
      case LatePolicy::kReject:
        return Verdict::kLateRejected;
      case LatePolicy::kDropAndCount:
        events_late_dropped_.Increment();
        return Verdict::kLateDropped;
      case LatePolicy::kClamp:
        events_clamped_.Increment();
        event.set_timestamp(watermark());
        break;
    }
  } else if (saw_event_ && ts < high_ts_) {
    events_reordered_.Increment();
  }

  Entry entry;
  entry.ts = event.timestamp();
  entry.arrival = next_arrival_++;
  entry.event = std::move(event);
  if (entry.ts > high_ts_ || !saw_event_) high_ts_ = entry.ts;
  saw_event_ = true;
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), ReleasesLater);
  buffer_peak_.Observe(heap_.size());

  ReleaseRipe(released);
  return Verdict::kAccepted;
}

void ReorderBuffer::ReleaseRipe(std::vector<Event>* released) {
  const Timestamp frontier = watermark();
  while (!heap_.empty() && heap_.front().ts <= frontier) {
    std::pop_heap(heap_.begin(), heap_.end(), ReleasesLater);
    released->push_back(std::move(heap_.back().event));
    heap_.pop_back();
  }
}

void ReorderBuffer::Flush(std::vector<Event>* released) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), ReleasesLater);
    flushed_upto_ = heap_.back().ts;
    flushed_any_ = true;
    released->push_back(std::move(heap_.back().event));
    heap_.pop_back();
  }
}

void ReorderBuffer::SaveState(BinWriter* w) const {
  w->I64(config_.max_lateness_micros);
  w->U8(static_cast<uint8_t>(config_.late_policy));
  w->Bool(saw_event_);
  w->I64(high_ts_);
  w->I64(flushed_upto_);
  w->Bool(flushed_any_);
  w->U64(next_arrival_);
  // Raw array order: the vector already satisfies the heap property, so a
  // verbatim restore reproduces every future pop order bit-exactly.
  w->U32(static_cast<uint32_t>(heap_.size()));
  for (const Entry& e : heap_) {
    w->I64(e.ts);
    w->U64(e.arrival);
    SaveEventBody(w, e.event);
  }
  const ReorderStats s = stats();
  w->U64(s.events_reordered);
  w->U64(s.events_late_dropped);
  w->U64(s.events_clamped);
  w->U64(s.reorder_buffer_peak);
}

bool ReorderBuffer::LoadState(BinReader* r, const SchemaPtr& schema) {
  uint8_t policy = 0;
  uint32_t resident = 0;
  heap_.clear();
  if (!r->I64(&config_.max_lateness_micros) || !r->U8(&policy) ||
      !r->Bool(&saw_event_) || !r->I64(&high_ts_) || !r->I64(&flushed_upto_) ||
      !r->Bool(&flushed_any_) || !r->U64(&next_arrival_) || !r->U32(&resident)) {
    return false;
  }
  if (policy > static_cast<uint8_t>(LatePolicy::kClamp)) {
    r->Fail();
    return false;
  }
  config_.late_policy = static_cast<LatePolicy>(policy);
  heap_.reserve(resident);
  for (uint32_t i = 0; i < resident; ++i) {
    Entry e;
    if (!r->I64(&e.ts) || !r->U64(&e.arrival) ||
        !LoadEventBody(r, schema, &e.event)) {
      return false;
    }
    heap_.push_back(std::move(e));
  }
  uint64_t reordered = 0, dropped = 0, clamped = 0, peak = 0;
  if (!r->U64(&reordered) || !r->U64(&dropped) || !r->U64(&clamped) ||
      !r->U64(&peak)) {
    return false;
  }
  events_reordered_.Store(reordered);
  events_late_dropped_.Store(dropped);
  events_clamped_.Store(clamped);
  buffer_peak_.Store(peak);
  return true;
}

ReorderStats ReorderBuffer::stats() const {
  ReorderStats s;
  s.events_reordered = events_reordered_.Load();
  s.events_late_dropped = events_late_dropped_.Load();
  s.events_clamped = events_clamped_.Load();
  s.reorder_buffer_peak = buffer_peak_.Load();
  return s;
}

}  // namespace cepr
