#ifndef CEPR_RUNTIME_SHARDED_ENGINE_H_
#define CEPR_RUNTIME_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/counters.h"
#include "common/spsc_queue.h"
#include "engine/predicate_index.h"
#include "engine/shard_router.h"
#include "plan/signature.h"
#include "rank/merge.h"
#include "runtime/checkpoint.h"
#include "runtime/metrics.h"
#include "runtime/query.h"
#include "runtime/reorder.h"
#include "runtime/wal.h"

namespace cepr {

/// Knobs for the sharded execution mode.
struct ShardedEngineOptions {
  /// Worker shard count; 0 = std::thread::hardware_concurrency().
  size_t num_shards = 0;
  /// Per-shard ingest ring capacity (rounded up to a power of two). A full
  /// ring backpressures the ingest thread (bounded wait; see
  /// enqueue_stall_budget_ms).
  size_t queue_capacity = 4096;
  /// Same semantics as the EngineOptions event-time fields: the per-stream
  /// lateness bound and late policy applied by the reorder buffer on the
  /// ingest thread, *before* the shard router — every shard sees the same
  /// released order, so serial/sharded equivalence holds under disorder.
  Timestamp max_lateness_micros = 0;
  LatePolicy late_policy = LatePolicy::kReject;
  /// Same semantics as EngineOptions::reject_out_of_order.
  bool reject_out_of_order = true;
  /// Longest one enqueue may wait on a full shard ring before giving up:
  /// past the budget the shard is presumed dead/wedged and Push fails with
  /// kUnavailable naming it (counted in ShardStats::stalls_tripped).
  /// <= 0 waits forever (the legacy unbounded yield-spin).
  int64_t enqueue_stall_budget_ms = 2000;

  // -- Overload protection / fault containment -------------------------------
  // Same semantics as the EngineOptions fields (see runtime/engine.h).
  // max_total_runs is split evenly across shards: each shard enforces
  // max(1, max_total_runs / num_shards) over its own cells, so the
  // engine-wide total stays within ~one shard's share of the cap.

  size_t max_runs_per_partition = 0;
  size_t max_total_runs = 0;
  ShedPolicy shed_policy = ShedPolicy::kShedOldest;
  FaultPolicy fault_policy = FaultPolicy::kFailFast;
  const FaultInjector* fault_injector = nullptr;  // not owned; may be null

  /// Shared multi-query evaluation (docs/MULTIQUERY.md): NFA templates are
  /// interned per canonical signature and the router probes each stream's
  /// entry-predicate index once per event, tagging the per-query messages
  /// so shards skip matcher visits that are provably no-ops. Per-query
  /// ranked output is bit-identical either way; `false` is the ablation
  /// switch. Degraded automatically (full visits) while any fault injector
  /// is armed, so injected schedules fire at per-query-path positions.
  /// Note the router still enqueues one message per (event, query) —
  /// ordinal and barrier bookkeeping is per query — so ingest-side cost
  /// stays O(queries) per event; the saving is shard-side matcher work.
  bool shared_eval = true;

  /// Columnar ingest screening (the vectorized-probe ablation knob): when a
  /// reorder release or a PushAll run yields more than one event for the
  /// same stream, the router probes the entry-predicate index once over the
  /// whole batch (tight column scans into per-row candidate bitmaps) instead
  /// of per event. Routing, ordinals, barriers and shard enqueues stay per
  /// event, so ranked output is bit-identical either way. Only engages while
  /// shared_eval is active (the probe verdicts are what the batch computes).
  bool batch_ingest = true;
};

/// Parallel counterpart of Engine: PARTITION BY keys are hashed across N
/// worker shards, each owning its partitions' matcher runs, report windows
/// and pruning state, fed through bounded SPSC rings. Ranked emission stays
/// exactly equivalent to the single-threaded engine: every shard keeps a
/// window-local top-k, and when all shards have moved past a report window
/// (tracked by router-broadcast window barriers) the per-shard ordered
/// lists are k-way merged under the deterministic (score, detecting-event
/// sequence, matcher id) order and cut to LIMIT — byte-identical to the
/// serial result (tested property; see docs/ARCHITECTURE.md).
///
/// Threading contract: one ingest thread drives ExecuteDdl / RegisterQuery
/// / Push / Finish (never concurrently); sinks are invoked on that ingest
/// thread, so they need no synchronization. Shard threads never touch user
/// code. The introspection block (Snapshot / shard_stats / merge_stats /
/// GetQueryMetrics / events_ingested) may additionally run on any number of
/// monitor threads concurrently with ingest — see runtime/metrics.h for the
/// consistency model.
///
/// Restrictions versus Engine (rejected at RegisterQuery):
///  * EMIT ON COMPLETE (eager provisional emission is inherently
///    order-dependent across partitions — use a buffered policy);
///  * EMIT INTO derived streams (re-ingestion would create cross-shard
///    feedback);
///  * queries must be registered before the first Push.
class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineOptions options = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // -- Streams (pre-start, ingest thread) -----------------------------------

  Status ExecuteDdl(std::string_view ddl_text);
  Status RegisterSchema(SchemaPtr schema);
  Result<SchemaPtr> GetSchema(std::string_view stream_name) const;

  /// Overrides one stream's disorder tolerance, same contract as
  /// Engine::ConfigureStreamIngest: before the stream's first event only.
  Status ConfigureStreamIngest(std::string_view stream_name,
                               ReorderConfig config);

  // -- Queries (pre-start, ingest thread) -----------------------------------

  /// Compiles and registers `query_text`. `sink` may be null and must
  /// outlive the engine otherwise; it is called on the ingest thread.
  Status RegisterQuery(std::string name, std::string_view query_text,
                       const QueryOptions& options, Sink* sink);
  std::vector<std::string> QueryNames() const;

  // -- Ingest (single thread) -----------------------------------------------

  /// Validates, stamps and routes one event to its owning shard per query.
  /// Merged results that became complete are delivered to sinks inline.
  /// Starts the worker threads on the first call. Fails with kUnavailable
  /// when a shard's ring stays full past the stall budget (shard presumed
  /// wedged), and surfaces the first shard-side fault under
  /// FaultPolicy::kFailFast (see first_fault()).
  Status Push(Event event);
  /// Batch Push with the same partial-failure semantics as
  /// Engine::PushAll: the Status names the failing index; under
  /// FaultPolicy::kSkipAndCount failing events are skipped and counted.
  Status PushAll(std::vector<Event> events);

  /// Drains every stream's reorder buffer to the shards in release order
  /// (same contract as Engine::Flush). Ingest thread only.
  Status Flush();

  /// End of stream: drains the reorder buffers, flushes every shard, joins
  /// the workers, merges and delivers all remaining windows. The engine is
  /// terminal afterwards (further Push calls fail).
  void Finish();

  // -- Durability (ingest thread) -------------------------------------------

  /// Opens (or resumes) a write-ahead journal, same contract as
  /// Engine::OpenWal: every accepted top-level arrival and every explicit
  /// Flush is journaled before it mutates engine state.
  Status OpenWal(const std::string& path);

  /// Forces journaled records to stable storage. No-op without an open WAL.
  Status SyncWal();

  /// Writes a consistent snapshot of the full engine state to `path`
  /// atomically. The cut is a quiesce point: every shard is drained to the
  /// end of its ring (a window-barrier-style round trip), so the snapshot
  /// captures each (shard, query) cell after exactly the events the ingest
  /// thread has routed — the same cut a window barrier observes.
  Status Checkpoint(const std::string& path);

  /// Rebuilds this engine from a snapshot plus optional WAL tail, same
  /// contract as Engine::Restore. The engine must be pristine and
  /// constructed with the SAME shard count as the snapshot (the per-shard
  /// run state cannot be re-hashed; kInvalidArgument names the counts
  /// otherwise). Worker threads are respawned after the cell state loads.
  Status Restore(const std::string& snapshot_path, const std::string& wal_path,
                 const SinkResolver& resolve);

  /// Durability counters (folded into Snapshot().durability). Safe from
  /// any thread (relaxed atomics — a monitor may poll mid-checkpoint).
  DurabilityStats durability() const {
    DurabilityStats d;
    d.checkpoints_written = ckpt_written_.Load();
    d.checkpoint_bytes = ckpt_bytes_.Load();
    d.wal_records_appended = wal_appended_.Load();
    d.recovery_events_replayed = replayed_.Load();
    return d;
  }

  // -- Introspection --------------------------------------------------------
  //
  // Every reader below is safe to call from ANY thread — including a
  // monitor thread polling while the ingest and shard threads are running —
  // once query registration is done. Each counter is exact at some instant
  // during the call; relations between counters are approximately
  // consistent mid-run and exact once Finish() has returned.

  size_t num_shards() const { return num_shards_; }
  uint64_t events_ingested() const { return events_ingested_.Load(); }
  /// Events dropped at ingest under FaultPolicy::kSkipAndCount.
  uint64_t events_quarantined() const { return events_quarantined_.Load(); }

  /// The first shard-side runtime fault (OK while none): under kFailFast
  /// the faulted engine drops further events and every Push returns this.
  Status first_fault() const;

  /// Per-shard counter snapshot.
  std::vector<ShardStats> shard_stats() const;
  MergeStats merge_stats() const;

  /// Aggregated per-query metrics (counters and latency histograms summed
  /// across shards).
  Result<QueryMetrics> GetQueryMetrics(std::string_view name) const;

  /// One engine-wide snapshot: every query, every shard, the merge stage.
  /// The live-monitoring entry point (see docs/OPERATIONS.md).
  MetricsSnapshot Snapshot() const;

  /// Shared-layer introspection (tests, monitor), same contract as
  /// Engine::template_registry / Engine::shared_eval_active.
  const TemplateRegistry& template_registry() const {
    return template_registry_;
  }
  /// True while the router probes predicate indexes and tags candidates
  /// (shared_eval on and no fault injector armed anywhere).
  bool shared_eval_active() const {
    return options_.shared_eval && options_.fault_injector == nullptr &&
           !query_injector_;
  }

 private:
  struct Message {
    /// kQuiesce asks the shard to acknowledge that everything enqueued
    /// before it has been fully processed (checkpoint cut); `ordinal`
    /// carries the quiesce generation.
    enum class Kind : uint8_t { kEvent, kBarrier, kFinish, kQuiesce };
    Kind kind = Kind::kEvent;
    uint32_t query = 0;
    EventPtr event;        // kEvent
    uint64_t ordinal = 0;  // kEvent / kBarrier: per-query global ordinal;
                           // kQuiesce: generation
    Timestamp ts = 0;      // kEvent / kBarrier
    /// kEvent: router-side predicate-index verdict. False means the event
    /// cannot begin a run for this query, so the shard may skip the
    /// matcher when the event's partition holds no live runs.
    bool candidate = true;
  };

  /// One (shard, query) execution cell, owned by the shard thread. The
  /// matcher/pruner counters inside are single-writer atomics, so the
  /// snapshot path may read them while the shard is matching.
  struct QueryCell {
    std::unique_ptr<Emitter> emitter;
    std::unique_ptr<PartitionedMatcher> matcher;
  };

  struct Shard {
    size_t index = 0;
    std::unique_ptr<SpscQueue<Message>> queue;
    std::thread thread;
    std::vector<QueryCell> cells;  // per query
    /// Shard-local live-run counter (this shard's slice of the
    /// max_total_runs budget); shard-thread-only.
    size_t live_runs = 0;

    /// Results of closed windows, per query, window-ordered; guarded by
    /// `mu`. The shard appends on window close, the router moves them out.
    std::mutex mu;
    std::vector<std::deque<RankedResult>> published;
    /// Per query: every window id < this value is closed & published
    /// (store-release after publishing, load-acquire by the router).
    std::unique_ptr<std::atomic<int64_t>[]> acked_window;

    /// Consumer parking: the shard sleeps (bounded wait) when its ring is
    /// empty; the router nudges it on push.
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<bool> parked{false};

    /// Highest quiesce generation acknowledged (store-release after the
    /// shard processed everything enqueued before the kQuiesce message;
    /// acquire-load by the checkpointing ingest thread, which thereby
    /// observes every cell write the shard made).
    std::atomic<uint64_t> quiesced{0};

    /// Live counters + per-query latency histograms; shard-thread and
    /// router-side writers, snapshottable from any thread.
    MetricsCell metrics;
  };

  struct StreamState {
    SchemaPtr schema;
    uint64_t next_sequence = 0;
    /// Bounded out-of-order ingest buffer, applied on the ingest thread
    /// before the shard router. Non-movable (atomic counters): streams_
    /// entries are built in place with try_emplace.
    ReorderBuffer reorder;
    /// Entry-predicate index over this stream's queries, keyed by global
    /// query index (registration is pre-start, so indices are stable).
    /// Probed once per released event on the ingest thread.
    PredicateIndex index;
    std::vector<uint32_t> cand_scratch;  // ingest-thread probe scratch
    /// Batched-probe scratch (one candidate list per batch row), reused
    /// across RouteReleasedBatch calls; ingest thread only.
    std::vector<std::vector<uint32_t>> batch_cand_scratch;
  };

  struct QueryState {
    QueryState(std::string name_in, CompiledQueryPtr plan_in,
               const QueryOptions& options_in, Sink* sink_in,
               ShardRouter router_in, ReportWindowAssigner windows_in,
               ShardMergeOptions merge_in)
        : name(std::move(name_in)),
          plan(std::move(plan_in)),
          options(options_in),
          sink(sink_in),
          router(std::move(router_in)),
          windows(windows_in),
          merge(merge_in) {}

    std::string name;
    /// Original query text, kept so a checkpoint can re-register the query.
    std::string text;
    CompiledQueryPtr plan;
    QueryOptions options;
    Sink* sink = nullptr;
    ShardRouter router;
    ReportWindowAssigner windows;
    ShardMergeOptions merge;
    /// Interned NFA template (shared_eval only): refcount tracks query
    /// lifetime, equal pointers mean structurally shared plans.
    std::shared_ptr<const NfaTemplate> nfa_template;

    /// Events routed to this query; ingest-thread-written, snapshot-read.
    RelaxedCounter ordinal;
    int64_t current_window = 0;  // last window broadcast via barrier
    int64_t merged_upto = 0;     // windows < this delivered to the sink
    /// Per shard: published results pulled from the shard, not yet merged.
    std::vector<std::deque<RankedResult>> pending;
    /// Results handed to the sink; ingest-thread-written, snapshot-read.
    RelaxedCounter results_delivered;
  };

  void StartWorkers();
  /// StartWorkers is BuildShards + SpawnWorkers; Restore calls them
  /// separately so the restored cell state is loaded on the ingest thread
  /// between the two (the SPSC ring's release/acquire pair publishes those
  /// writes to the shard thread before its first message).
  void BuildShards();
  void SpawnWorkers();
  /// Checkpoint cut: enqueues a kQuiesce to every shard and waits until all
  /// acknowledge, so every previously routed message is fully processed and
  /// its cell writes are visible to the ingest thread. Fails with
  /// kUnavailable past the enqueue stall budget (wedged shard). No-op
  /// before the first Push or after Finish (joined threads happen-before).
  Status Quiesce();
  void ShardMain(size_t shard_index);
  /// The per-stream ReorderConfig implied by ShardedEngineOptions (legacy
  /// `reject_out_of_order = false` maps to LatePolicy::kClamp).
  ReorderConfig DefaultReorderConfig() const;
  /// Validation + reorder-buffer Offer shared by Push and PushAll: returns
  /// the owning stream with `released` filled in release order (empty for a
  /// buffered or late-dropped event), or the error Push would return.
  Result<StreamState*> OfferEvent(Event event, std::vector<Event>* released);
  /// Stamps one buffer-released event with the stream's sequence number
  /// and routes it: per-query ordinal, window barriers, shard enqueue,
  /// opportunistic merge drain (ingest thread).
  Status RouteReleased(StreamState& state, Event event);
  /// RouteReleased with the predicate-index verdict already computed (the
  /// batched path probes once per batch, then routes row by row).
  Status RouteStamped(StreamState& state, Event event, bool use_index,
                      const std::vector<uint32_t>& cand);
  /// True when `num_released` same-stream events should go through one
  /// ProbeBatch instead of per-event probes.
  bool RouteBatchable(const StreamState& state, size_t num_released) const;
  /// One batched probe over `released`, then per-event routing. Bit-identical
  /// to RouteReleased in a loop (tested property).
  Status RouteReleasedBatch(StreamState& state, std::vector<Event> released);
  /// Blocking enqueue with backpressure accounting and consumer nudge.
  /// Fails with kUnavailable once the stall budget is spent on a full ring.
  Status Enqueue(Shard* shard, Message msg);
  /// Records the first shard-side fault and flips the engine into the
  /// faulted state (shard threads; first writer wins).
  void RecordFault(const Status& status);
  /// Closes windows the shard's emitter has moved past and publishes the
  /// results (shard thread).
  void PublishResults(Shard* shard, uint32_t query,
                      std::vector<RankedResult> results);
  /// Records one event's processing time (skipped when negative: barriers
  /// and finish flushes) and the emission delays of `emitted` into the
  /// shard's metrics cell (shard thread).
  void RecordTimings(Shard* shard, uint32_t query, int64_t processing_ns,
                     const std::vector<RankedResult>& emitted);
  /// Merges and delivers every window all shards have moved past; `final`
  /// ignores acks (only valid once workers have joined).
  void DrainReady(QueryState* q, uint32_t query_index, bool final);
  /// Sums matcher/pruner counters and latency histograms across shards.
  QueryMetrics AggregateQueryMetrics(uint32_t query_index) const;
  /// True once StartWorkers has fully populated shards_ (acquire-load, so
  /// snapshot readers may walk the shard vector).
  bool WorkersStarted() const {
    return started_.load(std::memory_order_acquire);
  }

  ShardedEngineOptions options_;
  size_t num_shards_;
  std::map<std::string, StreamState, std::less<>> streams_;
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::map<std::string, uint32_t, std::less<>> query_index_;
  /// Shared evaluation layer (pre-start writes, any-thread reads).
  TemplateRegistry template_registry_;
  RelaxedCounter queries_deduped_;
  /// True when some registered query arms its own fault injector: the
  /// router degrades to full per-query visits so injected schedules fire
  /// at the exact positions the unshared path produces.
  bool query_injector_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Set (release) after shards_ and their threads exist; snapshot readers
  /// gate on it before touching shard state.
  std::atomic<bool> started_{false};
  bool finished_ = false;
  /// Emergency-stop flag: shard threads exit their loop (and any injected
  /// stall) as soon as they see it. Set by the destructor, and by Finish()
  /// when a wedged shard will not accept its kFinish message.
  std::atomic<bool> abort_{false};
  /// Fault containment under kFailFast: the first shard-side error, and an
  /// acquire-checked flag the ingest path reads per Push. Once faulted,
  /// shard threads drop further events (barriers still flow).
  mutable std::mutex fault_mu_;
  Status first_fault_;
  std::atomic<bool> faulted_{false};
  /// Ingest-thread-written, snapshot-read.
  RelaxedCounter events_ingested_;
  RelaxedCounter events_quarantined_;
  RelaxedCounter merge_windows_;
  RelaxedCounter merge_results_;

  // -- Durability state (ingest thread; counters snapshot-read) -------------
  /// Serializes the full engine state as one snapshot body. Workers must be
  /// quiesced (or never started / joined) when called.
  void SaveBody(BinWriter* w) const;
  Status LoadBody(BinReader* r, const SinkResolver& resolve,
                  uint64_t* wal_cut);
  Status ReplayWal(const std::string& wal_path, uint64_t skip,
                   const SinkResolver& resolve);

  std::unique_ptr<WalWriter> wal_;
  bool replaying_ = false;
  uint64_t checkpoint_attempts_ = 0;  // ckpt.kill_mid_write fault key
  uint64_t quiesce_generation_ = 0;
  /// Relaxed atomics (not a plain DurabilityStats): a monitor thread may
  /// read Snapshot().durability while the ingest thread checkpoints.
  RelaxedCounter ckpt_written_;
  RelaxedCounter ckpt_bytes_;
  RelaxedCounter wal_appended_;
  RelaxedCounter replayed_;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_SHARDED_ENGINE_H_
