#ifndef CEPR_RUNTIME_ENGINE_H_
#define CEPR_RUNTIME_ENGINE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "engine/predicate_index.h"
#include "plan/signature.h"
#include "runtime/checkpoint.h"
#include "runtime/query.h"
#include "runtime/reorder.h"
#include "runtime/wal.h"

namespace cepr {

/// Engine-wide options.
struct EngineOptions {
  // -- Event time / out-of-order ingest --------------------------------------

  /// How far (event-time microseconds) an event may arrive behind the
  /// highest timestamp seen on its stream and still be reordered into
  /// place by the per-stream reorder buffer (see runtime/reorder.h).
  /// 0 = strict in-order ingest, today's default.
  Timestamp max_lateness_micros = 0;
  /// Fate of events that miss the lateness bound. kClamp reproduces the
  /// legacy `reject_out_of_order = false` timestamp-rewriting behavior
  /// explicitly; kReject and kDropAndCount never mutate event time.
  LatePolicy late_policy = LatePolicy::kReject;
  /// Legacy switch, kept for compatibility: when false and `late_policy`
  /// is left at its kReject default, late events are clamped (the
  /// pre-reorder behavior). Prefer setting `late_policy` directly.
  bool reject_out_of_order = true;

  // -- Overload protection ---------------------------------------------------
  // Engine-wide caps overlaying each query's own MatcherOptions (see
  // MergeEngineCaps): caps combine to the smaller non-zero value, the
  // policies win when set to a non-default value. 0 = no engine-wide cap.

  /// Cap on live matcher runs per (query, partition).
  size_t max_runs_per_partition = 0;
  /// Cap on live matcher runs across every query and partition.
  size_t max_total_runs = 0;
  /// Which run to shed when a budget is full.
  ShedPolicy shed_policy = ShedPolicy::kShedOldest;

  // -- Fault containment -----------------------------------------------------

  /// What runtime faults (eval errors, poison events, failed batch
  /// entries) do to the stream: stop it, or quarantine-and-count.
  FaultPolicy fault_policy = FaultPolicy::kFailFast;
  /// Optional deterministic fault-injection harness (tests/bench); not
  /// owned, must outlive the engine.
  const FaultInjector* fault_injector = nullptr;

  // -- Shared multi-query evaluation ----------------------------------------

  /// Route events through the shared evaluation layer: NFA templates are
  /// interned per canonical signature, each stream's entry predicates are
  /// indexed so an event dispatches only to queries it can affect, and
  /// report-window boundaries are tracked once per (stream, window-scheme)
  /// group. Ranked output per query is bit-identical to the per-query path
  /// (docs/MULTIQUERY.md proves the skip conditions); `false` is the
  /// ablation switch that preserves the classic visit-every-query routing.
  /// Automatically degraded to full per-query visits while any registered
  /// query has a fault injector armed, so injected fault schedules fire at
  /// the exact event positions the per-query path would produce.
  bool shared_eval = true;

  /// Screen multi-event ingests (PushAll, reorder-buffer release bursts)
  /// through one columnar PredicateIndex::ProbeBatch per stream run instead
  /// of a per-event probe. Routing, sequencing and delivery order are
  /// unchanged — per-query output is bit-identical either way — so this is
  /// purely the vectorized-screening ablation knob. Streams that are EMIT
  /// INTO targets always take the per-event path (re-ingestion may land
  /// mid-batch and must interleave exactly as it would per event).
  bool batch_ingest = true;
};

/// The CEPR system facade: stream registry, query registry, and the ingest
/// path. Typical use:
///
///   Engine engine;
///   engine.ExecuteDdl("CREATE STREAM Stock (symbol STRING, price FLOAT)");
///   CollectSink sink;
///   engine.RegisterQuery("crash", kQueryText, QueryOptions{}, &sink);
///   for (const Event& e : events) engine.Push(e);
///   engine.Finish();
///
/// Single-threaded: Push and Finish must not be called concurrently.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  // -- Streams ------------------------------------------------------------

  /// Executes a CREATE STREAM statement.
  Status ExecuteDdl(std::string_view ddl_text);

  /// Registers a pre-built schema.
  Status RegisterSchema(SchemaPtr schema);

  Result<SchemaPtr> GetSchema(std::string_view stream_name) const;
  std::vector<std::string> StreamNames() const;

  /// Overrides one stream's disorder tolerance (lateness bound + late
  /// policy), replacing the engine-wide default derived from
  /// EngineOptions. Must be called before the stream's first event
  /// (InvalidArgument otherwise) so the release frontier never changes
  /// mid-stream; NotFound if the stream is not registered.
  Status ConfigureStreamIngest(std::string_view stream_name,
                               ReorderConfig config);

  // -- Queries -------------------------------------------------------------

  /// Compiles `query_text` against its FROM stream and starts it. `sink`
  /// may be null (results dropped) and must outlive the query otherwise.
  /// Fails with AlreadyExists for duplicate names.
  Status RegisterQuery(std::string name, std::string_view query_text,
                       const QueryOptions& options, Sink* sink);

  /// Stops and removes a query (flushing it first).
  Status RemoveQuery(std::string_view name);

  Result<const RunningQuery*> GetQuery(std::string_view name) const;
  std::vector<std::string> QueryNames() const;

  /// One query's metrics snapshot (same shape as ShardedEngine's). Like
  /// every Engine call this runs on the single driving thread.
  Result<QueryMetrics> GetQueryMetrics(std::string_view name) const;

  /// Engine-wide metrics snapshot: every query's counters and latency
  /// histograms, in name order (facade parity with
  /// ShardedEngine::Snapshot; num_shards is 1 and the shard list empty).
  MetricsSnapshot Snapshot() const;

  // -- Ingest ---------------------------------------------------------------

  /// Ingests one event: validates its schema is registered, offers it to
  /// the stream's reorder buffer, and routes every event the buffer
  /// releases — stamped with the per-stream sequence number at release —
  /// to every query on that stream. With the default zero lateness bound
  /// the buffer is a pass-through and this is the classic strict-order
  /// ingest path.
  Status Push(Event event);

  /// Drains every stream's reorder buffer, routing the resident events
  /// downstream in release order. After a flush, an arrival older than
  /// anything flushed is late. Finish() calls this; exposed for callers
  /// that need the buffered tail visible without ending the stream.
  Status Flush();

  /// Ingests a batch in order. On failure the Status names the failing
  /// index and the already-ingested prefix; under
  /// FaultPolicy::kSkipAndCount failing events are skipped (counted in
  /// events_quarantined) and the rest of the batch proceeds.
  Status PushAll(std::vector<Event> events);

  /// Signals end-of-stream: every query flushes its buffered windows.
  void Finish();

  // -- Durability -----------------------------------------------------------

  /// Opens (or resumes) a write-ahead journal at `path`: every top-level
  /// arrival Push accepts — and every explicit Flush — is journaled before
  /// it mutates engine state, so a crash loses nothing past the last valid
  /// record. A pre-existing file is scanned and a torn tail truncated
  /// (crash mid-append); appending resumes after the last valid record.
  /// Derived-stream re-ingestion (EMIT INTO) is NOT journaled: replay
  /// regenerates it deterministically.
  Status OpenWal(const std::string& path);

  /// Forces journaled records to stable storage. No-op without an open WAL.
  Status SyncWal();

  /// Writes a consistent snapshot of the full engine state — streams,
  /// reorder buffers, queries with their live runs and ranking state,
  /// counters — to `path`, atomically (temp + fsync + rename). With an open
  /// WAL the snapshot records the journal position, so Restore replays only
  /// the records that arrived after this cut.
  Status Checkpoint(const std::string& path);

  /// Rebuilds this engine from a snapshot, then replays the WAL tail past
  /// the snapshot's cut through the normal ingest path. Must be called on a
  /// pristine engine (no streams, no queries, nothing ingested) constructed
  /// with the caller's fault injector if one is wanted; `resolve` supplies
  /// each restored query's sink by name (see SinkResolver). Pass an empty
  /// `wal_path` to restore from the snapshot alone. On success the engine
  /// is live and the WAL (when given) is reopened for continued appending.
  Status Restore(const std::string& snapshot_path, const std::string& wal_path,
                 const SinkResolver& resolve);

  /// Durability counters (folded into Snapshot().durability).
  const DurabilityStats& durability() const { return durability_; }

  /// Effective engine options (after a Restore these are the snapshot's,
  /// except the fault injector, which stays the constructed one).
  const EngineOptions& options() const { return options_; }

  /// Total events accepted.
  uint64_t events_ingested() const { return events_ingested_; }
  /// Events dropped at ingest under FaultPolicy::kSkipAndCount.
  uint64_t events_quarantined() const { return events_quarantined_; }
  /// Live matcher runs across all queries (what max_total_runs caps).
  size_t live_runs() const { return live_runs_; }

  /// Shared-layer introspection (tests, monitor). live_templates walks the
  /// registry; the rest are cheap counter reads folded into Snapshot().
  const TemplateRegistry& template_registry() const {
    return template_registry_;
  }
  /// True while events actually route through the shared layer (i.e.
  /// shared_eval is on and no fault injector has degraded it).
  bool shared_eval_active() const {
    return options_.shared_eval && !degraded_faults_;
  }

 private:
  /// Per-stream state of the shared evaluation layer. Queries are referred
  /// to by dense per-stream slots assigned in name order (so the predicate
  /// index's ascending-id output is exactly the per-query visit order the
  /// classic path produces); membership changes re-slot via
  /// RebuildSharedStream — hot add/remove is rare, events are not.
  struct SharedStreamState {
    /// Entry-predicate dispatch index; slot-keyed.
    PredicateIndex index;
    /// slot -> query, name-sorted (parallel to the slot numbering).
    std::vector<RunningQuery*> by_slot;
    /// Slots whose queries currently hold live matcher runs: these must be
    /// visited even for non-candidate events (runs can extend/expire/die).
    /// Updated after each visit — the only place run counts change.
    std::set<uint32_t> hot;
    /// One boundary tracker per distinct window scheme: every member
    /// query's report windows close at the same events, so the crossing
    /// check runs once per group instead of once per query.
    /// Key: (mode, span-or-n, registration offset mod n).
    struct WindowGroup {
      int64_t last = INT64_MIN;  // last boundary counter observed
      std::vector<uint32_t> slots;
    };
    std::map<std::tuple<int, int64_t, int64_t>, WindowGroup> window_groups;
    /// Reusable per-event scratch (swapped out during a Route call so
    /// nested derived-stream routing cannot clobber it).
    std::vector<uint32_t> cand_scratch;
    std::vector<uint32_t> due_scratch;
    /// Reusable batched-probe scratch: per-row candidate lists (swapped out
    /// during RouteBatch for the same re-entrancy reason).
    std::vector<std::vector<uint32_t>> batch_cand_scratch;
  };

  struct StreamState {
    SchemaPtr schema;
    uint64_t next_sequence = 0;
    /// True while some registered query EMIT INTOs this stream: batched
    /// routing is disabled so re-ingested events interleave exactly as in
    /// the per-event path. Maintained by RecomputeForwardTargets.
    bool forward_target = false;
    /// Bounded out-of-order ingest buffer; owns the stream's watermark.
    /// Non-movable (single-writer atomic counters), so streams_ entries
    /// are built in place with try_emplace.
    ReorderBuffer reorder;
    SharedStreamState shared;
  };

  /// Builds the re-ingestion callback for an EMIT INTO query, creating or
  /// validating the derived stream's schema.
  Result<RunningQuery::ForwardFn> MakeForwarder(const CompiledQueryPtr& plan);

  /// The per-stream ReorderConfig implied by EngineOptions (legacy
  /// `reject_out_of_order = false` maps to LatePolicy::kClamp).
  ReorderConfig DefaultReorderConfig() const;

  /// Validates `event` against the stream registry and offers it to the
  /// stream's reorder buffer, appending whatever the buffer releases.
  /// Returns the stream (kLateDropped included — released stays empty);
  /// errors are Push's validation / late-rejection statuses.
  Result<StreamState*> OfferEvent(Event event, std::vector<Event>* released);
  /// Stamps each released event with the stream's sequence number and fans
  /// it out to the stream's queries, in release order.
  Status Route(StreamState& state, std::vector<Event> released);
  /// Classic path: every query of the stream, in name order. Used when
  /// shared_eval is off (per-query counting) or degraded (explicit
  /// ordinals, full visits).
  Status RouteAll(StreamState& state, const EventPtr& event);
  /// Shared path: predicate-index probe, then visit only candidate, hot
  /// and window-due queries (in name order — same delivery interleaving as
  /// RouteAll).
  Status RouteShared(StreamState& state, const EventPtr& event);
  /// The visit half of RouteShared, with the candidate slots already
  /// computed (per-event Probe or one batched ProbeBatch row).
  Status VisitShared(StreamState& state, const EventPtr& event,
                     const std::vector<uint32_t>& cand);
  /// Batched shared path: one columnar ProbeBatch over the whole release,
  /// then the per-event visit loop with precomputed candidates. Only
  /// reached when RouteBatchable(state) held.
  Status RouteBatch(StreamState& state, std::vector<Event> released);
  bool RouteBatchable(const StreamState& state, size_t num_released) const;
  /// Recomputes every stream's forward_target flag from the live queries'
  /// EMIT INTO targets (query add/remove).
  void RecomputeForwardTargets();
  /// Re-slots a stream's queries (name order), rebuilds its predicate
  /// index, hot set and window groups. Called on query add/remove.
  void RebuildSharedStream(StreamState& state);
  StreamState* StreamOf(const CompiledQueryPtr& plan);

  /// Serializes the full engine state as one snapshot body (the frame is
  /// ckpt::WriteSnapshotFile's job); see docs/ARCHITECTURE.md.
  void SaveBody(BinWriter* w) const;
  /// Rebuilds the engine from a snapshot body: re-registers every stream
  /// and query from its saved DDL/text, then loads the serialized state
  /// over the fresh instances. Returns the WAL cut via *wal_cut.
  Status LoadBody(BinReader* r, const SinkResolver& resolve,
                  uint64_t* wal_cut);
  /// Replays a journal tail through the normal ingest path, skipping the
  /// first `skip` records (already captured by the snapshot). Registration
  /// records (schemas, deploys, undeploys journaled after the cut) are
  /// re-applied in position; `resolve` supplies replayed deploys' sinks.
  Status ReplayWal(const std::string& wal_path, uint64_t skip,
                   const SinkResolver& resolve);

  EngineOptions options_;
  std::map<std::string, StreamState, std::less<>> streams_;
  std::map<std::string, std::unique_ptr<RunningQuery>, std::less<>> queries_;
  /// Original registration inputs, kept so a snapshot can re-register each
  /// query from its text + pre-merge options (the engine-wide caps are
  /// re-merged by the restoring engine).
  struct QueryRegistration {
    std::string text;
    QueryOptions options;
  };
  std::map<std::string, QueryRegistration, std::less<>> registrations_;
  TemplateRegistry template_registry_;
  uint64_t queries_deduped_ = 0;
  /// Sticky: set when any registered query arms a fault injector; the
  /// engine then visits every query per event so fault schedules hit the
  /// exact positions the per-query path produces.
  bool degraded_faults_ = false;
  uint64_t events_ingested_ = 0;
  uint64_t events_quarantined_ = 0;
  /// Engine-wide live-run counter shared by every matcher (the
  /// max_total_runs budget); single-threaded like the rest of the engine.
  size_t live_runs_ = 0;
  /// Depth of nested Push calls through derived streams; bounds query
  /// composition cycles.
  int push_depth_ = 0;
  static constexpr int kMaxPushDepth = 8;

  // -- Durability state -----------------------------------------------------
  std::unique_ptr<WalWriter> wal_;
  /// Set around ReplayWal so replayed arrivals are not re-journaled.
  bool replaying_ = false;
  /// Checkpoint ordinal: the `ckpt.kill_mid_write` fault key.
  uint64_t checkpoint_attempts_ = 0;
  DurabilityStats durability_;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_ENGINE_H_
