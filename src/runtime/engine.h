#ifndef CEPR_RUNTIME_ENGINE_H_
#define CEPR_RUNTIME_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/query.h"
#include "runtime/reorder.h"

namespace cepr {

/// Engine-wide options.
struct EngineOptions {
  // -- Event time / out-of-order ingest --------------------------------------

  /// How far (event-time microseconds) an event may arrive behind the
  /// highest timestamp seen on its stream and still be reordered into
  /// place by the per-stream reorder buffer (see runtime/reorder.h).
  /// 0 = strict in-order ingest, today's default.
  Timestamp max_lateness_micros = 0;
  /// Fate of events that miss the lateness bound. kClamp reproduces the
  /// legacy `reject_out_of_order = false` timestamp-rewriting behavior
  /// explicitly; kReject and kDropAndCount never mutate event time.
  LatePolicy late_policy = LatePolicy::kReject;
  /// Legacy switch, kept for compatibility: when false and `late_policy`
  /// is left at its kReject default, late events are clamped (the
  /// pre-reorder behavior). Prefer setting `late_policy` directly.
  bool reject_out_of_order = true;

  // -- Overload protection ---------------------------------------------------
  // Engine-wide caps overlaying each query's own MatcherOptions (see
  // MergeEngineCaps): caps combine to the smaller non-zero value, the
  // policies win when set to a non-default value. 0 = no engine-wide cap.

  /// Cap on live matcher runs per (query, partition).
  size_t max_runs_per_partition = 0;
  /// Cap on live matcher runs across every query and partition.
  size_t max_total_runs = 0;
  /// Which run to shed when a budget is full.
  ShedPolicy shed_policy = ShedPolicy::kShedOldest;

  // -- Fault containment -----------------------------------------------------

  /// What runtime faults (eval errors, poison events, failed batch
  /// entries) do to the stream: stop it, or quarantine-and-count.
  FaultPolicy fault_policy = FaultPolicy::kFailFast;
  /// Optional deterministic fault-injection harness (tests/bench); not
  /// owned, must outlive the engine.
  const FaultInjector* fault_injector = nullptr;
};

/// The CEPR system facade: stream registry, query registry, and the ingest
/// path. Typical use:
///
///   Engine engine;
///   engine.ExecuteDdl("CREATE STREAM Stock (symbol STRING, price FLOAT)");
///   CollectSink sink;
///   engine.RegisterQuery("crash", kQueryText, QueryOptions{}, &sink);
///   for (const Event& e : events) engine.Push(e);
///   engine.Finish();
///
/// Single-threaded: Push and Finish must not be called concurrently.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  // -- Streams ------------------------------------------------------------

  /// Executes a CREATE STREAM statement.
  Status ExecuteDdl(std::string_view ddl_text);

  /// Registers a pre-built schema.
  Status RegisterSchema(SchemaPtr schema);

  Result<SchemaPtr> GetSchema(std::string_view stream_name) const;
  std::vector<std::string> StreamNames() const;

  /// Overrides one stream's disorder tolerance (lateness bound + late
  /// policy), replacing the engine-wide default derived from
  /// EngineOptions. Must be called before the stream's first event
  /// (InvalidArgument otherwise) so the release frontier never changes
  /// mid-stream; NotFound if the stream is not registered.
  Status ConfigureStreamIngest(std::string_view stream_name,
                               ReorderConfig config);

  // -- Queries -------------------------------------------------------------

  /// Compiles `query_text` against its FROM stream and starts it. `sink`
  /// may be null (results dropped) and must outlive the query otherwise.
  /// Fails with AlreadyExists for duplicate names.
  Status RegisterQuery(std::string name, std::string_view query_text,
                       const QueryOptions& options, Sink* sink);

  /// Stops and removes a query (flushing it first).
  Status RemoveQuery(std::string_view name);

  Result<const RunningQuery*> GetQuery(std::string_view name) const;
  std::vector<std::string> QueryNames() const;

  /// One query's metrics snapshot (same shape as ShardedEngine's). Like
  /// every Engine call this runs on the single driving thread.
  Result<QueryMetrics> GetQueryMetrics(std::string_view name) const;

  /// Engine-wide metrics snapshot: every query's counters and latency
  /// histograms, in name order (facade parity with
  /// ShardedEngine::Snapshot; num_shards is 1 and the shard list empty).
  MetricsSnapshot Snapshot() const;

  // -- Ingest ---------------------------------------------------------------

  /// Ingests one event: validates its schema is registered, offers it to
  /// the stream's reorder buffer, and routes every event the buffer
  /// releases — stamped with the per-stream sequence number at release —
  /// to every query on that stream. With the default zero lateness bound
  /// the buffer is a pass-through and this is the classic strict-order
  /// ingest path.
  Status Push(Event event);

  /// Drains every stream's reorder buffer, routing the resident events
  /// downstream in release order. After a flush, an arrival older than
  /// anything flushed is late. Finish() calls this; exposed for callers
  /// that need the buffered tail visible without ending the stream.
  Status Flush();

  /// Ingests a batch in order. On failure the Status names the failing
  /// index and the already-ingested prefix; under
  /// FaultPolicy::kSkipAndCount failing events are skipped (counted in
  /// events_quarantined) and the rest of the batch proceeds.
  Status PushAll(std::vector<Event> events);

  /// Signals end-of-stream: every query flushes its buffered windows.
  void Finish();

  /// Total events accepted.
  uint64_t events_ingested() const { return events_ingested_; }
  /// Events dropped at ingest under FaultPolicy::kSkipAndCount.
  uint64_t events_quarantined() const { return events_quarantined_; }
  /// Live matcher runs across all queries (what max_total_runs caps).
  size_t live_runs() const { return live_runs_; }

 private:
  struct StreamState {
    SchemaPtr schema;
    uint64_t next_sequence = 0;
    /// Bounded out-of-order ingest buffer; owns the stream's watermark.
    /// Non-movable (single-writer atomic counters), so streams_ entries
    /// are built in place with try_emplace.
    ReorderBuffer reorder;
  };

  /// Builds the re-ingestion callback for an EMIT INTO query, creating or
  /// validating the derived stream's schema.
  Result<RunningQuery::ForwardFn> MakeForwarder(const CompiledQueryPtr& plan);

  /// The per-stream ReorderConfig implied by EngineOptions (legacy
  /// `reject_out_of_order = false` maps to LatePolicy::kClamp).
  ReorderConfig DefaultReorderConfig() const;

  /// Stamps each released event with the stream's sequence number and fans
  /// it out to the stream's queries, in release order.
  Status Route(StreamState& state, std::vector<Event> released);

  EngineOptions options_;
  std::map<std::string, StreamState, std::less<>> streams_;
  std::map<std::string, std::unique_ptr<RunningQuery>, std::less<>> queries_;
  uint64_t events_ingested_ = 0;
  uint64_t events_quarantined_ = 0;
  /// Engine-wide live-run counter shared by every matcher (the
  /// max_total_runs budget); single-threaded like the rest of the engine.
  size_t live_runs_ = 0;
  /// Depth of nested Push calls through derived streams; bounds query
  /// composition cycles.
  int push_depth_ = 0;
  static constexpr int kMaxPushDepth = 8;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_ENGINE_H_
