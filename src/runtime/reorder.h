#ifndef CEPR_RUNTIME_REORDER_H_
#define CEPR_RUNTIME_REORDER_H_

#include <cstdint>
#include <vector>

#include "common/counters.h"
#include "event/event.h"

namespace cepr {

class BinWriter;
class BinReader;

/// What happens to an event that arrives after the stream's release
/// watermark has moved past its timestamp (it missed the lateness bound).
enum class LatePolicy : uint8_t {
  /// Push fails with InvalidArgument; the event is untouched. The strict
  /// default: disorder beyond the bound is a caller bug.
  kReject,
  /// The event is silently discarded and counted (events_late_dropped).
  /// Timestamps are never mutated; ranked output stays exact over the
  /// events that made the bound.
  kDropAndCount,
  /// The event's timestamp is rewritten to the watermark and it is
  /// admitted. This is the pre-reorder engine's implicit behavior for
  /// `reject_out_of_order = false` and for EMIT INTO derived streams, kept
  /// as an explicit opt-in: it corrupts event time, so WITHIN windows and
  /// time-dependent scores see the clamped value (events_clamped counts).
  kClamp,
};

/// Stable name ("Reject" / "DropAndCount" / "Clamp") for logs and dumps.
const char* LatePolicyToString(LatePolicy policy);

/// Per-stream ingest-time disorder tolerance.
struct ReorderConfig {
  /// How far (event-time microseconds) an event may lag behind the highest
  /// timestamp seen on its stream and still be reordered into place. 0 =
  /// strict in-order ingest (today's behavior): any regression is late.
  Timestamp max_lateness_micros = 0;
  /// Fate of events that miss the bound.
  LatePolicy late_policy = LatePolicy::kReject;
};

/// Plain-value snapshot of one buffer's (or one engine's aggregated)
/// disorder counters.
struct ReorderStats {
  /// Events admitted with a timestamp below the highest already seen —
  /// successfully reordered into place by the buffer.
  uint64_t events_reordered = 0;
  /// Events discarded under LatePolicy::kDropAndCount.
  uint64_t events_late_dropped = 0;
  /// Late events rewritten to the watermark under LatePolicy::kClamp.
  uint64_t events_clamped = 0;
  /// Peak resident events (deepest the buffer got).
  uint64_t reorder_buffer_peak = 0;

  void Accumulate(const ReorderStats& other);
};

/// Bounded out-of-order ingest buffer, one per stream, sitting between
/// event validation and everything downstream (sequence stamping, the
/// shard router, matchers, report windows). Events are held for at most
/// `max_lateness_micros` of event time and released in deterministic
/// (timestamp, arrival order) order as the release watermark — the highest
/// timestamp seen minus the lateness bound — advances past them. Because
/// no admissible future event can precede the watermark, the released
/// sequence is timestamp-monotone: downstream code keeps its in-order
/// contract, and a serial and a sharded engine fed the same arrivals
/// observe the identical released order.
///
/// With max_lateness_micros = 0 the buffer degenerates to a pass-through
/// that classifies regressions under the late policy — exactly the
/// pre-reorder strict behavior.
///
/// Single-writer (the ingest thread). The counters are single-writer
/// relaxed atomics so metrics snapshots may read them from any thread.
class ReorderBuffer {
 public:
  /// Verdict for one offered event.
  enum class Verdict : uint8_t {
    /// Admitted: buffered, or appended to `released` (possibly clamped).
    kAccepted,
    /// Late under kReject: the caller should surface an error.
    kLateRejected,
    /// Late under kDropAndCount: discarded and counted.
    kLateDropped,
  };

  ReorderBuffer() = default;
  explicit ReorderBuffer(ReorderConfig config) : config_(config) {}

  /// Offers one validated event. Zero or more events whose release became
  /// safe are appended to `released` in (timestamp, arrival) order; the
  /// offered event itself may be among them.
  Verdict Offer(Event event, std::vector<Event>* released);

  /// Drains every resident event into `released` (same order) and advances
  /// the release frontier past them, so a later arrival older than
  /// anything flushed is late. Used by Engine::Flush/Finish.
  void Flush(std::vector<Event>* released);

  /// Lowest timestamp a future event may carry without being late: the
  /// larger of (highest timestamp seen - lateness bound) and the highest
  /// timestamp already released. Meaningful once saw_event().
  Timestamp watermark() const;

  bool saw_event() const { return saw_event_; }
  /// Highest event timestamp seen on the stream.
  Timestamp high_ts() const { return high_ts_; }
  size_t resident() const { return heap_.size(); }

  const ReorderConfig& config() const { return config_; }
  /// Reconfigures the buffer; callers gate this on !saw_event() so the
  /// frontier semantics never change mid-stream.
  void set_config(ReorderConfig config) { config_ = config; }

  /// Counter snapshot (any thread).
  ReorderStats stats() const;

  /// Checkpoint serialization: config, frontier state, resident events (in
  /// raw heap-array order, preserving arrival numbering exactly) and
  /// counters. Load rebuilds the buffer byte-identically; `schema` re-binds
  /// the resident events. Writer thread only.
  void SaveState(BinWriter* w) const;
  bool LoadState(BinReader* r, const SchemaPtr& schema);

 private:
  struct Entry {
    Timestamp ts = 0;
    uint64_t arrival = 0;
    Event event;
  };

  /// Heap comparator: `a` releases after `b`, so std::*_heap (a max-heap
  /// family) keeps the earliest (ts, arrival) entry at the front.
  static bool ReleasesLater(const Entry& a, const Entry& b) {
    if (a.ts != b.ts) return a.ts > b.ts;
    return a.arrival > b.arrival;
  }

  void ReleaseRipe(std::vector<Event>* released);

  ReorderConfig config_;
  bool saw_event_ = false;
  Timestamp high_ts_ = 0;
  /// Highest timestamp released via Flush (release frontier floor).
  Timestamp flushed_upto_ = 0;
  bool flushed_any_ = false;
  uint64_t next_arrival_ = 0;
  /// Min-heap on (ts, arrival): heap_.front() is the next event to release.
  std::vector<Entry> heap_;

  RelaxedCounter events_reordered_;
  RelaxedCounter events_late_dropped_;
  RelaxedCounter events_clamped_;
  RelaxedMax buffer_peak_;
};

}  // namespace cepr

#endif  // CEPR_RUNTIME_REORDER_H_
