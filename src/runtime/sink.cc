#include "runtime/sink.h"

#include "common/strings.h"

namespace cepr {

PrintSink::PrintSink(std::ostream& os, std::vector<std::string> column_names,
                     std::string query_name)
    : os_(os), columns_(std::move(column_names)), query_name_(std::move(query_name)) {}

void PrintSink::OnResult(const RankedResult& result) {
  if (!query_name_.empty()) os_ << "[" << query_name_ << "] ";
  os_ << "w" << result.window_id << " #" << (result.rank + 1);
  if (result.provisional) os_ << "?";
  os_ << " score=" << FormatDouble(result.match.score) << " ";
  for (size_t i = 0; i < result.match.row.size(); ++i) {
    if (i > 0) os_ << " ";
    if (i < columns_.size()) os_ << columns_[i] << "=";
    os_ << result.match.row[i].ToString();
  }
  os_ << "\n";
}

}  // namespace cepr
