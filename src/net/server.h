#ifndef CEPR_NET_SERVER_H_
#define CEPR_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"

namespace cepr {
namespace net {

class Session;

/// Configuration of a CeprServer instance.
struct ServerOptions {
  /// Listen address. The default binds loopback only; the server speaks an
  /// unauthenticated binary protocol and is meant to sit behind trusted
  /// transport.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// 0 runs the serial Engine; N > 0 runs a ShardedEngine with N worker
  /// shards (which rejects hot undeploy and post-start deploys — the
  /// engine's own restrictions surface as error replies).
  size_t num_shards = 0;
  /// Engine knobs for the selected mode. sharded.num_shards is overridden
  /// by `num_shards` above.
  EngineOptions engine;
  ShardedEngineOptions sharded;

  /// Durability root. Empty disables persistence entirely; otherwise the
  /// directory must exist and the server keeps `<dir>/snapshot.ckpt` and
  /// `<dir>/wal.log` in it. On Start the server restores from the snapshot
  /// + WAL tail when a snapshot is present, and cuts checkpoint 0 before
  /// serving otherwise — so a later crash always has a snapshot to restore.
  std::string data_dir;
  /// Interval of the background checkpoint thread (snapshot + WAL sync);
  /// 0 disables the timer (checkpoints then happen only on kCheckpoint
  /// requests and clean Stop). Ignored without a data_dir.
  int64_t checkpoint_interval_ms = 0;

  /// Concurrent session cap; further connections are closed on accept.
  size_t max_sessions = 64;
};

/// Engine-facade adapter: one virtual surface over Engine / ShardedEngine
/// so sessions and the checkpoint timer are mode-agnostic. Calls follow the
/// engines' single-ingest-thread contract because CeprServer serializes
/// every call under one mutex.
class EngineHost {
 public:
  virtual ~EngineHost() = default;

  virtual Status ExecuteDdl(std::string_view ddl_text) = 0;
  virtual Result<SchemaPtr> GetSchema(std::string_view stream_name) = 0;
  virtual Status RegisterQuery(std::string name, std::string_view query_text,
                               const QueryOptions& options, Sink* sink) = 0;
  /// Unimplemented on the sharded engine.
  virtual Status RemoveQuery(std::string_view name) = 0;
  virtual Result<QueryMetrics> GetQueryMetrics(std::string_view name) = 0;
  virtual Status Push(Event event) = 0;
  virtual Status PushAll(std::vector<Event> events) = 0;
  virtual Status Flush() = 0;
  virtual void Finish() = 0;
  virtual MetricsSnapshot Snapshot() = 0;
  virtual Status OpenWal(const std::string& path) = 0;
  virtual Status SyncWal() = 0;
  virtual Status Checkpoint(const std::string& path) = 0;
  virtual Status Restore(const std::string& snapshot_path,
                         const std::string& wal_path,
                         const SinkResolver& resolve) = 0;
};

/// Per-query result fan-out: the Sink the server registers for every
/// deployed query. Results are encoded once (net/protocol.h kResult frame)
/// and either forwarded to the subscribed session or buffered until one
/// attaches, so a query deployed (or restored) before its consumer connects
/// loses nothing. All methods run under the server's engine mutex.
class ResultChannel : public Sink {
 public:
  explicit ResultChannel(std::string query) : query_(std::move(query)) {}

  void OnResult(const RankedResult& result) override;

  /// Subscribes `session`, first flushing every buffered frame to it.
  /// Replaces any previous subscriber.
  void Attach(Session* session);
  /// Drops the subscriber if it is `session` (session teardown); later
  /// results buffer again.
  void Detach(Session* session);

  /// Results this channel has observed in this server life (forwarded or
  /// buffered). The query's persistent results counter minus this is the
  /// count of results delivered in *previous* lives — what kSubscribe
  /// reports as `prior`.
  uint64_t seen() const { return seen_; }

 private:
  const std::string query_;
  Session* subscriber_ = nullptr;
  std::vector<std::string> buffered_;  // encoded kResult frames
  uint64_t seen_ = 0;
};

/// Long-running CEPR network server: owns one engine (serial or sharded),
/// accepts sessions speaking the net/protocol.h frame protocol, and drives
/// durability (WAL + timer checkpoints + restore-on-start).
///
/// Concurrency model: session threads and the checkpoint timer serialize
/// every engine call through one mutex — the engines keep their
/// single-ingest-thread contract, sinks fire under the lock, and result
/// frames go out through each Session's write mutex (lock order: engine
/// mutex, then session write mutex; never the reverse).
class CeprServer {
 public:
  explicit CeprServer(ServerOptions options);
  ~CeprServer();

  CeprServer(const CeprServer&) = delete;
  CeprServer& operator=(const CeprServer&) = delete;

  /// Builds (or restores) the engine, binds the listen socket and starts
  /// the accept and checkpoint-timer threads.
  Status Start();

  /// Clean shutdown: stops accepting, closes every session, then syncs the
  /// WAL and cuts a final checkpoint (with a data_dir). Idempotent.
  void Stop();

  /// Simulated crash for recovery tests: tears the server down exactly like
  /// Stop but skips the final checkpoint and WAL sync, so the next Start
  /// sees only what the durability layer had already made persistent.
  void CrashStop();

  /// The bound TCP port (resolves ephemeral port 0); valid after Start.
  uint16_t port() const { return bound_port_; }

  const ServerOptions& options() const { return options_; }

  // -- Session-facing operations (each serializes on the engine mutex) ------

  Status Ddl(const std::string& ddl_text);
  Result<SchemaPtr> LookupStream(const std::string& stream_name);
  Status PushEvent(Event event);
  Status PushBatch(std::vector<Event> events);
  /// Deploys and subscribes `session` to the query's results.
  Status Deploy(const std::string& name, const std::string& query_text,
                const QueryOptions& query_options, Session* session);
  Status Undeploy(const std::string& name);
  /// Attaches `session` to the query's result channel (flushing buffered
  /// results) and returns the count of results delivered in previous
  /// server lives.
  Result<uint64_t> Subscribe(const std::string& name, Session* session);
  Status FlushEngine();
  Status FinishEngine();
  std::string MetricsJson();
  Status CheckpointNow();
  /// Session teardown: unsubscribes it from every channel.
  void DetachSession(Session* session);

 private:
  void AcceptLoop();
  void CheckpointLoop();
  /// Tears down threads and sessions; `final_checkpoint` distinguishes
  /// Stop from CrashStop.
  void Shutdown(bool final_checkpoint);
  std::string SnapshotPath() const;
  std::string WalPath() const;
  /// The SinkResolver handed to Restore: creates (or reuses) the named
  /// query's ResultChannel.
  Sink* ChannelFor(const std::string& name);

  ServerOptions options_;

  /// Serializes ALL engine access (sessions + checkpoint timer). Channels
  /// are mutated under it too (OnResult runs inside engine calls).
  std::mutex engine_mu_;
  /// Declared before host_ so the engine (which holds raw Sink pointers
  /// into the channels) is destroyed first.
  std::map<std::string, std::unique_ptr<ResultChannel>> channels_;
  std::unique_ptr<EngineHost> host_;

  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread accept_thread_;

  std::thread checkpoint_thread_;
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;

  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 0;
};

}  // namespace net
}  // namespace cepr

#endif  // CEPR_NET_SERVER_H_
