#include "net/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "net/session.h"

namespace cepr {
namespace net {

namespace {

/// Mode-erasing adapter over the two engine types. The sharded engine has
/// no RemoveQuery (queries are fixed at start); the divergence is absorbed
/// here so sessions never branch on the mode.
template <typename E>
class HostImpl : public EngineHost {
 public:
  explicit HostImpl(std::unique_ptr<E> engine) : engine_(std::move(engine)) {}

  Status ExecuteDdl(std::string_view ddl_text) override {
    return engine_->ExecuteDdl(ddl_text);
  }
  Result<SchemaPtr> GetSchema(std::string_view stream_name) override {
    return engine_->GetSchema(stream_name);
  }
  Status RegisterQuery(std::string name, std::string_view query_text,
                       const QueryOptions& options, Sink* sink) override {
    return engine_->RegisterQuery(std::move(name), query_text, options, sink);
  }
  Status RemoveQuery(std::string_view name) override {
    if constexpr (requires(E& e) { e.RemoveQuery(name); }) {
      return engine_->RemoveQuery(name);
    } else {
      return Status::Unimplemented(
          "undeploy requires the serial engine: sharded queries are fixed "
          "at start");
    }
  }
  Result<QueryMetrics> GetQueryMetrics(std::string_view name) override {
    return engine_->GetQueryMetrics(name);
  }
  Status Push(Event event) override { return engine_->Push(std::move(event)); }
  Status PushAll(std::vector<Event> events) override {
    return engine_->PushAll(std::move(events));
  }
  Status Flush() override { return engine_->Flush(); }
  void Finish() override { engine_->Finish(); }
  MetricsSnapshot Snapshot() override { return engine_->Snapshot(); }
  Status OpenWal(const std::string& path) override {
    return engine_->OpenWal(path);
  }
  Status SyncWal() override { return engine_->SyncWal(); }
  Status Checkpoint(const std::string& path) override {
    return engine_->Checkpoint(path);
  }
  Status Restore(const std::string& snapshot_path, const std::string& wal_path,
                 const SinkResolver& resolve) override {
    return engine_->Restore(snapshot_path, wal_path, resolve);
  }

 private:
  std::unique_ptr<E> engine_;
};

}  // namespace

// -- ResultChannel -----------------------------------------------------------

void ResultChannel::OnResult(const RankedResult& result) {
  ++seen_;
  std::string frame = EncodeResult(query_, result);
  if (subscriber_ != nullptr) {
    subscriber_->SendFrame(frame);  // broken pipes surface on the reader
  } else {
    buffered_.push_back(std::move(frame));
  }
}

void ResultChannel::Attach(Session* session) {
  for (const std::string& frame : buffered_) session->SendFrame(frame);
  buffered_.clear();
  subscriber_ = session;
}

void ResultChannel::Detach(Session* session) {
  if (subscriber_ == session) subscriber_ = nullptr;
}

// -- CeprServer --------------------------------------------------------------

CeprServer::CeprServer(ServerOptions options) : options_(std::move(options)) {}

CeprServer::~CeprServer() { Stop(); }

std::string CeprServer::SnapshotPath() const {
  return options_.data_dir + "/snapshot.ckpt";
}

std::string CeprServer::WalPath() const {
  return options_.data_dir + "/wal.log";
}

Sink* CeprServer::ChannelFor(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_.emplace(name, std::make_unique<ResultChannel>(name)).first;
  }
  return it->second.get();
}

Status CeprServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  if (options_.num_shards > 0) {
    ShardedEngineOptions opts = options_.sharded;
    opts.num_shards = options_.num_shards;
    host_ = std::make_unique<HostImpl<ShardedEngine>>(
        std::make_unique<ShardedEngine>(opts));
  } else {
    host_ = std::make_unique<HostImpl<Engine>>(
        std::make_unique<Engine>(options_.engine));
  }

  if (!options_.data_dir.empty()) {
    SinkResolver resolve = [this](const std::string& name) {
      return ChannelFor(name);
    };
    if (::access(SnapshotPath().c_str(), F_OK) == 0) {
      CEPR_RETURN_IF_ERROR(host_->Restore(SnapshotPath(), WalPath(), resolve));
    } else {
      // Fresh start: open the journal and cut checkpoint 0 before serving,
      // so every later crash restores from a snapshot (never a bare WAL).
      CEPR_RETURN_IF_ERROR(host_->OpenWal(WalPath()));
      CEPR_RETURN_IF_ERROR(host_->Checkpoint(SnapshotPath()));
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket: " + ErrnoString(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    Status s = Status::IoError("bind/listen on " + options_.host + ": " +
                               ErrnoString(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (!options_.data_dir.empty() && options_.checkpoint_interval_ms > 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  started_ = true;
  return Status::OK();
}

void CeprServer::Stop() { Shutdown(/*final_checkpoint=*/true); }

void CeprServer::CrashStop() { Shutdown(/*final_checkpoint=*/false); }

void CeprServer::Shutdown(bool final_checkpoint) {
  if (!started_) return;
  stopping_.store(true);

  // Wake and join the accept loop first so no new sessions appear.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  {
    std::lock_guard<std::mutex> lk(timer_mu_);
  }
  timer_cv_.notify_all();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();

  // Quiesce every session: wake its blocking read, join, destroy.
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) s->Shutdown();
  for (auto& s : sessions) s->Join();
  sessions.clear();

  if (final_checkpoint && !options_.data_dir.empty()) {
    std::lock_guard<std::mutex> lk(engine_mu_);
    host_->SyncWal();
    host_->Checkpoint(SnapshotPath());
  }
  started_ = false;
}

void CeprServer::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stopping_.load()) continue;
      break;  // listen socket closed (shutdown) or fatal
    }
    std::lock_guard<std::mutex> lk(sessions_mu_);
    // Reap sessions whose peers already left so long-lived servers do not
    // accumulate dead fds/threads.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->Finished()) {
        (*it)->Join();
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    size_t live = sessions_.size();
    if (live >= options_.max_sessions) {
      ::close(fd);
      continue;
    }
    auto session = std::make_unique<Session>(this, fd, next_session_id_++);
    session->Start();
    sessions_.push_back(std::move(session));
  }
}

void CeprServer::CheckpointLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  std::unique_lock<std::mutex> lk(timer_mu_);
  while (!stopping_.load()) {
    timer_cv_.wait_for(lk, interval, [this] { return stopping_.load(); });
    if (stopping_.load()) break;
    std::lock_guard<std::mutex> elk(engine_mu_);
    // Best-effort: a failed background checkpoint leaves the previous
    // snapshot current (the write is atomic) and the next tick retries.
    host_->SyncWal();
    host_->Checkpoint(SnapshotPath());
  }
}

// -- Session-facing operations ----------------------------------------------

Status CeprServer::Ddl(const std::string& ddl_text) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  return host_->ExecuteDdl(ddl_text);
}

Result<SchemaPtr> CeprServer::LookupStream(const std::string& stream_name) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  return host_->GetSchema(stream_name);
}

Status CeprServer::PushEvent(Event event) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  return host_->Push(std::move(event));
}

Status CeprServer::PushBatch(std::vector<Event> events) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  return host_->PushAll(std::move(events));
}

Status CeprServer::Deploy(const std::string& name,
                          const std::string& query_text,
                          const QueryOptions& query_options, Session* session) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  Sink* sink = ChannelFor(name);
  CEPR_RETURN_IF_ERROR(
      host_->RegisterQuery(name, query_text, query_options, sink));
  static_cast<ResultChannel*>(sink)->Attach(session);
  return Status::OK();
}

Status CeprServer::Undeploy(const std::string& name) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  return host_->RemoveQuery(name);
}

Result<uint64_t> CeprServer::Subscribe(const std::string& name,
                                       Session* session) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  auto metrics = host_->GetQueryMetrics(name);
  if (!metrics.ok()) return metrics.status();
  auto* channel = static_cast<ResultChannel*>(ChannelFor(name));
  // The query's results counter persists across checkpoint/restore; what
  // this channel has not seen was delivered in a previous server life.
  uint64_t prior = metrics.value().results - channel->seen();
  channel->Attach(session);
  return prior;
}

Status CeprServer::FlushEngine() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  return host_->Flush();
}

Status CeprServer::FinishEngine() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  host_->Finish();
  return Status::OK();
}

std::string CeprServer::MetricsJson() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  return host_->Snapshot().ToJson();
}

Status CeprServer::CheckpointNow() {
  std::lock_guard<std::mutex> lk(engine_mu_);
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument("server has no data_dir");
  }
  CEPR_RETURN_IF_ERROR(host_->SyncWal());
  return host_->Checkpoint(SnapshotPath());
}

void CeprServer::DetachSession(Session* session) {
  std::lock_guard<std::mutex> lk(engine_mu_);
  for (auto& [name, channel] : channels_) channel->Detach(session);
}

}  // namespace net
}  // namespace cepr
