#ifndef CEPR_NET_CLIENT_H_
#define CEPR_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "event/event.h"
#include "net/protocol.h"
#include "runtime/query.h"

namespace cepr {
namespace net {

/// Synchronous client for the CeprServer wire protocol: one socket, one
/// request in flight. Every request blocks until its kReply arrives; kResult
/// frames that interleave before the reply (ranked results of subscribed
/// queries, which may be produced by ANY session's pushes) are stashed into
/// per-query vectors, readable via results() / TakeResults().
///
/// Not thread-safe: one thread drives a client. Used by the server tests,
/// the E20 benchmark and examples/cepr_client.
class CeprClient {
 public:
  CeprClient() = default;
  ~CeprClient();

  CeprClient(const CeprClient&) = delete;
  CeprClient& operator=(const CeprClient&) = delete;

  /// Connects and performs the kHello version handshake.
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // -- Requests (one kReply each) -------------------------------------------

  Status Ddl(const std::string& ddl_text);
  /// Binds a stream name to a compact per-session handle for event frames.
  Result<uint32_t> BindStream(const std::string& stream_name);
  /// Single-event ingest. The client does not need the stream's schema:
  /// the event body carries timestamp and values, and the server re-binds
  /// the schema from the binding (same convention as WAL event records).
  Status Push(uint32_t binding, const Event& event);
  Status PushBatch(uint32_t binding, const std::vector<Event>& events);
  /// Hot-deploys a query and subscribes this session to its results.
  Status Deploy(const std::string& name, const std::string& query_text,
                const QueryOptions& options);
  Status Undeploy(const std::string& name);
  /// Subscribes to an existing query's results: buffered results flush to
  /// this session first, and the returned count says how many results were
  /// already delivered in previous server lives (and will never arrive).
  Result<uint64_t> Subscribe(const std::string& query);
  Status Flush();
  Status Finish();
  Result<std::string> MetricsJson();
  Status TriggerCheckpoint();

  // -- Results --------------------------------------------------------------

  /// Drains result frames already queued on the socket without sending a
  /// request, waiting up to `timeout_ms` for the first one (0 = only what
  /// is already readable). Stops at the first quiet poll interval.
  Status PollResults(int timeout_ms);

  /// Ranked results received for `query` so far, arrival order.
  const std::vector<WireResult>& results(const std::string& query) const;
  std::vector<WireResult> TakeResults(const std::string& query);

 private:
  /// Sends one request frame, then reads frames until the kReply, stashing
  /// interleaved kResult frames. Returns the reply payload; a non-OK reply
  /// status comes back as the error.
  Result<std::string> CallRaw(const std::string& payload);
  /// CallRaw for requests whose reply payload is empty/ignored.
  Status Call(const std::string& payload);
  /// Decodes and stashes one kResult payload (sans type byte).
  Status StashResult(BinReader* r);

  int fd_ = -1;
  std::map<std::string, std::vector<WireResult>> results_;
};

}  // namespace net
}  // namespace cepr

#endif  // CEPR_NET_CLIENT_H_
