#ifndef CEPR_NET_PROTOCOL_H_
#define CEPR_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/binio.h"
#include "common/status.h"
#include "event/value.h"
#include "rank/ranker.h"

namespace cepr {
namespace net {

/// CEPR wire protocol, version 1. Every message travels in one frame using
/// the WAL's framing convention (runtime/wal.*), all little-endian:
///
///   [u32 payload_len][u32 crc32(payload)][payload]
///
/// payload = [u8 MsgType][body...]. The CRC makes torn or bit-flipped
/// frames detectable before a single body byte is decoded; a frame-level
/// violation (oversized length, CRC mismatch, torn read) means the byte
/// stream is unframeable and the session closes, while a *body*-level
/// violation (unknown type, malformed fields) is answered with an error
/// reply on an intact session.
inline constexpr uint32_t kProtocolVersion = 1;

/// Frames larger than this are garbage (a bit-flipped length field), not
/// messages; same bound as the WAL scanner.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Events per kEventBatch message (sanity bound on the decode loop).
inline constexpr uint32_t kMaxBatchEvents = 1u << 20;

enum class MsgType : uint8_t {
  // -- client -> server ------------------------------------------------------
  /// [u32 protocol_version] — must be first on a session.
  kHello = 0,
  /// [str ddl_text] — CREATE STREAM.
  kDdl = 1,
  /// [str stream_name] -> reply payload [u32 binding]. Bindings are
  /// per-session handles so event frames carry 4 bytes, not a name.
  kBindStream = 2,
  /// [u32 binding][event body (serde SaveEventBody)] — single-event ingest.
  kEvent = 3,
  /// [u32 binding][u32 n][n * event body] — batched ingest (PushAll).
  kEventBatch = 4,
  /// [str name][str query_text][QueryOptionsV1 block] — hot deploy through
  /// the template registry, no drain. The deploying session is subscribed
  /// to the query's ranked results.
  kDeploy = 5,
  /// [str name] — hot remove (serial engine only).
  kUndeploy = 6,
  /// [str name] -> reply payload [u64 prior] (results the query delivered
  /// before this server life's buffering began — the recovered prefix
  /// length). Buffered results are flushed to the subscriber first.
  kSubscribe = 7,
  /// [] — drain every stream's reorder buffer.
  kFlush = 8,
  /// [] — end of stream: every query flushes its buffered windows.
  kFinish = 9,
  /// [] -> reply payload = MetricsSnapshot::ToJson().
  kMetrics = 10,
  /// [] — cut a checkpoint now (the background timer does this on an
  /// interval; this forces one).
  kCheckpoint = 11,

  // -- server -> client ------------------------------------------------------
  /// [u8 status_code][str message][str payload] — one per request, in
  /// order. kResult frames may interleave before the reply.
  kReply = 100,
  /// [str query][i64 window_id][u64 rank][u8 provisional][f64 score bits]
  /// [i64 first_ts][i64 last_ts][u64 last_sequence][u32 ncols][ncols*value]
  /// — one ranked result, pushed to the query's subscriber.
  kResult = 101,
};

/// One decoded kResult frame: the comparison surface of a RankedResult
/// (scores travel as IEEE-754 bit patterns, so ranked output over the wire
/// is bit-identical to an in-process run).
struct WireResult {
  std::string query;
  int64_t window_id = 0;
  uint64_t rank = 0;
  bool provisional = false;
  double score = 0.0;
  int64_t first_ts = 0;
  int64_t last_ts = 0;
  uint64_t last_sequence = 0;
  std::vector<Value> row;
};

// -- Framing over a connected socket ----------------------------------------

/// Writes one frame. Retries on EINTR/short writes; kIoError on failure.
Status WriteFrame(int fd, const std::string& payload);

/// Reads one frame (blocking). kUnavailable with message "connection
/// closed" on clean EOF at a frame boundary (see IsCleanClose); kCorrupt on
/// an oversized length, CRC mismatch or torn mid-frame EOF; kIoError on a
/// socket error.
Status ReadFrame(int fd, std::string* payload);

/// True iff `s` is ReadFrame's clean end-of-stream verdict.
bool IsCleanClose(const Status& s);

// -- Message encoding helpers (shared by server and client) -----------------

/// [u8 kReply][u8 code][str message][str payload].
std::string EncodeReply(const Status& s, const std::string& payload);

/// Decodes a kReply payload (after the type byte was consumed).
bool DecodeReplyBody(BinReader* r, uint8_t* code, std::string* message,
                     std::string* payload);

/// [u8 kResult][...] for one ranked result of `query`.
std::string EncodeResult(const std::string& query, const RankedResult& res);

/// Decodes a kResult payload (after the type byte was consumed).
bool DecodeResultBody(BinReader* r, WireResult* out);

}  // namespace net
}  // namespace cepr

#endif  // CEPR_NET_PROTOCOL_H_
