#ifndef CEPR_NET_SESSION_H_
#define CEPR_NET_SESSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "event/schema.h"
#include "net/protocol.h"

namespace cepr {
namespace net {

class CeprServer;

/// One accepted connection: a thread reading request frames and answering
/// each with exactly one kReply (kResult frames for subscribed queries may
/// interleave before it, pushed from whichever session thread is driving
/// the engine).
///
/// Error containment mirrors the WAL's two tiers: a frame-level violation
/// (CRC mismatch, oversized length, torn read) means the byte stream itself
/// is broken — the session sends a best-effort error reply and closes. A
/// body-level violation (unknown message type, malformed fields, an engine
/// error) is answered in-band and the session keeps serving.
class Session {
 public:
  Session(CeprServer* server, int fd, uint64_t id);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Spawns the serving thread.
  void Start();
  /// Forces the blocking read to return (shutdown(2) on the socket); the
  /// serving thread then winds down. Safe from any thread, idempotent.
  void Shutdown();
  /// Joins the serving thread.
  void Join();

  /// True once the serving thread has wound down (peer left or Shutdown);
  /// the session is then safe to Join and destroy.
  bool Finished() const { return done_.load(std::memory_order_acquire); }

  /// Writes one frame to the peer, serialized against concurrent writers
  /// (the session's own replies vs. results pushed by other sessions'
  /// engine calls). Write failures mark the session broken; subsequent
  /// sends are dropped (the serving thread notices on its next read).
  Status SendFrame(const std::string& payload);

  uint64_t id() const { return id_; }

 private:
  void Serve();
  /// Decodes one request payload, executes it, returns the encoded kReply.
  std::string Dispatch(const std::string& payload);

  CeprServer* server_;
  int fd_;
  const uint64_t id_;
  std::thread thread_;
  std::atomic<bool> done_{false};

  std::mutex write_mu_;
  bool write_broken_ = false;

  /// Per-session stream handles: kBindStream appends, kEvent/kEventBatch
  /// index. Serving-thread only.
  std::vector<SchemaPtr> bindings_;
  bool saw_hello_ = false;
};

}  // namespace net
}  // namespace cepr

#endif  // CEPR_NET_SESSION_H_
