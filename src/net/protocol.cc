#include "net/protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "runtime/serde.h"

namespace cepr {
namespace net {

namespace {

/// Reads exactly `n` bytes. Returns 1 on success, 0 on EOF before the first
/// byte (clean close), -1 on EOF mid-buffer or socket error (errno left set
/// to 0 for the torn-EOF case).
int ReadFull(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return 0;
      errno = 0;
      return -1;
    }
    if (errno == EINTR) continue;
    return -1;
  }
  return 1;
}

/// MSG_NOSIGNAL: a peer that slammed its socket shut must surface as EPIPE
/// on this write, not as a process-wide SIGPIPE. ENOTSOCK falls back to
/// plain write so frames also work over pipes/files in tests and tools.
bool WriteFull(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) {
      w = ::write(fd, buf + sent, n - sent);
    }
    if (w >= 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

constexpr char kCleanCloseMessage[] = "connection closed";

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds 64MB limit");
  }
  BinWriter header;
  header.U32(static_cast<uint32_t>(payload.size()));
  header.U32(Crc32(payload.data(), payload.size()));
  std::string wire = header.Take();
  wire.append(payload);
  if (!WriteFull(fd, wire.data(), wire.size())) {
    return Status::IoError("frame write failed: " + ErrnoString(errno));
  }
  return Status::OK();
}

Status ReadFrame(int fd, std::string* payload) {
  char header[8];
  int rc = ReadFull(fd, header, sizeof(header));
  if (rc == 0) return Status(StatusCode::kUnavailable, kCleanCloseMessage);
  if (rc < 0) {
    if (errno == 0) return Status::Corrupt("torn frame: EOF inside header");
    return Status::IoError("frame read failed: " + ErrnoString(errno));
  }
  BinReader hr(header, sizeof(header));
  uint32_t len = 0;
  uint32_t crc = 0;
  hr.U32(&len);
  hr.U32(&crc);
  if (len > kMaxFrameBytes) {
    return Status::Corrupt("frame length " + std::to_string(len) +
                           " exceeds 64MB limit");
  }
  payload->resize(len);
  if (len > 0) {
    rc = ReadFull(fd, payload->data(), len);
    if (rc <= 0) {
      if (rc == 0 || errno == 0) {
        return Status::Corrupt("torn frame: EOF inside payload");
      }
      return Status::IoError("frame read failed: " + ErrnoString(errno));
    }
  }
  if (Crc32(payload->data(), payload->size()) != crc) {
    return Status::Corrupt("frame checksum mismatch");
  }
  return Status::OK();
}

bool IsCleanClose(const Status& s) {
  return s.code() == StatusCode::kUnavailable &&
         s.message() == kCleanCloseMessage;
}

std::string EncodeReply(const Status& s, const std::string& payload) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kReply));
  w.U8(static_cast<uint8_t>(s.code()));
  w.Str(s.message());
  w.Str(payload);
  return w.Take();
}

bool DecodeReplyBody(BinReader* r, uint8_t* code, std::string* message,
                     std::string* payload) {
  return r->U8(code) && r->Str(message) && r->Str(payload);
}

std::string EncodeResult(const std::string& query, const RankedResult& res) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kResult));
  w.Str(query);
  w.I64(res.window_id);
  w.U64(static_cast<uint64_t>(res.rank));
  w.Bool(res.provisional);
  w.F64(res.match.score);
  w.I64(res.match.first_ts);
  w.I64(res.match.last_ts);
  w.U64(res.match.last_sequence);
  w.U32(static_cast<uint32_t>(res.match.row.size()));
  for (const Value& v : res.match.row) SaveValue(&w, v);
  return w.Take();
}

bool DecodeResultBody(BinReader* r, WireResult* out) {
  uint32_t n = 0;
  if (!r->Str(&out->query) || !r->I64(&out->window_id) || !r->U64(&out->rank) ||
      !r->Bool(&out->provisional) || !r->F64(&out->score) ||
      !r->I64(&out->first_ts) || !r->I64(&out->last_ts) ||
      !r->U64(&out->last_sequence) || !r->U32(&n)) {
    return false;
  }
  if (n > r->remaining()) {  // each value occupies >= 1 byte
    r->Fail();
    return false;
  }
  out->row.clear();
  out->row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    if (!LoadValue(r, &v)) return false;
    out->row.push_back(std::move(v));
  }
  return true;
}

}  // namespace net
}  // namespace cepr
