#include "net/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "runtime/serde.h"

namespace cepr {
namespace net {

CeprClient::~CeprClient() { Close(); }

void CeprClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status CeprClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("client already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("socket: " + ErrnoString(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IoError("connect to " + host + ":" +
                               std::to_string(port) + ": " +
                               ErrnoString(errno));
    Close();
    return s;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kHello));
  w.U32(kProtocolVersion);
  auto reply = CallRaw(w.Take());
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  return Status::OK();
}

Status CeprClient::Ddl(const std::string& ddl_text) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kDdl));
  w.Str(ddl_text);
  return Call(w.Take());
}

Result<uint32_t> CeprClient::BindStream(const std::string& stream_name) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kBindStream));
  w.Str(stream_name);
  auto reply = CallRaw(w.Take());
  if (!reply.ok()) return reply.status();
  BinReader r(reply.value());
  uint32_t binding = 0;
  if (!r.U32(&binding) || !r.AtEnd()) {
    return Status::Corrupt("malformed kBindStream reply payload");
  }
  return binding;
}

Status CeprClient::Push(uint32_t binding, const Event& event) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kEvent));
  w.U32(binding);
  SaveEventBody(&w, event);
  return Call(w.Take());
}

Status CeprClient::PushBatch(uint32_t binding,
                             const std::vector<Event>& events) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kEventBatch));
  w.U32(binding);
  w.U32(static_cast<uint32_t>(events.size()));
  for (const Event& e : events) SaveEventBody(&w, e);
  return Call(w.Take());
}

Status CeprClient::Deploy(const std::string& name,
                          const std::string& query_text,
                          const QueryOptions& options) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kDeploy));
  w.Str(name);
  w.Str(query_text);
  SaveQueryOptionsV1(&w, options);
  return Call(w.Take());
}

Status CeprClient::Undeploy(const std::string& name) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kUndeploy));
  w.Str(name);
  return Call(w.Take());
}

Result<uint64_t> CeprClient::Subscribe(const std::string& query) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kSubscribe));
  w.Str(query);
  auto reply = CallRaw(w.Take());
  if (!reply.ok()) return reply.status();
  BinReader r(reply.value());
  uint64_t prior = 0;
  if (!r.U64(&prior) || !r.AtEnd()) {
    return Status::Corrupt("malformed kSubscribe reply payload");
  }
  return prior;
}

Status CeprClient::Flush() {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kFlush));
  return Call(w.Take());
}

Status CeprClient::Finish() {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kFinish));
  return Call(w.Take());
}

Result<std::string> CeprClient::MetricsJson() {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kMetrics));
  return CallRaw(w.Take());
}

Status CeprClient::TriggerCheckpoint() {
  BinWriter w;
  w.U8(static_cast<uint8_t>(MsgType::kCheckpoint));
  return Call(w.Take());
}

Status CeprClient::PollResults(int timeout_ms) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  while (true) {
    pollfd p{fd_, POLLIN, 0};
    int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("poll: " + ErrnoString(errno));
    }
    if (rc == 0) return Status::OK();  // quiet: everything queued is drained
    std::string payload;
    CEPR_RETURN_IF_ERROR(ReadFrame(fd_, &payload));
    BinReader r(payload);
    uint8_t type = 0;
    if (!r.U8(&type) || type != static_cast<uint8_t>(MsgType::kResult)) {
      return Status::Corrupt("unexpected frame while polling for results");
    }
    CEPR_RETURN_IF_ERROR(StashResult(&r));
    timeout_ms = 0;  // drain what is queued, do not wait again
  }
}

const std::vector<WireResult>& CeprClient::results(
    const std::string& query) const {
  static const std::vector<WireResult> kEmpty;
  auto it = results_.find(query);
  return it == results_.end() ? kEmpty : it->second;
}

std::vector<WireResult> CeprClient::TakeResults(const std::string& query) {
  auto it = results_.find(query);
  if (it == results_.end()) return {};
  std::vector<WireResult> out = std::move(it->second);
  results_.erase(it);
  return out;
}

Status CeprClient::StashResult(BinReader* r) {
  WireResult res;
  if (!DecodeResultBody(r, &res) || !r->AtEnd()) {
    return Status::Corrupt("malformed kResult frame");
  }
  results_[res.query].push_back(std::move(res));
  return Status::OK();
}

Result<std::string> CeprClient::CallRaw(const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  CEPR_RETURN_IF_ERROR(WriteFrame(fd_, payload));
  while (true) {
    std::string frame;
    CEPR_RETURN_IF_ERROR(ReadFrame(fd_, &frame));
    BinReader r(frame);
    uint8_t type = 0;
    if (!r.U8(&type)) return Status::Corrupt("empty frame from server");
    if (type == static_cast<uint8_t>(MsgType::kResult)) {
      CEPR_RETURN_IF_ERROR(StashResult(&r));
      continue;
    }
    if (type != static_cast<uint8_t>(MsgType::kReply)) {
      return Status::Corrupt("unexpected frame type " + std::to_string(type) +
                             " from server");
    }
    uint8_t code = 0;
    std::string message;
    std::string reply_payload;
    if (!DecodeReplyBody(&r, &code, &message, &reply_payload) || !r.AtEnd()) {
      return Status::Corrupt("malformed kReply frame");
    }
    if (code != static_cast<uint8_t>(StatusCode::kOk)) {
      return Status(static_cast<StatusCode>(code), std::move(message));
    }
    return reply_payload;
  }
}

Status CeprClient::Call(const std::string& payload) {
  auto reply = CallRaw(payload);
  return reply.ok() ? Status::OK() : reply.status();
}

}  // namespace net
}  // namespace cepr
