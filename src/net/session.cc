#include "net/session.h"

#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "net/server.h"
#include "runtime/serde.h"

namespace cepr {
namespace net {

Session::Session(CeprServer* server, int fd, uint64_t id)
    : server_(server), fd_(fd), id_(id) {}

Session::~Session() {
  Join();
  if (fd_ >= 0) ::close(fd_);
}

void Session::Start() {
  thread_ = std::thread([this] { Serve(); });
}

void Session::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Session::Join() {
  if (thread_.joinable()) thread_.join();
}

Status Session::SendFrame(const std::string& payload) {
  std::lock_guard<std::mutex> lk(write_mu_);
  if (write_broken_) return Status::Unavailable("session write side broken");
  Status s = WriteFrame(fd_, payload);
  if (!s.ok()) write_broken_ = true;
  return s;
}

void Session::Serve() {
  while (true) {
    std::string payload;
    Status s = ReadFrame(fd_, &payload);
    if (!s.ok()) {
      // Frame-level failure: the byte stream itself is unframeable (or the
      // peer left). Tell the peer why if the pipe still works, then close.
      if (!IsCleanClose(s)) SendFrame(EncodeReply(s, ""));
      break;
    }
    std::string reply = Dispatch(payload);
    if (!SendFrame(reply).ok()) break;
  }
  server_->DetachSession(this);
  {
    std::lock_guard<std::mutex> lk(write_mu_);
    write_broken_ = true;  // drop result frames still in flight to us
  }
  done_.store(true, std::memory_order_release);
}

std::string Session::Dispatch(const std::string& payload) {
  BinReader r(payload);
  uint8_t type_byte = 0;
  if (!r.U8(&type_byte)) {
    return EncodeReply(Status::InvalidArgument("empty message"), "");
  }
  const MsgType type = static_cast<MsgType>(type_byte);

  if (!saw_hello_ && type != MsgType::kHello) {
    return EncodeReply(
        Status::InvalidArgument("expected kHello as the first message"), "");
  }

  switch (type) {
    case MsgType::kHello: {
      uint32_t version = 0;
      if (!r.U32(&version) || !r.AtEnd()) break;
      if (version != kProtocolVersion) {
        return EncodeReply(
            Status::InvalidArgument(
                "unsupported protocol version " + std::to_string(version) +
                " (server speaks " + std::to_string(kProtocolVersion) + ")"),
            "");
      }
      saw_hello_ = true;
      BinWriter w;
      w.U32(kProtocolVersion);
      return EncodeReply(Status::OK(), w.Take());
    }

    case MsgType::kDdl: {
      std::string text;
      if (!r.Str(&text) || !r.AtEnd()) break;
      return EncodeReply(server_->Ddl(text), "");
    }

    case MsgType::kBindStream: {
      std::string stream;
      if (!r.Str(&stream) || !r.AtEnd()) break;
      auto schema = server_->LookupStream(stream);
      if (!schema.ok()) return EncodeReply(schema.status(), "");
      bindings_.push_back(schema.value());
      BinWriter w;
      w.U32(static_cast<uint32_t>(bindings_.size() - 1));
      return EncodeReply(Status::OK(), w.Take());
    }

    case MsgType::kEvent: {
      uint32_t binding = 0;
      if (!r.U32(&binding)) break;
      if (binding >= bindings_.size()) {
        return EncodeReply(
            Status::InvalidArgument("unknown stream binding " +
                                    std::to_string(binding)),
            "");
      }
      Event event;
      if (!LoadEventBody(&r, bindings_[binding], &event) || !r.AtEnd()) break;
      return EncodeReply(server_->PushEvent(std::move(event)), "");
    }

    case MsgType::kEventBatch: {
      uint32_t binding = 0;
      uint32_t n = 0;
      if (!r.U32(&binding) || !r.U32(&n)) break;
      if (binding >= bindings_.size()) {
        return EncodeReply(
            Status::InvalidArgument("unknown stream binding " +
                                    std::to_string(binding)),
            "");
      }
      if (n > kMaxBatchEvents) {
        return EncodeReply(
            Status::InvalidArgument("batch of " + std::to_string(n) +
                                    " events exceeds the per-message bound"),
            "");
      }
      std::vector<Event> events;
      events.reserve(n);
      bool bad = false;
      for (uint32_t i = 0; i < n; ++i) {
        Event event;
        if (!LoadEventBody(&r, bindings_[binding], &event)) {
          bad = true;
          break;
        }
        events.push_back(std::move(event));
      }
      if (bad || !r.AtEnd()) break;
      return EncodeReply(server_->PushBatch(std::move(events)), "");
    }

    case MsgType::kDeploy: {
      std::string name;
      std::string text;
      QueryOptions qopts;
      if (!r.Str(&name) || !r.Str(&text) || !LoadQueryOptionsV1(&r, &qopts) ||
          !r.AtEnd()) {
        break;
      }
      return EncodeReply(server_->Deploy(name, text, qopts, this), "");
    }

    case MsgType::kUndeploy: {
      std::string name;
      if (!r.Str(&name) || !r.AtEnd()) break;
      return EncodeReply(server_->Undeploy(name), "");
    }

    case MsgType::kSubscribe: {
      std::string name;
      if (!r.Str(&name) || !r.AtEnd()) break;
      auto prior = server_->Subscribe(name, this);
      if (!prior.ok()) return EncodeReply(prior.status(), "");
      BinWriter w;
      w.U64(prior.value());
      return EncodeReply(Status::OK(), w.Take());
    }

    case MsgType::kFlush: {
      if (!r.AtEnd()) break;
      return EncodeReply(server_->FlushEngine(), "");
    }

    case MsgType::kFinish: {
      if (!r.AtEnd()) break;
      return EncodeReply(server_->FinishEngine(), "");
    }

    case MsgType::kMetrics: {
      if (!r.AtEnd()) break;
      return EncodeReply(Status::OK(), server_->MetricsJson());
    }

    case MsgType::kCheckpoint: {
      if (!r.AtEnd()) break;
      return EncodeReply(server_->CheckpointNow(), "");
    }

    case MsgType::kReply:
    case MsgType::kResult:
      return EncodeReply(
          Status::InvalidArgument("server-to-client message type " +
                                  std::to_string(type_byte) +
                                  " sent by client"),
          "");

    default:
      return EncodeReply(Status::Unimplemented("unknown message type " +
                                               std::to_string(type_byte)),
                         "");
  }

  // A case broke out: the body failed bounds/validation checks. The frame
  // itself was intact (CRC passed), so the session survives.
  Status body =
      r.ToStatus("message type " + std::to_string(type_byte) + " body");
  if (body.ok()) {
    body = Status::InvalidArgument("message type " +
                                   std::to_string(type_byte) +
                                   " body has trailing bytes");
  }
  return EncodeReply(body, "");
}

}  // namespace net
}  // namespace cepr
