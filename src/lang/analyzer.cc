#include "lang/analyzer.h"

#include <utility>

#include "common/strings.h"

namespace cepr {

namespace {

// Derives an output column name for an unaliased SELECT item.
std::string DeriveName(const Expr& e, size_t position) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      return e.var_name + "_" + e.attr_name;
    case ExprKind::kAggregate: {
      std::string name = ToLower(AggFuncToString(e.agg_func));
      name += "_" + e.var_name;
      if (!e.attr_name.empty()) name += "_" + e.attr_name;
      return name;
    }
    default:
      return "col" + std::to_string(position);
  }
}

}  // namespace

Result<AnalyzedQuery> Analyze(QueryAst ast, SchemaPtr schema) {
  AnalyzedQuery out;

  // -- Pattern structure --------------------------------------------------
  if (ast.pattern.empty()) {
    return Status::TypeError("pattern must have at least one component");
  }
  std::vector<PatternVar> vars;
  size_t anchor_count = 0;  // positive, non-skippable components
  for (size_t i = 0; i < ast.pattern.size(); ++i) {
    const PatternComponentAst& comp = ast.pattern[i];
    for (const PatternVar& prev : vars) {
      if (EqualsIgnoreCase(prev.name, comp.var)) {
        return Status::TypeError("duplicate pattern variable '" + comp.var + "'");
      }
    }
    const bool skippable = comp.optional || (comp.kleene && comp.min_iters == 0);
    if (comp.negated) {
      if (comp.kleene || comp.optional) {
        return Status::TypeError("negated component '!" + comp.var +
                                 "' cannot be Kleene or optional (negation "
                                 "already means \"no such event\")");
      }
      if (i == 0 || i + 1 == ast.pattern.size()) {
        return Status::TypeError(
            "negated component '!" + comp.var +
            "' must be between two positive components (it needs anchors)");
      }
      if (ast.pattern[i - 1].negated) {
        return Status::TypeError("adjacent negated components are not supported");
      }
    } else {
      if (comp.kleene) {
        if (comp.min_iters < 0) {
          return Status::TypeError("iteration minimum must be >= 0 for '" +
                                   comp.var + "'");
        }
        if (comp.max_iters == 0 ||
            (comp.max_iters > 0 && comp.max_iters < comp.min_iters)) {
          return Status::TypeError("empty iteration bounds {" +
                                   std::to_string(comp.min_iters) + "," +
                                   std::to_string(comp.max_iters) + "} for '" +
                                   comp.var + "'");
        }
      }
      if (!skippable) ++anchor_count;
      if (skippable && i + 1 == ast.pattern.size()) {
        return Status::TypeError(
            "the last pattern component ('" + comp.var +
            "') cannot be optional or zero-minimum Kleene: a match needs a "
            "definite closing event");
      }
    }
    vars.push_back(PatternVar{comp.var, comp.kleene, comp.negated, comp.type_tag});
  }
  if (anchor_count == 0) {
    return Status::TypeError(
        "pattern needs at least one required positive component");
  }

  out.layout = BindingLayout(std::move(vars), schema);
  out.schema = schema;

  // -- PARTITION BY ---------------------------------------------------------
  if (!ast.partition_attr.empty()) {
    CEPR_ASSIGN_OR_RETURN(const size_t idx, schema->IndexOf(ast.partition_attr));
    out.partition_attr_index = static_cast<int>(idx);
  }

  // -- WHERE ---------------------------------------------------------------
  if (ast.where != nullptr) {
    CEPR_RETURN_IF_ERROR(
        TypeCheck(ast.where.get(), out.layout, ExprContext::kPredicate));
  }

  // -- SELECT ----------------------------------------------------------------
  if (ast.select.empty()) {
    // SELECT *: every attribute of each positive single variable, plus the
    // iteration count of each Kleene variable.
    for (const PatternVar& var : out.layout.vars()) {
      if (var.is_negated) continue;
      if (var.is_kleene) {
        SelectItemAst item;
        item.expr = Expr::Aggregate(AggFunc::kCount, var.name, "");
        item.alias = "count_" + var.name;
        ast.select.push_back(std::move(item));
        continue;
      }
      for (const Attribute& attr : schema->attributes()) {
        SelectItemAst item;
        item.expr = Expr::VarRef(var.name, attr.name);
        item.alias = var.name + "_" + attr.name;
        ast.select.push_back(std::move(item));
      }
    }
  }
  for (size_t i = 0; i < ast.select.size(); ++i) {
    SelectItemAst& item = ast.select[i];
    CEPR_RETURN_IF_ERROR(
        TypeCheck(item.expr.get(), out.layout, ExprContext::kOutput));
    out.output_names.push_back(item.alias.empty() ? DeriveName(*item.expr, i)
                                                  : item.alias);
    out.output_types.push_back(item.expr->result_type);
  }

  // -- RANK BY ----------------------------------------------------------------
  if (ast.rank_by != nullptr) {
    CEPR_RETURN_IF_ERROR(
        TypeCheck(ast.rank_by.get(), out.layout, ExprContext::kOutput));
    const ValueType t = ast.rank_by->result_type;
    if (t != ValueType::kInt && t != ValueType::kFloat) {
      return Status::TypeError("RANK BY must be numeric, got " +
                               std::string(ValueTypeToString(t)));
    }
  }

  // -- Emission ----------------------------------------------------------------
  if (ast.within_micros < 0 || ast.within_events < 0) {
    return Status::TypeError("WITHIN must be positive");
  }
  if (ast.emit == EmitPolicy::kOnWindowClose && ast.within_micros <= 0) {
    return Status::TypeError(
        "EMIT ON WINDOW CLOSE requires a time-based WITHIN clause (the "
        "report window tumbles with the WITHIN span; a count-based span "
        "cannot define it)");
  }

  out.ast = std::move(ast);
  return out;
}

}  // namespace cepr
