#include "lang/ast.h"

#include "common/strings.h"

namespace cepr {

const char* SelectionStrategyToString(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kStrictContiguity:
      return "STRICT_CONTIGUITY";
    case SelectionStrategy::kSkipTillNext:
      return "SKIP_TILL_NEXT_MATCH";
    case SelectionStrategy::kSkipTillAny:
      return "SKIP_TILL_ANY_MATCH";
  }
  return "?";
}

const char* EmitPolicyToString(EmitPolicy p) {
  switch (p) {
    case EmitPolicy::kOnComplete:
      return "ON COMPLETE";
    case EmitPolicy::kOnWindowClose:
      return "ON WINDOW CLOSE";
    case EmitPolicy::kEveryNEvents:
      return "EVERY N EVENTS";
  }
  return "?";
}

namespace {

// Formats a duration in the largest unit that divides it exactly.
std::string FormatDuration(Timestamp micros) {
  if (micros % kMicrosPerHour == 0) {
    return std::to_string(micros / kMicrosPerHour) + " HOURS";
  }
  if (micros % kMicrosPerMinute == 0) {
    return std::to_string(micros / kMicrosPerMinute) + " MINUTES";
  }
  if (micros % kMicrosPerSecond == 0) {
    return std::to_string(micros / kMicrosPerSecond) + " SECONDS";
  }
  if (micros % 1000 == 0) {
    return std::to_string(micros / 1000) + " MILLISECONDS";
  }
  return std::to_string(micros) + " MICROSECONDS";
}

}  // namespace

std::string QueryAst::ToString() const {
  std::string out = "SELECT ";
  if (select.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < select.size(); ++i) {
      if (i > 0) out += ", ";
      out += select[i].expr->ToString();
      if (!select[i].alias.empty()) out += " AS " + select[i].alias;
    }
  }
  out += "\nFROM " + stream_name;
  out += "\nMATCH PATTERN SEQ(";
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i > 0) out += ", ";
    const auto& c = pattern[i];
    if (c.negated) out += "!";
    if (!c.type_tag.empty()) out += c.type_tag + " ";
    out += c.var;
    if (c.optional) {
      out += "?";
    } else if (c.kleene) {
      if (c.min_iters == 1 && c.max_iters < 0) {
        out += "+";
      } else if (c.min_iters == 0 && c.max_iters < 0) {
        out += "*";
      } else if (c.max_iters < 0) {
        out += "{" + std::to_string(c.min_iters) + ",}";
      } else if (c.min_iters == c.max_iters) {
        out += "{" + std::to_string(c.min_iters) + "}";
      } else {
        out += "{" + std::to_string(c.min_iters) + "," +
               std::to_string(c.max_iters) + "}";
      }
    }
  }
  out += ")";
  out += "\nUSING " + std::string(SelectionStrategyToString(strategy));
  if (!partition_attr.empty()) out += "\nPARTITION BY " + partition_attr;
  if (where != nullptr) out += "\nWHERE " + where->ToString();
  if (within_micros > 0) out += "\nWITHIN " + FormatDuration(within_micros);
  if (within_events > 0) {
    out += "\nWITHIN " + std::to_string(within_events) + " EVENTS";
  }
  if (rank_by != nullptr) {
    out += "\nRANK BY " + rank_by->ToString() + (rank_desc ? " DESC" : " ASC");
  }
  if (limit >= 0) out += "\nLIMIT " + std::to_string(limit);
  switch (emit) {
    case EmitPolicy::kOnComplete:
      out += "\nEMIT ON COMPLETE";
      break;
    case EmitPolicy::kOnWindowClose:
      out += "\nEMIT ON WINDOW CLOSE";
      break;
    case EmitPolicy::kEveryNEvents:
      out += "\nEMIT EVERY " + std::to_string(emit_every_n) + " EVENTS";
      break;
  }
  if (!into_stream.empty()) out += "\nINTO " + into_stream;
  return out;
}

std::string CreateStreamAst::ToString() const {
  std::string out = "CREATE STREAM " + name + " (";
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes[i].name;
    out += " ";
    out += ValueTypeToString(attributes[i].type);
    if (attributes[i].range.has_value()) {
      out += " RANGE [" + FormatDouble(attributes[i].range->lo) + ", " +
             FormatDouble(attributes[i].range->hi) + "]";
    }
  }
  out += ")";
  return out;
}

}  // namespace cepr
