#ifndef CEPR_LANG_PARSER_H_
#define CEPR_LANG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "lang/ast.h"

namespace cepr {

/// Parses one CEPR-QL pattern query (SELECT ... MATCH PATTERN ...).
/// Returns ParseError with source position on malformed input. The result
/// is unresolved: run the semantic Analyzer before compiling.
Result<QueryAst> ParseQuery(std::string_view text);

/// Parses one CREATE STREAM statement.
Result<CreateStreamAst> ParseCreateStream(std::string_view text);

/// Parses either statement kind, dispatching on the first token.
Result<StatementAst> ParseStatement(std::string_view text);

/// Parses a standalone expression (used by tests and interactive tools).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace cepr

#endif  // CEPR_LANG_PARSER_H_
