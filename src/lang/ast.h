#ifndef CEPR_LANG_AST_H_
#define CEPR_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "event/event.h"
#include "event/schema.h"
#include "expr/expr.h"

namespace cepr {

/// One component of PATTERN SEQ(...):
///   `[TypeTag] name`          exactly one event
///   `[TypeTag] name?`         optional: zero or one event
///   `[TypeTag] name+`         Kleene-plus: one or more iterations
///   `[TypeTag] name*`         Kleene-star: zero or more iterations
///   `[TypeTag] name{m}`,
///   `[TypeTag] name{m,}`,
///   `[TypeTag] name{m,n}`     bounded Kleene: m..n iterations
///   `! name`                  negation: no matching event may occur here
struct PatternComponentAst {
  std::string type_tag;  // optional event-type filter; empty = any
  std::string var;       // binding variable name
  bool kleene = false;   // any of + * {m,n}
  bool optional = false; // `name?`
  bool negated = false;  // `! name`
  /// Kleene iteration bounds; max_iters = -1 means unbounded.
  int64_t min_iters = 1;
  int64_t max_iters = -1;
};

/// One SELECT item: an expression with an optional output alias.
struct SelectItemAst {
  ExprPtr expr;
  std::string alias;  // empty -> derived from the expression text
};

/// How the matcher may skip events between pattern components
/// (SASE+ terminology).
enum class SelectionStrategy {
  /// Every event must be consumed by the pattern; any non-matching event
  /// kills the run.
  kStrictContiguity,
  /// Irrelevant events are skipped; each component binds the first
  /// qualifying event (deterministic, one run per start event).
  kSkipTillNext,
  /// Irrelevant events are skipped and every qualifying event forks a new
  /// run (exhaustive enumeration of matches).
  kSkipTillAny,
};

const char* SelectionStrategyToString(SelectionStrategy s);

/// When ranked results leave the system.
enum class EmitPolicy {
  /// Emit each match as soon as it is detected if it (currently) belongs to
  /// the top-k of its report window; score order is best-effort.
  kOnComplete,
  /// Buffer matches per tumbling report window and emit them fully ordered
  /// when the window closes. The report window defaults to the WITHIN span.
  kOnWindowClose,
  /// Like kOnWindowClose but the report boundary is every N input events.
  kEveryNEvents,
};

const char* EmitPolicyToString(EmitPolicy p);

/// Parsed (pre-analysis) form of a CEPR-QL pattern query.
struct QueryAst {
  std::vector<SelectItemAst> select;  // empty = SELECT *
  std::string stream_name;
  std::vector<PatternComponentAst> pattern;
  SelectionStrategy strategy = SelectionStrategy::kSkipTillNext;
  std::string partition_attr;  // empty = unpartitioned
  ExprPtr where;               // null = no predicate
  Timestamp within_micros = 0;  // 0 = no time WITHIN (unbounded span)
  int64_t within_events = 0;   // 0 = no count WITHIN ("WITHIN n EVENTS")
  ExprPtr rank_by;             // null = unranked (detection order)
  bool rank_desc = true;
  int64_t limit = -1;  // -1 = no LIMIT
  EmitPolicy emit = EmitPolicy::kOnComplete;
  int64_t emit_every_n = 0;  // for kEveryNEvents
  /// Non-empty = derived stream: every emitted result is re-ingested as an
  /// event of this stream (composite / hierarchical events). The derived
  /// stream's schema is the query's output columns.
  std::string into_stream;

  /// Unparses back to canonical CEPR-QL (round-trips through the parser).
  std::string ToString() const;
};

/// Parsed form of CREATE STREAM name (attr TYPE [RANGE [lo, hi]], ...).
struct CreateStreamAst {
  std::string name;
  std::vector<Attribute> attributes;

  std::string ToString() const;
};

/// A top-level CEPR-QL statement: exactly one of the members is set.
struct StatementAst {
  std::unique_ptr<QueryAst> query;
  std::unique_ptr<CreateStreamAst> create_stream;
};

}  // namespace cepr

#endif  // CEPR_LANG_AST_H_
