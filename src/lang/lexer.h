#ifndef CEPR_LANG_LEXER_H_
#define CEPR_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/token.h"

namespace cepr {

/// Tokenizes CEPR-QL text. Keywords are case-insensitive; identifiers keep
/// their original spelling but compare case-insensitively downstream.
/// Comments run from `--` to end of line. Returns ParseError with
/// line/column context on any illegal character or unterminated literal.
/// The returned vector always ends with a kEof token.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace cepr

#endif  // CEPR_LANG_LEXER_H_
