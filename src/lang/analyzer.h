#ifndef CEPR_LANG_ANALYZER_H_
#define CEPR_LANG_ANALYZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "event/schema.h"
#include "expr/typecheck.h"
#include "lang/ast.h"

namespace cepr {

/// A query that passed semantic analysis: every name is resolved, every
/// expression typed, and structural rules hold. Input to the query compiler.
struct AnalyzedQuery {
  QueryAst ast;          // expressions inside are resolved and typed
  SchemaPtr schema;      // the FROM stream's schema
  BindingLayout layout;  // pattern variables in declaration order
  int partition_attr_index = -1;  // -1 = unpartitioned
  /// Output column names, one per SELECT item (aliases or derived names).
  std::vector<std::string> output_names;
  /// Output column types, parallel to output_names.
  std::vector<ValueType> output_types;
};

/// Validates and resolves a parsed query against `schema`:
///  * the pattern has >= 1 component; variable names are unique; negated
///    components are neither first, last, nor Kleene;
///  * the partition attribute exists;
///  * WHERE type-checks as a BOOL predicate; SELECT / RANK BY type-check in
///    output context; RANK BY is numeric;
///  * LIMIT without RANK BY means "first k per report window";
///  * EMIT ON WINDOW CLOSE / EVERY N EVENTS define the report window; EMIT
///    ON WINDOW CLOSE requires WITHIN (its tumbling span);
///  * SELECT * expands to every attribute of each single variable plus
///    COUNT of each Kleene variable.
Result<AnalyzedQuery> Analyze(QueryAst ast, SchemaPtr schema);

}  // namespace cepr

#endif  // CEPR_LANG_ANALYZER_H_
