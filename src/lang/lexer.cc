#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "common/strings.h"

namespace cepr {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kMatch:
      return "MATCH";
    case TokenKind::kPattern:
      return "PATTERN";
    case TokenKind::kSeq:
      return "SEQ";
    case TokenKind::kUsing:
      return "USING";
    case TokenKind::kPartition:
      return "PARTITION";
    case TokenKind::kBy:
      return "BY";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kWithin:
      return "WITHIN";
    case TokenKind::kRank:
      return "RANK";
    case TokenKind::kAsc:
      return "ASC";
    case TokenKind::kDesc:
      return "DESC";
    case TokenKind::kLimit:
      return "LIMIT";
    case TokenKind::kEmit:
      return "EMIT";
    case TokenKind::kOn:
      return "ON";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kTrue:
      return "TRUE";
    case TokenKind::kFalse:
      return "FALSE";
    case TokenKind::kNull:
      return "NULL";
    case TokenKind::kCreate:
      return "CREATE";
    case TokenKind::kStream:
      return "STREAM";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kLBracket:
      return "[";
    case TokenKind::kRBracket:
      return "]";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kDot:
      return ".";
    case TokenKind::kSemicolon:
      return ";";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kPercent:
      return "%";
    case TokenKind::kLt:
      return "<";
    case TokenKind::kLe:
      return "<=";
    case TokenKind::kGt:
      return ">";
    case TokenKind::kGe:
      return ">=";
    case TokenKind::kEq:
      return "=";
    case TokenKind::kNe:
      return "!=";
    case TokenKind::kBang:
      return "!";
    case TokenKind::kQuestion:
      return "?";
    case TokenKind::kLBrace:
      return "{";
    case TokenKind::kRBrace:
      return "}";
  }
  return "?";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kInteger:
      return "integer " + std::to_string(int_value);
    case TokenKind::kFloat:
      return "float " + FormatDouble(float_value);
    case TokenKind::kString:
      return "string '" + text + "'";
    default:
      return std::string("'") + TokenKindToString(kind) + "'";
  }
}

namespace {

const std::unordered_map<std::string, TokenKind>& KeywordMap() {
  static const auto* kMap = new std::unordered_map<std::string, TokenKind>{
      {"select", TokenKind::kSelect},       {"from", TokenKind::kFrom},
      {"match", TokenKind::kMatch},         {"pattern", TokenKind::kPattern},
      {"seq", TokenKind::kSeq},             {"using", TokenKind::kUsing},
      {"partition", TokenKind::kPartition}, {"by", TokenKind::kBy},
      {"where", TokenKind::kWhere},         {"within", TokenKind::kWithin},
      {"rank", TokenKind::kRank},           {"asc", TokenKind::kAsc},
      {"desc", TokenKind::kDesc},           {"limit", TokenKind::kLimit},
      {"emit", TokenKind::kEmit},           {"on", TokenKind::kOn},
      {"and", TokenKind::kAnd},             {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},             {"true", TokenKind::kTrue},
      {"false", TokenKind::kFalse},         {"null", TokenKind::kNull},
      {"create", TokenKind::kCreate},       {"stream", TokenKind::kStream},
      {"as", TokenKind::kAs},
  };
  return *kMap;
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token tok;
      tok.line = line_;
      tok.column = column_;
      if (AtEnd()) {
        tok.kind = TokenKind::kEof;
        tokens.push_back(std::move(tok));
        return tokens;
      }
      CEPR_RETURN_IF_ERROR(LexOne(&tok));
      tokens.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  char Advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && PeekAt(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Status LexOne(Token* tok) {
    const char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentifier(tok);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(tok);
    if (c == '\'') return LexString(tok);
    return LexOperator(tok);
  }

  Status LexIdentifier(Token* tok) {
    std::string word;
    while (!AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_')) {
      word += Advance();
    }
    const auto it = KeywordMap().find(ToLower(word));
    if (it != KeywordMap().end()) {
      tok->kind = it->second;
      tok->text = word;
    } else {
      tok->kind = TokenKind::kIdentifier;
      tok->text = std::move(word);
    }
    return Status::OK();
  }

  Status LexNumber(Token* tok) {
    std::string num;
    bool is_float = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      num += Advance();
    }
    // A '.' only extends the number when followed by a digit, so that a
    // clause-final integer before a '.' elsewhere never mislexes.
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
      is_float = true;
      num += Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Advance();
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      const char sign = PeekAt(1);
      const char digit = (sign == '+' || sign == '-') ? PeekAt(2) : sign;
      if (std::isdigit(static_cast<unsigned char>(digit))) {
        is_float = true;
        num += Advance();  // e
        if (Peek() == '+' || Peek() == '-') num += Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          num += Advance();
        }
      }
    }
    if (is_float) {
      tok->kind = TokenKind::kFloat;
      tok->float_value = std::strtod(num.c_str(), nullptr);
    } else {
      tok->kind = TokenKind::kInteger;
      errno = 0;
      tok->int_value = std::strtoll(num.c_str(), nullptr, 10);
      if (errno == ERANGE) return Error("integer literal out of range: " + num);
    }
    return Status::OK();
  }

  Status LexString(Token* tok) {
    Advance();  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      const char c = Advance();
      if (c == '\'') {
        if (!AtEnd() && Peek() == '\'') {
          out += '\'';  // '' escape
          Advance();
          continue;
        }
        break;
      }
      out += c;
    }
    tok->kind = TokenKind::kString;
    tok->text = std::move(out);
    return Status::OK();
  }

  Status LexOperator(Token* tok) {
    const char c = Advance();
    switch (c) {
      case '(':
        tok->kind = TokenKind::kLParen;
        return Status::OK();
      case ')':
        tok->kind = TokenKind::kRParen;
        return Status::OK();
      case '[':
        tok->kind = TokenKind::kLBracket;
        return Status::OK();
      case ']':
        tok->kind = TokenKind::kRBracket;
        return Status::OK();
      case ',':
        tok->kind = TokenKind::kComma;
        return Status::OK();
      case '.':
        tok->kind = TokenKind::kDot;
        return Status::OK();
      case ';':
        tok->kind = TokenKind::kSemicolon;
        return Status::OK();
      case '*':
        tok->kind = TokenKind::kStar;
        return Status::OK();
      case '+':
        tok->kind = TokenKind::kPlus;
        return Status::OK();
      case '-':
        tok->kind = TokenKind::kMinus;
        return Status::OK();
      case '/':
        tok->kind = TokenKind::kSlash;
        return Status::OK();
      case '%':
        tok->kind = TokenKind::kPercent;
        return Status::OK();
      case '=':
        tok->kind = TokenKind::kEq;
        return Status::OK();
      case '<':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kLe;
        } else if (!AtEnd() && Peek() == '>') {
          Advance();
          tok->kind = TokenKind::kNe;
        } else {
          tok->kind = TokenKind::kLt;
        }
        return Status::OK();
      case '>':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kGe;
        } else {
          tok->kind = TokenKind::kGt;
        }
        return Status::OK();
      case '?':
        tok->kind = TokenKind::kQuestion;
        return Status::OK();
      case '{':
        tok->kind = TokenKind::kLBrace;
        return Status::OK();
      case '}':
        tok->kind = TokenKind::kRBrace;
        return Status::OK();
      case '!':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          tok->kind = TokenKind::kNe;
        } else {
          tok->kind = TokenKind::kBang;
        }
        return Status::OK();
      default:
        return Error(std::string("illegal character '") + c + "'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  return LexerImpl(text).Run();
}

}  // namespace cepr
