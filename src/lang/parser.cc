#include "lang/parser.h"

#include <utility>

#include "common/strings.h"
#include "lang/lexer.h"

namespace cepr {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryAst> ParseQuery() {
    QueryAst q;
    CEPR_RETURN_IF_ERROR(ParseQueryInto(&q));
    CEPR_RETURN_IF_ERROR(ExpectEnd());
    return q;
  }

  Result<CreateStreamAst> ParseCreateStream() {
    CreateStreamAst c;
    CEPR_RETURN_IF_ERROR(ParseCreateStreamInto(&c));
    CEPR_RETURN_IF_ERROR(ExpectEnd());
    return c;
  }

  Result<StatementAst> ParseStatement() {
    StatementAst st;
    if (Check(TokenKind::kCreate)) {
      st.create_stream = std::make_unique<CreateStreamAst>();
      CEPR_RETURN_IF_ERROR(ParseCreateStreamInto(st.create_stream.get()));
    } else {
      st.query = std::make_unique<QueryAst>();
      CEPR_RETURN_IF_ERROR(ParseQueryInto(st.query.get()));
    }
    CEPR_RETURN_IF_ERROR(ExpectEnd());
    return st;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    CEPR_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    CEPR_RETURN_IF_ERROR(ExpectEnd());
    return e;
  }

 private:
  // -- Token plumbing ----------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Previous() const { return tokens_[pos_ - 1]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool AtEnd() const { return Check(TokenKind::kEof); }

  const Token& Advance() {
    if (!AtEnd()) ++pos_;
    return Previous();
  }

  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + ", got " + Peek().Describe() + " at line " +
                              std::to_string(Peek().line) + ", column " +
                              std::to_string(Peek().column));
  }

  Status Expect(TokenKind kind, const std::string& context) {
    if (Match(kind)) return Status::OK();
    return Error(std::string("expected ") + TokenKindToString(kind) + " " + context);
  }

  Result<std::string> ExpectIdentifier(const std::string& context) {
    if (!Check(TokenKind::kIdentifier)) {
      return Error("expected identifier " + context);
    }
    return Advance().text;
  }

  // True iff the current token is the soft keyword `word` (an identifier
  // compared case-insensitively).
  bool CheckSoft(std::string_view word) const {
    return Check(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, word);
  }

  bool MatchSoft(std::string_view word) {
    if (!CheckSoft(word)) return false;
    Advance();
    return true;
  }

  Status ExpectEnd() {
    Match(TokenKind::kSemicolon);
    if (!AtEnd()) return Error("expected end of statement");
    return Status::OK();
  }

  // -- Statements ----------------------------------------------------------

  Status ParseCreateStreamInto(CreateStreamAst* out) {
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kCreate, "to begin CREATE STREAM"));
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kStream, "after CREATE"));
    CEPR_ASSIGN_OR_RETURN(out->name, ExpectIdentifier("as stream name"));
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "to open attribute list"));
    do {
      Attribute attr;
      CEPR_ASSIGN_OR_RETURN(attr.name, ExpectIdentifier("as attribute name"));
      CEPR_ASSIGN_OR_RETURN(const std::string type_name,
                            ExpectIdentifier("as attribute type"));
      CEPR_ASSIGN_OR_RETURN(attr.type, ValueTypeFromString(type_name));
      if (MatchSoft("range")) {
        CEPR_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "after RANGE"));
        CEPR_ASSIGN_OR_RETURN(const double lo, ParseSignedNumber());
        CEPR_RETURN_IF_ERROR(Expect(TokenKind::kComma, "between range bounds"));
        CEPR_ASSIGN_OR_RETURN(const double hi, ParseSignedNumber());
        CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "to close RANGE"));
        attr.range = AttributeRange{lo, hi};
      }
      out->attributes.push_back(std::move(attr));
    } while (Match(TokenKind::kComma));
    return Expect(TokenKind::kRParen, "to close attribute list");
  }

  Result<double> ParseSignedNumber() {
    const bool neg = Match(TokenKind::kMinus);
    double v = 0.0;
    if (Match(TokenKind::kInteger)) {
      v = static_cast<double>(Previous().int_value);
    } else if (Match(TokenKind::kFloat)) {
      v = Previous().float_value;
    } else {
      return Error("expected a number");
    }
    return neg ? -v : v;
  }

  Status ParseQueryInto(QueryAst* q) {
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kSelect, "to begin query"));
    if (!Match(TokenKind::kStar)) {
      do {
        SelectItemAst item;
        CEPR_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Match(TokenKind::kAs)) {
          CEPR_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("after AS"));
        }
        q->select.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }

    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kFrom, "after SELECT list"));
    CEPR_ASSIGN_OR_RETURN(q->stream_name, ExpectIdentifier("as stream name"));

    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kMatch, "after FROM"));
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kPattern, "after MATCH"));
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kSeq, "after PATTERN"));
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "to open SEQ"));
    do {
      PatternComponentAst comp;
      comp.negated = Match(TokenKind::kBang);
      CEPR_ASSIGN_OR_RETURN(std::string first,
                            ExpectIdentifier("as pattern variable"));
      if (Check(TokenKind::kIdentifier)) {
        comp.type_tag = std::move(first);
        comp.var = Advance().text;
      } else {
        comp.var = std::move(first);
      }
      CEPR_RETURN_IF_ERROR(ParseComponentSuffix(&comp));
      q->pattern.push_back(std::move(comp));
    } while (Match(TokenKind::kComma));
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close SEQ"));

    if (Match(TokenKind::kUsing)) {
      CEPR_ASSIGN_OR_RETURN(const std::string name,
                            ExpectIdentifier("as selection strategy"));
      if (EqualsIgnoreCase(name, "strict_contiguity") ||
          EqualsIgnoreCase(name, "strict")) {
        q->strategy = SelectionStrategy::kStrictContiguity;
      } else if (EqualsIgnoreCase(name, "skip_till_next_match")) {
        q->strategy = SelectionStrategy::kSkipTillNext;
      } else if (EqualsIgnoreCase(name, "skip_till_any_match")) {
        q->strategy = SelectionStrategy::kSkipTillAny;
      } else {
        return Status::ParseError(
            "unknown selection strategy '" + name +
            "' (expected STRICT_CONTIGUITY, SKIP_TILL_NEXT_MATCH or "
            "SKIP_TILL_ANY_MATCH)");
      }
    }

    if (Match(TokenKind::kPartition)) {
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kBy, "after PARTITION"));
      CEPR_ASSIGN_OR_RETURN(q->partition_attr,
                            ExpectIdentifier("as partition attribute"));
    }

    if (Match(TokenKind::kWhere)) {
      CEPR_ASSIGN_OR_RETURN(q->where, ParseExpr());
    }

    if (Match(TokenKind::kWithin)) {
      if (!Match(TokenKind::kInteger)) return Error("expected duration after WITHIN");
      const int64_t amount = Previous().int_value;
      if (MatchSoft("events")) {
        q->within_events = amount;  // count-based span
      } else {
        CEPR_ASSIGN_OR_RETURN(const Timestamp unit, ParseTimeUnit());
        q->within_micros = amount * unit;
      }
    }

    if (Match(TokenKind::kRank)) {
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kBy, "after RANK"));
      CEPR_ASSIGN_OR_RETURN(q->rank_by, ParseExpr());
      if (Match(TokenKind::kDesc)) {
        q->rank_desc = true;
      } else if (Match(TokenKind::kAsc)) {
        q->rank_desc = false;
      }
    }

    if (Match(TokenKind::kLimit)) {
      if (!Match(TokenKind::kInteger)) return Error("expected integer after LIMIT");
      q->limit = Previous().int_value;
      if (q->limit < 0) return Status::ParseError("LIMIT must be non-negative");
    }

    if (Match(TokenKind::kEmit)) {
      if (Match(TokenKind::kOn)) {
        if (MatchSoft("complete")) {
          q->emit = EmitPolicy::kOnComplete;
        } else if (MatchSoft("window")) {
          if (!MatchSoft("close")) return Error("expected CLOSE after EMIT ON WINDOW");
          q->emit = EmitPolicy::kOnWindowClose;
        } else {
          return Error("expected COMPLETE or WINDOW CLOSE after EMIT ON");
        }
      } else if (MatchSoft("every")) {
        if (!Match(TokenKind::kInteger)) return Error("expected count after EMIT EVERY");
        q->emit_every_n = Previous().int_value;
        if (q->emit_every_n <= 0) {
          return Status::ParseError("EMIT EVERY count must be positive");
        }
        if (!MatchSoft("events")) return Error("expected EVENTS after EMIT EVERY n");
        q->emit = EmitPolicy::kEveryNEvents;
      } else {
        return Error("expected ON or EVERY after EMIT");
      }
    }

    if (MatchSoft("into")) {
      CEPR_ASSIGN_OR_RETURN(q->into_stream,
                            ExpectIdentifier("as derived stream name"));
    }
    return Status::OK();
  }

  // Parses the repetition suffix after a component variable:
  // nothing | `+` | `*` | `?` | `{m}` | `{m,}` | `{m,n}`.
  Status ParseComponentSuffix(PatternComponentAst* comp) {
    if (Match(TokenKind::kPlus)) {
      comp->kleene = true;
      comp->min_iters = 1;
      comp->max_iters = -1;
      return Status::OK();
    }
    if (Match(TokenKind::kStar)) {
      comp->kleene = true;
      comp->min_iters = 0;
      comp->max_iters = -1;
      return Status::OK();
    }
    if (Match(TokenKind::kQuestion)) {
      comp->optional = true;
      return Status::OK();
    }
    if (Match(TokenKind::kLBrace)) {
      if (!Match(TokenKind::kInteger)) {
        return Error("expected minimum iteration count after '{'");
      }
      comp->kleene = true;
      comp->min_iters = Previous().int_value;
      comp->max_iters = comp->min_iters;  // {m} = exactly m
      if (Match(TokenKind::kComma)) {
        if (Match(TokenKind::kInteger)) {
          comp->max_iters = Previous().int_value;
        } else {
          comp->max_iters = -1;  // {m,} = at least m
        }
      }
      return Expect(TokenKind::kRBrace, "to close iteration bounds");
    }
    return Status::OK();
  }

  Result<Timestamp> ParseTimeUnit() {
    CEPR_ASSIGN_OR_RETURN(const std::string unit, ExpectIdentifier("as time unit"));
    if (EqualsIgnoreCase(unit, "microseconds") || EqualsIgnoreCase(unit, "microsecond")) {
      return Timestamp{1};
    }
    if (EqualsIgnoreCase(unit, "milliseconds") || EqualsIgnoreCase(unit, "millisecond")) {
      return Timestamp{1000};
    }
    if (EqualsIgnoreCase(unit, "seconds") || EqualsIgnoreCase(unit, "second")) {
      return kMicrosPerSecond;
    }
    if (EqualsIgnoreCase(unit, "minutes") || EqualsIgnoreCase(unit, "minute")) {
      return kMicrosPerMinute;
    }
    if (EqualsIgnoreCase(unit, "hours") || EqualsIgnoreCase(unit, "hour")) {
      return kMicrosPerHour;
    }
    return Status::ParseError("unknown time unit '" + unit + "'");
  }

  // -- Expressions (precedence climbing) ---------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    CEPR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Match(TokenKind::kOr)) {
      CEPR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    CEPR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Match(TokenKind::kAnd)) {
      CEPR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Match(TokenKind::kNot)) {
      CEPR_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(inner));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    CEPR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    // x BETWEEN lo AND hi  ==>  (x >= lo AND x <= hi)
    if (MatchSoft("between")) {
      CEPR_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kAnd, "in BETWEEN ... AND ..."));
      CEPR_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr ge = Expr::Binary(BinaryOp::kGe, lhs->Clone(), std::move(lo));
      ExprPtr le = Expr::Binary(BinaryOp::kLe, std::move(lhs), std::move(hi));
      return Expr::Binary(BinaryOp::kAnd, std::move(ge), std::move(le));
    }

    // x IN (e1, e2, ...)  ==>  (x = e1 OR x = e2 OR ...)
    if (MatchSoft("in")) {
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after IN"));
      ExprPtr disjunction;
      do {
        CEPR_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        ExprPtr eq = Expr::Binary(BinaryOp::kEq, lhs->Clone(), std::move(item));
        disjunction = disjunction == nullptr
                          ? std::move(eq)
                          : Expr::Binary(BinaryOp::kOr, std::move(disjunction),
                                         std::move(eq));
      } while (Match(TokenKind::kComma));
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close IN list"));
      return disjunction;
    }

    BinaryOp op;
    if (Match(TokenKind::kLt)) {
      op = BinaryOp::kLt;
    } else if (Match(TokenKind::kLe)) {
      op = BinaryOp::kLe;
    } else if (Match(TokenKind::kGt)) {
      op = BinaryOp::kGt;
    } else if (Match(TokenKind::kGe)) {
      op = BinaryOp::kGe;
    } else if (Match(TokenKind::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenKind::kNe)) {
      op = BinaryOp::kNe;
    } else {
      return lhs;
    }
    CEPR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    CEPR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      CEPR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    CEPR_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Match(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      CEPR_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      CEPR_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(inner));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Match(TokenKind::kInteger)) return Expr::Literal(Value::Int(Previous().int_value));
    if (Match(TokenKind::kFloat)) return Expr::Literal(Value::Float(Previous().float_value));
    if (Match(TokenKind::kString)) return Expr::Literal(Value::String(Previous().text));
    if (Match(TokenKind::kTrue)) return Expr::Literal(Value::Bool(true));
    if (Match(TokenKind::kFalse)) return Expr::Literal(Value::Bool(false));
    if (Match(TokenKind::kNull)) return Expr::Literal(Value::Null());
    if (Match(TokenKind::kLParen)) {
      CEPR_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close expression"));
      return inner;
    }
    if (CheckSoft("case")) return ParseCase();
    if (Check(TokenKind::kIdentifier)) return ParseReferenceOrCall();
    return Error("expected an expression");
  }

  // CASE WHEN cond THEN value [WHEN ...]* [ELSE value] END
  Result<ExprPtr> ParseCase() {
    Advance();  // CASE
    std::vector<ExprPtr> children;
    bool saw_when = false;
    while (MatchSoft("when")) {
      saw_when = true;
      CEPR_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      if (!MatchSoft("then")) return Error("expected THEN in CASE");
      CEPR_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      children.push_back(std::move(cond));
      children.push_back(std::move(value));
    }
    if (!saw_when) return Error("expected WHEN after CASE");
    bool has_else = false;
    if (MatchSoft("else")) {
      has_else = true;
      CEPR_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      children.push_back(std::move(value));
    }
    if (!MatchSoft("end")) return Error("expected END to close CASE");
    return Expr::Case(std::move(children), has_else);
  }

  // identifier already peeked: one of
  //   name '(' ...        aggregate or scalar function call
  //   name '.' attr       single-variable reference
  //   name '[' idx ']' '.' attr   Kleene iteration reference
  Result<ExprPtr> ParseReferenceOrCall() {
    const std::string name = Advance().text;

    if (Match(TokenKind::kLParen)) return ParseCall(name);

    if (Match(TokenKind::kDot)) {
      CEPR_ASSIGN_OR_RETURN(const std::string attr,
                            ExpectIdentifier("as attribute name"));
      return Expr::VarRef(name, attr);
    }

    if (Match(TokenKind::kLBracket)) {
      IterKind iter;
      if (Match(TokenKind::kInteger)) {
        if (Previous().int_value != 1) {
          return Status::ParseError(
              "only [1], [i] and [i-1] iteration indexes are supported");
        }
        iter = IterKind::kFirst;
      } else if (MatchSoft("i")) {
        if (Match(TokenKind::kMinus)) {
          if (!Match(TokenKind::kInteger) || Previous().int_value != 1) {
            return Error("expected 1 after [i-");
          }
          iter = IterKind::kPrev;
        } else {
          iter = IterKind::kCurrent;
        }
      } else {
        return Error("expected iteration index [1], [i] or [i-1]");
      }
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "to close iteration index"));
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kDot, "after iteration index"));
      CEPR_ASSIGN_OR_RETURN(const std::string attr,
                            ExpectIdentifier("as attribute name"));
      return Expr::IterRef(name, attr, iter);
    }

    return Error("expected '.', '(' or '[' after identifier '" + name + "'");
  }

  // '(' already consumed.
  Result<ExprPtr> ParseCall(const std::string& name) {
    // Aggregates with attribute argument: MIN(b.price) etc.
    const bool is_minmaxsumavg =
        EqualsIgnoreCase(name, "min") || EqualsIgnoreCase(name, "max") ||
        EqualsIgnoreCase(name, "sum") || EqualsIgnoreCase(name, "avg");
    if (is_minmaxsumavg) {
      CEPR_ASSIGN_OR_RETURN(const std::string var,
                            ExpectIdentifier("as aggregate variable"));
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kDot, "in aggregate argument"));
      CEPR_ASSIGN_OR_RETURN(const std::string attr,
                            ExpectIdentifier("as aggregate attribute"));
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close aggregate"));
      AggFunc func = AggFunc::kMin;
      if (EqualsIgnoreCase(name, "max")) func = AggFunc::kMax;
      if (EqualsIgnoreCase(name, "sum")) func = AggFunc::kSum;
      if (EqualsIgnoreCase(name, "avg")) func = AggFunc::kAvg;
      return Expr::Aggregate(func, var, attr);
    }

    if (EqualsIgnoreCase(name, "count")) {
      CEPR_ASSIGN_OR_RETURN(const std::string var,
                            ExpectIdentifier("as COUNT variable"));
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close COUNT"));
      return Expr::Aggregate(AggFunc::kCount, var, "");
    }

    if (EqualsIgnoreCase(name, "first") || EqualsIgnoreCase(name, "last")) {
      CEPR_ASSIGN_OR_RETURN(const std::string var,
                            ExpectIdentifier("as FIRST/LAST variable"));
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close FIRST/LAST"));
      CEPR_RETURN_IF_ERROR(Expect(TokenKind::kDot, "after FIRST/LAST"));
      CEPR_ASSIGN_OR_RETURN(const std::string attr,
                            ExpectIdentifier("as attribute name"));
      return Expr::Aggregate(
          EqualsIgnoreCase(name, "first") ? AggFunc::kFirst : AggFunc::kLast, var,
          attr);
    }

    // Scalar functions.
    ScalarFunc func;
    if (EqualsIgnoreCase(name, "abs")) {
      func = ScalarFunc::kAbs;
    } else if (EqualsIgnoreCase(name, "sqrt")) {
      func = ScalarFunc::kSqrt;
    } else if (EqualsIgnoreCase(name, "log") || EqualsIgnoreCase(name, "ln")) {
      func = ScalarFunc::kLog;
    } else if (EqualsIgnoreCase(name, "exp")) {
      func = ScalarFunc::kExp;
    } else if (EqualsIgnoreCase(name, "pow")) {
      func = ScalarFunc::kPow;
    } else if (EqualsIgnoreCase(name, "floor")) {
      func = ScalarFunc::kFloor;
    } else if (EqualsIgnoreCase(name, "ceil")) {
      func = ScalarFunc::kCeil;
    } else if (EqualsIgnoreCase(name, "round")) {
      func = ScalarFunc::kRound;
    } else if (EqualsIgnoreCase(name, "least")) {
      func = ScalarFunc::kLeast;
    } else if (EqualsIgnoreCase(name, "greatest")) {
      func = ScalarFunc::kGreatest;
    } else if (EqualsIgnoreCase(name, "upper")) {
      func = ScalarFunc::kUpper;
    } else if (EqualsIgnoreCase(name, "lower")) {
      func = ScalarFunc::kLower;
    } else if (EqualsIgnoreCase(name, "length")) {
      func = ScalarFunc::kLength;
    } else if (EqualsIgnoreCase(name, "concat")) {
      func = ScalarFunc::kConcat;
    } else if (EqualsIgnoreCase(name, "substr") ||
               EqualsIgnoreCase(name, "substring")) {
      func = ScalarFunc::kSubstr;
    } else {
      return Status::ParseError("unknown function '" + name + "'");
    }

    std::vector<ExprPtr> args;
    if (!Check(TokenKind::kRParen)) {
      do {
        CEPR_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(std::move(arg));
      } while (Match(TokenKind::kComma));
    }
    CEPR_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close function call"));
    return Expr::Func(func, std::move(args));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryAst> ParseQuery(std::string_view text) {
  CEPR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseQuery();
}

Result<CreateStreamAst> ParseCreateStream(std::string_view text) {
  CEPR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseCreateStream();
}

Result<StatementAst> ParseStatement(std::string_view text) {
  CEPR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  CEPR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).ParseStandaloneExpression();
}

}  // namespace cepr
