#ifndef CEPR_LANG_TOKEN_H_
#define CEPR_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace cepr {

/// Lexical token kinds of CEPR-QL.
enum class TokenKind {
  kEof = 0,
  kIdentifier,  // attribute / variable / function / soft-keyword names
  kInteger,     // 42
  kFloat,       // 3.5, 1e-3
  kString,      // 'text' with '' escaping

  // Hard keywords (cannot be used as identifiers).
  kSelect,
  kFrom,
  kMatch,
  kPattern,
  kSeq,
  kUsing,
  kPartition,
  kBy,
  kWhere,
  kWithin,
  kRank,
  kAsc,
  kDesc,
  kLimit,
  kEmit,
  kOn,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNull,
  kCreate,
  kStream,
  kAs,

  // Punctuation and operators.
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kDot,       // .
  kSemicolon, // ;
  kStar,      // *
  kPlus,      // +
  kMinus,     // -
  kSlash,     // /
  kPercent,   // %
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kEq,        // =
  kNe,        // != or <>
  kBang,      // ! (pattern negation)
  kQuestion,  // ? (optional pattern component)
  kLBrace,    // { (Kleene iteration bounds)
  kRBrace,    // }
};

/// Stable token-kind name for diagnostics.
const char* TokenKindToString(TokenKind kind);

/// One lexed token with its source location (1-based line / column).
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;      // identifier name or string literal contents
  int64_t int_value = 0;
  double float_value = 0.0;
  int line = 1;
  int column = 1;

  /// Human-readable rendering for error messages.
  std::string Describe() const;
};

}  // namespace cepr

#endif  // CEPR_LANG_TOKEN_H_
