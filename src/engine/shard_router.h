#ifndef CEPR_ENGINE_SHARD_ROUTER_H_
#define CEPR_ENGINE_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>

#include "event/event.h"
#include "plan/compiler.h"

namespace cepr {

/// Maps one query's events to worker shards. PARTITION BY keys are hashed
/// (with an avalanche mix, so clustered key hashes still spread) across the
/// shard count: a partition is owned by exactly one shard for the stream's
/// lifetime, which is what makes per-shard matcher state sound — runs of a
/// key never migrate. Unpartitioned queries are pinned to one shard chosen
/// by query ordinal, since their single matcher must see every event in
/// order.
class ShardRouter {
 public:
  /// `query_index` spreads the pinned shard of unpartitioned queries.
  ShardRouter(const CompiledQuery& plan, size_t num_shards, size_t query_index);

  /// Shard owning this event's partition (the pin for unpartitioned plans).
  size_t ShardOf(const Event& event) const;

  bool partitioned() const { return partition_attr_ >= 0; }
  size_t num_shards() const { return num_shards_; }

  /// 64-bit avalanche mix (splitmix64 finalizer); exposed for tests.
  static uint64_t Mix(uint64_t x);

 private:
  int partition_attr_;
  size_t num_shards_;
  size_t pinned_;
};

}  // namespace cepr

#endif  // CEPR_ENGINE_SHARD_ROUTER_H_
