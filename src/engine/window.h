#ifndef CEPR_ENGINE_WINDOW_H_
#define CEPR_ENGINE_WINDOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "event/event.h"
#include "plan/compiler.h"

namespace cepr {

/// Columnar view over a contiguous span of events released from a stream's
/// reorder buffer in one ingest call — the unit of batched routing.
///
/// Rows stay row-major Events (the matcher binds whole events); what the
/// batch adds is lazily materialized per-attribute numeric columns so the
/// predicate index's entry screening (PredicateIndex::ProbeBatch) can run
/// range guards as tight column scans instead of per-event virtual walks.
/// A column is built at most once per batch, on first request, and only for
/// attributes a guard actually consults.
///
/// The view does not own the events; the caller's released vector must
/// outlive it. Batches are built and consumed on the ingest thread.
class EventBatch {
 public:
  /// One attribute's values for every row, widened to double exactly the
  /// way the evaluator compares numerics. `ok[row] == 0` marks values no
  /// range guard can pass: NULL, non-numeric, or NaN (every comparison
  /// with NaN is false in CEPR-QL).
  struct NumericColumn {
    std::vector<double> x;
    std::vector<uint8_t> ok;
    bool built = false;
  };

  EventBatch(const Event* events, size_t size, size_t num_attrs)
      : events_(events), size_(size), columns_(num_attrs) {}

  size_t size() const { return size_; }
  const Event& event(size_t row) const { return events_[row]; }

  /// The materialized column for a schema attribute (lazy).
  const NumericColumn& numeric_column(int attr_index) const;

 private:
  const Event* events_;
  size_t size_;
  mutable std::vector<NumericColumn> columns_;
};

/// Assigns events / matches to ranking report windows. The ranking layer
/// buffers matches per window; when the stream moves to a later window the
/// previous one closes and its ordered top-k is emitted.
///
///  * EMIT ON COMPLETE       -> one unbounded window (id 0); eager emission.
///  * EMIT ON WINDOW CLOSE   -> event-time tumbling windows of the WITHIN
///                              span: id = timestamp / span.
///  * EMIT EVERY n EVENTS    -> count-based windows: id = event_seq / n.
class ReportWindowAssigner {
 public:
  enum class Mode { kSingle, kTime, kCount };

  ReportWindowAssigner() = default;

  /// Derives the assigner from a compiled query's emission policy.
  static ReportWindowAssigner ForQuery(const CompiledQuery& query);

  Mode mode() const { return mode_; }
  /// Window parameters, for grouping queries with coincident boundaries
  /// (the shared layer's window groups): the kTime span / kCount size.
  Timestamp span() const { return span_; }
  int64_t every_n() const { return every_n_; }

  /// Window id for an input position (event timestamp + per-query event
  /// ordinal). Matches use the position of their detecting event.
  int64_t WindowOf(Timestamp ts, uint64_t event_ordinal) const;

  /// Inclusive [start, end) event-time bounds of a time window, for
  /// labeling emitted results; meaningful only in kTime mode.
  Timestamp WindowStart(int64_t window_id) const { return window_id * span_; }
  Timestamp WindowEnd(int64_t window_id) const { return (window_id + 1) * span_; }

  std::string ToString() const;

 private:
  Mode mode_ = Mode::kSingle;
  Timestamp span_ = 0;  // kTime
  int64_t every_n_ = 0; // kCount
};

}  // namespace cepr

#endif  // CEPR_ENGINE_WINDOW_H_
