#ifndef CEPR_ENGINE_MATCH_DAG_H_
#define CEPR_ENGINE_MATCH_DAG_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "engine/binding.h"
#include "expr/aggregate.h"
#include "expr/interval.h"
#include "plan/compiler.h"

namespace cepr {

class BinWriter;
class BinReader;
class EventInterner;
class EventUninterner;

/// Shared partial-match graph for the trailing-Kleene suffix of a
/// SKIP_TILL_ANY_MATCH pattern (CORE-style tECS, arXiv 2111.04635).
///
/// Under skip-till-any a Kleene variable over t trailing events produces up
/// to 2^t - 1 runs that differ only in which subset of those events they
/// bound. The DAG represents that fan-out once: per qualifying event the
/// matcher creates ONE extend node and ONE union node per group, so state
/// grows linearly in window size while the encoded match count stays
/// exponential. A root-to-bottom path through extend nodes spells one
/// concrete Kleene binding (in reverse), and union nodes merge alternative
/// histories that share their future.
///
/// Each node carries summaries over every path below it — iteration-count
/// bounds, a path count, and one interval per aggregate slot of the
/// trailing variable — maintained incrementally with the same monotone
/// folds AggStates::Accept applies (so the intervals are sound containment
/// bounds by induction). The lazy enumerator (rank/enumerator.h) turns
/// those summaries into score bounds and materializes matches best-first.
struct DagNode {
  enum class Kind : uint8_t { kBottom = 0, kExtend = 1, kUnion = 2 };

  DagNode(Kind k, const EventPtr& e, DagNode* p, DagNode* o)
      : kind(k), event(e), prev(p), other(o) {}

  Kind kind;
  /// kExtend: the event this node appends to every path through `prev`.
  EventPtr event;
  /// kExtend: the continuation; kUnion: the left alternative.
  DagNode* prev;
  /// kUnion: the right alternative.
  DagNode* other;
  /// Direct owners (group heads, parent nodes, live LazyMatchSets,
  /// enumerator frontier entries). Non-atomic by design: a DAG lives and
  /// dies inside one matcher scope, driven by a single thread (serial
  /// engine) or pinned to one shard thread.
  uint32_t refs = 1;
  /// Min/max number of extend nodes on any path from here to bottom — the
  /// achievable Kleene iteration counts of the suffix.
  uint64_t cmin = 0;
  uint64_t cmax = 0;
  /// Number of distinct root-to-bottom paths (saturates to +inf as a
  /// double; used for diagnostics and the E19 measurement, never for
  /// control flow).
  double paths = 1.0;
  /// One containment interval per trailing-variable aggregate slot (dense,
  /// see MatchDagStore::dense_slot_of): every path through this node folds
  /// its suffix events into a value inside the interval.
  std::vector<Interval> aggs;
};

/// True iff the compiled query's shape is one the DAG representation
/// covers: SKIP_TILL_ANY_MATCH, a ranked buffered emission, and a trailing
/// unbounded Kleene-plus component whose iteration predicates are all
/// event-only (run-independent), with no exit predicates and no trailing
/// negation. Everything else falls back to the per-run path.
bool MatchDagEligible(const CompiledQuery& query);

/// Allocator and factory for one matcher scope's DAG nodes (one store per
/// RunMemory, shared by every partition matcher of that scope and kept
/// alive by in-flight LazyMatchSets via shared_ptr). Owns the node arena,
/// the trailing-variable aggregate slot map, and the sharing counters.
class MatchDagStore {
 public:
  explicit MatchDagStore(const CompiledQuery* plan);
  ~MatchDagStore();

  MatchDagStore(const MatchDagStore&) = delete;
  MatchDagStore& operator=(const MatchDagStore&) = delete;

  /// The shared terminal node (empty suffix). Returned with one reference
  /// for the caller, like the factories below.
  DagNode* Bottom();

  /// A node representing "append `event` to every path through `prev`".
  /// `prev` is borrowed (the new node takes its own reference); the
  /// returned node carries one reference owned by the caller.
  DagNode* NewExtend(const EventPtr& event, DagNode* prev);

  /// A node merging the paths of `a` and `b` (both borrowed; the returned
  /// node carries the caller's reference).
  DagNode* NewUnion(DagNode* a, DagNode* b);

  /// Reference maintenance for owners outside the factories (LazyMatchSet
  /// copies, enumerator frontier entries, serde tables).
  void Ref(DagNode* n) {
    ++n->refs;
    ++shared_;
  }
  void Unref(DagNode* n);

  int trailing_var() const { return trailing_var_; }
  /// Dense index of plan agg slot `agg_slot` among the trailing variable's
  /// slots, or -1 (slots of earlier, closed variables are not tracked).
  int dense_slot_of(int agg_slot) const {
    return dense_slot_of_[static_cast<size_t>(agg_slot)];
  }
  /// Specs of the trailing variable's aggregate slots, parallel to every
  /// node's `aggs` vector.
  const std::vector<AggSpec>& dense_specs() const { return dense_specs_; }

  // -- counters --------------------------------------------------------------
  /// Lifetime node constructions / sharing events (Ref calls).
  uint64_t nodes_allocated() const { return allocated_; }
  uint64_t nodes_shared() const { return shared_; }
  /// Currently live nodes (peak tracking happens in the matcher).
  uint64_t live_nodes() const { return live_; }
  /// Deltas since the previous Take* call (per-event metrics attribution).
  uint64_t TakeAllocatedDelta() {
    const uint64_t d = allocated_ - allocated_consumed_;
    allocated_consumed_ = allocated_;
    return d;
  }
  uint64_t TakeSharedDelta() {
    const uint64_t d = shared_ - shared_consumed_;
    shared_consumed_ = shared_;
    return d;
  }
  /// Forgets pending deltas (after a checkpoint load, whose node
  /// constructions replay saved state rather than new work).
  void DiscardDeltas() {
    allocated_consumed_ = allocated_;
    shared_consumed_ = shared_;
  }

 private:
  DagNode* NewNode(DagNode::Kind kind, const EventPtr& event, DagNode* prev,
                   DagNode* other);

  const CompiledQuery* plan_;  // not owned; outlives the store
  int trailing_var_ = -1;
  /// Specs of the trailing variable's aggregate slots, dense.
  std::vector<AggSpec> dense_specs_;
  std::vector<int> dense_slot_of_;  // plan slot -> dense index or -1
  ObjectPool<DagNode> pool_;
  DagNode* bottom_ = nullptr;  // lazily created; store holds one reference
  std::vector<DagNode*> unref_stack_;  // scratch (avoids per-Unref allocs)
  uint64_t allocated_ = 0;
  uint64_t shared_ = 0;
  uint64_t live_ = 0;
  uint64_t allocated_consumed_ = 0;
  uint64_t shared_consumed_ = 0;
};

/// The immutable prefix one DAG group shares across all its lazy matches:
/// the events bound to every closed (non-trailing) variable, the aggregate
/// accumulators folded over them in binding order (bit-identical to the
/// owning run's folds), and the match-span anchors. Referenced by every
/// LazyMatchSet of the group; holds the store so nodes outlive the matcher.
struct DagGroupContext {
  const CompiledQuery* plan = nullptr;  // not owned; query-lifetime
  std::shared_ptr<MatchDagStore> store;
  /// Bound events per layout variable; the trailing variable's entry stays
  /// empty (its bindings are the DAG paths).
  std::vector<std::vector<EventPtr>> closed_bindings;
  /// Aggregates folded over closed_bindings only; the enumerator re-folds
  /// each path's suffix on top of a copy.
  AggStates base_aggs;
  Timestamp first_ts = 0;
  uint64_t first_sequence = 0;
};

using DagGroupContextPtr = std::shared_ptr<const DagGroupContext>;

/// Checkpoint serialization of a group's immutable prefix context. Saves
/// span anchors and closed bindings; base_aggs are refolded on load in the
/// exact order StartGroup folded them (bit-identical float state).
void SaveDagGroupContext(EventInterner* in, BinWriter* w,
                         const DagGroupContext& ctx);
/// Returns null on malformed input (the reader is left failed).
DagGroupContextPtr LoadDagGroupContext(const CompiledQuery* plan,
                                       std::shared_ptr<MatchDagStore> store,
                                       EventUninterner* in, BinReader* r);

/// A deferred set of matches: every root-to-bottom path of `node`, suffixed
/// onto the group's closed prefix, detected by the event of stream sequence
/// `last_sequence`. Owns one node reference (released on destruction) and
/// keeps the group context (and thereby the store/arena) alive. Produced by
/// the matcher instead of materialized Match objects; consumed by the lazy
/// enumerator at window close.
class LazyMatchSet {
 public:
  LazyMatchSet() = default;
  /// Takes over one reference on `node` from the caller.
  LazyMatchSet(DagGroupContextPtr group, DagNode* node, uint64_t base_id,
               uint64_t last_sequence, Timestamp last_ts)
      : group_(std::move(group)),
        node_(node),
        base_id_(base_id),
        last_sequence_(last_sequence),
        last_ts_(last_ts) {}
  ~LazyMatchSet() { Release(); }

  LazyMatchSet(LazyMatchSet&& other) noexcept { MoveFrom(&other); }
  LazyMatchSet& operator=(LazyMatchSet&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(&other);
    }
    return *this;
  }
  LazyMatchSet(const LazyMatchSet&) = delete;
  LazyMatchSet& operator=(const LazyMatchSet&) = delete;

  const DagGroupContextPtr& group() const { return group_; }
  DagNode* node() const { return node_; }
  /// Matcher-issued detection id; enumerated matches of this set all carry
  /// it (they are tie-broken by binding content, see OutranksMatch).
  uint64_t base_id() const { return base_id_; }
  uint64_t last_sequence() const { return last_sequence_; }
  Timestamp last_ts() const { return last_ts_; }

 private:
  void Release() {
    if (node_ != nullptr && group_ != nullptr) group_->store->Unref(node_);
    node_ = nullptr;
    group_.reset();
  }
  void MoveFrom(LazyMatchSet* other) {
    group_ = std::move(other->group_);
    node_ = other->node_;
    base_id_ = other->base_id_;
    last_sequence_ = other->last_sequence_;
    last_ts_ = other->last_ts_;
    other->node_ = nullptr;
    other->group_.reset();
  }

  DagGroupContextPtr group_;
  DagNode* node_ = nullptr;
  uint64_t base_id_ = 0;
  uint64_t last_sequence_ = 0;
  Timestamp last_ts_ = 0;
};

/// Checkpoint serialization of DAG structure. One writer/reader serves a
/// whole serialization scope (a matcher's groups plus the ranker's pending
/// sets) so shared nodes are written once and restored shared:
///
///   Save(n):  [u32 num_new_defs][defs, children before parents][u32 ref]
///   def:      [u8 kind] + kExtend: [interned event][u32 prev-ref]
///                       + kUnion:  [u32 left-ref][u32 right-ref]
///
/// The reader rebuilds nodes through the store's factories, so counts,
/// paths and aggregate intervals are recomputed bit-identically.
class DagWriter {
 public:
  DagWriter(EventInterner* in, BinWriter* w) : in_(in), w_(w) {}
  void Save(const DagNode* node);

 private:
  EventInterner* in_;
  BinWriter* w_;
  std::unordered_map<const DagNode*, uint32_t> ids_;
};

class DagReader {
 public:
  DagReader(EventUninterner* in, BinReader* r, MatchDagStore* store)
      : in_(in), r_(r), store_(store) {}
  /// Releases the table's creation references; nodes an owner Ref'd
  /// explicitly survive.
  ~DagReader();

  /// Returns the restored node as a borrowed pointer (callers that keep it
  /// must Ref it), or nullptr on malformed input (the reader is failed).
  DagNode* Load();

 private:
  EventUninterner* in_;
  BinReader* r_;
  MatchDagStore* store_;
  std::vector<DagNode*> table_;
};

}  // namespace cepr

#endif  // CEPR_ENGINE_MATCH_DAG_H_
