#ifndef CEPR_ENGINE_PARTITION_H_
#define CEPR_ENGINE_PARTITION_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/matcher.h"

namespace cepr {

/// Routes events of a PARTITION BY query to one Matcher per partition key,
/// so runs never mix events of different keys (e.g. different stock
/// symbols). Without PARTITION BY a single matcher sees everything.
/// Match ids stay globally ordered across partitions (shared counter).
class PartitionedMatcher {
 public:
  /// `live_runs` (nullable) is the shared counter MatcherOptions::
  /// max_total_runs budgets against; when null the budget spans just this
  /// query's partitions (an internal counter is used).
  PartitionedMatcher(CompiledQueryPtr plan, const MatcherOptions& options,
                     const RunPruner* pruner, size_t* live_runs = nullptr);

  /// Feeds one event to its partition; matches are appended to `out`.
  /// Fails only on a runtime fault under FaultPolicy::kFailFast.
  Status OnEvent(const EventPtr& event, std::vector<Match>* out);

  /// Lazy-DAG variant: when `lazy_out` is non-null AND the scope carries a
  /// DAG store (shared_match_dag knob on + eligible plan shape), trailing-
  /// Kleene matches arrive as deferred LazyMatchSets there instead of
  /// materialized Match objects. Matcher mode is latched on the first event
  /// per partition, so callers must pass `lazy_out` consistently for the
  /// query's lifetime.
  Status OnEvent(const EventPtr& event, std::vector<Match>* out,
                 std::vector<LazyMatchSet>* lazy_out);

  /// Candidate-aware variant for the shared evaluation layer. When
  /// `candidate` is false the caller's predicate index has proven the event
  /// cannot begin a run here; if the event's partition also holds no live
  /// runs the matcher visit is provably a no-op and is skipped entirely
  /// (`*evaluated` reports whether a matcher actually ran, so callers can
  /// keep per-event timing histograms comparable across modes). A
  /// non-candidate event MUST still be evaluated while runs are live: it
  /// can extend, kill, or expire them.
  Status OnEvent(const EventPtr& event, std::vector<Match>* out,
                 bool candidate, bool* evaluated,
                 std::vector<LazyMatchSet>* lazy_out = nullptr);

  /// Counter snapshot; safe to call from any thread while the owning
  /// thread keeps matching (per-counter exact, cross-counter approximate).
  MatcherStats stats() const { return stats_.Snapshot(); }
  size_t num_partitions() const;
  /// Live runs across all partitions. O(1): maintained as a delta counter
  /// around each matcher visit (runs only mutate inside OnEvent), so the
  /// shared layer can consult it per event without walking partitions.
  size_t active_runs() const { return query_runs_; }
  /// Live DAG groups across all partitions (0 outside dag mode). Groups are
  /// live state just like runs: a non-candidate event must still visit a
  /// partition whose matcher holds groups (extension / expiry).
  size_t active_groups() const { return query_groups_; }
  /// The scope's shared partial-match DAG store; null unless the
  /// shared_match_dag knob is on and the plan shape is eligible. The
  /// ranking layer binds it for checkpoint restore of pending lazy sets.
  const std::shared_ptr<MatchDagStore>& dag_store() const {
    return memory_.dag;
  }
  size_t MemoryEstimate() const;

  /// Checkpoint serialization of the full matching state: match-id counter,
  /// counter snapshot, and every partition's run set. Partitions are
  /// written sorted by key (Value::operator<) so the byte stream is
  /// identical regardless of hash-map iteration order; per-partition run
  /// order is preserved exactly. Load expects a freshly constructed
  /// instance driven by the same plan.
  void SaveState(EventInterner* in, BinWriter* w) const;
  bool LoadState(EventUninterner* in, BinReader* r);

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  Matcher* MatcherFor(const Event& event);
  /// The event's partition matcher if it exists, without creating one.
  Matcher* ExistingMatcherFor(const Event& event) const;

  CompiledQueryPtr plan_;
  MatcherOptions options_;
  const RunPruner* pruner_;
  AtomicMatcherStats stats_;
  uint64_t next_match_id_ = 0;
  size_t query_runs_ = 0;    // cached sum of per-partition active runs
  size_t query_groups_ = 0;  // cached sum of per-partition active DAG groups
  size_t own_live_runs_ = 0;       // used when the caller shares no counter
  size_t* live_runs_ = nullptr;    // not owned; never null after ctor

  /// Run arena + freelist shared by every partition matcher of this query
  /// scope (all driven by one thread). Declared before the matchers so it
  /// outlives their run sets during destruction.
  RunMemory memory_;

  std::unique_ptr<Matcher> single_;  // used when unpartitioned
  std::unordered_map<Value, std::unique_ptr<Matcher>, ValueHash> by_key_;
};

}  // namespace cepr

#endif  // CEPR_ENGINE_PARTITION_H_
