#ifndef CEPR_ENGINE_PARTITION_H_
#define CEPR_ENGINE_PARTITION_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/matcher.h"

namespace cepr {

/// Routes events of a PARTITION BY query to one Matcher per partition key,
/// so runs never mix events of different keys (e.g. different stock
/// symbols). Without PARTITION BY a single matcher sees everything.
/// Match ids stay globally ordered across partitions (shared counter).
class PartitionedMatcher {
 public:
  PartitionedMatcher(CompiledQueryPtr plan, const MatcherOptions& options,
                     const RunPruner* pruner);

  /// Feeds one event to its partition; matches are appended to `out`.
  void OnEvent(const EventPtr& event, std::vector<Match>* out);

  /// Counter snapshot; safe to call from any thread while the owning
  /// thread keeps matching (per-counter exact, cross-counter approximate).
  MatcherStats stats() const { return stats_.Snapshot(); }
  size_t num_partitions() const;
  size_t active_runs() const;
  size_t MemoryEstimate() const;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };

  Matcher* MatcherFor(const Event& event);

  CompiledQueryPtr plan_;
  MatcherOptions options_;
  const RunPruner* pruner_;
  AtomicMatcherStats stats_;
  uint64_t next_match_id_ = 0;

  std::unique_ptr<Matcher> single_;  // used when unpartitioned
  std::unordered_map<Value, std::unique_ptr<Matcher>, ValueHash> by_key_;
};

}  // namespace cepr

#endif  // CEPR_ENGINE_PARTITION_H_
