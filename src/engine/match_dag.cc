#include "engine/match_dag.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "runtime/serde.h"

namespace cepr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Identity interval of one accumulator slot, matching AggStates::Reset.
Interval IdentityOf(AggStorageKind kind) {
  switch (kind) {
    case AggStorageKind::kMin:
      return Interval::Point(kInf);
    case AggStorageKind::kMax:
      return Interval::Point(-kInf);
    case AggStorageKind::kSum:
      return Interval::Point(0.0);
  }
  return Interval::Whole();
}

}  // namespace

bool MatchDagEligible(const CompiledQuery& query) {
  // The DAG covers exactly the shape that explodes under per-run state:
  // skip-till-any with a trailing unbounded Kleene-plus. Ranked, buffered
  // emission is required because enumeration is deferred to window close.
  if (query.strategy != SelectionStrategy::kSkipTillAny) return false;
  if (query.score == nullptr) return false;
  if (query.emit == EmitPolicy::kOnComplete) return false;
  if (query.pattern.components.empty()) return false;
  const CompiledComponent& last = query.pattern.components.back();
  if (!last.is_kleene || last.is_optional) return false;
  // min_iters == 1: every nonempty suffix path is accepting, so a group
  // head encodes exactly the paths the per-run engine would emit. Other
  // minimums would need per-path filtering the enumerator does not do.
  if (last.min_iters != 1 || last.max_iters >= 0) return false;
  // Exit predicates gate the close transition on aggregate state; the DAG
  // shares suffixes across histories, so per-path gating is out.
  if (!last.exit_preds.empty()) return false;
  // A watcher on the trailing component would kill individual runs; groups
  // have no individual runs to kill.
  if (last.negation_before.has_value()) return false;
  // Every iteration predicate must be event-only (run-independent): one
  // verdict per event decides extension for the whole group. Correlated
  // conjuncts (v[i-1], aggregates, earlier variables) need per-run state.
  for (int cache_id : last.iter_pred_cache_ids) {
    if (cache_id < 0) return false;
  }
  return true;
}

MatchDagStore::MatchDagStore(const CompiledQuery* plan) : plan_(plan) {
  const auto& components = plan->pattern.components;
  CEPR_CHECK(!components.empty());
  trailing_var_ = components.back().var_index;
  const auto& specs = plan->pattern.agg_specs;
  dense_slot_of_.assign(specs.size(), -1);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].var_index != trailing_var_) continue;
    dense_slot_of_[i] = static_cast<int>(dense_specs_.size());
    dense_specs_.push_back(specs[i]);
  }
}

MatchDagStore::~MatchDagStore() {
  if (bottom_ != nullptr) {
    // Drop the store's own reference. Every other owner (groups, sets,
    // enumerator entries) must already have released theirs — same
    // contract as ObjectPool ("all objects Delete()d before the pool
    // dies"), checked here because a leak would be silent otherwise.
    CEPR_CHECK(bottom_->refs == 1);
    Unref(bottom_);
    bottom_ = nullptr;
  }
  CEPR_CHECK(live_ == 0);
}

DagNode* MatchDagStore::NewNode(DagNode::Kind kind, const EventPtr& event,
                                DagNode* prev, DagNode* other) {
  DagNode* n = pool_.New(kind, event, prev, other);
  ++allocated_;
  ++live_;
  return n;
}

DagNode* MatchDagStore::Bottom() {
  if (bottom_ == nullptr) {
    bottom_ = NewNode(DagNode::Kind::kBottom, EventPtr(), nullptr, nullptr);
    bottom_->cmin = 0;
    bottom_->cmax = 0;
    bottom_->paths = 1.0;
    bottom_->aggs.reserve(dense_specs_.size());
    for (const AggSpec& spec : dense_specs_) {
      bottom_->aggs.push_back(IdentityOf(spec.kind));
    }
  }
  Ref(bottom_);
  return bottom_;
}

DagNode* MatchDagStore::NewExtend(const EventPtr& event, DagNode* prev) {
  DagNode* n = NewNode(DagNode::Kind::kExtend, event, prev, nullptr);
  Ref(prev);
  n->cmin = prev->cmin + 1;
  n->cmax = prev->cmax + 1;
  n->paths = prev->paths;
  // Fold the event into every slot interval exactly the way
  // AggStates::Accept folds it into a scalar: min/max/+ are monotone in
  // both interval endpoints, so containment is preserved inductively. A
  // NULL / non-numeric cell is skipped, as Accept skips it.
  n->aggs = prev->aggs;
  for (size_t i = 0; i < dense_specs_.size(); ++i) {
    const AggSpec& spec = dense_specs_[i];
    double x = 0.0;
    if (spec.attr_index == kTimestampAttr) {
      x = static_cast<double>(event->timestamp());
    } else {
      const Value& v = event->value(static_cast<size_t>(spec.attr_index));
      auto num = v.AsNumeric();
      if (!num.ok()) continue;
      x = num.value();
    }
    Interval& iv = n->aggs[i];
    switch (spec.kind) {
      case AggStorageKind::kMin:
        iv = {std::min(iv.lo, x), std::min(iv.hi, x)};
        break;
      case AggStorageKind::kMax:
        iv = {std::max(iv.lo, x), std::max(iv.hi, x)};
        break;
      case AggStorageKind::kSum:
        iv = {iv.lo + x, iv.hi + x};
        break;
    }
  }
  return n;
}

DagNode* MatchDagStore::NewUnion(DagNode* a, DagNode* b) {
  DagNode* n = NewNode(DagNode::Kind::kUnion, EventPtr(), a, b);
  Ref(a);
  Ref(b);
  n->cmin = std::min(a->cmin, b->cmin);
  n->cmax = std::max(a->cmax, b->cmax);
  n->paths = a->paths + b->paths;
  n->aggs.reserve(a->aggs.size());
  for (size_t i = 0; i < a->aggs.size(); ++i) {
    n->aggs.push_back(Interval::Hull(a->aggs[i], b->aggs[i]));
  }
  return n;
}

void MatchDagStore::Unref(DagNode* n) {
  if (n == nullptr) return;
  unref_stack_.push_back(n);
  while (!unref_stack_.empty()) {
    DagNode* cur = unref_stack_.back();
    unref_stack_.pop_back();
    if (--cur->refs > 0) continue;
    if (cur->prev != nullptr) unref_stack_.push_back(cur->prev);
    if (cur->other != nullptr) unref_stack_.push_back(cur->other);
    pool_.Delete(cur);
    --live_;
  }
}

void SaveDagGroupContext(EventInterner* in, BinWriter* w,
                         const DagGroupContext& ctx) {
  w->I64(ctx.first_ts);
  w->U64(ctx.first_sequence);
  w->U32(static_cast<uint32_t>(ctx.closed_bindings.size()));
  for (const auto& var : ctx.closed_bindings) {
    w->U32(static_cast<uint32_t>(var.size()));
    for (const EventPtr& e : var) in->Save(e);
  }
}

DagGroupContextPtr LoadDagGroupContext(const CompiledQuery* plan,
                                       std::shared_ptr<MatchDagStore> store,
                                       EventUninterner* in, BinReader* r) {
  int64_t first_ts = 0;
  uint64_t first_seq = 0;
  uint32_t var_count = 0;
  if (!r->I64(&first_ts) || !r->U64(&first_seq) || !r->U32(&var_count)) {
    return nullptr;
  }
  auto ctx = std::make_shared<DagGroupContext>();
  ctx->plan = plan;
  ctx->store = std::move(store);
  ctx->closed_bindings.resize(var_count);
  for (uint32_t v = 0; v < var_count; ++v) {
    uint32_t n = 0;
    if (!r->U32(&n)) return nullptr;
    ctx->closed_bindings[v].reserve(n);
    for (uint32_t j = 0; j < n; ++j) {
      EventPtr e;
      if (!in->Load(&e)) return nullptr;
      ctx->closed_bindings[v].push_back(std::move(e));
    }
  }
  // Refold the closed prefix in per-variable append order, exactly as
  // StartGroup folded it (bit-identical float state).
  ctx->base_aggs = AggStates(&plan->pattern.agg_specs);
  for (size_t v = 0; v < ctx->closed_bindings.size(); ++v) {
    for (const EventPtr& e : ctx->closed_bindings[v]) {
      ctx->base_aggs.Accept(static_cast<int>(v), *e);
    }
  }
  ctx->first_ts = first_ts;
  ctx->first_sequence = first_seq;
  return ctx;
}

void DagWriter::Save(const DagNode* node) {
  // Collect the not-yet-written nodes reachable from `node`, children
  // before parents, with an iterative post-order walk.
  std::vector<const DagNode*> defs;
  std::vector<std::pair<const DagNode*, bool>> stack;  // (node, expanded)
  stack.emplace_back(node, false);
  while (!stack.empty()) {
    auto [cur, expanded] = stack.back();
    stack.pop_back();
    if (ids_.count(cur) != 0) continue;
    if (expanded) {
      ids_.emplace(cur, static_cast<uint32_t>(ids_.size()));
      defs.push_back(cur);
      continue;
    }
    stack.emplace_back(cur, true);
    if (cur->prev != nullptr) stack.emplace_back(cur->prev, false);
    if (cur->other != nullptr) stack.emplace_back(cur->other, false);
  }
  w_->U32(static_cast<uint32_t>(defs.size()));
  for (const DagNode* def : defs) {
    w_->U8(static_cast<uint8_t>(def->kind));
    switch (def->kind) {
      case DagNode::Kind::kBottom:
        break;
      case DagNode::Kind::kExtend:
        in_->Save(def->event);
        w_->U32(ids_.at(def->prev));
        break;
      case DagNode::Kind::kUnion:
        w_->U32(ids_.at(def->prev));
        w_->U32(ids_.at(def->other));
        break;
    }
  }
  w_->U32(ids_.at(node));
}

DagReader::~DagReader() {
  for (DagNode* n : table_) store_->Unref(n);
}

DagNode* DagReader::Load() {
  uint32_t num_defs = 0;
  if (!r_->U32(&num_defs)) return nullptr;
  for (uint32_t i = 0; i < num_defs; ++i) {
    uint8_t kind = 0;
    if (!r_->U8(&kind)) return nullptr;
    DagNode* n = nullptr;
    switch (static_cast<DagNode::Kind>(kind)) {
      case DagNode::Kind::kBottom:
        n = store_->Bottom();
        break;
      case DagNode::Kind::kExtend: {
        EventPtr event;
        uint32_t prev = 0;
        if (!in_->Load(&event) || !r_->U32(&prev) || prev >= table_.size()) {
          r_->Fail();
          return nullptr;
        }
        n = store_->NewExtend(event, table_[prev]);
        break;
      }
      case DagNode::Kind::kUnion: {
        uint32_t left = 0;
        uint32_t right = 0;
        if (!r_->U32(&left) || !r_->U32(&right) || left >= table_.size() ||
            right >= table_.size()) {
          r_->Fail();
          return nullptr;
        }
        n = store_->NewUnion(table_[left], table_[right]);
        break;
      }
      default:
        r_->Fail();
        return nullptr;
    }
    table_.push_back(n);
  }
  uint32_t root = 0;
  if (!r_->U32(&root) || root >= table_.size()) {
    r_->Fail();
    return nullptr;
  }
  return table_[root];
}

}  // namespace cepr
