#ifndef CEPR_ENGINE_PREDICATE_INDEX_H_
#define CEPR_ENGINE_PREDICATE_INDEX_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "engine/window.h"
#include "event/event.h"
#include "expr/vm.h"
#include "plan/compiler.h"

namespace cepr {

/// Entry-predicate index over the queries of one stream: the shared
/// evaluation layer's per-event dispatch structure (docs/MULTIQUERY.md).
///
/// For each query it inspects the components a fresh run could begin at
/// (component 0 plus everything reachable through skippable prefixes) and
/// the event-only begin conjuncts the compiler classified there (the PR4
/// predicate-cache classes). Each such component contributes one guard:
///
///  * equality  — `attr = literal`        -> hash index on (attr, value);
///  * range     — `attr </<=/>/>= lit`    -> sorted threshold lists with a
///                                           binary-searched prefix/suffix;
///  * residual  — any other event-only conjuncts -> fallback scan list,
///                evaluated per probe under an EventOnlyContext;
///  * none      — a start component with no event-only conjunct makes the
///                query an always-candidate (probes cannot rule it out).
///
/// Probe(event) returns the deduplicated ids of queries for which at least
/// one start-component guard passes. The index is CONSERVATIVE by
/// construction: a false positive only costs a matcher visit that finds
/// nothing, while a false negative would lose matches — so every guard
/// either mirrors the evaluator's comparison semantics exactly (equality
/// uses Value::operator==/Hash, ranges compare numerically via double,
/// NULL never passes, as in expr/eval.cc) or declines to index and falls
/// back to residual evaluation / always-candidate.
///
/// Single-writer: AddQuery/RemoveQuery/Probe run on the engine's driving
/// (ingest) thread. The probe counters are single-writer relaxed atomics so
/// monitor threads may read them while the stream runs.
class PredicateIndex {
 public:
  using QueryId = uint32_t;

  /// Indexes `plan`'s entry predicates under `id` (caller-chosen, unique
  /// among live queries). `plan` must outlive the entry (the engine owns
  /// the CompiledQueryPtr).
  void AddQuery(QueryId id, const CompiledQuery* plan);

  /// Drops `id` and rebuilds the affected structures (hot remove).
  void RemoveQuery(QueryId id);

  /// Drops every query (the engine re-slots and re-adds on membership
  /// changes). Probe counters survive — they describe the stream, not one
  /// index generation.
  void Clear();

  /// Appends the ids of queries whose entry predicates may accept `event`
  /// (including every always-candidate query), deduplicated, in ascending
  /// id order. Counts one probe and the candidates it produced.
  void Probe(const Event& event, std::vector<QueryId>* out) const;

  /// Batched Probe: fills `out` (resized to batch.size()) so that out[row]
  /// is exactly what Probe(batch.event(row), ...) would append — same ids,
  /// same ascending order. Range guards run as tight scans over the batch's
  /// numeric columns into per-row candidate bitmaps; equality and residual
  /// guards iterate column-major so index structures stay cache-hot across
  /// the batch. Counts batch.size() probes plus the batch counters
  /// (`batch_scan_events`, `bitmap_hits`).
  void ProbeBatch(const EventBatch& batch,
                  std::vector<std::vector<QueryId>>* out) const;

  size_t num_queries() const { return queries_.size(); }
  /// Queries a probe can never rule out (no indexable entry conjunct).
  size_t num_always_candidates() const { return always_.size(); }

  uint64_t probes() const { return probes_.Load(); }
  uint64_t candidates() const { return candidates_.Load(); }
  /// Events screened through ProbeBatch (a subset of probes()).
  uint64_t batch_scan_events() const { return batch_scan_events_.Load(); }
  /// Candidate (event, query) pairs ProbeBatch marked in its bitmaps.
  uint64_t bitmap_hits() const { return bitmap_hits_.Load(); }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  /// `attr </<= t` (side == kLess) or `attr >/>= t` (side == kGreater).
  struct RangeEntry {
    double threshold = 0;
    bool inclusive = false;
    QueryId query = 0;
  };
  /// All event-only begin conjuncts of one start component, evaluated
  /// under an EventOnlyContext at probe time. `progs` parallels `preds`:
  /// the compiler's bytecode programs where compilation succeeded (nullptr
  /// entries fall back to the AST evaluator — both are bit-identical).
  struct ResidualEntry {
    QueryId query = 0;
    int var_index = -1;
    std::vector<const Expr*> preds;
    std::vector<const BytecodeProgram*> progs;
  };
  struct RangeLists {
    /// Sorted ascending by threshold.
    std::vector<RangeEntry> less;     // passes iff value < t (or <= when incl.)
    std::vector<RangeEntry> greater;  // passes iff value > t (or >= when incl.)
  };

  void IndexQuery(QueryId id, const CompiledQuery& plan);
  void Rebuild();
  void MarkCandidate(QueryId id, std::vector<QueryId>* out) const;
  bool EvalResidual(const ResidualEntry& r, const Event& event) const;

  /// Live queries (id -> plan), the rebuild source of truth.
  std::map<QueryId, const CompiledQuery*> queries_;

  /// attr_index -> value -> queries gated on `attr = value`.
  std::unordered_map<int, std::unordered_map<Value, std::vector<QueryId>, ValueHash>>
      eq_;
  /// attr_index -> one-sided numeric threshold lists.
  std::unordered_map<int, RangeLists> range_;
  std::vector<ResidualEntry> residual_;
  std::vector<QueryId> always_;

  /// Probe-local dedup stamps, keyed by query id (mutable scratch; the
  /// probe path is single-threaded).
  mutable std::unordered_map<QueryId, uint64_t> stamp_;
  mutable uint64_t epoch_ = 0;

  /// Register file for residual bytecode evaluation (single-threaded like
  /// the rest of the probe path).
  mutable VmState vm_;
  /// ProbeBatch scratch: row-major candidate bitmaps, one word-span per
  /// event of the batch.
  mutable std::vector<uint64_t> bitmap_scratch_;

  mutable RelaxedCounter probes_;
  mutable RelaxedCounter candidates_;
  mutable RelaxedCounter batch_scan_events_;
  mutable RelaxedCounter bitmap_hits_;
};

}  // namespace cepr

#endif  // CEPR_ENGINE_PREDICATE_INDEX_H_
