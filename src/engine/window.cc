#include "engine/window.h"

#include <cmath>

#include "common/logging.h"

namespace cepr {

const EventBatch::NumericColumn& EventBatch::numeric_column(
    int attr_index) const {
  NumericColumn& col = columns_[static_cast<size_t>(attr_index)];
  if (col.built) return col;
  col.x.resize(size_);
  col.ok.resize(size_);
  for (size_t row = 0; row < size_; ++row) {
    const Value& v = events_[row].value(static_cast<size_t>(attr_index));
    double x = 0.0;
    uint8_t ok = 0;
    if (v.type() == ValueType::kInt) {
      x = static_cast<double>(v.AsInt());
      ok = 1;
    } else if (v.type() == ValueType::kFloat) {
      x = v.AsFloat();
      ok = static_cast<uint8_t>(!std::isnan(x));
    }
    col.x[row] = x;
    col.ok[row] = ok;
  }
  col.built = true;
  return col;
}

ReportWindowAssigner ReportWindowAssigner::ForQuery(const CompiledQuery& query) {
  ReportWindowAssigner a;
  switch (query.emit) {
    case EmitPolicy::kOnComplete:
      a.mode_ = Mode::kSingle;
      break;
    case EmitPolicy::kOnWindowClose:
      CEPR_CHECK(query.within_micros > 0)
          << "analyzer must enforce WITHIN for EMIT ON WINDOW CLOSE";
      a.mode_ = Mode::kTime;
      a.span_ = query.within_micros;
      break;
    case EmitPolicy::kEveryNEvents:
      CEPR_CHECK(query.emit_every_n > 0);
      a.mode_ = Mode::kCount;
      a.every_n_ = query.emit_every_n;
      break;
  }
  return a;
}

int64_t ReportWindowAssigner::WindowOf(Timestamp ts, uint64_t event_ordinal) const {
  switch (mode_) {
    case Mode::kSingle:
      return 0;
    case Mode::kTime:
      return ts >= 0 ? ts / span_ : (ts - span_ + 1) / span_;
    case Mode::kCount:
      return static_cast<int64_t>(event_ordinal) / every_n_;
  }
  return 0;
}

std::string ReportWindowAssigner::ToString() const {
  switch (mode_) {
    case Mode::kSingle:
      return "single window";
    case Mode::kTime:
      return "tumbling " + std::to_string(span_) + "us windows";
    case Mode::kCount:
      return "every " + std::to_string(every_n_) + " events";
  }
  return "?";
}

}  // namespace cepr
