#include "engine/window.h"

#include "common/logging.h"

namespace cepr {

ReportWindowAssigner ReportWindowAssigner::ForQuery(const CompiledQuery& query) {
  ReportWindowAssigner a;
  switch (query.emit) {
    case EmitPolicy::kOnComplete:
      a.mode_ = Mode::kSingle;
      break;
    case EmitPolicy::kOnWindowClose:
      CEPR_CHECK(query.within_micros > 0)
          << "analyzer must enforce WITHIN for EMIT ON WINDOW CLOSE";
      a.mode_ = Mode::kTime;
      a.span_ = query.within_micros;
      break;
    case EmitPolicy::kEveryNEvents:
      CEPR_CHECK(query.emit_every_n > 0);
      a.mode_ = Mode::kCount;
      a.every_n_ = query.emit_every_n;
      break;
  }
  return a;
}

int64_t ReportWindowAssigner::WindowOf(Timestamp ts, uint64_t event_ordinal) const {
  switch (mode_) {
    case Mode::kSingle:
      return 0;
    case Mode::kTime:
      return ts >= 0 ? ts / span_ : (ts - span_ + 1) / span_;
    case Mode::kCount:
      return static_cast<int64_t>(event_ordinal) / every_n_;
  }
  return 0;
}

std::string ReportWindowAssigner::ToString() const {
  switch (mode_) {
    case Mode::kSingle:
      return "single window";
    case Mode::kTime:
      return "tumbling " + std::to_string(span_) + "us windows";
    case Mode::kCount:
      return "every " + std::to_string(every_n_) + " events";
  }
  return "?";
}

}  // namespace cepr
