#include "engine/partition.h"

#include <algorithm>

#include "common/binio.h"
#include "runtime/serde.h"

namespace cepr {

PartitionedMatcher::PartitionedMatcher(CompiledQueryPtr plan,
                                       const MatcherOptions& options,
                                       const RunPruner* pruner,
                                       size_t* live_runs)
    : plan_(std::move(plan)),
      options_(options),
      pruner_(pruner),
      live_runs_(live_runs != nullptr ? live_runs : &own_live_runs_),
      memory_(plan_.get(), options_.cow_bindings, options_.use_arena,
              options_.shared_match_dag) {
  if (plan_->partition_attr_index < 0) {
    single_ = std::make_unique<Matcher>(plan_, options_, pruner_, &stats_,
                                        &next_match_id_, live_runs_, &memory_);
  }
}

Matcher* PartitionedMatcher::MatcherFor(const Event& event) {
  if (single_ != nullptr) return single_.get();
  const Value& key =
      event.value(static_cast<size_t>(plan_->partition_attr_index));
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    it = by_key_
             .emplace(key, std::make_unique<Matcher>(plan_, options_, pruner_,
                                                     &stats_, &next_match_id_,
                                                     live_runs_, &memory_))
             .first;
  }
  return it->second.get();
}

Matcher* PartitionedMatcher::ExistingMatcherFor(const Event& event) const {
  if (single_ != nullptr) return single_.get();
  const Value& key =
      event.value(static_cast<size_t>(plan_->partition_attr_index));
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : it->second.get();
}

Status PartitionedMatcher::OnEvent(const EventPtr& event,
                                   std::vector<Match>* out) {
  bool evaluated = false;
  return OnEvent(event, out, /*candidate=*/true, &evaluated);
}

Status PartitionedMatcher::OnEvent(const EventPtr& event,
                                   std::vector<Match>* out,
                                   std::vector<LazyMatchSet>* lazy_out) {
  bool evaluated = false;
  return OnEvent(event, out, /*candidate=*/true, &evaluated, lazy_out);
}

Status PartitionedMatcher::OnEvent(const EventPtr& event,
                                   std::vector<Match>* out, bool candidate,
                                   bool* evaluated,
                                   std::vector<LazyMatchSet>* lazy_out) {
  Matcher* m;
  if (candidate) {
    m = MatcherFor(*event);
  } else {
    // The predicate index proved the event cannot begin a run. If its
    // partition has no matcher yet — or one with no live runs or DAG
    // groups — the visit would be a pure no-op (nothing to extend, kill,
    // or expire), so skip it without materializing the partition.
    m = ExistingMatcherFor(*event);
    if (m == nullptr || (m->active_runs() == 0 && m->active_groups() == 0)) {
      *evaluated = false;
      return Status::OK();
    }
  }
  *evaluated = true;
  const size_t runs_before = m->active_runs();
  const size_t groups_before = m->active_groups();
  const Status s = m->OnEvent(event, out, lazy_out);
  query_runs_ += m->active_runs();  // delta update; modular arithmetic is
  query_runs_ -= runs_before;       // exact even when runs shrank
  query_groups_ += m->active_groups();
  query_groups_ -= groups_before;
  return s;
}

size_t PartitionedMatcher::num_partitions() const {
  return single_ != nullptr ? 1 : by_key_.size();
}

void PartitionedMatcher::SaveState(EventInterner* in, BinWriter* w) const {
  w->U64(next_match_id_);
  stats_.Snapshot().Save(w);
  w->Bool(single_ != nullptr);
  if (single_ != nullptr) {
    single_->SaveState(in, w);
    return;
  }
  std::vector<const std::pair<const Value, std::unique_ptr<Matcher>>*> entries;
  entries.reserve(by_key_.size());
  for (const auto& entry : by_key_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  w->U32(static_cast<uint32_t>(entries.size()));
  for (const auto* entry : entries) {
    SaveValue(w, entry->first);
    entry->second->SaveState(in, w);
  }
}

bool PartitionedMatcher::LoadState(EventUninterner* in, BinReader* r) {
  MatcherStats stats;
  bool unpartitioned = false;
  if (!r->U64(&next_match_id_) || !stats.Load(r) || !r->Bool(&unpartitioned)) {
    return false;
  }
  if (unpartitioned != (single_ != nullptr)) {
    r->Fail();  // snapshot written under a different PARTITION BY shape
    return false;
  }
  stats_.Restore(stats);
  if (single_ != nullptr) {
    if (!single_->LoadState(in, r)) return false;
    query_runs_ = single_->active_runs();
    query_groups_ = single_->active_groups();
    return true;
  }
  uint32_t count = 0;
  if (!r->U32(&count)) return false;
  query_runs_ = 0;
  query_groups_ = 0;
  for (uint32_t i = 0; i < count; ++i) {
    Value key;
    if (!LoadValue(r, &key)) return false;
    auto matcher = std::make_unique<Matcher>(plan_, options_, pruner_, &stats_,
                                             &next_match_id_, live_runs_,
                                             &memory_);
    if (!matcher->LoadState(in, r)) return false;
    query_runs_ += matcher->active_runs();
    query_groups_ += matcher->active_groups();
    by_key_.emplace(std::move(key), std::move(matcher));
  }
  return true;
}

size_t PartitionedMatcher::MemoryEstimate() const {
  if (single_ != nullptr) return single_->MemoryEstimate();
  size_t total = 0;
  for (const auto& [key, matcher] : by_key_) total += matcher->MemoryEstimate();
  return total;
}

}  // namespace cepr
