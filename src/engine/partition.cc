#include "engine/partition.h"

namespace cepr {

PartitionedMatcher::PartitionedMatcher(CompiledQueryPtr plan,
                                       const MatcherOptions& options,
                                       const RunPruner* pruner,
                                       size_t* live_runs)
    : plan_(std::move(plan)),
      options_(options),
      pruner_(pruner),
      live_runs_(live_runs != nullptr ? live_runs : &own_live_runs_),
      memory_(plan_.get(), options_.cow_bindings, options_.use_arena) {
  if (plan_->partition_attr_index < 0) {
    single_ = std::make_unique<Matcher>(plan_, options_, pruner_, &stats_,
                                        &next_match_id_, live_runs_, &memory_);
  }
}

Matcher* PartitionedMatcher::MatcherFor(const Event& event) {
  if (single_ != nullptr) return single_.get();
  const Value& key =
      event.value(static_cast<size_t>(plan_->partition_attr_index));
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    it = by_key_
             .emplace(key, std::make_unique<Matcher>(plan_, options_, pruner_,
                                                     &stats_, &next_match_id_,
                                                     live_runs_, &memory_))
             .first;
  }
  return it->second.get();
}

Status PartitionedMatcher::OnEvent(const EventPtr& event,
                                   std::vector<Match>* out) {
  return MatcherFor(*event)->OnEvent(event, out);
}

size_t PartitionedMatcher::num_partitions() const {
  return single_ != nullptr ? 1 : by_key_.size();
}

size_t PartitionedMatcher::active_runs() const {
  if (single_ != nullptr) return single_->active_runs();
  size_t total = 0;
  for (const auto& [key, matcher] : by_key_) total += matcher->active_runs();
  return total;
}

size_t PartitionedMatcher::MemoryEstimate() const {
  if (single_ != nullptr) return single_->MemoryEstimate();
  size_t total = 0;
  for (const auto& [key, matcher] : by_key_) total += matcher->MemoryEstimate();
  return total;
}

}  // namespace cepr
