#ifndef CEPR_ENGINE_BINDING_H_
#define CEPR_ENGINE_BINDING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "event/event.h"

namespace cepr {

/// Events are shared immutably between the ingest path, active runs and
/// emitted matches; a run holding an EventPtr keeps that event alive, so no
/// separate window buffer eviction is needed.
using EventPtr = std::shared_ptr<const Event>;

/// One cell of a persistent (immutable-once-written) binding list: the
/// event bound by one append, a pointer to the previous cell, and a count
/// of direct owners (list heads plus successor cells). Appends never mutate
/// existing cells, so any number of runs may share a common prefix — the
/// copy-on-write structure that makes run forking O(components).
struct BindingNode {
  BindingNode(const EventPtr& e, BindingNode* p) : event(e), prev(p) {}

  EventPtr event;
  BindingNode* prev;
  /// Non-atomic by design: every node lives and dies inside one matcher
  /// tree, which is driven by a single thread (serial engine) or pinned to
  /// one shard thread (sharded engine). Emitted matches materialize plain
  /// EventPtr vectors, so nodes never cross threads.
  uint32_t refs = 1;
};

/// Allocator for binding nodes, shared by every partition matcher of one
/// query (one per shard under sharded execution — same thread as the
/// matchers it serves).
using BindingArena = ObjectPool<BindingNode>;

/// The events bound to one pattern variable, as a persistent cons list:
/// O(1) append, O(1) shared copy (bump the head's refcount), O(1)
/// first/last/count access, O(n) materialization at emission time only.
class BindingList {
 public:
  BindingList() = default;
  ~BindingList() { Clear(); }

  BindingList(BindingList&& other) noexcept
      : arena_(other.arena_),
        head_(other.head_),
        first_(other.first_),
        count_(other.count_) {
    other.head_ = nullptr;
    other.first_ = nullptr;
    other.count_ = 0;
  }
  BindingList& operator=(BindingList&& other) noexcept {
    if (this != &other) {
      Clear();
      arena_ = other.arena_;
      head_ = other.head_;
      first_ = other.first_;
      count_ = other.count_;
      other.head_ = nullptr;
      other.first_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }
  BindingList(const BindingList&) = delete;
  BindingList& operator=(const BindingList&) = delete;

  /// Must be called once before any append; the arena outlives the list.
  void InitArena(BindingArena* arena) { arena_ = arena; }

  void Append(const EventPtr& event) {
    // The new node takes over the list's reference on the old head.
    head_ = arena_->New(event, head_);
    if (first_ == nullptr) first_ = head_;
    ++count_;
  }

  /// O(1) copy-on-write fork: shares `src`'s whole chain. The list must be
  /// empty (freshly cleared).
  void CopySharedFrom(const BindingList& src) {
    head_ = src.head_;
    first_ = src.first_;
    count_ = src.count_;
    if (head_ != nullptr) ++head_->refs;
  }

  /// O(n) legacy-style fork: rebuilds the chain node by node. Kept as the
  /// deep-copy ablation mode — observationally identical to CopySharedFrom,
  /// with the allocation profile of the old owned-vector representation.
  void CopyDeepFrom(const BindingList& src) {
    std::vector<const BindingNode*> nodes(src.count_);
    size_t i = src.count_;
    for (const BindingNode* n = src.head_; n != nullptr; n = n->prev) {
      nodes[--i] = n;
    }
    for (const BindingNode* n : nodes) Append(n->event);
  }

  /// Drops this list's reference on the chain, releasing every node whose
  /// refcount hits zero (stops at the first cell still shared by a fork).
  void Clear() {
    BindingNode* n = head_;
    while (n != nullptr && --n->refs == 0) {
      BindingNode* prev = n->prev;
      arena_->Delete(n);
      n = prev;
    }
    head_ = nullptr;
    first_ = nullptr;
    count_ = 0;
  }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  const Event* front_event() const {
    return first_ != nullptr ? first_->event.get() : nullptr;
  }
  const Event* back_event() const {
    return head_ != nullptr ? head_->event.get() : nullptr;
  }

  /// Appends the bound events in binding order to `out` (emission-time
  /// materialization into a plain, thread-crossing-safe vector).
  void AppendTo(std::vector<EventPtr>* out) const {
    size_t i = out->size() + count_;
    out->resize(i);
    for (const BindingNode* n = head_; n != nullptr; n = n->prev) {
      (*out)[--i] = n->event;
    }
  }

 private:
  BindingArena* arena_ = nullptr;  // not owned; outlives the list
  BindingNode* head_ = nullptr;    // most recently appended
  BindingNode* first_ = nullptr;   // earliest cell (stable: chain is immutable)
  size_t count_ = 0;
};

}  // namespace cepr

#endif  // CEPR_ENGINE_BINDING_H_
