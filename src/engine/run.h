#ifndef CEPR_ENGINE_RUN_H_
#define CEPR_ENGINE_RUN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/eval.h"
#include "expr/interval.h"
#include "plan/compiler.h"

namespace cepr {

/// Events are shared immutably between the ingest path, active runs and
/// emitted matches; a run holding an EventPtr keeps that event alive, so no
/// separate window buffer eviction is needed.
using EventPtr = std::shared_ptr<const Event>;

/// A completed pattern instance, ready for ranking and emission.
struct Match {
  /// Detection sequence number (monotonically increasing within one
  /// matcher scope — per query single-threaded, per shard under sharded
  /// execution). Secondary tie-break for equal scores.
  uint64_t id = 0;
  /// Stream sequence number of the detecting (last bound) event. Primary
  /// tie-break for equal scores: it is a global stream property, so the
  /// ranked order is identical whether partitions run on one thread or
  /// are sharded across workers. Matches detected by the same event live
  /// in one matcher, where `id` finishes the job.
  uint64_t last_sequence = 0;
  /// Timestamps of the first and last bound event.
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;
  /// Bound events per layout variable (empty for negated variables; one
  /// entry for single variables; one per iteration for Kleene variables).
  std::vector<std::vector<EventPtr>> bindings;
  /// SELECT outputs, evaluated at detection time.
  std::vector<Value> row;
  /// RANK BY value; -infinity for unranked queries.
  double score = 0.0;

  std::string ToString() const;
};

/// One active partial match: the engine's unit of state. A Run tracks which
/// component is being filled, the events bound so far, and the incremental
/// aggregate accumulators — and exposes itself as the EvalContext for edge
/// predicates and as the BoundEnv for the ranking pruner.
class Run : public EvalContext, public BoundEnv {
 public:
  Run(const CompiledQuery* plan, uint64_t id);

  /// Deep copy used for forking under SKIP_TILL_ANY_MATCH (binding vectors
  /// are copies; the events themselves are shared).
  std::unique_ptr<Run> Clone(uint64_t new_id) const;

  uint64_t id() const { return id_; }

  /// Index of the next component to begin (== component count when every
  /// component has begun).
  int next_component() const { return next_component_; }

  /// Whether the most recently begun component is Kleene (still open for
  /// extensions).
  bool kleene_open() const;

  /// Index of the open Kleene component, or -1.
  int open_component() const;

  /// Timestamp / stream sequence number of the first bound event.
  Timestamp first_ts() const { return first_ts_; }
  uint64_t first_sequence() const { return first_sequence_; }

  /// True iff every component has begun (for single-ended patterns this is
  /// the accepting condition; trailing-Kleene patterns accept on every
  /// extension).
  bool complete() const {
    return next_component_ >= static_cast<int>(plan_->pattern.components.size());
  }

  /// Binds `event` as the first/only event of component `comp` and
  /// advances the state past it. `comp` may be ahead of next_component()
  /// when intervening skippable components (optional / zero-minimum
  /// Kleene) are being skipped; their bindings stay empty.
  void BeginComponent(int comp, EventPtr event);

  /// Appends one more iteration to the open Kleene component.
  void ExtendKleene(EventPtr event);

  /// Installs / clears a candidate event for predicate evaluation: while
  /// set, SingleEvent(var) and KleeneCurrent(var) return it for `var`.
  void SetCandidate(int var_index, const Event* event) {
    candidate_var_ = var_index;
    candidate_ = event;
  }
  void ClearCandidate() {
    candidate_var_ = -1;
    candidate_ = nullptr;
  }

  const std::vector<std::vector<EventPtr>>& bindings() const { return bindings_; }

  /// Rough bytes held by this run (for the memory experiment).
  size_t MemoryEstimate() const;

  // -- EvalContext -----------------------------------------------------------
  const Event* SingleEvent(int var_index) const override;
  const Event* KleeneFirst(int var_index) const override;
  const Event* KleeneLast(int var_index) const override;
  const Event* KleeneCurrent(int var_index) const override;
  int64_t KleeneCount(int var_index) const override;
  double AggValue(int agg_slot) const override;

  // -- BoundEnv (for the ranking pruner) ------------------------------------
  Interval AttrRange(int attr_index) const override;
  bool IsClosed(int var_index) const override;
  const EvalContext& Context() const override { return *this; }

 private:
  const CompiledQuery* plan_;  // not owned; outlives all runs
  uint64_t id_;
  int next_component_ = 0;
  std::vector<std::vector<EventPtr>> bindings_;  // indexed by layout var
  AggStates aggs_;
  Timestamp first_ts_ = 0;
  uint64_t first_sequence_ = 0;

  int candidate_var_ = -1;
  const Event* candidate_ = nullptr;  // not owned; valid during one test
};

}  // namespace cepr

#endif  // CEPR_ENGINE_RUN_H_
