#ifndef CEPR_ENGINE_RUN_H_
#define CEPR_ENGINE_RUN_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/binding.h"
#include "engine/match_dag.h"
#include "expr/eval.h"
#include "expr/interval.h"
#include "plan/compiler.h"

namespace cepr {

class BinWriter;
class BinReader;
class EventInterner;
class EventUninterner;

/// A completed pattern instance, ready for ranking and emission.
struct Match {
  /// Detection sequence number (monotonically increasing within one
  /// matcher scope — per query single-threaded, per shard under sharded
  /// execution). Secondary tie-break for equal scores.
  uint64_t id = 0;
  /// Stream sequence number of the detecting (last bound) event. Primary
  /// tie-break for equal scores: it is a global stream property, so the
  /// ranked order is identical whether partitions run on one thread or
  /// are sharded across workers. Matches detected by the same event live
  /// in one matcher, where `id` finishes the job.
  uint64_t last_sequence = 0;
  /// Timestamps of the first and last bound event.
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;
  /// Bound events per layout variable (empty for negated variables; one
  /// entry for single variables; one per iteration for Kleene variables).
  /// Materialized from the run's persistent binding lists at emission time,
  /// so matches own plain vectors and may safely cross threads (sharded
  /// merge) and outlive the matcher's arena.
  std::vector<std::vector<EventPtr>> bindings;
  /// SELECT outputs, evaluated at detection time.
  std::vector<Value> row;
  /// RANK BY value; -infinity for unranked queries.
  double score = 0.0;

  std::string ToString() const;
};

/// One active partial match: the engine's unit of state. A Run tracks which
/// component is being filled, the events bound so far, and the incremental
/// aggregate accumulators — and exposes itself as the EvalContext for edge
/// predicates and as the BoundEnv for the ranking pruner.
///
/// Bindings are persistent copy-on-write cons lists (engine/binding.h):
/// forking a run copies O(components) list heads and shares every already-
/// bound event with the parent, instead of deep-copying the whole binding
/// matrix. The legacy deep-copy behavior survives as an ablation mode
/// (cow_bindings = false) with identical observable semantics.
class Run : public EvalContext, public BoundEnv {
 public:
  /// Engine path: nodes come from `arena` (owned by the enclosing
  /// PartitionedMatcher / Matcher and outliving every run).
  Run(const CompiledQuery* plan, uint64_t id, BindingArena* arena,
      bool cow_bindings = true);

  /// Test convenience: the run owns a private arena (shared with any runs
  /// Clone() derives from it, so destruction order does not matter).
  Run(const CompiledQuery* plan, uint64_t id);

  /// Fork helper: copies `src`'s state into this (freshly acquired or
  /// Reset) run — O(components) pointer copies under copy-on-write,
  /// node-by-node rebuild in the deep-copy ablation mode.
  void CopyStateFrom(const Run& src, uint64_t new_id);

  /// Returns this run to its initial state, keeping allocated capacity
  /// (vector storage, aggregate slots) — the RunPool recycling hook.
  void Reset(uint64_t new_id);

  /// Copy used for forking under SKIP_TILL_ANY_MATCH (events are shared;
  /// list structure is shared or rebuilt per the copy-on-write mode).
  std::unique_ptr<Run> Clone(uint64_t new_id) const;

  uint64_t id() const { return id_; }

  /// Index of the next component to begin (== component count when every
  /// component has begun).
  int next_component() const { return next_component_; }

  /// Whether the most recently begun component is Kleene (still open for
  /// extensions).
  bool kleene_open() const;

  /// Index of the open Kleene component, or -1.
  int open_component() const;

  /// Timestamp / stream sequence number of the first bound event.
  Timestamp first_ts() const { return first_ts_; }
  uint64_t first_sequence() const { return first_sequence_; }

  /// True iff every component has begun (for single-ended patterns this is
  /// the accepting condition; trailing-Kleene patterns accept on every
  /// extension).
  bool complete() const {
    return next_component_ >= static_cast<int>(plan_->pattern.components.size());
  }

  /// Binds `event` as the first/only event of component `comp` and
  /// advances the state past it. `comp` may be ahead of next_component()
  /// when intervening skippable components (optional / zero-minimum
  /// Kleene) are being skipped; their bindings stay empty.
  void BeginComponent(int comp, const EventPtr& event);

  /// Appends one more iteration to the open Kleene component.
  void ExtendKleene(const EventPtr& event);

  /// Installs / clears a candidate event for predicate evaluation: while
  /// set, SingleEvent(var) and KleeneCurrent(var) return it for `var`.
  void SetCandidate(int var_index, const Event* event) {
    candidate_var_ = var_index;
    candidate_ = event;
  }
  void ClearCandidate() {
    candidate_var_ = -1;
    candidate_ = nullptr;
  }

  const BindingList& binding(int var_index) const {
    return bindings_[static_cast<size_t>(var_index)];
  }

  /// Bound events per layout variable as plain vectors (Match::bindings).
  std::vector<std::vector<EventPtr>> MaterializeBindings() const;

  /// The bound event with the highest stream sequence (the detecting
  /// event), or nullptr for a fresh run.
  const Event* LastBoundEvent() const;

  /// Rough bytes held by this run (for the memory experiment). Shared
  /// binding cells are attributed to every run referencing them.
  size_t MemoryEstimate() const;

  /// Checkpoint serialization. Save materializes each variable's binding
  /// list in append order (events interned, so COW sharing costs one body);
  /// Load — on a freshly Reset run — replays Append+Accept per variable,
  /// refolding the aggregate accumulators in the exact order the original
  /// BeginComponent/ExtendKleene calls folded them (bit-identical float
  /// sums). Run id is owned by the enclosing matcher's serialization.
  void SaveState(EventInterner* in, BinWriter* w) const;
  bool LoadState(EventUninterner* in, BinReader* r);

  // -- EvalContext -----------------------------------------------------------
  const Event* SingleEvent(int var_index) const override;
  const Event* KleeneFirst(int var_index) const override;
  const Event* KleeneLast(int var_index) const override;
  const Event* KleeneCurrent(int var_index) const override;
  int64_t KleeneCount(int var_index) const override;
  double AggValue(int agg_slot) const override;

  // -- BoundEnv (for the ranking pruner) ------------------------------------
  Interval AttrRange(int attr_index) const override;
  bool IsClosed(int var_index) const override;
  const EvalContext& Context() const override { return *this; }

 private:
  const CompiledQuery* plan_;  // not owned; outlives all runs
  /// Set only by the test-convenience constructor; shared with clones so
  /// the arena survives as long as any run referencing its nodes.
  std::shared_ptr<BindingArena> own_arena_;
  BindingArena* arena_;  // not owned (or == own_arena_.get())
  bool cow_ = true;
  uint64_t id_;
  int next_component_ = 0;
  std::vector<BindingList> bindings_;  // indexed by layout var
  AggStates aggs_;
  Timestamp first_ts_ = 0;
  uint64_t first_sequence_ = 0;

  int candidate_var_ = -1;
  const Event* candidate_ = nullptr;  // not owned; valid during one test
};

class RunPool;

/// unique_ptr deleter that recycles runs into their pool (or plain-deletes
/// when no pool is attached).
struct RunRecycler {
  RunPool* pool = nullptr;
  void operator()(Run* run) const;
};

/// Owning handle to an active run; destruction returns the run (and, right
/// away, its binding nodes) to the per-matcher pool.
using RunHandle = std::unique_ptr<Run, RunRecycler>;

/// Freelist of Run objects for one query's matchers: recycled runs keep
/// their vector capacities and aggregate slots, so the fork/kill cycle of
/// SKIP_TILL_ANY_MATCH stops allocating per run. With pooled = false the
/// pool degrades to plain new/delete (the no-arena ablation mode).
class RunPool {
 public:
  RunPool(const CompiledQuery* plan, BindingArena* arena, bool cow_bindings,
          bool pooled)
      : plan_(plan), arena_(arena), cow_(cow_bindings), pooled_(pooled) {}
  ~RunPool();

  RunPool(const RunPool&) = delete;
  RunPool& operator=(const RunPool&) = delete;

  /// A reset run with the given id (recycled when available).
  RunHandle Acquire(uint64_t id);

  /// RunRecycler entry point: clears the run's bindings (nodes go back to
  /// the arena immediately) and shelves the object for reuse.
  void Recycle(Run* run);

 private:
  const CompiledQuery* plan_;  // not owned
  BindingArena* arena_;        // not owned; outlives the pool's runs
  bool cow_;
  bool pooled_;
  std::vector<Run*> free_;  // owned
};

/// The run-state memory of one query scope (one per serial query; one per
/// (shard, query) cell under sharded execution): the binding-node arena and
/// the run freelist, shared by every partition matcher of that scope.
/// Declared before the matchers it serves so it outlives their run sets.
struct RunMemory {
  RunMemory(const CompiledQuery* plan, bool cow_bindings, bool use_arena,
            bool shared_match_dag = false)
      : arena(use_arena), runs(plan, &arena, cow_bindings, use_arena) {
    if (shared_match_dag && MatchDagEligible(*plan)) {
      dag = std::make_shared<MatchDagStore>(plan);
    }
  }

  BindingArena arena;
  RunPool runs;
  /// Shared partial-match DAG store (engine/match_dag.h): non-null exactly
  /// when the shared_match_dag knob is on AND the plan's shape is DAG-
  /// eligible. shared_ptr because in-flight LazyMatchSets keep the store
  /// (and thereby their nodes) alive past this scope's matchers.
  std::shared_ptr<MatchDagStore> dag;
};

}  // namespace cepr

#endif  // CEPR_ENGINE_RUN_H_
