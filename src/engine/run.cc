#include "engine/run.h"

#include "common/logging.h"
#include "runtime/serde.h"

namespace cepr {

std::string Match::ToString() const {
  std::string out = "match#" + std::to_string(id) + " span=[" +
                    std::to_string(first_ts) + ", " + std::to_string(last_ts) +
                    "] score=" + std::to_string(score) + " row={";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += "}";
  return out;
}

Run::Run(const CompiledQuery* plan, uint64_t id, BindingArena* arena,
         bool cow_bindings)
    : plan_(plan),
      arena_(arena),
      cow_(cow_bindings),
      id_(id),
      bindings_(plan->layout().num_vars()),
      aggs_(&plan->pattern.agg_specs) {
  for (BindingList& list : bindings_) list.InitArena(arena_);
}

Run::Run(const CompiledQuery* plan, uint64_t id)
    : Run(plan, id, nullptr, /*cow_bindings=*/true) {
  own_arena_ = std::make_shared<BindingArena>();
  arena_ = own_arena_.get();
  for (BindingList& list : bindings_) list.InitArena(arena_);
}

void Run::CopyStateFrom(const Run& src, uint64_t new_id) {
  id_ = new_id;
  next_component_ = src.next_component_;
  aggs_ = src.aggs_;
  first_ts_ = src.first_ts_;
  first_sequence_ = src.first_sequence_;
  candidate_var_ = -1;
  candidate_ = nullptr;
  for (size_t v = 0; v < bindings_.size(); ++v) {
    bindings_[v].Clear();
    if (cow_) {
      bindings_[v].CopySharedFrom(src.bindings_[v]);
    } else {
      bindings_[v].CopyDeepFrom(src.bindings_[v]);
    }
  }
}

void Run::Reset(uint64_t new_id) {
  id_ = new_id;
  next_component_ = 0;
  for (BindingList& list : bindings_) list.Clear();
  aggs_.Reset();
  first_ts_ = 0;
  first_sequence_ = 0;
  candidate_var_ = -1;
  candidate_ = nullptr;
}

std::unique_ptr<Run> Run::Clone(uint64_t new_id) const {
  auto copy = std::make_unique<Run>(plan_, new_id, arena_, cow_);
  copy->own_arena_ = own_arena_;  // keep a test-owned arena alive
  copy->CopyStateFrom(*this, new_id);
  return copy;
}

bool Run::kleene_open() const { return open_component() >= 0; }

int Run::open_component() const {
  const int last = next_component_ - 1;
  if (last < 0) return -1;
  return plan_->pattern.components[static_cast<size_t>(last)].is_kleene ? last : -1;
}

void Run::BeginComponent(int comp, const EventPtr& event) {
  CEPR_DCHECK(comp >= next_component_);  // may skip over skippable comps
  const CompiledComponent& cc = plan_->pattern.components[static_cast<size_t>(comp)];
  BindingList& binding = bindings_[static_cast<size_t>(cc.var_index)];
  CEPR_DCHECK(binding.empty());
  // The begin that takes the run out of its initial state binds the run's
  // first event (even if it skipped leading skippable components).
  if (next_component_ == 0) {
    first_ts_ = event->timestamp();
    first_sequence_ = event->sequence();
  }
  aggs_.Accept(cc.var_index, *event);
  binding.Append(event);
  next_component_ = comp + 1;
}

void Run::ExtendKleene(const EventPtr& event) {
  const int open = open_component();
  CEPR_DCHECK(open >= 0);
  const CompiledComponent& cc = plan_->pattern.components[static_cast<size_t>(open)];
  aggs_.Accept(cc.var_index, *event);
  bindings_[static_cast<size_t>(cc.var_index)].Append(event);
}

std::vector<std::vector<EventPtr>> Run::MaterializeBindings() const {
  std::vector<std::vector<EventPtr>> out(bindings_.size());
  for (size_t v = 0; v < bindings_.size(); ++v) {
    bindings_[v].AppendTo(&out[v]);
  }
  return out;
}

const Event* Run::LastBoundEvent() const {
  // Within one variable the last-appended event has the highest sequence,
  // so the per-list tails cover the whole binding set.
  const Event* last = nullptr;
  for (const BindingList& list : bindings_) {
    const Event* tail = list.back_event();
    if (tail != nullptr && (last == nullptr || tail->sequence() > last->sequence())) {
      last = tail;
    }
  }
  return last;
}

size_t Run::MemoryEstimate() const {
  size_t bytes = sizeof(Run) + aggs_.size() * sizeof(double);
  for (const BindingList& list : bindings_) {
    bytes += list.size() * sizeof(BindingNode);
  }
  return bytes;
}

void Run::SaveState(EventInterner* in, BinWriter* w) const {
  w->U32(static_cast<uint32_t>(next_component_));
  w->I64(first_ts_);
  w->U64(first_sequence_);
  w->U32(static_cast<uint32_t>(bindings_.size()));
  for (const BindingList& list : bindings_) {
    std::vector<EventPtr> events;
    list.AppendTo(&events);
    w->U32(static_cast<uint32_t>(events.size()));
    for (const EventPtr& e : events) in->Save(e);
  }
}

bool Run::LoadState(EventUninterner* in, BinReader* r) {
  uint32_t next_component = 0;
  uint32_t num_vars = 0;
  if (!r->U32(&next_component) || !r->I64(&first_ts_) ||
      !r->U64(&first_sequence_) || !r->U32(&num_vars)) {
    return false;
  }
  if (num_vars != bindings_.size() ||
      next_component > plan_->pattern.components.size()) {
    r->Fail();  // snapshot written by a structurally different plan
    return false;
  }
  next_component_ = static_cast<int>(next_component);
  for (size_t v = 0; v < bindings_.size(); ++v) {
    uint32_t n = 0;
    if (!r->U32(&n)) return false;
    for (uint32_t i = 0; i < n; ++i) {
      EventPtr e;
      if (!in->Load(&e)) return false;
      // Mirror BeginComponent/ExtendKleene: fold, then bind. Per-slot fold
      // order is per-variable append order, which this loop reproduces.
      aggs_.Accept(static_cast<int>(v), *e);
      bindings_[v].Append(e);
    }
  }
  return true;
}

const Event* Run::SingleEvent(int var_index) const {
  if (var_index == candidate_var_) return candidate_;
  return bindings_[static_cast<size_t>(var_index)].front_event();
}

const Event* Run::KleeneFirst(int var_index) const {
  return bindings_[static_cast<size_t>(var_index)].front_event();
}

const Event* Run::KleeneLast(int var_index) const {
  return bindings_[static_cast<size_t>(var_index)].back_event();
}

const Event* Run::KleeneCurrent(int var_index) const {
  return var_index == candidate_var_ ? candidate_ : nullptr;
}

int64_t Run::KleeneCount(int var_index) const {
  return static_cast<int64_t>(bindings_[static_cast<size_t>(var_index)].size());
}

double Run::AggValue(int agg_slot) const {
  return aggs_.value(static_cast<size_t>(agg_slot));
}

Interval Run::AttrRange(int attr_index) const {
  if (attr_index < 0 || attr_index >= static_cast<int>(plan_->attr_ranges.size())) {
    return Interval::Whole();
  }
  return plan_->attr_ranges[static_cast<size_t>(attr_index)];
}

bool Run::IsClosed(int var_index) const {
  const PatternVar& var = plan_->layout().var(var_index);
  if (var.is_negated) return true;  // never referenced by scores
  const int pos = plan_->pattern.position_of_var[static_cast<size_t>(var_index)];
  const int last_begun = next_component_ - 1;
  if (pos < last_begun) return true;
  if (pos == last_begun) {
    // A single component closes the moment it binds; an open Kleene
    // component can still accept events.
    return !plan_->pattern.components[static_cast<size_t>(pos)].is_kleene;
  }
  return false;
}

void RunRecycler::operator()(Run* run) const {
  if (pool != nullptr) {
    pool->Recycle(run);
  } else {
    delete run;
  }
}

RunPool::~RunPool() {
  for (Run* run : free_) delete run;
}

RunHandle RunPool::Acquire(uint64_t id) {
  if (!free_.empty()) {
    Run* run = free_.back();
    free_.pop_back();
    run->Reset(id);
    return RunHandle(run, RunRecycler{this});
  }
  return RunHandle(new Run(plan_, id, arena_, cow_), RunRecycler{this});
}

void RunPool::Recycle(Run* run) {
  if (!pooled_) {
    delete run;
    return;
  }
  // Release binding nodes back to the arena now; the Run object itself is
  // shelved with its capacities intact.
  run->Reset(0);
  free_.push_back(run);
}

}  // namespace cepr
