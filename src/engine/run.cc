#include "engine/run.h"

#include "common/logging.h"

namespace cepr {

std::string Match::ToString() const {
  std::string out = "match#" + std::to_string(id) + " span=[" +
                    std::to_string(first_ts) + ", " + std::to_string(last_ts) +
                    "] score=" + std::to_string(score) + " row={";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += "}";
  return out;
}

Run::Run(const CompiledQuery* plan, uint64_t id)
    : plan_(plan),
      id_(id),
      bindings_(plan->layout().num_vars()),
      aggs_(&plan->pattern.agg_specs) {}

std::unique_ptr<Run> Run::Clone(uint64_t new_id) const {
  auto copy = std::make_unique<Run>(plan_, new_id);
  copy->next_component_ = next_component_;
  copy->bindings_ = bindings_;
  copy->aggs_ = aggs_;
  copy->first_ts_ = first_ts_;
  copy->first_sequence_ = first_sequence_;
  return copy;
}

bool Run::kleene_open() const { return open_component() >= 0; }

int Run::open_component() const {
  const int last = next_component_ - 1;
  if (last < 0) return -1;
  return plan_->pattern.components[static_cast<size_t>(last)].is_kleene ? last : -1;
}

void Run::BeginComponent(int comp, EventPtr event) {
  CEPR_DCHECK(comp >= next_component_);  // may skip over skippable comps
  const CompiledComponent& cc = plan_->pattern.components[static_cast<size_t>(comp)];
  auto& binding = bindings_[static_cast<size_t>(cc.var_index)];
  CEPR_DCHECK(binding.empty());
  // The begin that takes the run out of its initial state binds the run's
  // first event (even if it skipped leading skippable components).
  if (next_component_ == 0) {
    first_ts_ = event->timestamp();
    first_sequence_ = event->sequence();
  }
  aggs_.Accept(cc.var_index, *event);
  binding.push_back(std::move(event));
  next_component_ = comp + 1;
}

void Run::ExtendKleene(EventPtr event) {
  const int open = open_component();
  CEPR_DCHECK(open >= 0);
  const CompiledComponent& cc = plan_->pattern.components[static_cast<size_t>(open)];
  aggs_.Accept(cc.var_index, *event);
  bindings_[static_cast<size_t>(cc.var_index)].push_back(std::move(event));
}

size_t Run::MemoryEstimate() const {
  size_t bytes = sizeof(Run) + aggs_.size() * sizeof(double);
  for (const auto& b : bindings_) {
    bytes += b.capacity() * sizeof(EventPtr);
  }
  return bytes;
}

const Event* Run::SingleEvent(int var_index) const {
  if (var_index == candidate_var_) return candidate_;
  const auto& b = bindings_[static_cast<size_t>(var_index)];
  return b.empty() ? nullptr : b.front().get();
}

const Event* Run::KleeneFirst(int var_index) const {
  const auto& b = bindings_[static_cast<size_t>(var_index)];
  return b.empty() ? nullptr : b.front().get();
}

const Event* Run::KleeneLast(int var_index) const {
  const auto& b = bindings_[static_cast<size_t>(var_index)];
  return b.empty() ? nullptr : b.back().get();
}

const Event* Run::KleeneCurrent(int var_index) const {
  return var_index == candidate_var_ ? candidate_ : nullptr;
}

int64_t Run::KleeneCount(int var_index) const {
  return static_cast<int64_t>(bindings_[static_cast<size_t>(var_index)].size());
}

double Run::AggValue(int agg_slot) const {
  return aggs_.value(static_cast<size_t>(agg_slot));
}

Interval Run::AttrRange(int attr_index) const {
  if (attr_index < 0 || attr_index >= static_cast<int>(plan_->attr_ranges.size())) {
    return Interval::Whole();
  }
  return plan_->attr_ranges[static_cast<size_t>(attr_index)];
}

bool Run::IsClosed(int var_index) const {
  const PatternVar& var = plan_->layout().var(var_index);
  if (var.is_negated) return true;  // never referenced by scores
  const int pos = plan_->pattern.position_of_var[static_cast<size_t>(var_index)];
  const int last_begun = next_component_ - 1;
  if (pos < last_begun) return true;
  if (pos == last_begun) {
    // A single component closes the moment it binds; an open Kleene
    // component can still accept events.
    return !plan_->pattern.components[static_cast<size_t>(pos)].is_kleene;
  }
  return false;
}

}  // namespace cepr
