#include "engine/matcher.h"

#include <algorithm>
#include <limits>

#include "common/binio.h"
#include "common/logging.h"
#include "common/strings.h"
#include "runtime/serde.h"

namespace cepr {

std::string MatcherStats::ToString() const {
  std::string out;
  out += "events=" + std::to_string(events);
  out += " runs_created=" + std::to_string(runs_created);
  out += " forked=" + std::to_string(runs_forked);
  out += " completed=" + std::to_string(runs_completed);
  out += " expired=" + std::to_string(runs_expired);
  out += " killed_strict=" + std::to_string(runs_killed_strict);
  out += " killed_negation=" + std::to_string(runs_killed_negation);
  out += " pruned_score=" + std::to_string(runs_pruned_score);
  out += " dropped_capacity=" + std::to_string(runs_dropped_capacity);
  out += " events_quarantined=" + std::to_string(events_quarantined);
  out += " runs_poisoned=" + std::to_string(runs_poisoned);
  out += " matches=" + std::to_string(matches);
  out += " cloned=" + std::to_string(runs_cloned);
  out += " binding_nodes=" + std::to_string(binding_nodes_allocated);
  out += " predcache_hits=" + std::to_string(predcache_hits);
  out += " predcache_misses=" + std::to_string(predcache_misses);
  out += " dag_nodes=" + std::to_string(dag_nodes_allocated);
  out += " dag_shared=" + std::to_string(dag_nodes_shared);
  out += " peak_runs=" + std::to_string(peak_active_runs);
  out += " peak_dag_nodes=" + std::to_string(peak_dag_nodes);
  return out;
}

void MatcherStats::Accumulate(const MatcherStats& other) {
  events += other.events;
  runs_created += other.runs_created;
  runs_forked += other.runs_forked;
  runs_completed += other.runs_completed;
  runs_expired += other.runs_expired;
  runs_killed_strict += other.runs_killed_strict;
  runs_killed_negation += other.runs_killed_negation;
  runs_pruned_score += other.runs_pruned_score;
  runs_dropped_capacity += other.runs_dropped_capacity;
  events_quarantined += other.events_quarantined;
  runs_poisoned += other.runs_poisoned;
  matches += other.matches;
  runs_cloned += other.runs_cloned;
  binding_nodes_allocated += other.binding_nodes_allocated;
  predcache_hits += other.predcache_hits;
  predcache_misses += other.predcache_misses;
  dag_nodes_allocated += other.dag_nodes_allocated;
  dag_nodes_shared += other.dag_nodes_shared;
  peak_active_runs += other.peak_active_runs;
  peak_dag_nodes += other.peak_dag_nodes;
}

void MatcherStats::Save(BinWriter* w) const {
  w->U64(events);
  w->U64(runs_created);
  w->U64(runs_forked);
  w->U64(runs_completed);
  w->U64(runs_expired);
  w->U64(runs_killed_strict);
  w->U64(runs_killed_negation);
  w->U64(runs_pruned_score);
  w->U64(runs_dropped_capacity);
  w->U64(events_quarantined);
  w->U64(runs_poisoned);
  w->U64(matches);
  w->U64(runs_cloned);
  w->U64(binding_nodes_allocated);
  w->U64(predcache_hits);
  w->U64(predcache_misses);
  w->U64(dag_nodes_allocated);
  w->U64(dag_nodes_shared);
  w->U64(static_cast<uint64_t>(peak_active_runs));
  w->U64(static_cast<uint64_t>(peak_dag_nodes));
}

bool MatcherStats::Load(BinReader* r) {
  uint64_t peak = 0;
  uint64_t peak_dag = 0;
  const bool ok =
      r->U64(&events) && r->U64(&runs_created) && r->U64(&runs_forked) &&
      r->U64(&runs_completed) && r->U64(&runs_expired) &&
      r->U64(&runs_killed_strict) && r->U64(&runs_killed_negation) &&
      r->U64(&runs_pruned_score) && r->U64(&runs_dropped_capacity) &&
      r->U64(&events_quarantined) && r->U64(&runs_poisoned) &&
      r->U64(&matches) && r->U64(&runs_cloned) &&
      r->U64(&binding_nodes_allocated) && r->U64(&predcache_hits) &&
      r->U64(&predcache_misses) && r->U64(&dag_nodes_allocated) &&
      r->U64(&dag_nodes_shared) && r->U64(&peak) && r->U64(&peak_dag);
  if (ok) {
    peak_active_runs = static_cast<size_t>(peak);
    peak_dag_nodes = static_cast<size_t>(peak_dag);
  }
  return ok;
}

MatcherStats AtomicMatcherStats::Snapshot() const {
  MatcherStats s;
  s.events = events.Load();
  s.runs_created = runs_created.Load();
  s.runs_forked = runs_forked.Load();
  s.runs_completed = runs_completed.Load();
  s.runs_expired = runs_expired.Load();
  s.runs_killed_strict = runs_killed_strict.Load();
  s.runs_killed_negation = runs_killed_negation.Load();
  s.runs_pruned_score = runs_pruned_score.Load();
  s.runs_dropped_capacity = runs_dropped_capacity.Load();
  s.events_quarantined = events_quarantined.Load();
  s.runs_poisoned = runs_poisoned.Load();
  s.matches = matches.Load();
  s.runs_cloned = runs_cloned.Load();
  s.binding_nodes_allocated = binding_nodes_allocated.Load();
  s.predcache_hits = predcache_hits.Load();
  s.predcache_misses = predcache_misses.Load();
  s.dag_nodes_allocated = dag_nodes_allocated.Load();
  s.dag_nodes_shared = dag_nodes_shared.Load();
  s.peak_active_runs = static_cast<size_t>(peak_active_runs.Load());
  s.peak_dag_nodes = static_cast<size_t>(peak_dag_nodes.Load());
  return s;
}

void AtomicMatcherStats::Restore(const MatcherStats& s) {
  events.Store(s.events);
  runs_created.Store(s.runs_created);
  runs_forked.Store(s.runs_forked);
  runs_completed.Store(s.runs_completed);
  runs_expired.Store(s.runs_expired);
  runs_killed_strict.Store(s.runs_killed_strict);
  runs_killed_negation.Store(s.runs_killed_negation);
  runs_pruned_score.Store(s.runs_pruned_score);
  runs_dropped_capacity.Store(s.runs_dropped_capacity);
  events_quarantined.Store(s.events_quarantined);
  runs_poisoned.Store(s.runs_poisoned);
  matches.Store(s.matches);
  runs_cloned.Store(s.runs_cloned);
  binding_nodes_allocated.Store(s.binding_nodes_allocated);
  predcache_hits.Store(s.predcache_hits);
  predcache_misses.Store(s.predcache_misses);
  dag_nodes_allocated.Store(s.dag_nodes_allocated);
  dag_nodes_shared.Store(s.dag_nodes_shared);
  peak_active_runs.Store(s.peak_active_runs);
  peak_dag_nodes.Store(s.peak_dag_nodes);
}

const char* ShedPolicyToString(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNew:
      return "RejectNew";
    case ShedPolicy::kShedOldest:
      return "ShedOldest";
    case ShedPolicy::kShedLowestScoreBound:
      return "ShedLowestScoreBound";
  }
  return "Unknown";
}

MatcherOptions MergeEngineCaps(MatcherOptions base, size_t max_runs_per_partition,
                               size_t max_total_runs, ShedPolicy shed_policy,
                               FaultPolicy fault_policy,
                               const FaultInjector* fault_injector) {
  if (max_runs_per_partition > 0) {
    base.max_active_runs = std::min(base.max_active_runs, max_runs_per_partition);
  }
  if (max_total_runs > 0) {
    base.max_total_runs = base.max_total_runs > 0
                              ? std::min(base.max_total_runs, max_total_runs)
                              : max_total_runs;
  }
  if (shed_policy != ShedPolicy::kShedOldest) base.shed_policy = shed_policy;
  if (fault_policy != FaultPolicy::kFailFast) base.fault_policy = fault_policy;
  if (fault_injector != nullptr) base.fault_injector = fault_injector;
  return base;
}

Matcher::Matcher(CompiledQueryPtr plan, const MatcherOptions& options,
                 const RunPruner* pruner, AtomicMatcherStats* stats,
                 uint64_t* next_match_id, size_t* live_runs, RunMemory* memory)
    : plan_(std::move(plan)),
      options_(options),
      pruner_(pruner),
      stats_(stats),
      next_match_id_(next_match_id),
      live_runs_(live_runs),
      memory_(memory),
      pred_cache_(static_cast<size_t>(plan_->pattern.num_event_preds), -1) {
  if (memory_ == nullptr) {
    owned_memory_ = std::make_unique<RunMemory>(
        plan_.get(), options_.cow_bindings, options_.use_arena);
    memory_ = owned_memory_.get();
  }
}

Matcher::~Matcher() {
  if (live_runs_ != nullptr) *live_runs_ -= runs_.size();
  ReleaseGroups();
}

void Matcher::ReleaseGroups() {
  for (DagGroup& g : groups_) memory_->dag->Unref(g.head);
  groups_.clear();
  dag_group_owners_.clear();
}

bool Matcher::TypeMatches(const std::string& tag, const Event& event) const {
  return tag.empty() || EqualsIgnoreCase(tag, event.type_tag());
}

bool Matcher::EvalPred(const Run& run, const Expr& pred,
                       const BytecodeProgram* prog, int cache_id, int var_index,
                       const Event& event) const {
  const bool use_vm = prog != nullptr && options_.bytecode_eval;
  if (cache_id < 0 || !options_.predicate_cache) {
    // Correlated conjunct (or cache disabled): evaluate against the run,
    // which answers `var_index` with the installed candidate.
    auto r = use_vm ? VmEvaluatePredicate(*prog, run, &vm_)
                    : EvaluatePredicate(pred, run);
    return r.ok() && r.value();
  }
  int8_t& slot = pred_cache_[static_cast<size_t>(cache_id)];
  if (slot < 0) {
    // First consult this event: compute once under an EventOnlyContext —
    // provably the same verdict a run evaluation would produce (the
    // conjunct references nothing but the candidate event).
    EventOnlyContext ctx(var_index, &event);
    auto r = use_vm ? VmEvaluatePredicate(*prog, ctx, &vm_)
                    : EvaluatePredicate(pred, ctx);
    slot = (r.ok() && r.value()) ? 1 : 0;
    stats_->predcache_misses.Increment();
  } else {
    stats_->predcache_hits.Increment();
  }
  return slot == 1;
}

bool Matcher::PassesBegin(Run* run, int comp_index, const Event& event) const {
  const CompiledComponent& comp =
      plan_->pattern.components[static_cast<size_t>(comp_index)];
  if (comp.is_kleene) return PassesIter(run, comp_index, event);
  run->SetCandidate(comp.var_index, &event);
  bool ok = true;
  for (size_t i = 0; i < comp.begin_preds.size(); ++i) {
    if (!EvalPred(*run, *comp.begin_preds[i], comp.begin_pred_progs[i].get(),
                  comp.begin_pred_cache_ids[i], comp.var_index, event)) {
      ok = false;
      break;
    }
  }
  run->ClearCandidate();
  return ok;
}

bool Matcher::PassesIter(Run* run, int comp_index, const Event& event) const {
  const CompiledComponent& comp =
      plan_->pattern.components[static_cast<size_t>(comp_index)];
  const bool first_iteration = run->KleeneCount(comp.var_index) == 0;
  run->SetCandidate(comp.var_index, &event);
  bool ok = true;
  for (size_t i = 0; i < comp.iter_preds.size(); ++i) {
    // Conjuncts referencing v[i-1] are vacuous for the first iteration.
    if (first_iteration && comp.iter_pred_uses_prev[i]) continue;
    if (!EvalPred(*run, *comp.iter_preds[i], comp.iter_pred_progs[i].get(),
                  comp.iter_pred_cache_ids[i], comp.var_index, event)) {
      ok = false;
      break;
    }
  }
  run->ClearCandidate();
  return ok;
}

bool Matcher::PassesExit(Run* run, int comp_index) const {
  const CompiledComponent& comp =
      plan_->pattern.components[static_cast<size_t>(comp_index)];
  if (comp.is_kleene && run->KleeneCount(comp.var_index) < comp.min_iters) {
    return false;
  }
  for (size_t i = 0; i < comp.exit_preds.size(); ++i) {
    const BytecodeProgram* prog = comp.exit_pred_progs[i].get();
    auto r = prog != nullptr && options_.bytecode_eval
                 ? VmEvaluatePredicate(*prog, *run, &vm_)
                 : EvaluatePredicate(*comp.exit_preds[i], *run);
    if (!r.ok() || !r.value()) return false;
  }
  return true;
}

void Matcher::BeginOptions(Run* run, const Event& event,
                           std::vector<int>* out) const {
  out->clear();
  const int n = static_cast<int>(plan_->pattern.components.size());
  int j = run->next_component();
  if (j >= n) return;
  // The open Kleene component must be allowed to close before anything
  // later begins.
  const int open = run->open_component();
  if (open >= 0 && !PassesExit(run, open)) return;
  while (j < n) {
    const CompiledComponent& comp =
        plan_->pattern.components[static_cast<size_t>(j)];
    if (TypeMatches(comp.type_tag, event) && PassesBegin(run, j, event)) {
      out->push_back(j);
    }
    if (!comp.skippable()) break;
    // Skipping a zero-minimum Kleene leaves it empty; its exit predicates
    // must hold on the empty binding (COUNT = 0, aggregates NULL).
    if (comp.is_kleene && !PassesExit(run, j)) break;
    ++j;
  }
}

bool Matcher::CanExtend(Run* run, const Event& event) const {
  const int open = run->open_component();
  if (open < 0) return false;
  const CompiledComponent& comp =
      plan_->pattern.components[static_cast<size_t>(open)];
  if (comp.max_iters >= 0 && run->KleeneCount(comp.var_index) >= comp.max_iters) {
    return false;  // iteration budget exhausted
  }
  if (!TypeMatches(comp.type_tag, event)) return false;
  return PassesIter(run, open, event);
}

bool Matcher::Expired(const Run& run, const Event& event) const {
  if (plan_->within_micros > 0 &&
      event.timestamp() - run.first_ts() > plan_->within_micros) {
    return true;
  }
  return plan_->within_events > 0 &&
         event.sequence() - run.first_sequence() >
             static_cast<uint64_t>(plan_->within_events);
}

bool Matcher::NegationKills(Run* run, const Event& event) const {
  const int next = run->next_component();
  if (next <= 0 || next >= static_cast<int>(plan_->pattern.components.size())) {
    return false;
  }
  const CompiledComponent& comp =
      plan_->pattern.components[static_cast<size_t>(next)];
  if (!comp.negation_before.has_value()) return false;
  const CompiledNegation& neg = *comp.negation_before;
  if (!TypeMatches(neg.type_tag, event)) return false;
  run->SetCandidate(neg.var_index, &event);
  bool kills = true;
  for (size_t i = 0; i < neg.preds.size(); ++i) {
    if (!EvalPred(*run, *neg.preds[i], neg.pred_progs[i].get(),
                  neg.pred_cache_ids[i], neg.var_index, event)) {
      kills = false;
      break;
    }
  }
  run->ClearCandidate();
  return kills;
}

bool Matcher::MaybeEmit(Run* run, std::vector<Match>* out) {
  const int open = run->open_component();
  if (open >= 0 && !PassesExit(run, open)) return false;

  Match m;
  m.id = (*next_match_id_)++;
  m.first_ts = run->first_ts();
  const Event* last = run->LastBoundEvent();
  m.last_ts = last != nullptr ? last->timestamp() : run->first_ts();
  m.last_sequence = last != nullptr ? last->sequence() : run->first_sequence();
  // Materialize to plain vectors: the match owns its bindings outright and
  // may cross threads / outlive the matcher's arena.
  m.bindings = run->MaterializeBindings();

  m.row.reserve(plan_->analyzed.ast.select.size());
  for (size_t i = 0; i < plan_->analyzed.ast.select.size(); ++i) {
    const BytecodeProgram* prog = plan_->select_progs[i].get();
    auto v = prog != nullptr && options_.bytecode_eval
                 ? VmEvaluate(*prog, *run, &vm_)
                 : Evaluate(*plan_->analyzed.ast.select[i].expr, *run);
    m.row.push_back(v.ok() ? std::move(v).value() : Value::Null());
  }
  if (plan_->score == nullptr) {
    m.score = 0.0;
  } else if (plan_->score_prog != nullptr && options_.bytecode_eval) {
    m.score = VmEvaluateScore(*plan_->score_prog, *run, &vm_);
  } else {
    m.score = EvaluateScore(*plan_->score, *run);
  }

  stats_->matches.Increment();
  out->push_back(std::move(m));
  return true;
}

bool Matcher::MaybePruneAndCount(const Run& run) {
  if (pruner_ != nullptr && pruner_->ShouldPrune(run)) {
    stats_->runs_pruned_score.Increment();
    return true;
  }
  return false;
}

RunHandle Matcher::CloneRun(const Run& src, uint64_t new_id) {
  RunHandle run = memory_->runs.Acquire(new_id);
  run->CopyStateFrom(src, new_id);
  stats_->runs_cloned.Increment();
  return run;
}

bool Matcher::GroupEventPasses(const Event& event) const {
  const CompiledComponent& comp = plan_->pattern.components.back();
  if (!TypeMatches(comp.type_tag, event)) return false;
  for (size_t i = 0; i < comp.iter_preds.size(); ++i) {
    // Every iteration conjunct is event-only under DAG eligibility, so an
    // EventOnlyContext evaluation is provably the verdict any run would
    // produce; share it through the per-event cache like EvalPred does.
    const int cache_id = comp.iter_pred_cache_ids[i];
    int8_t* slot = options_.predicate_cache
                       ? &pred_cache_[static_cast<size_t>(cache_id)]
                       : nullptr;
    if (slot != nullptr && *slot >= 0) {
      stats_->predcache_hits.Increment();
      if (*slot == 0) return false;
      continue;
    }
    const BytecodeProgram* prog = comp.iter_pred_progs[i].get();
    EventOnlyContext ctx(comp.var_index, &event);
    auto r = prog != nullptr && options_.bytecode_eval
                 ? VmEvaluatePredicate(*prog, ctx, &vm_)
                 : EvaluatePredicate(*comp.iter_preds[i], ctx);
    const bool pass = r.ok() && r.value();
    if (slot != nullptr) {
      *slot = pass ? 1 : 0;
      stats_->predcache_misses.Increment();
    }
    if (!pass) return false;
  }
  return true;
}

void Matcher::StartGroup(uint64_t owner, const Run& run, const EventPtr& event,
                         std::vector<LazyMatchSet>* lazy_out) {
  MatchDagStore* dag = memory_->dag.get();
  auto ctx = std::make_shared<DagGroupContext>();
  ctx->plan = plan_.get();
  ctx->store = memory_->dag;
  ctx->closed_bindings = run.MaterializeBindings();
  // Refold the closed prefix in per-variable append order — the order the
  // run's own accumulators folded it (bit-identical float state; same
  // discipline as Run::LoadState).
  ctx->base_aggs = AggStates(&plan_->pattern.agg_specs);
  for (size_t v = 0; v < ctx->closed_bindings.size(); ++v) {
    for (const EventPtr& e : ctx->closed_bindings[v]) {
      ctx->base_aggs.Accept(static_cast<int>(v), *e);
    }
  }
  const bool anchored = owner == kNoOwner;
  ctx->first_ts = anchored ? event->timestamp() : run.first_ts();
  ctx->first_sequence = anchored ? event->sequence() : run.first_sequence();

  DagNode* bottom = dag->Bottom();
  DagNode* ext = dag->NewExtend(event, bottom);
  dag->Unref(bottom);
  DagNode* head;
  if (anchored) {
    // The anchor is pinned: every path of this group starts with it, so
    // first_ts is uniform (correct per-path expiry) and groups of later
    // anchors cover the remaining suffix subsets without overlap.
    dag->Ref(ext);  // the head keeps its own reference
    head = ext;
  } else {
    // Owned groups keep the bottom branch open: later events may start the
    // trailing binding fresh over the same prefix (the legacy begin-fork).
    DagNode* b = dag->Bottom();
    head = dag->NewUnion(b, ext);
    dag->Unref(b);
  }
  // The set takes over ext's creation reference: all paths through ext —
  // here just {event} — are exactly what the per-run engine emits now.
  lazy_out->emplace_back(ctx, ext, (*next_match_id_)++, event->sequence(),
                         event->timestamp());
  stats_->matches.Increment();
  groups_.push_back(DagGroup{owner, std::move(ctx), head});
  if (owner != kNoOwner) dag_group_owners_.insert(owner);
}

void Matcher::ProcessGroups(const EventPtr& event,
                            std::vector<LazyMatchSet>* lazy_out) {
  if (groups_.empty()) return;
  MatchDagStore* dag = memory_->dag.get();
  // Expiry prepass: the same WITHIN-span condition the run loop applies,
  // against the group's uniform first event.
  size_t write = 0;
  for (size_t read = 0; read < groups_.size(); ++read) {
    DagGroup& g = groups_[read];
    const bool expired =
        (plan_->within_micros > 0 &&
         event->timestamp() - g.ctx->first_ts > plan_->within_micros) ||
        (plan_->within_events > 0 &&
         event->sequence() - g.ctx->first_sequence >
             static_cast<uint64_t>(plan_->within_events));
    if (expired) {
      stats_->runs_expired.Increment();
      if (g.owner != kNoOwner) dag_group_owners_.erase(g.owner);
      dag->Unref(g.head);
      continue;
    }
    if (write != read) groups_[write] = std::move(groups_[read]);
    ++write;
  }
  groups_.resize(write);
  if (groups_.empty() || !GroupEventPasses(*event)) return;

  // One extend + one union per group — O(groups) per event, however many
  // suffix subsets the per-run engine would fork. The set at `ext` covers
  // every path of the old head extended by this event: exactly the matches
  // the forked runs would emit now.
  for (DagGroup& g : groups_) {
    DagNode* ext = dag->NewExtend(event, g.head);
    DagNode* head = dag->NewUnion(g.head, ext);
    lazy_out->emplace_back(g.ctx, ext, (*next_match_id_)++, event->sequence(),
                           event->timestamp());
    stats_->matches.Increment();
    dag->Unref(g.head);
    g.head = head;
  }
}

void Matcher::ColumnarExpire(const Event& event) {
  if (plan_->within_micros <= 0 && plan_->within_events <= 0) return;
  // Dense-column scan (the EventBatch SoA idiom applied to the run buffer):
  // the expiry test touches two contiguous columns instead of every Run.
  size_t write = 0;
  for (size_t read = 0; read < runs_.size(); ++read) {
    const bool expired =
        (plan_->within_micros > 0 &&
         event.timestamp() - run_first_ts_[read] > plan_->within_micros) ||
        (plan_->within_events > 0 &&
         event.sequence() - run_first_seq_[read] >
             static_cast<uint64_t>(plan_->within_events));
    if (expired) {
      stats_->runs_expired.Increment();
      continue;
    }
    if (write != read) {
      runs_[write] = std::move(runs_[read]);
      run_first_ts_[write] = run_first_ts_[read];
      run_first_seq_[write] = run_first_seq_[read];
    }
    ++write;
  }
  if (live_runs_ != nullptr) *live_runs_ -= runs_.size() - write;
  runs_.resize(write);
  run_first_ts_.resize(write);
  run_first_seq_.resize(write);
}

Matcher::RunFate Matcher::ProcessRun(Run* run, const EventPtr& event,
                                     std::vector<Match>* out,
                                     std::vector<RunHandle>* forks,
                                     std::vector<LazyMatchSet>* lazy_out) {
  // 1. WITHIN expiry: this and all later events are out of the run's span.
  if (Expired(*run, *event)) {
    stats_->runs_expired.Increment();
    return RunFate::kRemove;
  }

  std::vector<int>& begin_options = scratch_options_;
  BeginOptions(run, *event, &begin_options);

  if (plan_->strategy == SelectionStrategy::kSkipTillAny) {
    // Explore every enabled action on a fork; the original run represents
    // "ignore".
    for (const int comp : begin_options) {
      if (dag_active_ &&
          comp + 1 == static_cast<int>(plan_->pattern.components.size())) {
        // Trailing-Kleene begin under the shared DAG: instead of forking
        // one run now (and exponentially many on later events), split the
        // run's frozen closed prefix into a DAG group. If the group already
        // exists, ProcessGroups extended it with this event before the run
        // loop — the begin option is the same event-only verdict, so
        // nothing is missed.
        if (dag_group_owners_.count(run->id()) == 0) {
          StartGroup(run->id(), *run, event, lazy_out);
          stats_->runs_forked.Increment();
        }
        continue;
      }
      RunHandle fork = CloneRun(*run, next_run_id_++);
      stats_->runs_forked.Increment();
      fork->BeginComponent(comp, event);
      bool retire = false;
      if (fork->complete()) {
        // Pattern fully begun: single-ended patterns retire the run;
        // trailing-Kleene runs stay alive for further extensions.
        MaybeEmit(fork.get(), out);
        retire = !fork->kleene_open();
      }
      if (!retire && !MaybePruneAndCount(*fork)) {
        forks->push_back(std::move(fork));
      } else if (retire) {
        stats_->runs_completed.Increment();
      }
    }
    if (CanExtend(run, *event)) {
      RunHandle fork = CloneRun(*run, next_run_id_++);
      stats_->runs_forked.Increment();
      fork->ExtendKleene(event);
      if (fork->complete()) MaybeEmit(fork.get(), out);
      if (!MaybePruneAndCount(*fork)) forks->push_back(std::move(fork));
    }
    if (NegationKills(run, *event)) {
      stats_->runs_killed_negation.Increment();
      return RunFate::kRemove;
    }
    return RunFate::kKeep;
  }

  // Deterministic strategies: first enabled action wins; the earliest
  // beginnable component is preferred (greedy-optional).
  if (!begin_options.empty()) {
    run->BeginComponent(begin_options.front(), event);
    if (run->complete()) {
      MaybeEmit(run, out);
      if (!run->kleene_open()) {
        stats_->runs_completed.Increment();
        return RunFate::kRemove;
      }
    }
    if (MaybePruneAndCount(*run)) return RunFate::kRemove;
    return RunFate::kKeep;
  }
  if (NegationKills(run, *event)) {
    stats_->runs_killed_negation.Increment();
    return RunFate::kRemove;
  }
  if (CanExtend(run, *event)) {
    run->ExtendKleene(event);
    if (run->complete()) MaybeEmit(run, out);
    if (MaybePruneAndCount(*run)) return RunFate::kRemove;
    return RunFate::kKeep;
  }
  if (plan_->strategy == SelectionStrategy::kStrictContiguity) {
    stats_->runs_killed_strict.Increment();
    return RunFate::kRemove;
  }
  return RunFate::kKeep;
}

void Matcher::TryStartRun(const EventPtr& event, std::vector<Match>* out,
                          std::vector<LazyMatchSet>* lazy_out) {
  RunHandle probe = memory_->runs.Acquire(next_run_id_);
  std::vector<int>& begin_options = scratch_options_;
  BeginOptions(probe.get(), *event, &begin_options);
  if (dag_active_ && !begin_options.empty() &&
      begin_options.back() + 1 ==
          static_cast<int>(plan_->pattern.components.size())) {
    // A fresh start directly at the trailing Kleene (empty / fully
    // skippable prefix): anchor an ownerless group on this event. The
    // anchor stays the first iteration of every path, so groups of later
    // anchors never duplicate a binding — the per-anchor split the legacy
    // engine expresses as one fresh run per event.
    begin_options.pop_back();
    StartGroup(kNoOwner, *probe, event, lazy_out);
    stats_->runs_created.Increment();
  }
  if (begin_options.empty()) return;

  // Under the deterministic strategies one run starts (at the earliest
  // beginnable component); skip-till-any starts one run per option.
  const size_t start_count =
      plan_->strategy == SelectionStrategy::kSkipTillAny ? begin_options.size()
                                                         : 1;
  for (size_t i = 0; i < start_count; ++i) {
    RunHandle run = i + 1 == start_count ? std::move(probe)
                                         : CloneRun(*probe, next_run_id_);
    ++next_run_id_;
    run->BeginComponent(begin_options[i], event);
    stats_->runs_created.Increment();
    if (run->complete()) {
      // Pattern fully begun by its first event.
      MaybeEmit(run.get(), out);
      if (!run->kleene_open()) {
        stats_->runs_completed.Increment();
        continue;
      }
    }
    if (MaybePruneAndCount(*run)) continue;
    InsertRun(std::move(run));
  }
}

void Matcher::RemoveRunAt(size_t index) {
  runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(index));
  run_first_ts_.erase(run_first_ts_.begin() +
                      static_cast<std::ptrdiff_t>(index));
  run_first_seq_.erase(run_first_seq_.begin() +
                       static_cast<std::ptrdiff_t>(index));
  if (live_runs_ != nullptr) --*live_runs_;
}

double Matcher::BoundStrength(const Run& run) const {
  const Interval bound = DeriveBounds(*plan_->score, run);
  return plan_->rank_desc ? bound.hi : -bound.lo;
}

bool Matcher::ShedOne(const Run& incoming) {
  stats_->runs_dropped_capacity.Increment();
  if (runs_.empty()) return false;  // nothing local to evict (shared budget)
  switch (options_.shed_policy) {
    case ShedPolicy::kRejectNew:
      return false;
    case ShedPolicy::kShedOldest:
      RemoveRunAt(0);
      return true;
    case ShedPolicy::kShedLowestScoreBound: {
      if (plan_->score == nullptr) {  // unranked: no bounds to compare
        RemoveRunAt(0);
        return true;
      }
      size_t weakest = 0;
      double weakest_strength = BoundStrength(*runs_[0]);
      for (size_t i = 1; i < runs_.size(); ++i) {
        const double strength = BoundStrength(*runs_[i]);
        if (strength < weakest_strength) {
          weakest = i;
          weakest_strength = strength;
        }
      }
      if (BoundStrength(incoming) < weakest_strength) return false;
      RemoveRunAt(weakest);
      return true;
    }
  }
  return false;
}

void Matcher::InsertRun(RunHandle run) {
  const bool partition_full = runs_.size() >= options_.max_active_runs;
  const bool total_full = options_.max_total_runs > 0 &&
                          live_runs_ != nullptr &&
                          *live_runs_ >= options_.max_total_runs;
  if ((partition_full || total_full) && !ShedOne(*run)) {
    return;  // the incoming run was the shed victim
  }
  run_first_ts_.push_back(run->first_ts());
  run_first_seq_.push_back(run->first_sequence());
  runs_.push_back(std::move(run));
  if (live_runs_ != nullptr) ++*live_runs_;
}

bool Matcher::WouldEvaluate(Run* run, const Event& event) const {
  const auto& components = plan_->pattern.components;
  const int open = run->open_component();
  if (open >= 0 &&
      TypeMatches(components[static_cast<size_t>(open)].type_tag, event)) {
    return true;
  }
  // A beginnable component (reachable through skippable prefixes) or its
  // negation watcher would also evaluate predicates against the event.
  const int next = run->next_component();
  if (next < 0 || next >= static_cast<int>(components.size())) return false;
  const CompiledComponent& comp = components[static_cast<size_t>(next)];
  if (TypeMatches(comp.type_tag, event)) return true;
  return comp.negation_before.has_value() &&
         TypeMatches(comp.negation_before->type_tag, event);
}

void Matcher::QuarantineEvent(const Event& event) {
  stats_->events_quarantined.Increment();
  size_t write = 0;
  for (size_t read = 0; read < runs_.size(); ++read) {
    if (WouldEvaluate(runs_[read].get(), event)) {
      stats_->runs_poisoned.Increment();
      continue;  // the run's predicate evaluation faulted with the event
    }
    if (write != read) {
      runs_[write] = std::move(runs_[read]);
      run_first_ts_[write] = run_first_ts_[read];
      run_first_seq_[write] = run_first_seq_[read];
    }
    ++write;
  }
  if (live_runs_ != nullptr) *live_runs_ -= runs_.size() - write;
  runs_.resize(write);
  run_first_ts_.resize(write);
  run_first_seq_.resize(write);
  // Every DAG group has the trailing Kleene open, so a type-matching poison
  // event would have faulted its (shared) iteration predicates — the same
  // condition WouldEvaluate applies to the forked runs the groups replace.
  if (!groups_.empty() &&
      TypeMatches(plan_->pattern.components.back().type_tag, event)) {
    for (DagGroup& g : groups_) {
      stats_->runs_poisoned.Increment();
      if (g.owner != kNoOwner) dag_group_owners_.erase(g.owner);
      memory_->dag->Unref(g.head);
    }
    groups_.clear();
  }
}

Status Matcher::OnEvent(const EventPtr& event, std::vector<Match>* out) {
  return OnEvent(event, out, nullptr);
}

Status Matcher::OnEvent(const EventPtr& event, std::vector<Match>* out,
                        std::vector<LazyMatchSet>* lazy_out) {
  if (!dag_decided_) {
    // Latch the DAG mode on first contact: the scope must carry a store
    // (knob on + eligible shape) AND the caller must collect lazy sets
    // (the ranking layer buffers and enumerates them at window close).
    dag_decided_ = true;
    dag_active_ = memory_->dag != nullptr && lazy_out != nullptr;
  }
  stats_->events.Increment();

  // Deterministic injected eval fault: the same (seed, sequence) pair fires
  // identically under serial and sharded execution.
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->ShouldFire(fault_points::kEvalPoison,
                                          event->sequence())) {
    if (options_.fault_policy == FaultPolicy::kFailFast) {
      return Status::Internal("predicate evaluation fault on poison event "
                              "(stream sequence " +
                              std::to_string(event->sequence()) + ")");
    }
    QuarantineEvent(*event);
    stats_->peak_active_runs.Observe(runs_.size());
    return Status::OK();
  }

  // Forget the previous event's cached event-only verdicts.
  if (options_.predicate_cache && !pred_cache_.empty()) {
    std::fill(pred_cache_.begin(), pred_cache_.end(), int8_t{-1});
  }

  if (options_.columnar_expiry) ColumnarExpire(*event);
  // Step existing groups before the run loop: groups created during this
  // event (run intercepts / fresh anchors) incorporate it at creation and
  // must not be stepped again.
  if (dag_active_) ProcessGroups(event, lazy_out);

  std::vector<RunHandle> forks;

  size_t write = 0;
  for (size_t read = 0; read < runs_.size(); ++read) {
    const RunFate fate =
        ProcessRun(runs_[read].get(), event, out, &forks, lazy_out);
    if (fate == RunFate::kKeep) {
      if (write != read) {
        runs_[write] = std::move(runs_[read]);
        run_first_ts_[write] = run_first_ts_[read];
        run_first_seq_[write] = run_first_seq_[read];
      }
      ++write;
    }
  }
  if (live_runs_ != nullptr) *live_runs_ -= runs_.size() - write;
  runs_.resize(write);
  run_first_ts_.resize(write);
  run_first_seq_.resize(write);

  for (auto& fork : forks) InsertRun(std::move(fork));

  TryStartRun(event, out, lazy_out);
  stats_->peak_active_runs.Observe(runs_.size());
  // Attribute the binding cells this event made to the shared counter (the
  // arena is shared across the query's partition matchers; consuming the
  // delta per event keeps the single-writer discipline).
  stats_->binding_nodes_allocated.Add(memory_->arena.TakeConstructedDelta());
  if (memory_->dag != nullptr) {
    stats_->dag_nodes_allocated.Add(memory_->dag->TakeAllocatedDelta());
    stats_->dag_nodes_shared.Add(memory_->dag->TakeSharedDelta());
    stats_->peak_dag_nodes.Observe(memory_->dag->live_nodes());
  }
  return Status::OK();
}

void Matcher::SaveState(EventInterner* in, BinWriter* w) const {
  w->U64(next_run_id_);
  w->U32(static_cast<uint32_t>(runs_.size()));
  for (const RunHandle& run : runs_) {
    w->U64(run->id());
    run->SaveState(in, w);
  }
  w->Bool(dag_decided_);
  w->Bool(dag_active_);
  if (dag_active_) {
    w->U32(static_cast<uint32_t>(groups_.size()));
    DagWriter dag_writer(in, w);
    for (const DagGroup& g : groups_) {
      w->U64(g.owner);
      SaveDagGroupContext(in, w, *g.ctx);
      dag_writer.Save(g.head);
    }
  }
}

bool Matcher::LoadState(EventUninterner* in, BinReader* r) {
  uint32_t count = 0;
  if (!r->U64(&next_run_id_) || !r->U32(&count)) return false;
  runs_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!r->U64(&id)) return false;
    RunHandle run = memory_->runs.Acquire(id);
    if (!run->LoadState(in, r)) return false;
    run_first_ts_.push_back(run->first_ts());
    run_first_seq_.push_back(run->first_sequence());
    runs_.push_back(std::move(run));
  }
  if (live_runs_ != nullptr) *live_runs_ += runs_.size();
  if (!r->Bool(&dag_decided_) || !r->Bool(&dag_active_)) return false;
  if (dag_active_) {
    // The restoring scope must run with the same shared_match_dag knob the
    // checkpoint was taken under (same discipline as other option knobs).
    if (memory_->dag == nullptr) return false;
    MatchDagStore* dag = memory_->dag.get();
    uint32_t group_count = 0;
    if (!r->U32(&group_count)) return false;
    DagReader dag_reader(in, r, dag);
    groups_.reserve(group_count);
    for (uint32_t i = 0; i < group_count; ++i) {
      uint64_t owner = 0;
      if (!r->U64(&owner)) return false;
      DagGroupContextPtr ctx =
          LoadDagGroupContext(plan_.get(), memory_->dag, in, r);
      if (ctx == nullptr) return false;
      DagNode* head = dag_reader.Load();
      if (head == nullptr) return false;
      dag->Ref(head);  // the reader's table reference is released on scope exit
      if (owner != kNoOwner) dag_group_owners_.insert(owner);
      groups_.push_back(DagGroup{owner, std::move(ctx), head});
    }
    // Restored constructions replay saved state, not new per-event work.
    dag->DiscardDeltas();
  }
  return true;
}

size_t Matcher::MemoryEstimate() const {
  size_t bytes = sizeof(Matcher) + runs_.capacity() * sizeof(void*);
  for (const auto& run : runs_) bytes += run->MemoryEstimate();
  return bytes;
}

}  // namespace cepr
