#include "engine/shard_router.h"

namespace cepr {

ShardRouter::ShardRouter(const CompiledQuery& plan, size_t num_shards,
                         size_t query_index)
    : partition_attr_(plan.partition_attr_index),
      num_shards_(num_shards == 0 ? 1 : num_shards),
      pinned_(query_index % (num_shards == 0 ? 1 : num_shards)) {}

uint64_t ShardRouter::Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t ShardRouter::ShardOf(const Event& event) const {
  if (partition_attr_ < 0) return pinned_;
  const Value& key = event.value(static_cast<size_t>(partition_attr_));
  return static_cast<size_t>(Mix(key.Hash()) % num_shards_);
}

}  // namespace cepr
