#include "engine/predicate_index.h"

#include <algorithm>
#include <cmath>

#include "expr/eval.h"

namespace cepr {

namespace {

/// `var.attr OP literal` in either orientation (the op is flipped when the
/// literal is on the left). The reference must be the component's own
/// variable — a plain VarRef for single components, a current-iteration
/// IterRef for Kleene components — and a real schema attribute (the
/// timestamp pseudo-attribute stays residual).
struct AttrVsLiteral {
  int attr_index = -1;
  BinaryOp op = BinaryOp::kEq;  // normalized: attr on the left
  const Value* literal = nullptr;
};

bool IsOwnEventRef(const Expr& e, int var_index, bool is_kleene) {
  if (e.var_index != var_index || e.attr_index < 0) return false;
  if (e.kind == ExprKind::kVarRef) return !is_kleene;
  return e.kind == ExprKind::kIterRef && is_kleene &&
         e.iter_kind == IterKind::kCurrent;
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq is symmetric
  }
}

bool MatchAttrVsLiteral(const Expr& e, int var_index, bool is_kleene,
                        AttrVsLiteral* out) {
  if (e.kind != ExprKind::kBinary) return false;
  switch (e.binary_op) {
    case BinaryOp::kEq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return false;
  }
  const Expr& lhs = *e.children[0];
  const Expr& rhs = *e.children[1];
  if (IsOwnEventRef(lhs, var_index, is_kleene) &&
      rhs.kind == ExprKind::kLiteral) {
    out->attr_index = lhs.attr_index;
    out->op = e.binary_op;
    out->literal = &rhs.literal;
    return true;
  }
  if (IsOwnEventRef(rhs, var_index, is_kleene) &&
      lhs.kind == ExprKind::kLiteral) {
    out->attr_index = rhs.attr_index;
    out->op = FlipComparison(e.binary_op);
    out->literal = &lhs.literal;
    return true;
  }
  return false;
}

bool IsNumericLiteral(const Value& v) {
  return v.type() == ValueType::kInt || v.type() == ValueType::kFloat;
}

double NumericOf(const Value& v) {
  return v.type() == ValueType::kInt ? static_cast<double>(v.AsInt())
                                     : v.AsFloat();
}

}  // namespace

void PredicateIndex::AddQuery(QueryId id, const CompiledQuery* plan) {
  queries_[id] = plan;
  IndexQuery(id, *plan);
}

void PredicateIndex::RemoveQuery(QueryId id) {
  if (queries_.erase(id) == 0) return;
  // Removal is rare (hot query retirement); a full rebuild keeps every
  // structure compact instead of tombstoning the sorted range lists.
  Rebuild();
}

void PredicateIndex::Clear() {
  queries_.clear();
  eq_.clear();
  range_.clear();
  residual_.clear();
  always_.clear();
  stamp_.clear();
}

void PredicateIndex::Rebuild() {
  eq_.clear();
  range_.clear();
  residual_.clear();
  always_.clear();
  stamp_.clear();
  for (const auto& [id, plan] : queries_) IndexQuery(id, *plan);
}

void PredicateIndex::IndexQuery(QueryId id, const CompiledQuery& plan) {
  // One guard per component a fresh run could start at: component 0 plus
  // every component reachable through a skippable prefix. (A skippable
  // component's exit/aggregate constraints are conservatively assumed to
  // pass — they can only shrink the candidate set further.)
  struct Guard {
    enum Kind { kEq, kRange, kResidual } kind = kResidual;
    AttrVsLiteral avl;                 // kEq / kRange
    ResidualEntry residual;            // kResidual
  };
  std::vector<Guard> guards;
  bool always = plan.pattern.components.empty();
  for (const CompiledComponent& comp : plan.pattern.components) {
    // Event-only conjuncts at this component: begin_preds for single
    // components, iter_preds for Kleene ones (a Kleene start binds its
    // first iteration), as classified by the compiler's cache ids.
    const auto& preds = comp.is_kleene ? comp.iter_preds : comp.begin_preds;
    const auto& cache_ids =
        comp.is_kleene ? comp.iter_pred_cache_ids : comp.begin_pred_cache_ids;
    const auto& progs =
        comp.is_kleene ? comp.iter_pred_progs : comp.begin_pred_progs;
    std::vector<const Expr*> event_only;
    std::vector<const BytecodeProgram*> event_only_progs;
    for (size_t i = 0; i < preds.size(); ++i) {
      if (cache_ids[i] >= 0) {
        event_only.push_back(preds[i].get());
        event_only_progs.push_back(i < progs.size() ? progs[i].get() : nullptr);
      }
    }
    if (event_only.empty()) {
      // Nothing event-only gates run creation here (e.g. only correlated
      // conjuncts, or none at all): no probe can rule this query out.
      always = true;
      break;
    }

    Guard g;
    bool picked = false;
    // Prefer the strongest single index: equality, then one-sided range.
    for (const Expr* e : event_only) {
      AttrVsLiteral avl;
      if (!MatchAttrVsLiteral(*e, comp.var_index, comp.is_kleene, &avl)) {
        continue;
      }
      if (avl.op == BinaryOp::kEq && !avl.literal->is_null()) {
        // Safe to hash: eval's `=` on non-null operands is exactly
        // Value::operator==, and a NULL event value yields NULL -> false,
        // i.e. "absent from the hash bucket". (A NULL literal is NOT
        // indexable: NULL = NULL is TRUE in CEPR.)
        g.kind = Guard::kEq;
        g.avl = avl;
        picked = true;
        break;
      }
      if (!picked && avl.op != BinaryOp::kEq && IsNumericLiteral(*avl.literal) &&
          !std::isnan(NumericOf(*avl.literal))) {
        // Numeric-literal one-sided range: eval compares via double, which
        // the sorted threshold lists mirror exactly. String ranges and the
        // timestamp pseudo-attribute stay residual. Keep scanning in case
        // an equality conjunct follows.
        g.kind = Guard::kRange;
        g.avl = avl;
        picked = true;
      }
    }
    if (!picked) {
      g.kind = Guard::kResidual;
      g.residual.query = id;
      g.residual.var_index = comp.var_index;
      g.residual.preds = event_only;
      g.residual.progs = event_only_progs;
    }
    guards.push_back(std::move(g));

    if (!comp.skippable()) break;  // runs cannot start past this component
  }

  if (always) {
    always_.push_back(id);
    std::sort(always_.begin(), always_.end());
    return;
  }
  for (Guard& g : guards) {
    switch (g.kind) {
      case Guard::kEq:
        eq_[g.avl.attr_index][*g.avl.literal].push_back(id);
        break;
      case Guard::kRange: {
        RangeLists& lists = range_[g.avl.attr_index];
        RangeEntry entry;
        entry.threshold = NumericOf(*g.avl.literal);
        entry.inclusive =
            g.avl.op == BinaryOp::kLe || g.avl.op == BinaryOp::kGe;
        entry.query = id;
        auto& side = (g.avl.op == BinaryOp::kLt || g.avl.op == BinaryOp::kLe)
                         ? lists.less
                         : lists.greater;
        side.push_back(entry);
        std::sort(side.begin(), side.end(),
                  [](const RangeEntry& a, const RangeEntry& b) {
                    return a.threshold < b.threshold;
                  });
        break;
      }
      case Guard::kResidual:
        residual_.push_back(std::move(g.residual));
        break;
    }
  }
}

void PredicateIndex::MarkCandidate(QueryId id, std::vector<QueryId>* out) const {
  uint64_t& stamp = stamp_[id];
  if (stamp == epoch_) return;
  stamp = epoch_;
  out->push_back(id);
}

void PredicateIndex::Probe(const Event& event,
                           std::vector<QueryId>* out) const {
  ++epoch_;
  const size_t first = out->size();

  for (QueryId id : always_) MarkCandidate(id, out);

  const std::vector<Value>& values = event.values();

  for (const auto& [attr, by_value] : eq_) {
    const Value& v = values[static_cast<size_t>(attr)];
    if (v.is_null()) continue;  // NULL = lit -> NULL -> false
    auto it = by_value.find(v);
    if (it == by_value.end()) continue;
    for (QueryId id : it->second) MarkCandidate(id, out);
  }

  for (const auto& [attr, lists] : range_) {
    const Value& v = values[static_cast<size_t>(attr)];
    if (!IsNumericLiteral(v)) continue;  // NULL (or non-numeric) -> false
    const double x = NumericOf(v);
    if (std::isnan(x)) continue;  // every comparison with NaN is false
    // less: `attr < t` passes iff x < t (<= t when inclusive). Sorted
    // ascending, so the passing entries are a suffix starting at the first
    // threshold >= x.
    {
      auto it = std::lower_bound(
          lists.less.begin(), lists.less.end(), x,
          [](const RangeEntry& e, double val) { return e.threshold < val; });
      for (; it != lists.less.end(); ++it) {
        if (it->threshold > x || it->inclusive) MarkCandidate(it->query, out);
      }
    }
    // greater: `attr > t` passes iff x > t (>= t when inclusive): the
    // prefix of thresholds below x, plus inclusive entries at exactly x.
    for (const RangeEntry& e : lists.greater) {
      if (e.threshold > x) break;
      if (e.threshold < x || e.inclusive) MarkCandidate(e.query, out);
    }
  }

  for (const ResidualEntry& r : residual_) {
    if (EvalResidual(r, event)) MarkCandidate(r.query, out);
  }

  std::sort(out->begin() + static_cast<ptrdiff_t>(first), out->end());
  probes_.Increment();
  candidates_.Add(out->size() - first);
}

bool PredicateIndex::EvalResidual(const ResidualEntry& r,
                                  const Event& event) const {
  const EventOnlyContext ctx(r.var_index, &event);
  for (size_t i = 0; i < r.preds.size(); ++i) {
    // Bytecode when the compiler produced a program (bit-identical to the
    // AST path), recursive evaluation otherwise. Evaluation errors mean the
    // binding would fail in the matcher too (EvalPred treats them as
    // false), so they exclude the candidate.
    const Result<bool> res =
        r.progs[i] != nullptr ? VmEvaluatePredicate(*r.progs[i], ctx, &vm_)
                              : EvaluatePredicate(*r.preds[i], ctx);
    if (!res.ok() || !res.value()) return false;
  }
  return true;
}

void PredicateIndex::ProbeBatch(const EventBatch& batch,
                                std::vector<std::vector<QueryId>>* out) const {
  const size_t rows = batch.size();
  out->resize(rows);
  for (auto& v : *out) v.clear();
  if (rows == 0) return;

  // Row-major candidate bitmaps: `words` 64-bit words per event, bit = query
  // id. Ids are dense per-stream slots in both engines, so the bitmaps stay
  // narrow; a sparse id space would only cost wider rows, not correctness.
  const QueryId max_id = queries_.empty() ? 0 : queries_.rbegin()->first;
  const size_t words = (static_cast<size_t>(max_id) + 64) / 64;
  bitmap_scratch_.assign(rows * words, 0);
  uint64_t* bits = bitmap_scratch_.data();
  const auto set_bit = [bits, words](size_t row, QueryId id) {
    bits[row * words + id / 64] |= uint64_t{1} << (id % 64);
  };

  for (const QueryId id : always_) {
    for (size_t row = 0; row < rows; ++row) set_bit(row, id);
  }

  // Equality guards: column-major hash probes (one table walk per attr keeps
  // the buckets cache-hot across the whole batch).
  for (const auto& [attr, by_value] : eq_) {
    for (size_t row = 0; row < rows; ++row) {
      const Value& v = batch.event(row).value(static_cast<size_t>(attr));
      if (v.is_null()) continue;  // NULL = lit -> NULL -> false
      const auto it = by_value.find(v);
      if (it == by_value.end()) continue;
      for (const QueryId id : it->second) set_bit(row, id);
    }
  }

  // Range guards: tight scans over the materialized numeric column. The
  // column's `ok` already folds in NULL / non-numeric / NaN (never passes),
  // so the inner loops are pure double compares.
  for (const auto& [attr, lists] : range_) {
    const EventBatch::NumericColumn& col = batch.numeric_column(attr);
    const double* x = col.x.data();
    const uint8_t* ok = col.ok.data();
    for (const RangeEntry& e : lists.less) {
      const double t = e.threshold;
      if (e.inclusive) {
        for (size_t row = 0; row < rows; ++row) {
          if (ok[row] && x[row] <= t) set_bit(row, e.query);
        }
      } else {
        for (size_t row = 0; row < rows; ++row) {
          if (ok[row] && x[row] < t) set_bit(row, e.query);
        }
      }
    }
    for (const RangeEntry& e : lists.greater) {
      const double t = e.threshold;
      if (e.inclusive) {
        for (size_t row = 0; row < rows; ++row) {
          if (ok[row] && x[row] >= t) set_bit(row, e.query);
        }
      } else {
        for (size_t row = 0; row < rows; ++row) {
          if (ok[row] && x[row] > t) set_bit(row, e.query);
        }
      }
    }
  }

  // Residual guards: column-major over entries, bytecode per row.
  for (const ResidualEntry& r : residual_) {
    for (size_t row = 0; row < rows; ++row) {
      if (EvalResidual(r, batch.event(row))) set_bit(row, r.query);
    }
  }

  // Bitmap -> ascending id lists (bit order IS id order, so no sort).
  uint64_t total = 0;
  for (size_t row = 0; row < rows; ++row) {
    std::vector<QueryId>& cand = (*out)[row];
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = bits[row * words + w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        cand.push_back(static_cast<QueryId>(w * 64 + static_cast<size_t>(bit)));
        word &= word - 1;
      }
    }
    total += cand.size();
  }

  probes_.Add(rows);
  candidates_.Add(total);
  batch_scan_events_.Add(rows);
  bitmap_hits_.Add(total);
}

}  // namespace cepr
