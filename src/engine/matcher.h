#ifndef CEPR_ENGINE_MATCHER_H_
#define CEPR_ENGINE_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/counters.h"
#include "common/fault.h"
#include "common/status.h"
#include "engine/match_dag.h"
#include "engine/run.h"
#include "expr/vm.h"
#include "plan/compiler.h"

namespace cepr {

/// Hook the ranking layer installs to discard hopeless partial matches: a
/// run is pruned when its best achievable score (per DeriveBounds over the
/// run's BoundEnv) cannot enter the top-k of any report window the run
/// could still complete in.
class RunPruner {
 public:
  virtual ~RunPruner() = default;
  virtual bool ShouldPrune(const Run& run) const = 0;
};

/// Plain-value snapshot of the matcher counters of one query (or one
/// (shard, query) cell in the sharded engine). Copyable and summable; this
/// is what metrics readers receive.
struct MatcherStats {
  uint64_t events = 0;
  uint64_t runs_created = 0;
  uint64_t runs_forked = 0;
  uint64_t runs_completed = 0;        // retired by a completing match
  uint64_t runs_expired = 0;          // WITHIN span exceeded
  uint64_t runs_killed_strict = 0;    // strict contiguity violation
  uint64_t runs_killed_negation = 0;  // negation watcher fired
  uint64_t runs_pruned_score = 0;     // ranking upper-bound prune
  uint64_t runs_dropped_capacity = 0; // run-budget load shedding (any policy)
  uint64_t events_quarantined = 0;    // poison events skipped (kSkipAndCount)
  uint64_t runs_poisoned = 0;         // runs discarded by a poison event
  uint64_t matches = 0;
  // -- hot-path memory / evaluation counters (see docs/ARCHITECTURE.md,
  //    "Run-state memory model") ------------------------------------------
  uint64_t runs_cloned = 0;               // run copies (forks + multi-starts)
  uint64_t binding_nodes_allocated = 0;   // binding-list cells constructed
  uint64_t predcache_hits = 0;            // event-only verdicts served cached
  uint64_t predcache_misses = 0;          // event-only verdicts computed
  // -- shared partial-match DAG counters (engine/match_dag.h) --------------
  uint64_t dag_nodes_allocated = 0;       // DAG node constructions
  uint64_t dag_nodes_shared = 0;          // node sharing events (extra refs)
  size_t peak_active_runs = 0;
  size_t peak_dag_nodes = 0;              // max simultaneously live DAG nodes

  /// Field-wise accumulation (peak_active_runs adds too: per-shard peaks
  /// are disjoint run sets, so the sum is the engine-wide upper bound).
  void Accumulate(const MatcherStats& other);

  /// Checkpoint serialization (field-wise, fixed order).
  void Save(BinWriter* w) const;
  bool Load(BinReader* r);

  std::string ToString() const;
};

/// Live counters shared by all partition matchers of one query, written by
/// the single thread driving those matchers and snapshottable from any
/// thread (single-writer relaxed atomics; see common/counters.h).
struct AtomicMatcherStats {
  RelaxedCounter events;
  RelaxedCounter runs_created;
  RelaxedCounter runs_forked;
  RelaxedCounter runs_completed;
  RelaxedCounter runs_expired;
  RelaxedCounter runs_killed_strict;
  RelaxedCounter runs_killed_negation;
  RelaxedCounter runs_pruned_score;
  RelaxedCounter runs_dropped_capacity;
  RelaxedCounter events_quarantined;
  RelaxedCounter runs_poisoned;
  RelaxedCounter matches;
  RelaxedCounter runs_cloned;
  RelaxedCounter binding_nodes_allocated;
  RelaxedCounter predcache_hits;
  RelaxedCounter predcache_misses;
  RelaxedCounter dag_nodes_allocated;
  RelaxedCounter dag_nodes_shared;
  RelaxedMax peak_active_runs;
  RelaxedMax peak_dag_nodes;

  MatcherStats Snapshot() const;
  /// Checkpoint restore: overwrites every counter from a snapshot. Writer
  /// thread only, while no other thread reads (engine quiesced).
  void Restore(const MatcherStats& s);
};

/// What to shed when a run budget (per-partition `max_active_runs` or
/// shared `max_total_runs`) is full and a new run wants in. Every shed —
/// whichever policy — increments `runs_dropped_capacity`.
enum class ShedPolicy {
  /// Reject the incoming run; established runs keep their slots.
  kRejectNew,
  /// Drop the oldest run of the overflowing partition (FIFO; the legacy
  /// `max_active_runs` behavior and the default).
  kShedOldest,
  /// Drop whichever run — the incoming one included — has the weakest
  /// attainable score bound (DeriveBounds over the run's BoundEnv, the same
  /// machinery the ranking pruner uses), so under overload the emitted
  /// top-k degrades gracefully: the runs that could still place high
  /// survive. O(active runs) per shed; falls back to kShedOldest for
  /// unranked queries.
  kShedLowestScoreBound,
};

/// Stable name ("RejectNew" / "ShedOldest" / "ShedLowestScoreBound").
const char* ShedPolicyToString(ShedPolicy policy);

struct MatcherOptions {
  /// Hard cap on simultaneously active runs per partition; beyond it one
  /// run is shed per `shed_policy` (and counted). Bounds
  /// SKIP_TILL_ANY_MATCH blowup on hostile data.
  size_t max_active_runs = 100000;
  /// Cap on live runs across every partition sharing one budget counter
  /// (all matchers of a serial Engine; all cells of one shard in the
  /// sharded engine). 0 = unlimited.
  size_t max_total_runs = 0;
  /// Which run to shed when either budget is full.
  ShedPolicy shed_policy = ShedPolicy::kShedOldest;
  /// What to do when runtime evaluation faults on an event (see
  /// common/fault.h).
  FaultPolicy fault_policy = FaultPolicy::kFailFast;
  /// Optional fault-injection harness (tests/bench); not owned, may be
  /// null, must outlive the matcher.
  const FaultInjector* fault_injector = nullptr;

  // -- Hot-path ablation switches (E14). Defaults are the fast path; each
  //    may be disabled independently to isolate its contribution. All four
  //    combinations are observationally identical (same matches, scores,
  //    tie-broken order) — enforced by CowEquivalence tests. --------------
  /// Copy-on-write persistent bindings: forking shares the parent's chains
  /// (O(components)). false = legacy node-by-node deep copy (O(events)).
  bool cow_bindings = true;
  /// Pool Run objects and binding nodes in per-query freelists; false =
  /// plain new/delete per object.
  bool use_arena = true;
  /// Evaluate event-only predicates once per event and share the verdict
  /// across the partition's runs; false = re-evaluate per run.
  bool predicate_cache = true;
  /// Execute predicates / SELECT items / scores through the flat bytecode
  /// VM (expr/vm.h) instead of the recursive AST walk; false = legacy AST
  /// evaluation. Bit-identical output either way (the VM mirrors the AST
  /// evaluator's semantics exactly; enforced by BytecodeEquivalence tests).
  bool bytecode_eval = true;
  /// Represent the trailing-Kleene fan-out of eligible SKIP_TILL_ANY_MATCH
  /// patterns (see MatchDagEligible) as a shared partial-match DAG with
  /// lazy rank-ordered enumeration at window close, instead of one forked
  /// run per suffix subset: per-event work drops from O(live runs) to
  /// O(groups) and state stays linear in window size. false = the PR4
  /// per-run COW path. Ranked output is identical either way (enforced by
  /// CowEquivalence dag rows).
  bool shared_match_dag = true;
  /// Expire runs with a dense column scan (EventBatch-style SoA view over
  /// first-timestamp / first-sequence columns maintained beside the run
  /// set) instead of dereferencing each Run in the per-run loop; false =
  /// the legacy per-run check. Observationally identical.
  bool columnar_expiry = true;
};

/// Overlays engine-wide overload/fault options onto a query's own
/// MatcherOptions at registration time: caps combine to the smaller
/// non-zero value; the policies and the injector are taken from the engine
/// when it sets a non-default / non-null value.
MatcherOptions MergeEngineCaps(MatcherOptions base, size_t max_runs_per_partition,
                               size_t max_total_runs, ShedPolicy shed_policy,
                               FaultPolicy fault_policy,
                               const FaultInjector* fault_injector);

/// Executes one compiled pattern over one partition's event sequence,
/// maintaining the active-run set and emitting Match objects.
///
/// Per-event semantics (documented order of attempted actions per run):
///  1. expire the run if the event pushes past the WITHIN span;
///  2. BEGIN the next component (requires the open Kleene component's exit
///     predicates, the type tag, and the begin predicates to pass);
///  3. otherwise the negation watcher may KILL the run;
///  4. otherwise TAKE the event as a Kleene extension;
///  5. otherwise IGNORE it (skip-till strategies) or die (strict).
/// SKIP_TILL_ANY_MATCH explores every enabled action by forking;
/// SKIP_TILL_NEXT_MATCH and STRICT take the first enabled action.
/// Every event additionally tries to start a fresh run at component 0.
class Matcher {
 public:
  /// `pruner` may be null (no score pruning). `stats` and `next_match_id`
  /// are owned by the caller and shared across partition matchers.
  /// `live_runs` (nullable) is the shared budget counter `max_total_runs`
  /// is enforced against; the matcher keeps it in sync with its run set.
  /// `memory` (nullable) is the shared run arena/pool of the query scope
  /// (PartitionedMatcher owns one for all its partitions); when null the
  /// matcher owns a private one.
  Matcher(CompiledQueryPtr plan, const MatcherOptions& options,
          const RunPruner* pruner, AtomicMatcherStats* stats,
          uint64_t* next_match_id, size_t* live_runs = nullptr,
          RunMemory* memory = nullptr);

  /// Releases this matcher's runs from the shared budget counter (a query
  /// may be removed while the engine keeps running).
  ~Matcher();

  Matcher(Matcher&&) = default;
  Matcher& operator=(Matcher&&) = default;

  /// Feeds one event; completed matches are appended to `out`. Fails only
  /// on a runtime fault under FaultPolicy::kFailFast (the run set is left
  /// coherent either way; under kSkipAndCount faults are quarantined and
  /// counted instead).
  Status OnEvent(const EventPtr& event, std::vector<Match>* out);

  /// DAG-aware variant: when the query scope carries a DAG store (see
  /// RunMemory::dag) and `lazy_out` is non-null, the trailing-Kleene
  /// fan-out is maintained as shared DAG groups and detections are appended
  /// to `lazy_out` as deferred LazyMatchSets instead of materialized
  /// matches (prefix-building matches still arrive via `out`). The mode is
  /// latched on the first event — callers must pass `lazy_out`
  /// consistently for the matcher's lifetime.
  Status OnEvent(const EventPtr& event, std::vector<Match>* out,
                 std::vector<LazyMatchSet>* lazy_out);

  size_t active_runs() const { return runs_.size(); }
  /// Live DAG groups (0 outside dag mode). Group state is live state: an
  /// event can extend or expire groups even with zero runs.
  size_t active_groups() const { return groups_.size(); }
  /// Rough bytes held by active runs.
  size_t MemoryEstimate() const;

  /// Checkpoint serialization of the live-run set. Save writes the run-id
  /// counter plus every active run in insertion order (the order ProcessRun
  /// visits them — load-order fidelity keeps recovery bit-identical). Load
  /// expects a freshly constructed matcher and acquires runs from the shared
  /// pool, keeping the shared live-run budget counter in sync.
  void SaveState(EventInterner* in, BinWriter* w) const;
  bool LoadState(EventUninterner* in, BinReader* r);

 private:
  enum class RunFate { kKeep, kRemove };

  /// One shared-DAG group: the state that replaces the exponential set of
  /// forked runs sharing one closed prefix. `owner` is the id of the
  /// prefix run the group was split from (it keeps running, frozen, as the
  /// group's "ignore" continuation), or kNoOwner for groups anchored by a
  /// fresh start (those pin their first event so concurrent anchors never
  /// duplicate a path). `head` carries one owned node reference.
  struct DagGroup {
    uint64_t owner = kNoOwner;
    DagGroupContextPtr ctx;
    DagNode* head = nullptr;
  };
  static constexpr uint64_t kNoOwner = static_cast<uint64_t>(-1);

  RunFate ProcessRun(Run* run, const EventPtr& event, std::vector<Match>* out,
                     std::vector<RunHandle>* forks,
                     std::vector<LazyMatchSet>* lazy_out);
  void TryStartRun(const EventPtr& event, std::vector<Match>* out,
                   std::vector<LazyMatchSet>* lazy_out);

  // -- shared partial-match DAG (engine/match_dag.h) -----------------------
  /// Verdict of the trailing component's (all event-only) iteration
  /// predicates for this event — the one evaluation every group shares.
  bool GroupEventPasses(const Event& event) const;
  /// Expires groups, then extends every surviving group with the event if
  /// it passes: one extend + one union node per group, and one LazyMatchSet
  /// per group covering exactly the matches the per-run engine would have
  /// emitted on this event.
  void ProcessGroups(const EventPtr& event, std::vector<LazyMatchSet>* lazy_out);
  /// Creates a group from `run`'s closed prefix, seeded with `event` as the
  /// trailing variable's first iteration (emitting that one-iteration set).
  void StartGroup(uint64_t owner, const Run& run, const EventPtr& event,
                  std::vector<LazyMatchSet>* lazy_out);
  void ReleaseGroups();

  /// Columnar run expiry (options_.columnar_expiry): scans the dense
  /// first-timestamp / first-sequence columns kept parallel to runs_ and
  /// compacts expired runs away before the per-run loop.
  void ColumnarExpire(const Event& event);

  /// Acquires a pooled run and copies `src`'s state into it (counted).
  RunHandle CloneRun(const Run& src, uint64_t new_id);

  bool TypeMatches(const std::string& tag, const Event& event) const;
  /// Evaluates one edge-predicate conjunct for `run` with `event` as the
  /// candidate for `var_index`. Event-only conjuncts (cache_id >= 0) are
  /// answered from the per-event cache when the predicate cache is on —
  /// evaluated at most once per event under an EventOnlyContext and shared
  /// across every run of the partition; correlated conjuncts (and all
  /// conjuncts with the cache disabled) evaluate against the run.
  /// `prog` is the conjunct's compiled bytecode (nullptr = AST fallback),
  /// used when options_.bytecode_eval is on.
  bool EvalPred(const Run& run, const Expr& pred, const BytecodeProgram* prog,
                int cache_id, int var_index, const Event& event) const;
  bool PassesBegin(Run* run, int comp_index, const Event& event) const;
  bool PassesIter(Run* run, int comp_index, const Event& event) const;
  /// Exit predicates + the minimum-iteration bound of component
  /// `comp_index`, evaluated on the run's current binding (possibly empty).
  bool PassesExit(Run* run, int comp_index) const;
  /// Components the event could begin for this run: the next component,
  /// and — by skipping optional / zero-minimum-Kleene components — any
  /// later ones reachable through skippable prefixes. Empty if the open
  /// Kleene component cannot close yet.
  void BeginOptions(Run* run, const Event& event, std::vector<int>* out) const;
  bool CanExtend(Run* run, const Event& event) const;
  bool NegationKills(Run* run, const Event& event) const;
  /// WITHIN expiry (time- or count-based span exceeded by this event).
  bool Expired(const Run& run, const Event& event) const;

  /// Emits a match from a run whose pattern is complete; returns true if
  /// emitted (trailing-Kleene exit predicates may block it).
  bool MaybeEmit(Run* run, std::vector<Match>* out);

  /// Score-prunes `run` if the pruner says so (counting it); true = pruned.
  bool MaybePruneAndCount(const Run& run);

  /// Admits `run` into the active set, shedding per `shed_policy` when a
  /// budget is full (the victim may be `run` itself). Takes ownership.
  void InsertRun(RunHandle run);
  /// Frees one slot for `incoming` and counts the shed; false = the
  /// incoming run is the victim.
  bool ShedOne(const Run& incoming);
  /// Larger = more worth keeping: the score bound's best attainable end
  /// (hi for RANK BY ... DESC, -lo for ASC).
  double BoundStrength(const Run& run) const;
  /// Erases runs_[index], keeping the shared live-run counter in sync.
  void RemoveRunAt(size_t index);
  /// Whether `event` would reach predicate evaluation for this run (it
  /// type-matches the open Kleene component, a beginnable next component,
  /// or that component's negation watcher) — i.e. a poison event faults it.
  bool WouldEvaluate(Run* run, const Event& event) const;
  /// kSkipAndCount handling of an injected eval fault: quarantines the
  /// event and every run it would have faulted.
  void QuarantineEvent(const Event& event);

  CompiledQueryPtr plan_;
  MatcherOptions options_;
  const RunPruner* pruner_;     // not owned; may be null
  AtomicMatcherStats* stats_;   // not owned
  uint64_t* next_match_id_;  // not owned
  size_t* live_runs_;        // not owned; may be null (no shared budget)
  /// Owned fallback when no shared RunMemory is passed in; held by pointer
  /// so run-held arena addresses survive a Matcher move. Declared before
  /// runs_ so destruction recycles runs into a still-live pool.
  std::unique_ptr<RunMemory> owned_memory_;
  RunMemory* memory_;  // never null after ctor
  uint64_t next_run_id_ = 0;
  std::vector<RunHandle> runs_;
  /// Dense SoA columns parallel to runs_ (first bound event's timestamp /
  /// stream sequence), scanned by ColumnarExpire.
  std::vector<Timestamp> run_first_ts_;
  std::vector<uint64_t> run_first_seq_;
  /// Latched on the first event: groups are maintained iff the scope has a
  /// DAG store AND the caller collects lazy sets.
  bool dag_decided_ = false;
  bool dag_active_ = false;
  std::vector<DagGroup> groups_;
  /// Ids of prefix runs that already split off a group (their closed prefix
  /// is frozen, so one group covers all their trailing fan-out forever).
  std::unordered_set<uint64_t> dag_group_owners_;
  /// Scratch buffer reused across BeginOptions calls (single-threaded).
  std::vector<int> scratch_options_;
  /// Per-event verdict cache for event-only predicates, indexed by
  /// compiler-assigned cache id: -1 unknown, 0 false, 1 true. Reset at the
  /// top of OnEvent; filled lazily during predicate evaluation (const
  /// methods), hence mutable.
  mutable std::vector<int8_t> pred_cache_;
  /// Reusable register file for the bytecode VM (single-threaded; mutable
  /// because predicate evaluation happens in const methods).
  mutable VmState vm_;
};

}  // namespace cepr

#endif  // CEPR_ENGINE_MATCHER_H_
