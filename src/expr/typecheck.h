#ifndef CEPR_EXPR_TYPECHECK_H_
#define CEPR_EXPR_TYPECHECK_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "event/schema.h"
#include "expr/expr.h"

namespace cepr {

/// One pattern variable as declared in PATTERN SEQ(...): its name, whether
/// it is Kleene-plus (`b+`), whether it is negated (`!c`), and an optional
/// event-type tag (`SEQ(Buy a, ...)` filters events whose type_tag is
/// "Buy").
struct PatternVar {
  std::string name;
  bool is_kleene = false;
  bool is_negated = false;
  std::string type_tag;
};

/// The variable/schema environment expressions are resolved against:
/// the ordered pattern variables of a query plus the stream schema.
class BindingLayout {
 public:
  BindingLayout() = default;
  BindingLayout(std::vector<PatternVar> vars, SchemaPtr schema)
      : vars_(std::move(vars)), schema_(std::move(schema)) {}

  const std::vector<PatternVar>& vars() const { return vars_; }
  size_t num_vars() const { return vars_.size(); }
  const PatternVar& var(int i) const { return vars_[static_cast<size_t>(i)]; }
  const SchemaPtr& schema() const { return schema_; }

  /// Index of the pattern variable with the given (case-insensitive) name.
  Result<int> VarIndex(std::string_view name) const;

 private:
  std::vector<PatternVar> vars_;
  SchemaPtr schema_;
};

/// Where an expression appears, which constrains the references it may use.
enum class ExprContext {
  /// WHERE clause: VarRefs to single (and negated) variables, IterRefs to
  /// Kleene variables, aggregates over Kleene variables.
  kPredicate,
  /// SELECT / RANK BY: evaluated on a *complete* match, so per-iteration
  /// IterRefs (b[i], b[i-1]) are meaningless and rejected; b[1] is written
  /// FIRST(b).attr instead. Negated variables cannot be referenced.
  kOutput,
};

/// Resolves names against `layout` and computes result types bottom-up,
/// annotating each node's var_index / attr_index / result_type in place.
/// The root of a kPredicate expression must be BOOL; a kOutput expression
/// may be any type (RANK BY additionally requires numeric, checked by the
/// analyzer).
///
/// Type rules (documented once here, implemented in typecheck.cc):
///  * INT op INT -> INT for + - * %, FLOAT for /; any FLOAT operand
///    promotes the result to FLOAT.
///  * comparisons need two numerics or two values of the same type (or a
///    NULL literal on either side) and yield BOOL.
///  * AND/OR/NOT operate on BOOL.
///  * MIN/MAX/SUM need a numeric attribute and keep its type (SUM of INT is
///    INT); AVG yields FLOAT; COUNT yields INT; FIRST/LAST keep the
///    attribute type.
///  * `var.ts` resolves to the event timestamp as INT microseconds.
Status TypeCheck(Expr* expr, const BindingLayout& layout, ExprContext context);

}  // namespace cepr

#endif  // CEPR_EXPR_TYPECHECK_H_
