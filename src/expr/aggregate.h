#ifndef CEPR_EXPR_AGGREGATE_H_
#define CEPR_EXPR_AGGREGATE_H_

#include <string>
#include <vector>

#include "event/event.h"
#include "expr/expr.h"

namespace cepr {

/// Storage class of one incremental accumulator. AVG has no storage of its
/// own: it reads a kSum slot and divides by the variable's iteration count.
enum class AggStorageKind { kMin, kMax, kSum };

/// One accumulator the engine must maintain for a query: "the running
/// <kind> of attribute <attr_index> over Kleene variable <var_index>".
struct AggSpec {
  AggStorageKind kind = AggStorageKind::kSum;
  int var_index = -1;
  int attr_index = -1;

  bool operator==(const AggSpec& other) const {
    return kind == other.kind && var_index == other.var_index &&
           attr_index == other.attr_index;
  }
};

/// Assigns accumulator slots for every MIN/MAX/SUM/AVG aggregate in `exprs`
/// (deduplicated), writing each node's agg_slot. Returns the slot table the
/// engine allocates per active run. Expressions must already be type
/// checked. COUNT/FIRST/LAST need no slot (the run tracks first/last/count
/// per variable anyway).
std::vector<AggSpec> AssignAggSlots(const std::vector<Expr*>& exprs);

/// The per-run accumulator values, one double per AggSpec. Updated in O(1)
/// when an event is accepted into a Kleene binding.
class AggStates {
 public:
  AggStates() = default;
  explicit AggStates(const std::vector<AggSpec>* specs);

  /// Folds `event` (newly accepted into Kleene variable `var_index`) into
  /// every accumulator of that variable. Non-numeric or NULL attribute
  /// values are skipped (cannot occur after type checking, except NULL).
  void Accept(int var_index, const Event& event);

  /// Restores every accumulator to its identity value (+inf/-inf/0) without
  /// shrinking storage — run-pool reuse (see engine/run.h RunPool).
  void Reset();

  /// Current accumulated value of slot i (+inf/-inf/0 when no event has
  /// been accepted yet, per storage kind).
  double value(size_t i) const { return values_[i]; }
  size_t size() const { return values_.size(); }

 private:
  const std::vector<AggSpec>* specs_ = nullptr;  // not owned; query-lifetime
  std::vector<double> values_;
};

}  // namespace cepr

#endif  // CEPR_EXPR_AGGREGATE_H_
