#include "expr/fold.h"

#include <utility>

#include "expr/eval.h"

namespace cepr {

namespace {

// No bindings: only reachable by literal-only subtrees.
class NoBindingContext : public EvalContext {
 public:
  const Event* SingleEvent(int) const override { return nullptr; }
  const Event* KleeneFirst(int) const override { return nullptr; }
  const Event* KleeneLast(int) const override { return nullptr; }
  const Event* KleeneCurrent(int) const override { return nullptr; }
  int64_t KleeneCount(int) const override { return 0; }
  double AggValue(int) const override { return 0.0; }
};

bool IsLiteral(const Expr& e) { return e.kind == ExprKind::kLiteral; }

bool IsBoolLiteral(const Expr& e, bool value) {
  return IsLiteral(e) && e.literal.type() == ValueType::kBool &&
         e.literal.AsBool() == value;
}

// True iff the node's value depends only on literals (no refs anywhere).
bool AllChildrenLiteral(const Expr& e) {
  for (const auto& c : e.children) {
    if (!IsLiteral(*c)) return false;
  }
  return true;
}

ExprPtr MakeLiteral(Value v, ValueType static_type) {
  ExprPtr lit = Expr::Literal(std::move(v));
  // Keep the statically inferred type even when the value is NULL, so
  // downstream consumers (e.g. output typing) stay stable.
  lit->result_type =
      lit->literal.type() == ValueType::kNull ? static_type : lit->literal.type();
  return lit;
}

}  // namespace

ExprPtr FoldConstants(ExprPtr expr) {
  // Leaves with references never fold.
  if (expr->kind == ExprKind::kVarRef || expr->kind == ExprKind::kIterRef ||
      expr->kind == ExprKind::kAggregate || expr->kind == ExprKind::kLiteral) {
    return expr;
  }

  for (auto& child : expr->children) {
    child = FoldConstants(std::move(child));
  }

  // Boolean identities (valid under three-valued logic: TRUE/FALSE branches
  // are definite regardless of the other operand).
  if (expr->kind == ExprKind::kBinary) {
    Expr& lhs = *expr->children[0];
    Expr& rhs = *expr->children[1];
    if (expr->binary_op == BinaryOp::kAnd) {
      if (IsBoolLiteral(lhs, false) || IsBoolLiteral(rhs, false)) {
        return MakeLiteral(Value::Bool(false), ValueType::kBool);
      }
      if (IsBoolLiteral(lhs, true)) return std::move(expr->children[1]);
      if (IsBoolLiteral(rhs, true)) return std::move(expr->children[0]);
    }
    if (expr->binary_op == BinaryOp::kOr) {
      if (IsBoolLiteral(lhs, true) || IsBoolLiteral(rhs, true)) {
        return MakeLiteral(Value::Bool(true), ValueType::kBool);
      }
      if (IsBoolLiteral(lhs, false)) return std::move(expr->children[1]);
      if (IsBoolLiteral(rhs, false)) return std::move(expr->children[0]);
    }
  }

  if (expr->kind == ExprKind::kCase) {
    // Drop FALSE arms; collapse on the first TRUE arm.
    std::vector<ExprPtr> kept;
    const size_t pairs = (expr->children.size() - (expr->has_else ? 1 : 0)) / 2;
    for (size_t i = 0; i < pairs; ++i) {
      Expr& cond = *expr->children[2 * i];
      if (IsBoolLiteral(cond, false)) continue;
      if (IsBoolLiteral(cond, true) && kept.empty()) {
        return std::move(expr->children[2 * i + 1]);
      }
      kept.push_back(std::move(expr->children[2 * i]));
      kept.push_back(std::move(expr->children[2 * i + 1]));
    }
    if (kept.empty()) {
      // Every arm folded away: the ELSE (or NULL) is the value.
      if (expr->has_else) return std::move(expr->children.back());
      return MakeLiteral(Value::Null(), expr->result_type);
    }
    if (expr->has_else) kept.push_back(std::move(expr->children.back()));
    const ValueType type = expr->result_type;
    const bool has_else = expr->has_else;
    expr = Expr::Case(std::move(kept), has_else);
    expr->result_type = type;
    return expr;
  }

  // Pure-literal operator/function nodes evaluate at compile time.
  if ((expr->kind == ExprKind::kUnary || expr->kind == ExprKind::kBinary ||
       expr->kind == ExprKind::kFunc) &&
      AllChildrenLiteral(*expr)) {
    NoBindingContext ctx;
    auto v = Evaluate(*expr, ctx);
    if (v.ok()) return MakeLiteral(std::move(v).value(), expr->result_type);
  }
  return expr;
}

}  // namespace cepr
