#include "expr/eval.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace cepr {

namespace {

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt || v.type() == ValueType::kFloat;
}

double Num(const Value& v) {
  return v.type() == ValueType::kInt ? static_cast<double>(v.AsInt()) : v.AsFloat();
}

// Arithmetic contract (mirrored bit-for-bit by the bytecode VM in expr/vm.cc):
// pure-integer +, -, *, %, ABS, LEAST/GREATEST and unary negation run natively
// in int64 and yield NULL on overflow, matching the div/mod-by-zero
// convention. INT64_MIN % -1 is 0. Repacking a double into an INT result
// (FLOOR/CEIL/ROUND, int-typed aggregates, mixed-type LEAST/GREATEST) yields
// NULL when the value is NaN or rounds outside the int64 range.

// Exact double bounds of int64: -2^63 is representable, 2^63 is the first
// double past INT64_MAX. The half-open test also rejects NaN.
constexpr double kInt64LowerBound = -9223372036854775808.0;
constexpr double kInt64UpperBound = 9223372036854775808.0;

// Packages a double into the statically determined result type.
Value MakeNumeric(double x, ValueType type) {
  if (type == ValueType::kInt) {
    if (!(x >= kInt64LowerBound && x < kInt64UpperBound)) return Value::Null();
    return Value::Int(static_cast<int64_t>(llround(x)));
  }
  return Value::Float(x);
}

// Fetches the addressed attribute (or timestamp) from an event.
Value FetchAttr(const Event* event, int attr_index) {
  if (event == nullptr) return Value::Null();
  if (attr_index == kTimestampAttr) return Value::Int(event->timestamp());
  return event->value(static_cast<size_t>(attr_index));
}

Result<Value> EvalNode(const Expr& e, const EvalContext& ctx);

Result<Value> EvalBinary(const Expr& e, const EvalContext& ctx) {
  // Three-valued AND/OR need lazy handling of NULL, so do them first.
  if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
    CEPR_ASSIGN_OR_RETURN(const Value lhs, EvalNode(*e.children[0], ctx));
    const bool want_short = e.binary_op == BinaryOp::kOr;  // TRUE short-circuits OR
    if (lhs.type() == ValueType::kBool && lhs.AsBool() == want_short) {
      return Value::Bool(want_short);
    }
    CEPR_ASSIGN_OR_RETURN(const Value rhs, EvalNode(*e.children[1], ctx));
    if (rhs.type() == ValueType::kBool && rhs.AsBool() == want_short) {
      return Value::Bool(want_short);
    }
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    if (lhs.type() != ValueType::kBool || rhs.type() != ValueType::kBool) {
      return Status::Internal("AND/OR on non-bool at runtime: " + e.ToString());
    }
    return Value::Bool(e.binary_op == BinaryOp::kAnd ? (lhs.AsBool() && rhs.AsBool())
                                                     : (lhs.AsBool() || rhs.AsBool()));
  }

  CEPR_ASSIGN_OR_RETURN(const Value lhs, EvalNode(*e.children[0], ctx));
  CEPR_ASSIGN_OR_RETURN(const Value rhs, EvalNode(*e.children[1], ctx));

  switch (e.binary_op) {
    case BinaryOp::kEq:
      if (lhs.is_null() || rhs.is_null()) {
        // NULL = NULL is TRUE in CEPR (missing-vs-missing); NULL = x is NULL.
        return (lhs.is_null() && rhs.is_null()) ? Value::Bool(true) : Value::Null();
      }
      return Value::Bool(lhs == rhs);
    case BinaryOp::kNe:
      if (lhs.is_null() || rhs.is_null()) {
        return (lhs.is_null() && rhs.is_null()) ? Value::Bool(false) : Value::Null();
      }
      return Value::Bool(lhs != rhs);
    default:
      break;
  }

  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  switch (e.binary_op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.type() == ValueType::kString && rhs.type() == ValueType::kString) {
        const int c = lhs.AsString().compare(rhs.AsString());
        switch (e.binary_op) {
          case BinaryOp::kLt:
            return Value::Bool(c < 0);
          case BinaryOp::kLe:
            return Value::Bool(c <= 0);
          case BinaryOp::kGt:
            return Value::Bool(c > 0);
          default:
            return Value::Bool(c >= 0);
        }
      }
      if (!IsNumeric(lhs) || !IsNumeric(rhs)) {
        return Status::Internal("comparison on non-numeric at runtime: " +
                                e.ToString());
      }
      if (lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt) {
        // Native compare: the double path is lossy beyond 2^53.
        const int64_t a = lhs.AsInt();
        const int64_t b = rhs.AsInt();
        switch (e.binary_op) {
          case BinaryOp::kLt:
            return Value::Bool(a < b);
          case BinaryOp::kLe:
            return Value::Bool(a <= b);
          case BinaryOp::kGt:
            return Value::Bool(a > b);
          default:
            return Value::Bool(a >= b);
        }
      }
      const double a = Num(lhs);
      const double b = Num(rhs);
      switch (e.binary_op) {
        case BinaryOp::kLt:
          return Value::Bool(a < b);
        case BinaryOp::kLe:
          return Value::Bool(a <= b);
        case BinaryOp::kGt:
          return Value::Bool(a > b);
        default:
          return Value::Bool(a >= b);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      if (!IsNumeric(lhs) || !IsNumeric(rhs)) {
        return Status::Internal("arithmetic on non-numeric at runtime: " +
                                e.ToString());
      }
      if (lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt &&
          e.result_type == ValueType::kInt) {
        const int64_t a = lhs.AsInt();
        const int64_t b = rhs.AsInt();
        int64_t r = 0;
        const bool overflow =
            e.binary_op == BinaryOp::kAdd   ? __builtin_add_overflow(a, b, &r)
            : e.binary_op == BinaryOp::kSub ? __builtin_sub_overflow(a, b, &r)
                                            : __builtin_mul_overflow(a, b, &r);
        if (overflow) return Value::Null();
        return Value::Int(r);
      }
      const double a = Num(lhs);
      const double b = Num(rhs);
      const double r = e.binary_op == BinaryOp::kAdd   ? a + b
                       : e.binary_op == BinaryOp::kSub ? a - b
                                                       : a * b;
      return MakeNumeric(r, e.result_type);
    }
    case BinaryOp::kDiv: {
      if (!IsNumeric(lhs) || !IsNumeric(rhs)) {
        return Status::Internal("division on non-numeric at runtime: " +
                                e.ToString());
      }
      const double b = Num(rhs);
      if (b == 0.0) return Value::Null();
      return Value::Float(Num(lhs) / b);
    }
    case BinaryOp::kMod: {
      if (lhs.type() != ValueType::kInt || rhs.type() != ValueType::kInt) {
        return Status::Internal("% on non-INT at runtime: " + e.ToString());
      }
      if (rhs.AsInt() == 0) return Value::Null();
      // x % -1 is 0 for every x, but INT64_MIN % -1 overflows the hardware
      // divide (SIGFPE on x86); answer directly.
      if (rhs.AsInt() == -1) return Value::Int(0);
      return Value::Int(lhs.AsInt() % rhs.AsInt());
    }
    default:
      return Status::Internal("unhandled binary op at runtime");
  }
}

Result<Value> EvalAggregate(const Expr& e, const EvalContext& ctx) {
  switch (e.agg_func) {
    case AggFunc::kCount:
      return Value::Int(ctx.KleeneCount(e.var_index));
    case AggFunc::kFirst:
      return FetchAttr(ctx.KleeneFirst(e.var_index), e.attr_index);
    case AggFunc::kLast:
      return FetchAttr(ctx.KleeneLast(e.var_index), e.attr_index);
    case AggFunc::kAvg: {
      const int64_t n = ctx.KleeneCount(e.var_index);
      if (n == 0) return Value::Null();
      if (e.agg_slot < 0) return Status::Internal("AVG without slot: " + e.ToString());
      return Value::Float(ctx.AggValue(e.agg_slot) / static_cast<double>(n));
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
    case AggFunc::kSum: {
      if (e.agg_slot < 0) {
        return Status::Internal("aggregate without slot: " + e.ToString());
      }
      if (ctx.KleeneCount(e.var_index) == 0) return Value::Null();
      const double v = ctx.AggValue(e.agg_slot);
      if (!std::isfinite(v) && e.agg_func != AggFunc::kSum) return Value::Null();
      return MakeNumeric(v, e.result_type);
    }
  }
  return Status::Internal("unhandled aggregate at runtime");
}

Result<Value> EvalNode(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;

    case ExprKind::kVarRef:
      return FetchAttr(ctx.SingleEvent(e.var_index), e.attr_index);

    case ExprKind::kIterRef: {
      const Event* ev = e.iter_kind == IterKind::kCurrent
                            ? ctx.KleeneCurrent(e.var_index)
                        : e.iter_kind == IterKind::kPrev
                            ? ctx.KleeneLast(e.var_index)
                            : ctx.KleeneFirst(e.var_index);
      return FetchAttr(ev, e.attr_index);
    }

    case ExprKind::kAggregate:
      return EvalAggregate(e, ctx);

    case ExprKind::kUnary: {
      CEPR_ASSIGN_OR_RETURN(const Value v, EvalNode(*e.children[0], ctx));
      if (v.is_null()) return Value::Null();
      if (e.unary_op == UnaryOp::kNot) {
        if (v.type() != ValueType::kBool) {
          return Status::Internal("NOT on non-bool at runtime");
        }
        return Value::Bool(!v.AsBool());
      }
      if (!IsNumeric(v)) return Status::Internal("negation of non-numeric");
      if (v.type() == ValueType::kInt) {
        if (v.AsInt() == std::numeric_limits<int64_t>::min()) return Value::Null();
        return Value::Int(-v.AsInt());
      }
      return Value::Float(-v.AsFloat());
    }

    case ExprKind::kBinary:
      return EvalBinary(e, ctx);

    case ExprKind::kCase: {
      const size_t pairs = (e.children.size() - (e.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        CEPR_ASSIGN_OR_RETURN(const Value cond, EvalNode(*e.children[2 * i], ctx));
        // NULL conditions are not satisfied, as in predicates.
        if (cond.type() == ValueType::kBool && cond.AsBool()) {
          CEPR_ASSIGN_OR_RETURN(Value v, EvalNode(*e.children[2 * i + 1], ctx));
          // Promote INT branch values when the CASE's static type is FLOAT.
          if (e.result_type == ValueType::kFloat && v.type() == ValueType::kInt) {
            return Value::Float(Num(v));
          }
          return v;
        }
      }
      if (!e.has_else) return Value::Null();
      CEPR_ASSIGN_OR_RETURN(Value v, EvalNode(*e.children.back(), ctx));
      if (IsNumeric(v) && e.result_type == ValueType::kFloat &&
          v.type() == ValueType::kInt) {
        return Value::Float(Num(v));
      }
      return v;
    }

    case ExprKind::kFunc: {
      // String functions take string-typed arguments; handle them before
      // the numeric path.
      switch (e.func) {
        case ScalarFunc::kUpper:
        case ScalarFunc::kLower: {
          CEPR_ASSIGN_OR_RETURN(const Value v, EvalNode(*e.children[0], ctx));
          if (v.is_null()) return Value::Null();
          std::string out = v.AsString();
          for (char& c : out) {
            c = e.func == ScalarFunc::kUpper
                    ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                    : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
          }
          return Value::String(std::move(out));
        }
        case ScalarFunc::kLength: {
          CEPR_ASSIGN_OR_RETURN(const Value v, EvalNode(*e.children[0], ctx));
          if (v.is_null()) return Value::Null();
          return Value::Int(static_cast<int64_t>(v.AsString().size()));
        }
        case ScalarFunc::kConcat: {
          std::string out;
          for (const auto& c : e.children) {
            CEPR_ASSIGN_OR_RETURN(const Value v, EvalNode(*c, ctx));
            if (v.is_null()) return Value::Null();
            out += v.AsString();
          }
          return Value::String(std::move(out));
        }
        case ScalarFunc::kSubstr: {
          CEPR_ASSIGN_OR_RETURN(const Value str, EvalNode(*e.children[0], ctx));
          CEPR_ASSIGN_OR_RETURN(const Value start, EvalNode(*e.children[1], ctx));
          CEPR_ASSIGN_OR_RETURN(const Value len, EvalNode(*e.children[2], ctx));
          if (str.is_null() || start.is_null() || len.is_null()) {
            return Value::Null();
          }
          const std::string& text = str.AsString();
          // SQL-style 1-based start; out-of-range clamps.
          int64_t begin = start.AsInt() - 1;
          int64_t count = len.AsInt();
          if (begin < 0) {
            count += begin;  // shift the window right
            begin = 0;
          }
          if (begin >= static_cast<int64_t>(text.size()) || count <= 0) {
            return Value::String("");
          }
          return Value::String(text.substr(
              static_cast<size_t>(begin),
              static_cast<size_t>(std::min<int64_t>(
                  count, static_cast<int64_t>(text.size()) - begin))));
        }
        default:
          break;
      }

      std::vector<Value> vals;
      vals.reserve(e.children.size());
      for (const auto& c : e.children) {
        CEPR_ASSIGN_OR_RETURN(const Value v, EvalNode(*c, ctx));
        if (v.is_null()) return Value::Null();
        if (!IsNumeric(v)) return Status::Internal("function arg non-numeric");
        vals.push_back(v);
      }
      const auto num = [&vals](size_t i) { return Num(vals[i]); };
      const bool all_int = [&vals] {
        for (const Value& v : vals) {
          if (v.type() != ValueType::kInt) return false;
        }
        return true;
      }();
      switch (e.func) {
        case ScalarFunc::kAbs:
          if (all_int && e.result_type == ValueType::kInt) {
            const int64_t a = vals[0].AsInt();
            if (a == std::numeric_limits<int64_t>::min()) return Value::Null();
            return Value::Int(a < 0 ? -a : a);
          }
          return MakeNumeric(std::fabs(num(0)), e.result_type);
        case ScalarFunc::kSqrt:
          if (num(0) < 0) return Value::Null();
          return Value::Float(std::sqrt(num(0)));
        case ScalarFunc::kLog:
          if (num(0) <= 0) return Value::Null();
          return Value::Float(std::log(num(0)));
        case ScalarFunc::kExp:
          return Value::Float(std::exp(num(0)));
        case ScalarFunc::kPow:
          return Value::Float(std::pow(num(0), num(1)));
        case ScalarFunc::kFloor:
          // Already-integral operands pass through exactly; the double path
          // would corrupt values beyond 2^53.
          if (vals[0].type() == ValueType::kInt) return vals[0];
          return MakeNumeric(std::floor(num(0)), ValueType::kInt);
        case ScalarFunc::kCeil:
          if (vals[0].type() == ValueType::kInt) return vals[0];
          return MakeNumeric(std::ceil(num(0)), ValueType::kInt);
        case ScalarFunc::kRound:
          if (vals[0].type() == ValueType::kInt) return vals[0];
          return MakeNumeric(num(0), ValueType::kInt);
        case ScalarFunc::kLeast:
          if (all_int && e.result_type == ValueType::kInt) {
            return Value::Int(std::min(vals[0].AsInt(), vals[1].AsInt()));
          }
          return MakeNumeric(std::min(num(0), num(1)), e.result_type);
        case ScalarFunc::kGreatest:
          if (all_int && e.result_type == ValueType::kInt) {
            return Value::Int(std::max(vals[0].AsInt(), vals[1].AsInt()));
          }
          return MakeNumeric(std::max(num(0), num(1)), e.result_type);
        default:
          break;
      }
      return Status::Internal("unhandled scalar function");
    }
  }
  return Status::Internal("unhandled expression kind at runtime");
}

}  // namespace

bool IsEventOnlyPredicate(const Expr& expr, int var_index, bool is_kleene) {
  switch (expr.kind) {
    case ExprKind::kVarRef:
      // A plain reference is the candidate only for a single variable (for
      // Kleene variables the candidate answers v[i], not v).
      return !is_kleene && expr.var_index == var_index;
    case ExprKind::kIterRef:
      return is_kleene && expr.var_index == var_index &&
             expr.iter_kind == IterKind::kCurrent;
    case ExprKind::kAggregate:
      return false;  // depends on the run's accepted iterations
    default:
      break;
  }
  for (const auto& child : expr.children) {
    if (!IsEventOnlyPredicate(*child, var_index, is_kleene)) return false;
  }
  return true;
}

Result<Value> Evaluate(const Expr& expr, const EvalContext& ctx) {
  return EvalNode(expr, ctx);
}

Result<bool> EvaluatePredicate(const Expr& expr, const EvalContext& ctx) {
  CEPR_ASSIGN_OR_RETURN(const Value v, EvalNode(expr, ctx));
  if (v.type() == ValueType::kBool) return v.AsBool();
  if (v.is_null()) return false;
  return Status::Internal("predicate evaluated to non-bool: " + expr.ToString());
}

double EvaluateScore(const Expr& expr, const EvalContext& ctx) {
  auto v = EvalNode(expr, ctx);
  if (!v.ok() || v->is_null()) return -std::numeric_limits<double>::infinity();
  auto num = v->AsNumeric();
  if (!num.ok()) return -std::numeric_limits<double>::infinity();
  return num.value();
}

}  // namespace cepr
