#ifndef CEPR_EXPR_EVAL_H_
#define CEPR_EXPR_EVAL_H_

#include "common/result.h"
#include "event/event.h"
#include "expr/expr.h"

namespace cepr {

/// The binding state an expression is evaluated against. Implemented by the
/// engine's active Run (partial matches, for edge predicates) and by
/// completed Match objects (for SELECT / RANK BY). All accessors may return
/// nullptr for unbound variables; evaluation then yields NULL.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// The event bound to a non-Kleene variable (also the candidate event when
  /// testing a negated component's predicate).
  virtual const Event* SingleEvent(int var_index) const = 0;

  /// First / most-recently-accepted iteration of a Kleene variable.
  virtual const Event* KleeneFirst(int var_index) const = 0;
  virtual const Event* KleeneLast(int var_index) const = 0;

  /// The candidate event currently being tested for acceptance into a
  /// Kleene variable (b[i] in predicates); nullptr outside predicate
  /// evaluation.
  virtual const Event* KleeneCurrent(int var_index) const = 0;

  /// Number of accepted iterations of a Kleene variable.
  virtual int64_t KleeneCount(int var_index) const = 0;

  /// Accumulated MIN/MAX/SUM value for compiler-assigned slot `agg_slot`.
  virtual double AggValue(int agg_slot) const = 0;
};

/// Minimal EvalContext for event-only predicates (see IsEventOnlyPredicate):
/// the candidate event answers for `var_index` — both as a single binding
/// and as the current Kleene iteration — and everything else is unbound.
/// Evaluating an event-only predicate here yields exactly the value a Run
/// with the candidate installed would produce, which is what lets the
/// matcher evaluate it once per event and share the verdict across runs.
class EventOnlyContext : public EvalContext {
 public:
  EventOnlyContext(int var_index, const Event* event)
      : var_(var_index), event_(event) {}

  const Event* SingleEvent(int var_index) const override {
    return var_index == var_ ? event_ : nullptr;
  }
  const Event* KleeneFirst(int) const override { return nullptr; }
  const Event* KleeneLast(int) const override { return nullptr; }
  const Event* KleeneCurrent(int var_index) const override {
    return var_index == var_ ? event_ : nullptr;
  }
  int64_t KleeneCount(int) const override { return 0; }
  double AggValue(int) const override { return 0.0; }

 private:
  int var_;
  const Event* event_;  // not owned; valid during one evaluation
};

/// True iff `expr`'s value depends only on the candidate event under test
/// for variable `var_index`: every binding reference is that variable's own
/// event (a plain reference for single variables, a current-iteration
/// `v[i]` reference for Kleene variables) and the tree contains no
/// aggregates and no prev/first iteration references. Such a predicate is
/// run-independent, so the compiler assigns it a cache id and the matcher
/// memoizes its verdict per event (the per-event predicate cache).
bool IsEventOnlyPredicate(const Expr& expr, int var_index, bool is_kleene);

/// Evaluates a resolved, type-checked expression. NULL propagates through
/// arithmetic and comparisons (a NULL operand yields NULL); AND/OR use
/// three-valued logic (FALSE AND NULL = FALSE, TRUE OR NULL = TRUE).
/// Division / modulo by zero yields NULL.
///
/// Integer arithmetic is exact and UB-free (the contract UBSan enforces,
/// mirrored instruction-for-instruction by the bytecode VM in expr/vm.h):
/// int64 +/-/* detect overflow via __builtin_*_overflow and yield NULL;
/// `x % -1` is 0 for every x (including INT64_MIN, which would trap
/// natively); negation and ABS of INT64_MIN yield NULL; FLOOR/CEIL/ROUND
/// guard the float->int cast to [-2^63, 2^63) and yield NULL outside it
/// (NaN and ±inf included). Int/int division is double-typed, so
/// INT64_MIN / -1 is a finite float. Int-int ordering comparisons are
/// exact (never routed through double).
///
/// Returns an error Status only for malformed trees (e.g. unresolved
/// references), which indicates a compiler bug rather than a data
/// condition.
Result<Value> Evaluate(const Expr& expr, const EvalContext& ctx);

/// Evaluates a predicate to a definite boolean: NULL and evaluation of a
/// non-BOOL root count as false.
Result<bool> EvaluatePredicate(const Expr& expr, const EvalContext& ctx);

/// Evaluates an expression to a double for scoring. NULL or non-numeric
/// results map to -infinity (so failed scores never enter a top-k).
double EvaluateScore(const Expr& expr, const EvalContext& ctx);

}  // namespace cepr

#endif  // CEPR_EXPR_EVAL_H_
