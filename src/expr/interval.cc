#include "expr/interval.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace cepr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Multiplication with the convention 0 * inf = 0.
double MulSafe(double a, double b) {
  if (a == 0.0 || b == 0.0) return 0.0;
  return a * b;
}

}  // namespace

std::string Interval::ToString() const {
  return "[" + FormatDouble(lo) + ", " + FormatDouble(hi) + "]";
}

Interval operator+(Interval a, Interval b) { return {a.lo + b.lo, a.hi + b.hi}; }

Interval operator-(Interval a, Interval b) { return {a.lo - b.hi, a.hi - b.lo}; }

Interval operator-(Interval a) { return {-a.hi, -a.lo}; }

Interval operator*(Interval a, Interval b) {
  const double p1 = MulSafe(a.lo, b.lo);
  const double p2 = MulSafe(a.lo, b.hi);
  const double p3 = MulSafe(a.hi, b.lo);
  const double p4 = MulSafe(a.hi, b.hi);
  return {std::min(std::min(p1, p2), std::min(p3, p4)),
          std::max(std::max(p1, p2), std::max(p3, p4))};
}

Interval operator/(Interval a, Interval b) {
  if (b.Contains(0.0)) return Interval::Whole();
  const Interval inv{1.0 / b.hi, 1.0 / b.lo};
  return a * inv;
}

Interval Interval::Hull(Interval a, Interval b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval Interval::Min(Interval a, Interval b) {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval Interval::Max(Interval a, Interval b) {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

namespace {

const Interval kBoolWhole{0.0, 1.0};
const Interval kTrue = Interval::Point(1.0);
const Interval kFalse = Interval::Point(0.0);

// Evaluates a closed subexpression to a point interval, or Whole() when the
// value is NULL / non-numeric (a NULL score maps to -inf at scoring time,
// but bounds stay conservative).
Interval PointOf(const Expr& e, const BoundEnv& env) {
  auto v = Evaluate(e, env.Context());
  if (!v.ok() || v->is_null()) return Interval::Whole();
  if (v->type() == ValueType::kBool) return v->AsBool() ? kTrue : kFalse;
  auto num = v->AsNumeric();
  if (!num.ok()) return Interval::Whole();
  return Interval::Point(num.value());
}

// True iff every variable referenced in `e` is closed in `env`.
bool AllRefsClosed(const Expr& e, const BoundEnv& env) {
  return !e.Any([&env](const Expr& node) {
    if (node.kind == ExprKind::kVarRef || node.kind == ExprKind::kIterRef ||
        node.kind == ExprKind::kAggregate) {
      return !env.IsClosed(node.var_index);
    }
    return false;
  });
}

Interval Derive(const Expr& e, const BoundEnv& env);

Interval DeriveAggregate(const Expr& e, const BoundEnv& env) {
  const EvalContext& ctx = env.Context();
  const int64_t n = ctx.KleeneCount(e.var_index);
  const Interval range =
      e.attr_name.empty() ? Interval::Whole() : env.AttrRange(e.attr_index);
  // A "final" environment (the DAG enumerator) already summarizes every
  // completion, so its per-slot intervals replace the open-future widening
  // below.
  const bool final = env.KleeneFinal(e.var_index);

  switch (e.agg_func) {
    case AggFunc::kMin: {
      if (final && e.agg_slot >= 0) {
        if (auto slot = env.AggSlotRange(e.agg_slot)) return *slot;
      }
      // Future events can only lower the min (within the range's floor).
      const double cur = n > 0 ? ctx.AggValue(e.agg_slot) : range.hi;
      return {range.lo, cur};
    }
    case AggFunc::kMax: {
      if (final && e.agg_slot >= 0) {
        if (auto slot = env.AggSlotRange(e.agg_slot)) return *slot;
      }
      const double cur = n > 0 ? ctx.AggValue(e.agg_slot) : range.lo;
      return {cur, range.hi};
    }
    case AggFunc::kSum: {
      if (final && e.agg_slot >= 0) {
        if (auto slot = env.AggSlotRange(e.agg_slot)) return *slot;
      }
      const double cur = ctx.AggValue(e.agg_slot);
      // Unknown number of future events, each adding a value in `range`.
      double lo = cur;
      double hi = cur;
      if (range.lo < 0) lo = -kInf;
      if (range.hi > 0) hi = kInf;
      return {lo, hi};
    }
    case AggFunc::kAvg: {
      if (final && e.agg_slot >= 0) {
        const auto sum = env.AggSlotRange(e.agg_slot);
        const auto count = env.KleeneCountRange(e.var_index);
        // AVG folds as a SUM slot; divide by the possible counts. Counts
        // are >= 1 on any accepting path, so the divisor never spans zero.
        if (sum && count && count->lo >= 1.0) return *sum / *count;
      }
      // Every event (past and future) lies in `range`, so the mean does too.
      return range;
    }
    case AggFunc::kCount: {
      if (final) {
        if (auto count = env.KleeneCountRange(e.var_index)) return *count;
      }
      // Kleene-plus: at least max(n, 1) iterations in any completion.
      return {static_cast<double>(std::max<int64_t>(n, 1)), kInf};
    }
    case AggFunc::kFirst: {
      if (n > 0) return PointOf(e, env);  // first iteration is fixed forever
      return range;
    }
    case AggFunc::kLast:
      // The last event may still be replaced by a future in-range event.
      return range;
  }
  return Interval::Whole();
}

Interval DeriveCompare(const Expr& e, const BoundEnv& env) {
  const Interval a = Derive(*e.children[0], env);
  const Interval b = Derive(*e.children[1], env);
  bool definitely_true = false;
  bool definitely_false = false;
  switch (e.binary_op) {
    case BinaryOp::kLt:
      definitely_true = a.hi < b.lo;
      definitely_false = a.lo >= b.hi;
      break;
    case BinaryOp::kLe:
      definitely_true = a.hi <= b.lo;
      definitely_false = a.lo > b.hi;
      break;
    case BinaryOp::kGt:
      definitely_true = a.lo > b.hi;
      definitely_false = a.hi <= b.lo;
      break;
    case BinaryOp::kGe:
      definitely_true = a.lo >= b.hi;
      definitely_false = a.hi < b.lo;
      break;
    case BinaryOp::kEq:
      definitely_true = a.IsPoint() && b.IsPoint() && a.lo == b.lo;
      definitely_false = a.hi < b.lo || b.hi < a.lo;
      break;
    case BinaryOp::kNe:
      definitely_true = a.hi < b.lo || b.hi < a.lo;
      definitely_false = a.IsPoint() && b.IsPoint() && a.lo == b.lo;
      break;
    default:
      break;
  }
  if (definitely_true) return kTrue;
  if (definitely_false) return kFalse;
  return kBoolWhole;
}

Interval Derive(const Expr& e, const BoundEnv& env) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      switch (e.literal.type()) {
        case ValueType::kInt:
          return Interval::Point(static_cast<double>(e.literal.AsInt()));
        case ValueType::kFloat:
          return Interval::Point(e.literal.AsFloat());
        case ValueType::kBool:
          return e.literal.AsBool() ? kTrue : kFalse;
        default:
          return Interval::Whole();
      }
    }

    case ExprKind::kVarRef: {
      if (env.IsClosed(e.var_index) ||
          env.Context().SingleEvent(e.var_index) != nullptr) {
        return PointOf(e, env);
      }
      return env.AttrRange(e.attr_index);
    }

    case ExprKind::kIterRef:
      // Only appears in predicates, which the pruner does not bound; be
      // conservative if we ever get here.
      return env.IsClosed(e.var_index) ? PointOf(e, env)
                                       : env.AttrRange(e.attr_index);

    case ExprKind::kAggregate:
      if (env.IsClosed(e.var_index)) return PointOf(e, env);
      return DeriveAggregate(e, env);

    case ExprKind::kUnary: {
      if (e.unary_op == UnaryOp::kNeg) return -Derive(*e.children[0], env);
      const Interval c = Derive(*e.children[0], env);  // NOT on [0,1]
      return {std::max(0.0, 1.0 - c.hi), std::min(1.0, 1.0 - c.lo)};
    }

    case ExprKind::kBinary: {
      switch (e.binary_op) {
        case BinaryOp::kAdd:
          return Derive(*e.children[0], env) + Derive(*e.children[1], env);
        case BinaryOp::kSub:
          return Derive(*e.children[0], env) - Derive(*e.children[1], env);
        case BinaryOp::kMul:
          return Derive(*e.children[0], env) * Derive(*e.children[1], env);
        case BinaryOp::kDiv:
          return Derive(*e.children[0], env) / Derive(*e.children[1], env);
        case BinaryOp::kMod: {
          const Interval b = Derive(*e.children[1], env);
          const Interval a = Derive(*e.children[0], env);
          if (b.lo > 0 && std::isfinite(b.hi) && a.lo >= 0) return {0.0, b.hi - 1};
          return Interval::Whole();
        }
        case BinaryOp::kAnd: {
          const Interval a = Derive(*e.children[0], env);
          const Interval b = Derive(*e.children[1], env);
          return Interval::Min(a, b);  // on [0,1]: min is conjunction
        }
        case BinaryOp::kOr: {
          const Interval a = Derive(*e.children[0], env);
          const Interval b = Derive(*e.children[1], env);
          return Interval::Max(a, b);
        }
        default:
          return DeriveCompare(e, env);
      }
    }

    case ExprKind::kCase: {
      // Hull of every branch the match could take; a missing ELSE can yield
      // NULL, which scores as -inf — be conservative.
      if (!e.has_else) return Interval::Whole();
      const size_t pairs = (e.children.size() - 1) / 2;
      Interval hull = Derive(*e.children.back(), env);
      for (size_t i = 0; i < pairs; ++i) {
        hull = Interval::Hull(hull, Derive(*e.children[2 * i + 1], env));
      }
      return hull;
    }

    case ExprKind::kFunc: {
      switch (e.func) {
        case ScalarFunc::kLength:
          return {0.0, kInf};
        case ScalarFunc::kUpper:
        case ScalarFunc::kLower:
        case ScalarFunc::kConcat:
        case ScalarFunc::kSubstr:
          return Interval::Whole();  // string-valued: no numeric bound
        default:
          break;
      }
      const Interval a = Derive(*e.children[0], env);
      switch (e.func) {
        case ScalarFunc::kAbs: {
          if (a.lo >= 0) return a;
          if (a.hi <= 0) return -a;
          return {0.0, std::max(std::fabs(a.lo), a.hi)};
        }
        case ScalarFunc::kSqrt: {
          const double lo = a.lo > 0 ? std::sqrt(a.lo) : 0.0;
          const double hi = a.hi > 0 ? std::sqrt(a.hi) : 0.0;
          return {lo, hi};
        }
        case ScalarFunc::kLog: {
          const double lo = a.lo > 0 ? std::log(a.lo) : -kInf;
          const double hi = a.hi > 0 ? std::log(a.hi) : -kInf;
          return {lo, hi};
        }
        case ScalarFunc::kExp:
          return {std::exp(a.lo), std::exp(a.hi)};
        case ScalarFunc::kFloor:
          return {std::floor(a.lo), std::floor(a.hi)};
        case ScalarFunc::kCeil:
          return {std::ceil(a.lo), std::ceil(a.hi)};
        case ScalarFunc::kRound:
          return {std::floor(a.lo), std::ceil(a.hi)};
        case ScalarFunc::kLeast:
          return Interval::Min(a, Derive(*e.children[1], env));
        case ScalarFunc::kGreatest:
          return Interval::Max(a, Derive(*e.children[1], env));
        case ScalarFunc::kUpper:
        case ScalarFunc::kLower:
        case ScalarFunc::kLength:
        case ScalarFunc::kConcat:
        case ScalarFunc::kSubstr:
          return Interval::Whole();  // handled above; unreachable
        case ScalarFunc::kPow: {
          const Interval b = Derive(*e.children[1], env);
          // Only the easy monotone case: positive base.
          if (a.lo > 0 && std::isfinite(a.lo)) {
            const double c1 = std::pow(a.lo, b.lo);
            const double c2 = std::pow(a.lo, b.hi);
            const double c3 = std::pow(a.hi, b.lo);
            const double c4 = std::pow(a.hi, b.hi);
            return {std::min(std::min(c1, c2), std::min(c3, c4)),
                    std::max(std::max(c1, c2), std::max(c3, c4))};
          }
          return Interval::Whole();
        }
      }
      return Interval::Whole();
    }
  }
  return Interval::Whole();
}

}  // namespace

Interval DeriveBounds(const Expr& expr, const BoundEnv& env) {
  // Fast path: a fully closed expression is just its value.
  if (AllRefsClosed(expr, env)) return PointOf(expr, env);
  return Derive(expr, env);
}

}  // namespace cepr
