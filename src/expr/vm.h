#ifndef CEPR_EXPR_VM_H_
#define CEPR_EXPR_VM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/bytecode.h"
#include "expr/eval.h"

namespace cepr {

/// One VM register: a tag plus unboxed payloads. Strings are referenced
/// (`s` points into the program's constant pool, an event cell, or this
/// register's own `sown` backing store for computed strings) so the hot loop
/// never copies event data.
struct VmReg {
  ValueType tag = ValueType::kNull;
  bool b = false;
  int64_t i = 0;
  double f = 0.0;
  const std::string* s = nullptr;
  std::string sown;
};

/// Reusable register file. Each matcher owns one and passes it to every
/// evaluation, so registers are allocated once and recycled; not shareable
/// across threads.
class VmState {
 public:
  VmReg* Acquire(size_t num_regs) {
    if (regs_.size() < num_regs) regs_.resize(num_regs);
    return regs_.data();
  }

 private:
  std::vector<VmReg> regs_;
};

/// Bytecode twins of Evaluate / EvaluatePredicate / EvaluateScore (see
/// expr/eval.h for the semantics). Guaranteed bit-identical to the AST
/// evaluator — same values, same NULL propagation, same overflow-to-NULL
/// arithmetic, and error statuses in exactly the same situations — which is
/// what lets the `bytecode_eval` ablation knob flip freely without changing
/// any ranked output.
Result<Value> VmEvaluate(const BytecodeProgram& prog, const EvalContext& ctx,
                         VmState* state);
Result<bool> VmEvaluatePredicate(const BytecodeProgram& prog,
                                 const EvalContext& ctx, VmState* state);
double VmEvaluateScore(const BytecodeProgram& prog, const EvalContext& ctx,
                       VmState* state);

}  // namespace cepr

#endif  // CEPR_EXPR_VM_H_
