#include "expr/typecheck.h"

#include "common/strings.h"

namespace cepr {

Result<int> BindingLayout::VarIndex(std::string_view name) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (EqualsIgnoreCase(vars_[i].name, name)) return static_cast<int>(i);
  }
  return Status::NotFound("unknown pattern variable: " + std::string(name));
}

namespace {

bool IsNumeric(ValueType t) { return t == ValueType::kInt || t == ValueType::kFloat; }

// Resolves var.attr, filling var_index/attr_index, and returns the attribute
// type. Handles the `.ts` pseudo attribute.
Result<ValueType> ResolveRef(Expr* e, const BindingLayout& layout) {
  CEPR_ASSIGN_OR_RETURN(e->var_index, layout.VarIndex(e->var_name));
  if (e->attr_name.empty()) return ValueType::kNull;  // COUNT(b): no attribute
  if (EqualsIgnoreCase(e->attr_name, "ts")) {
    e->attr_index = kTimestampAttr;
    return ValueType::kInt;
  }
  CEPR_ASSIGN_OR_RETURN(const size_t idx, layout.schema()->IndexOf(e->attr_name));
  e->attr_index = static_cast<int>(idx);
  return layout.schema()->attribute(idx).type;
}

Status CheckNode(Expr* e, const BindingLayout& layout, ExprContext context);
Status CheckFunc(Expr* e, const BindingLayout& layout, ExprContext context);

Status CheckChildren(Expr* e, const BindingLayout& layout, ExprContext context) {
  for (auto& c : e->children) CEPR_RETURN_IF_ERROR(CheckNode(c.get(), layout, context));
  return Status::OK();
}

Status CheckNode(Expr* e, const BindingLayout& layout, ExprContext context) {
  switch (e->kind) {
    case ExprKind::kLiteral: {
      e->result_type = e->literal.type();
      return Status::OK();
    }

    case ExprKind::kVarRef: {
      CEPR_ASSIGN_OR_RETURN(e->result_type, ResolveRef(e, layout));
      const PatternVar& var = layout.var(e->var_index);
      if (var.is_kleene) {
        return Status::TypeError(
            "Kleene variable '" + var.name +
            "' needs an iteration index (e.g. " + var.name +
            "[i]) or an aggregate (e.g. LAST(" + var.name + "))");
      }
      if (var.is_negated && context == ExprContext::kOutput) {
        return Status::TypeError("negated variable '" + var.name +
                                 "' cannot appear in SELECT or RANK BY");
      }
      return Status::OK();
    }

    case ExprKind::kIterRef: {
      if (context == ExprContext::kOutput) {
        return Status::TypeError(
            "per-iteration reference " + e->ToString() +
            " is only valid in WHERE; use FIRST/LAST/aggregates in "
            "SELECT and RANK BY");
      }
      CEPR_ASSIGN_OR_RETURN(e->result_type, ResolveRef(e, layout));
      const PatternVar& var = layout.var(e->var_index);
      if (!var.is_kleene) {
        return Status::TypeError("iteration index on non-Kleene variable '" +
                                 var.name + "'");
      }
      return Status::OK();
    }

    case ExprKind::kAggregate: {
      CEPR_ASSIGN_OR_RETURN(const ValueType attr_type, ResolveRef(e, layout));
      const PatternVar& var = layout.var(e->var_index);
      if (!var.is_kleene) {
        return Status::TypeError("aggregate " + e->ToString() +
                                 " over non-Kleene variable '" + var.name + "'");
      }
      if (var.is_negated) {
        return Status::TypeError("aggregate over negated variable '" + var.name +
                                 "'");
      }
      switch (e->agg_func) {
        case AggFunc::kCount:
          if (!e->attr_name.empty()) {
            return Status::TypeError("COUNT takes a bare variable: COUNT(" +
                                     var.name + ")");
          }
          e->result_type = ValueType::kInt;
          return Status::OK();
        case AggFunc::kMin:
        case AggFunc::kMax:
        case AggFunc::kSum:
        case AggFunc::kAvg:
          if (e->attr_name.empty()) {
            return Status::TypeError(std::string(AggFuncToString(e->agg_func)) +
                                     " needs an attribute argument");
          }
          if (!IsNumeric(attr_type)) {
            return Status::TypeError(e->ToString() +
                                     ": aggregate attribute must be numeric, got " +
                                     ValueTypeToString(attr_type));
          }
          e->result_type =
              e->agg_func == AggFunc::kAvg ? ValueType::kFloat : attr_type;
          return Status::OK();
        case AggFunc::kFirst:
        case AggFunc::kLast:
          if (e->attr_name.empty()) {
            return Status::TypeError(std::string(AggFuncToString(e->agg_func)) +
                                     "(" + var.name + ") needs an attribute: " +
                                     AggFuncToString(e->agg_func) + "(" + var.name +
                                     ").attr");
          }
          e->result_type = attr_type;
          return Status::OK();
      }
      return Status::Internal("unhandled aggregate");
    }

    case ExprKind::kUnary: {
      CEPR_RETURN_IF_ERROR(CheckChildren(e, layout, context));
      const ValueType t = e->children[0]->result_type;
      if (e->unary_op == UnaryOp::kNeg) {
        if (!IsNumeric(t)) {
          return Status::TypeError("unary minus needs a numeric operand, got " +
                                   std::string(ValueTypeToString(t)));
        }
        e->result_type = t;
      } else {  // NOT
        if (t != ValueType::kBool) {
          return Status::TypeError("NOT needs a BOOL operand, got " +
                                   std::string(ValueTypeToString(t)));
        }
        e->result_type = ValueType::kBool;
      }
      return Status::OK();
    }

    case ExprKind::kBinary: {
      CEPR_RETURN_IF_ERROR(CheckChildren(e, layout, context));
      const ValueType lt = e->children[0]->result_type;
      const ValueType rt = e->children[1]->result_type;
      switch (e->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
          if (!IsNumeric(lt) || !IsNumeric(rt)) {
            return Status::TypeError("arithmetic needs numeric operands in " +
                                     e->ToString());
          }
          e->result_type = (lt == ValueType::kFloat || rt == ValueType::kFloat)
                               ? ValueType::kFloat
                               : ValueType::kInt;
          return Status::OK();
        case BinaryOp::kDiv:
          if (!IsNumeric(lt) || !IsNumeric(rt)) {
            return Status::TypeError("division needs numeric operands in " +
                                     e->ToString());
          }
          e->result_type = ValueType::kFloat;
          return Status::OK();
        case BinaryOp::kMod:
          if (lt != ValueType::kInt || rt != ValueType::kInt) {
            return Status::TypeError("% needs INT operands in " + e->ToString());
          }
          e->result_type = ValueType::kInt;
          return Status::OK();
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if (!((IsNumeric(lt) && IsNumeric(rt)) ||
                (lt == rt && lt == ValueType::kString))) {
            return Status::TypeError("cannot order " +
                                     std::string(ValueTypeToString(lt)) + " and " +
                                     ValueTypeToString(rt) + " in " + e->ToString());
          }
          e->result_type = ValueType::kBool;
          return Status::OK();
        case BinaryOp::kEq:
        case BinaryOp::kNe:
          if (!((IsNumeric(lt) && IsNumeric(rt)) || lt == rt ||
                lt == ValueType::kNull || rt == ValueType::kNull)) {
            return Status::TypeError("cannot compare " +
                                     std::string(ValueTypeToString(lt)) + " and " +
                                     ValueTypeToString(rt) + " in " + e->ToString());
          }
          e->result_type = ValueType::kBool;
          return Status::OK();
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if (lt != ValueType::kBool || rt != ValueType::kBool) {
            return Status::TypeError("AND/OR need BOOL operands in " +
                                     e->ToString());
          }
          e->result_type = ValueType::kBool;
          return Status::OK();
      }
      return Status::Internal("unhandled binary op");
    }

    case ExprKind::kFunc:
      return CheckFunc(e, layout, context);

    case ExprKind::kCase: {
      CEPR_RETURN_IF_ERROR(CheckChildren(e, layout, context));
      const size_t pairs = (e->children.size() - (e->has_else ? 1 : 0)) / 2;
      if (pairs == 0) return Status::TypeError("CASE needs at least one WHEN");
      // Conditions must be BOOL; branch values must share a type (with
      // numeric promotion).
      ValueType result = ValueType::kNull;
      auto merge = [&result, e](ValueType t) -> Status {
        if (result == ValueType::kNull) {
          result = t;
          return Status::OK();
        }
        if (result == t) return Status::OK();
        if (IsNumeric(result) && IsNumeric(t)) {
          result = ValueType::kFloat;
          return Status::OK();
        }
        return Status::TypeError("CASE branches have incompatible types in " +
                                 e->ToString());
      };
      for (size_t i = 0; i < pairs; ++i) {
        if (e->children[2 * i]->result_type != ValueType::kBool) {
          return Status::TypeError("CASE WHEN condition must be BOOL in " +
                                   e->ToString());
        }
        CEPR_RETURN_IF_ERROR(merge(e->children[2 * i + 1]->result_type));
      }
      if (e->has_else) {
        CEPR_RETURN_IF_ERROR(merge(e->children.back()->result_type));
      }
      if (result == ValueType::kNull) {
        return Status::TypeError("CASE branches are all NULL in " + e->ToString());
      }
      e->result_type = result;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expression kind");
}

Status CheckFunc(Expr* e, const BindingLayout& layout, ExprContext context) {
  CEPR_RETURN_IF_ERROR(CheckChildren(e, layout, context));
  const std::string name = ScalarFuncToString(e->func);

  auto want_arity = [&](size_t n) -> Status {
    if (e->children.size() != n) {
      return Status::TypeError(name + " takes " + std::to_string(n) +
                               " argument(s)");
    }
    return Status::OK();
  };
  auto want_numeric = [&]() -> Status {
    for (const auto& c : e->children) {
      if (!IsNumeric(c->result_type)) {
        return Status::TypeError(name + " needs numeric arguments in " +
                                 e->ToString());
      }
    }
    return Status::OK();
  };
  auto want_string = [&](size_t idx) -> Status {
    if (e->children[idx]->result_type != ValueType::kString) {
      return Status::TypeError(name + " needs a STRING argument in " +
                               e->ToString());
    }
    return Status::OK();
  };

  switch (e->func) {
    case ScalarFunc::kAbs:
      CEPR_RETURN_IF_ERROR(want_arity(1));
      CEPR_RETURN_IF_ERROR(want_numeric());
      e->result_type = e->children[0]->result_type;
      return Status::OK();
    case ScalarFunc::kSqrt:
    case ScalarFunc::kLog:
    case ScalarFunc::kExp:
      CEPR_RETURN_IF_ERROR(want_arity(1));
      CEPR_RETURN_IF_ERROR(want_numeric());
      e->result_type = ValueType::kFloat;
      return Status::OK();
    case ScalarFunc::kFloor:
    case ScalarFunc::kCeil:
    case ScalarFunc::kRound:
      CEPR_RETURN_IF_ERROR(want_arity(1));
      CEPR_RETURN_IF_ERROR(want_numeric());
      e->result_type = ValueType::kInt;
      return Status::OK();
    case ScalarFunc::kPow:
      CEPR_RETURN_IF_ERROR(want_arity(2));
      CEPR_RETURN_IF_ERROR(want_numeric());
      e->result_type = ValueType::kFloat;
      return Status::OK();
    case ScalarFunc::kLeast:
    case ScalarFunc::kGreatest:
      CEPR_RETURN_IF_ERROR(want_arity(2));
      CEPR_RETURN_IF_ERROR(want_numeric());
      e->result_type = (e->children[0]->result_type == ValueType::kFloat ||
                        e->children[1]->result_type == ValueType::kFloat)
                           ? ValueType::kFloat
                           : ValueType::kInt;
      return Status::OK();
    case ScalarFunc::kUpper:
    case ScalarFunc::kLower:
      CEPR_RETURN_IF_ERROR(want_arity(1));
      CEPR_RETURN_IF_ERROR(want_string(0));
      e->result_type = ValueType::kString;
      return Status::OK();
    case ScalarFunc::kLength:
      CEPR_RETURN_IF_ERROR(want_arity(1));
      CEPR_RETURN_IF_ERROR(want_string(0));
      e->result_type = ValueType::kInt;
      return Status::OK();
    case ScalarFunc::kConcat: {
      if (e->children.empty()) {
        return Status::TypeError("CONCAT needs at least one argument");
      }
      for (size_t i = 0; i < e->children.size(); ++i) {
        CEPR_RETURN_IF_ERROR(want_string(i));
      }
      e->result_type = ValueType::kString;
      return Status::OK();
    }
    case ScalarFunc::kSubstr: {
      CEPR_RETURN_IF_ERROR(want_arity(3));
      CEPR_RETURN_IF_ERROR(want_string(0));
      if (e->children[1]->result_type != ValueType::kInt ||
          e->children[2]->result_type != ValueType::kInt) {
        return Status::TypeError("SUBSTR(s, start, len) needs INT positions in " +
                                 e->ToString());
      }
      e->result_type = ValueType::kString;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled scalar function");
}

}  // namespace

Status TypeCheck(Expr* expr, const BindingLayout& layout, ExprContext context) {
  CEPR_RETURN_IF_ERROR(CheckNode(expr, layout, context));
  if (context == ExprContext::kPredicate && expr->result_type != ValueType::kBool) {
    return Status::TypeError("predicate must be BOOL, got " +
                             std::string(ValueTypeToString(expr->result_type)) +
                             " in " + expr->ToString());
  }
  return Status::OK();
}

}  // namespace cepr
