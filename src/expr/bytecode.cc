#include "expr/bytecode.h"

#include <utility>

namespace cepr {

namespace {

// Max register index addressable by the 8-bit operand fields.
constexpr int kMaxReg = 255;

/// Single-pass tree-walking compiler. Registers follow a stack discipline:
/// node -> `dst`, children -> `dst`, `dst+1`, ... Forward jumps are patched
/// once their target is known.
class Compiler {
 public:
  explicit Compiler(BytecodeProgram* prog) : prog_(prog) {}

  bool Compile(const Expr& e, int dst) {
    if (dst > kMaxReg) return false;
    Touch(dst);
    switch (e.kind) {
      case ExprKind::kLiteral:
        Emit(OpCode::kLoadConst, dst, 0, 0, AddConst(e.literal));
        return true;

      case ExprKind::kVarRef:
        Emit(OpCode::kLoadAttr, dst, 0, 0, e.var_index, e.attr_index);
        return true;

      case ExprKind::kIterRef:
        Emit(OpCode::kLoadIter, dst, static_cast<int>(e.iter_kind), 0,
             e.var_index, e.attr_index);
        return true;

      case ExprKind::kAggregate:
        return CompileAggregate(e, dst);

      case ExprKind::kUnary:
        if (!Compile(*e.children[0], dst)) return false;
        Emit(e.unary_op == UnaryOp::kNot ? OpCode::kNot : OpCode::kNeg, dst,
             dst, 0, 0);
        return true;

      case ExprKind::kBinary:
        return CompileBinary(e, dst);

      case ExprKind::kCase:
        return CompileCase(e, dst);

      case ExprKind::kFunc:
        return CompileFunc(e, dst);
    }
    return false;
  }

  void Finish() {
    prog_->num_regs = static_cast<uint16_t>(max_reg_ + 1);
  }

 private:
  size_t Emit(OpCode op, int dst, int a, int b, int32_t imm, int32_t imm2 = 0) {
    Insn insn;
    insn.op = op;
    insn.dst = static_cast<uint8_t>(dst);
    insn.a = static_cast<uint8_t>(a);
    insn.b = static_cast<uint8_t>(b);
    insn.imm = imm;
    insn.imm2 = imm2;
    prog_->code.push_back(insn);
    return prog_->code.size() - 1;
  }

  void PatchJump(size_t at) {
    prog_->code[at].imm = static_cast<int32_t>(prog_->code.size());
  }

  int32_t AddConst(const Value& v) {
    prog_->constants.push_back(v);
    return static_cast<int32_t>(prog_->constants.size() - 1);
  }

  void Touch(int reg) {
    if (reg > max_reg_) max_reg_ = reg;
  }

  bool CompileAggregate(const Expr& e, int dst) {
    switch (e.agg_func) {
      case AggFunc::kCount:
        Emit(OpCode::kAggCount, dst, 0, 0, e.var_index);
        return true;
      case AggFunc::kFirst:
        Emit(OpCode::kAggFirst, dst, 0, 0, e.var_index, e.attr_index);
        return true;
      case AggFunc::kLast:
        Emit(OpCode::kAggLast, dst, 0, 0, e.var_index, e.attr_index);
        return true;
      case AggFunc::kAvg:
        Emit(OpCode::kAggAvg, dst, 0, 0, e.var_index, e.agg_slot);
        return true;
      case AggFunc::kSum:
        Emit(OpCode::kAggSum, dst, static_cast<int>(e.result_type), 0,
             e.var_index, e.agg_slot);
        return true;
      case AggFunc::kMin:
      case AggFunc::kMax:
        Emit(OpCode::kAggExtreme, dst, static_cast<int>(e.result_type), 0,
             e.var_index, e.agg_slot);
        return true;
    }
    return false;
  }

  bool CompileBinary(const Expr& e, int dst) {
    if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
      const int want = e.binary_op == BinaryOp::kOr ? 1 : 0;
      if (!Compile(*e.children[0], dst)) return false;
      const size_t sc = Emit(OpCode::kShortCircuit, dst, dst, want, 0);
      if (!Compile(*e.children[1], dst + 1)) return false;
      Emit(OpCode::kAndOrMerge, dst, dst, dst + 1, want);
      PatchJump(sc);
      return true;
    }

    if (!Compile(*e.children[0], dst)) return false;
    if (!Compile(*e.children[1], dst + 1)) return false;
    const int32_t rt = static_cast<int32_t>(e.result_type);
    switch (e.binary_op) {
      case BinaryOp::kEq:
        Emit(OpCode::kEq, dst, dst, dst + 1, 0);
        return true;
      case BinaryOp::kNe:
        Emit(OpCode::kNe, dst, dst, dst + 1, 0);
        return true;
      case BinaryOp::kLt:
        Emit(OpCode::kCmpLt, dst, dst, dst + 1, 0);
        return true;
      case BinaryOp::kLe:
        Emit(OpCode::kCmpLe, dst, dst, dst + 1, 0);
        return true;
      case BinaryOp::kGt:
        Emit(OpCode::kCmpGt, dst, dst, dst + 1, 0);
        return true;
      case BinaryOp::kGe:
        Emit(OpCode::kCmpGe, dst, dst, dst + 1, 0);
        return true;
      case BinaryOp::kAdd:
        Emit(OpCode::kAdd, dst, dst, dst + 1, rt);
        return true;
      case BinaryOp::kSub:
        Emit(OpCode::kSub, dst, dst, dst + 1, rt);
        return true;
      case BinaryOp::kMul:
        Emit(OpCode::kMul, dst, dst, dst + 1, rt);
        return true;
      case BinaryOp::kDiv:
        Emit(OpCode::kDiv, dst, dst, dst + 1, 0);
        return true;
      case BinaryOp::kMod:
        Emit(OpCode::kMod, dst, dst, dst + 1, 0);
        return true;
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        break;  // handled above
    }
    return false;
  }

  bool CompileCase(const Expr& e, int dst) {
    const size_t pairs = (e.children.size() - (e.has_else ? 1 : 0)) / 2;
    std::vector<size_t> to_end;
    for (size_t i = 0; i < pairs; ++i) {
      if (!Compile(*e.children[2 * i], dst)) return false;
      const size_t skip = Emit(OpCode::kJumpIfNotTrue, 0, dst, 0, 0);
      if (!Compile(*e.children[2 * i + 1], dst)) return false;
      if (e.result_type == ValueType::kFloat) {
        Emit(OpCode::kPromoteFloat, 0, dst, 0, 0);
      }
      to_end.push_back(Emit(OpCode::kJump, 0, 0, 0, 0));
      PatchJump(skip);
    }
    if (e.has_else) {
      if (!Compile(*e.children.back(), dst)) return false;
      if (e.result_type == ValueType::kFloat) {
        Emit(OpCode::kPromoteFloat, 0, dst, 0, 0);
      }
    } else {
      Emit(OpCode::kLoadNull, dst, 0, 0, 0);
    }
    for (size_t at : to_end) PatchJump(at);
    return true;
  }

  bool CompileFunc(const Expr& e, int dst) {
    const int32_t rt = static_cast<int32_t>(e.result_type);
    switch (e.func) {
      case ScalarFunc::kUpper:
      case ScalarFunc::kLower:
        if (!Compile(*e.children[0], dst)) return false;
        Emit(OpCode::kUpperLower, dst, dst, e.func == ScalarFunc::kUpper, 0);
        return true;
      case ScalarFunc::kLength:
        if (!Compile(*e.children[0], dst)) return false;
        Emit(OpCode::kLength, dst, dst, 0, 0);
        return true;
      case ScalarFunc::kConcat: {
        Emit(OpCode::kConcatInit, dst, 0, 0, 0);
        std::vector<size_t> to_end;
        for (const auto& c : e.children) {
          if (!Compile(*c, dst + 1)) return false;
          to_end.push_back(Emit(OpCode::kConcatAppend, dst, dst + 1, 0, 0));
        }
        for (size_t at : to_end) PatchJump(at);
        return true;
      }
      case ScalarFunc::kSubstr:
        if (!Compile(*e.children[0], dst)) return false;
        if (!Compile(*e.children[1], dst + 1)) return false;
        if (!Compile(*e.children[2], dst + 2)) return false;
        if (dst + 2 > kMaxReg) return false;
        Emit(OpCode::kSubstr, dst, dst, dst + 1, 0, dst + 2);
        return true;
      default:
        break;
    }

    // Numeric functions: evaluate each argument, vetting it (NULL argument
    // short-circuits the whole call to NULL — exactly the AST loop).
    std::vector<size_t> to_end;
    for (size_t i = 0; i < e.children.size(); ++i) {
      const int r = dst + static_cast<int>(i);
      if (r > kMaxReg) return false;
      if (!Compile(*e.children[i], r)) return false;
      to_end.push_back(Emit(OpCode::kFuncArgCheck, dst, r, 0, 0));
    }
    switch (e.func) {
      case ScalarFunc::kAbs:
        Emit(OpCode::kAbs, dst, dst, 0, rt);
        break;
      case ScalarFunc::kSqrt:
        Emit(OpCode::kSqrt, dst, dst, 0, 0);
        break;
      case ScalarFunc::kLog:
        Emit(OpCode::kLog, dst, dst, 0, 0);
        break;
      case ScalarFunc::kExp:
        Emit(OpCode::kExp, dst, dst, 0, 0);
        break;
      case ScalarFunc::kPow:
        Emit(OpCode::kPow, dst, dst, dst + 1, 0);
        break;
      case ScalarFunc::kFloor:
        Emit(OpCode::kFloor, dst, dst, 0, 0);
        break;
      case ScalarFunc::kCeil:
        Emit(OpCode::kCeil, dst, dst, 0, 0);
        break;
      case ScalarFunc::kRound:
        Emit(OpCode::kRound, dst, dst, 0, 0);
        break;
      case ScalarFunc::kLeast:
        Emit(OpCode::kLeast, dst, dst, dst + 1, rt);
        break;
      case ScalarFunc::kGreatest:
        Emit(OpCode::kGreatest, dst, dst, dst + 1, rt);
        break;
      default:
        return false;
    }
    for (size_t at : to_end) PatchJump(at);
    return true;
  }

  BytecodeProgram* prog_;
  int max_reg_ = 0;
};

}  // namespace

Result<BytecodeProgram> CompileToBytecode(const Expr& expr) {
  BytecodeProgram prog;
  Compiler compiler(&prog);
  if (!compiler.Compile(expr, 0)) {
    return Status::Internal("expression does not fit the bytecode register file: " +
                            expr.ToString());
  }
  compiler.Finish();
  return prog;
}

BytecodeProgramPtr CompileToBytecodeShared(const Expr& expr) {
  auto prog = CompileToBytecode(expr);
  if (!prog.ok()) return nullptr;
  return std::make_shared<const BytecodeProgram>(std::move(prog).value());
}

}  // namespace cepr
