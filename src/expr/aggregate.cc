#include "expr/aggregate.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace cepr {

namespace {

void CollectAggNodes(Expr* e, std::vector<Expr*>* out) {
  if (e->kind == ExprKind::kAggregate &&
      (e->agg_func == AggFunc::kMin || e->agg_func == AggFunc::kMax ||
       e->agg_func == AggFunc::kSum || e->agg_func == AggFunc::kAvg)) {
    out->push_back(e);
  }
  for (auto& c : e->children) CollectAggNodes(c.get(), out);
}

AggStorageKind StorageFor(AggFunc func) {
  switch (func) {
    case AggFunc::kMin:
      return AggStorageKind::kMin;
    case AggFunc::kMax:
      return AggStorageKind::kMax;
    default:
      return AggStorageKind::kSum;  // kSum and kAvg share a sum accumulator
  }
}

}  // namespace

std::vector<AggSpec> AssignAggSlots(const std::vector<Expr*>& exprs) {
  std::vector<AggSpec> specs;
  std::vector<Expr*> nodes;
  for (Expr* e : exprs) {
    if (e != nullptr) CollectAggNodes(e, &nodes);
  }
  for (Expr* node : nodes) {
    const AggSpec spec{StorageFor(node->agg_func), node->var_index,
                       node->attr_index};
    auto it = std::find(specs.begin(), specs.end(), spec);
    if (it == specs.end()) {
      specs.push_back(spec);
      node->agg_slot = static_cast<int>(specs.size() - 1);
    } else {
      node->agg_slot = static_cast<int>(it - specs.begin());
    }
  }
  return specs;
}

AggStates::AggStates(const std::vector<AggSpec>* specs) : specs_(specs) {
  values_.reserve(specs->size());
  Reset();
}

void AggStates::Reset() {
  if (specs_ == nullptr) return;
  values_.clear();
  for (const AggSpec& spec : *specs_) {
    switch (spec.kind) {
      case AggStorageKind::kMin:
        values_.push_back(std::numeric_limits<double>::infinity());
        break;
      case AggStorageKind::kMax:
        values_.push_back(-std::numeric_limits<double>::infinity());
        break;
      case AggStorageKind::kSum:
        values_.push_back(0.0);
        break;
    }
  }
}

void AggStates::Accept(int var_index, const Event& event) {
  if (specs_ == nullptr) return;
  for (size_t i = 0; i < specs_->size(); ++i) {
    const AggSpec& spec = (*specs_)[i];
    if (spec.var_index != var_index) continue;
    double x = 0.0;
    if (spec.attr_index == kTimestampAttr) {
      x = static_cast<double>(event.timestamp());
    } else {
      const Value& v = event.value(static_cast<size_t>(spec.attr_index));
      auto num = v.AsNumeric();
      if (!num.ok()) continue;  // NULL cell: aggregate skips it (SQL-like)
      x = num.value();
    }
    switch (spec.kind) {
      case AggStorageKind::kMin:
        values_[i] = std::min(values_[i], x);
        break;
      case AggStorageKind::kMax:
        values_[i] = std::max(values_[i], x);
        break;
      case AggStorageKind::kSum:
        values_[i] += x;
        break;
    }
  }
}

}  // namespace cepr
