#ifndef CEPR_EXPR_EXPR_H_
#define CEPR_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "event/value.h"

namespace cepr {

/// Expression node kinds. One Expr class covers all kinds (tagged-union
/// style, as in SQLite's Expr); the `kind` selects which fields are
/// meaningful.
enum class ExprKind {
  kLiteral,    // 42, 3.5, 'IBM', TRUE, NULL
  kVarRef,     // a.price            (single-binding pattern variable)
  kIterRef,    // b[i].price / b[i-1].price / b[1].price (Kleene variable)
  kAggregate,  // MIN(b.price), COUNT(b), FIRST(b).price, ...
  kUnary,      // -x, NOT x
  kBinary,     // x + y, x < y, x AND y, ...
  kFunc,       // ABS(x), POW(x, y), UPPER(s), ...
  kCase,       // CASE WHEN c THEN v [WHEN ...] [ELSE v] END
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

/// Which event of a Kleene binding an IterRef addresses.
///   kCurrent  — b[i]   : the candidate event currently being tested
///   kPrev     — b[i-1] : the most recently accepted iteration
///   kFirst    — b[1]   : the first accepted iteration
enum class IterKind { kCurrent, kPrev, kFirst };

/// Aggregates over the accepted iterations of a Kleene variable.
/// kMin/kMax/kSum/kAvg require a numeric attribute and are maintained
/// incrementally in O(1) per accepted event; kCount takes a bare variable;
/// kFirst/kLast address the first/last accepted event's attribute.
enum class AggFunc { kMin, kMax, kSum, kAvg, kCount, kFirst, kLast };

/// Scalar builtin functions.
enum class ScalarFunc {
  // Numeric.
  kAbs,
  kSqrt,
  kLog,   // natural log
  kExp,
  kPow,   // two arguments
  kFloor,
  kCeil,
  kRound,
  kLeast,     // two arguments, numeric min
  kGreatest,  // two arguments, numeric max
  // Strings.
  kUpper,     // STRING -> STRING
  kLower,     // STRING -> STRING
  kLength,    // STRING -> INT
  kConcat,    // STRING... -> STRING (>= 1 argument)
  kSubstr,    // (STRING, start INT [1-based], len INT) -> STRING
};

const char* BinaryOpToString(BinaryOp op);
const char* AggFuncToString(AggFunc func);
const char* ScalarFuncToString(ScalarFunc func);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Pseudo attribute index meaning "the event timestamp" (var.ts), which is
/// not a schema attribute. Exposed as INT microseconds.
constexpr int kTimestampAttr = -2;

/// One node of an expression tree. Parser produces unresolved nodes (names
/// only); the semantic analyzer fills var_index / attr_index / result_type;
/// the query compiler assigns agg_slot for incremental aggregates.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kVarRef / kIterRef / kAggregate: names as written...
  std::string var_name;
  std::string attr_name;  // empty for COUNT(b)
  // ...and resolution results (analyzer):
  int var_index = -1;
  int attr_index = -1;  // kTimestampAttr for .ts

  // kIterRef
  IterKind iter_kind = IterKind::kCurrent;

  // kAggregate
  AggFunc agg_func = AggFunc::kCount;
  int agg_slot = -1;  // compiler-assigned for kMin/kMax/kSum/kAvg

  // kUnary / kBinary / kFunc
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ScalarFunc func = ScalarFunc::kAbs;

  // kCase
  bool has_else = false;

  std::vector<ExprPtr> children;

  /// Static type; ValueType::kNull until the type checker runs.
  ValueType result_type = ValueType::kNull;

  // -- Factories ---------------------------------------------------------

  static ExprPtr Literal(Value v);
  static ExprPtr VarRef(std::string var, std::string attr);
  static ExprPtr IterRef(std::string var, std::string attr, IterKind iter);
  static ExprPtr Aggregate(AggFunc func, std::string var, std::string attr);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Func(ScalarFunc func, std::vector<ExprPtr> args);
  /// CASE: children laid out as [cond0, val0, cond1, val1, ..., else?];
  /// has_else marks a trailing ELSE child.
  static ExprPtr Case(std::vector<ExprPtr> children, bool has_else);

  /// Deep copy (including resolution annotations).
  ExprPtr Clone() const;

  /// CEPR-QL surface syntax, fully parenthesized for binaries.
  std::string ToString() const;

  /// Appends (var_index of) every pattern variable referenced anywhere in
  /// this tree to `out` (may contain duplicates). Requires resolution.
  void CollectVarIndices(std::vector<int>* out) const;

  /// True iff the tree contains a node matching `pred`.
  template <typename Pred>
  bool Any(const Pred& pred) const {
    if (pred(*this)) return true;
    for (const auto& c : children) {
      if (c->Any(pred)) return true;
    }
    return false;
  }
};

}  // namespace cepr

#endif  // CEPR_EXPR_EXPR_H_
