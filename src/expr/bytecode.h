#ifndef CEPR_EXPR_BYTECODE_H_
#define CEPR_EXPR_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "event/value.h"
#include "expr/expr.h"

namespace cepr {

/// Flat register bytecode for expression trees — the compiled form the VM in
/// expr/vm.h executes on the matcher hot path instead of the recursive
/// EvalNode walk. Programs are compiled once per query (plan/compiler.cc)
/// and are immutable afterwards; execution is read-only, so one program can
/// be shared by every matcher evaluating the query.
///
/// The VM is REQUIRED to be bit-identical to the AST evaluator: same values,
/// same NULL propagation, same three-valued AND/OR, same overflow-to-NULL
/// arithmetic contract, and an error Status exactly where the AST evaluator
/// produces one (tests/expr/bytecode_equivalence_test.cc enforces this
/// differentially).
///
/// Register model: tree-shaped evaluation with a stack discipline — an
/// expression's result lands in register `dst`, its children evaluate into
/// `dst`, `dst+1`, ... so the register file is only as deep as the tree.
/// Trees deeper than 255 registers do not compile (CompileToBytecode returns
/// an error) and callers fall back to the AST evaluator.
enum class OpCode : uint8_t {
  // Loads.
  kLoadConst,  // dst = constants[imm]
  kLoadNull,   // dst = NULL
  kLoadAttr,   // dst = attr imm2 of ctx.SingleEvent(imm); NULL if unbound
  kLoadIter,   // dst = attr imm2 of Kleene{Current|Prev|First}(imm); a=IterKind

  // Aggregates (mirror EvalAggregate's check order exactly).
  kAggCount,    // dst = Int(ctx.KleeneCount(imm))
  kAggFirst,    // dst = attr imm2 of ctx.KleeneFirst(imm)
  kAggLast,     // dst = attr imm2 of ctx.KleeneLast(imm)
  kAggAvg,      // imm=var, imm2=slot: count==0 -> NULL; slot<0 -> error
  kAggSum,      // imm=var, imm2=slot, a=result ValueType
  kAggExtreme,  // MIN/MAX: as kAggSum but non-finite accumulator -> NULL

  // Unary.
  kNot,  // dst = !regs[a] (NULL -> NULL, non-bool -> error)
  kNeg,  // dst = -regs[a] (INT64_MIN -> NULL)

  // Lazy AND/OR. `b` carries the short-circuit value (1 for OR, 0 for AND).
  kShortCircuit,  // if regs[a] == Bool(b): pc = imm (result already in dst)
  kAndOrMerge,    // dst = merge(regs[a], regs[b]); imm=1 for OR

  // Comparisons (NULL -> NULL; int-int native, mixed numeric via double,
  // string-string lexicographic, anything else -> error).
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kEq,  // NULL=NULL is TRUE, NULL=x is NULL; numerics compare via double
  kNe,

  // Arithmetic (imm = static result ValueType; int overflow -> NULL).
  kAdd,
  kSub,
  kMul,
  kDiv,  // by zero -> NULL; always float
  kMod,  // by zero -> NULL; INT64_MIN % -1 == 0

  // Control flow for CASE.
  kJump,           // pc = imm
  kJumpIfNotTrue,  // if regs[a] is not Bool(true): pc = imm
  kPromoteFloat,   // if regs[a] is Int: regs[a] = Float (CASE promotion)

  // Numeric scalar functions. Each arg was vetted by kFuncArgCheck first.
  kFuncArgCheck,  // if regs[a] NULL: regs[dst]=NULL, pc=imm; non-numeric -> error
  kAbs,           // imm = result ValueType
  kSqrt,
  kLog,
  kExp,
  kPow,
  kFloor,
  kCeil,
  kRound,
  kLeast,     // imm = result ValueType
  kGreatest,  // imm = result ValueType

  // String functions.
  kUpperLower,    // b=1 for UPPER; NULL -> NULL
  kLength,        // NULL -> NULL
  kConcatInit,    // regs[dst] = ""
  kConcatAppend,  // regs[dst] += regs[a]; if regs[a] NULL: dst=NULL, pc=imm
  kSubstr,        // dst = substr(regs[a], regs[b], regs[imm2]); NULL args -> NULL
};

struct Insn {
  OpCode op = OpCode::kLoadNull;
  uint8_t dst = 0;
  uint8_t a = 0;
  uint8_t b = 0;
  int32_t imm = 0;   // jump target / var_index / constant index / result type
  int32_t imm2 = 0;  // attr_index / agg_slot / third register
};

struct BytecodeProgram {
  std::vector<Insn> code;
  std::vector<Value> constants;
  /// Registers the VM must provide (max stack depth of the tree).
  uint16_t num_regs = 0;
};

using BytecodeProgramPtr = std::shared_ptr<const BytecodeProgram>;

/// Compiles a resolved, type-checked expression tree to bytecode. Fails
/// (Status::Internal) only for trees too deep for the 8-bit register file;
/// callers keep the AST path as fallback.
Result<BytecodeProgram> CompileToBytecode(const Expr& expr);

/// Convenience wrapper: compile to a shared immutable program, or nullptr if
/// the tree does not compile (callers then use the AST evaluator).
BytecodeProgramPtr CompileToBytecodeShared(const Expr& expr);

}  // namespace cepr

#endif  // CEPR_EXPR_BYTECODE_H_
