#ifndef CEPR_EXPR_INTERVAL_H_
#define CEPR_EXPR_INTERVAL_H_

#include <limits>
#include <optional>
#include <string>

#include "expr/eval.h"
#include "expr/expr.h"

namespace cepr {

/// A closed real interval [lo, hi], possibly unbounded. The unit of the
/// ranking pruner: the derived bound on the score of any completion of a
/// partial match. Boolean subexpressions are represented on [0, 1]
/// (0 = false, 1 = true).
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  static Interval Point(double x) { return {x, x}; }
  static Interval Whole() { return {}; }
  static Interval Of(double lo, double hi) { return {lo, hi}; }

  bool IsPoint() const { return lo == hi; }
  bool Contains(double x) const { return lo <= x && x <= hi; }

  std::string ToString() const;

  // Interval arithmetic. Multiplication and division follow the standard
  // rules with the convention 0 * inf = 0 (counts of impossible events
  // contribute nothing).
  friend Interval operator+(Interval a, Interval b);
  friend Interval operator-(Interval a, Interval b);
  friend Interval operator-(Interval a);  // negation
  friend Interval operator*(Interval a, Interval b);
  /// Division; an interval divisor containing zero yields Whole().
  friend Interval operator/(Interval a, Interval b);

  /// Convex hull of the two intervals.
  static Interval Hull(Interval a, Interval b);
  /// Pointwise min / max (for LEAST / GREATEST).
  static Interval Min(Interval a, Interval b);
  static Interval Max(Interval a, Interval b);
};

/// The environment the bound deriver consults: which pattern variables are
/// still "open" (can accept more events, so their references are uncertain)
/// and what value ranges future events may take.
class BoundEnv {
 public:
  virtual ~BoundEnv() = default;

  /// Value range for attribute `attr_index` of future events (declared in
  /// the schema or learned online). kTimestampAttr and attributes with no
  /// known range return Whole().
  virtual Interval AttrRange(int attr_index) const = 0;

  /// True iff variable `var_index` has its final binding — no future event
  /// can change any reference to it.
  virtual bool IsClosed(int var_index) const = 0;

  /// The partial-match binding, for point values of closed references and
  /// for running aggregate state.
  virtual const EvalContext& Context() const = 0;

  // -- Optional refinements (shared match DAG) ------------------------------
  // The lazy enumerator's bound environment knows more than a live Run: a
  // DAG node's aggregate summaries already cover *every* completion through
  // it, and the node's path-length counts bound the final Kleene
  // cardinality. The defaults reproduce the legacy Run behavior exactly.

  /// A precomputed interval containing agg slot `agg_slot`'s value over all
  /// completions, or nullopt when the environment has none (legacy path).
  virtual std::optional<Interval> AggSlotRange(int agg_slot) const {
    (void)agg_slot;
    return std::nullopt;
  }

  /// Bounds on the final iteration count of Kleene variable `var_index`
  /// over all completions, or nullopt when unknown.
  virtual std::optional<Interval> KleeneCountRange(int var_index) const {
    (void)var_index;
    return std::nullopt;
  }

  /// True iff no future event can extend Kleene variable `var_index` beyond
  /// what AggSlotRange / KleeneCountRange already cover — the aggregate
  /// refinements above are total, not running prefixes.
  virtual bool KleeneFinal(int var_index) const {
    (void)var_index;
    return false;
  }
};

/// Derives an interval guaranteed to contain the value of `expr` for every
/// possible completion of the partial match described by `env`. Sound for
/// any expression the type checker accepts in output context (VarRef,
/// aggregates, arithmetic, comparisons, boolean logic, scalar functions);
/// falls back to Whole() where no finite bound exists (e.g. SUM over a
/// sign-indefinite attribute with unbounded future iterations).
///
/// Soundness caveat: bounds are only as good as the attribute ranges. With
/// declared ranges the pruner is exact; with learned ranges the engine must
/// not prune until ranges are warmed (the ranker enforces this).
Interval DeriveBounds(const Expr& expr, const BoundEnv& env);

}  // namespace cepr

#endif  // CEPR_EXPR_INTERVAL_H_
