#include "expr/vm.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

namespace cepr {

namespace {

// The semantics below are a transliteration of the AST evaluator in
// expr/eval.cc — every branch, check order and constant mirrors it; keep the
// two in lockstep (tests/expr/bytecode_equivalence_test.cc enforces this
// differentially). See eval.cc's MakeNumeric for the bounds discussion.
constexpr double kInt64LowerBound = -9223372036854775808.0;
constexpr double kInt64UpperBound = 9223372036854775808.0;
constexpr int64_t kInt64Min = std::numeric_limits<int64_t>::min();

inline void SetNull(VmReg& r) { r.tag = ValueType::kNull; }
inline void SetBool(VmReg& r, bool v) {
  r.tag = ValueType::kBool;
  r.b = v;
}
inline void SetInt(VmReg& r, int64_t v) {
  r.tag = ValueType::kInt;
  r.i = v;
}
inline void SetFloat(VmReg& r, double v) {
  r.tag = ValueType::kFloat;
  r.f = v;
}
inline void SetStringRef(VmReg& r, const std::string* s) {
  r.tag = ValueType::kString;
  r.s = s;
}
inline void SetOwnedString(VmReg& r, std::string v) {
  r.sown = std::move(v);
  r.s = &r.sown;
  r.tag = ValueType::kString;
}

inline bool IsNum(const VmReg& r) {
  return r.tag == ValueType::kInt || r.tag == ValueType::kFloat;
}
inline double NumOf(const VmReg& r) {
  return r.tag == ValueType::kInt ? static_cast<double>(r.i) : r.f;
}

// MakeNumeric twin: pack a double into the static result type; NULL when an
// INT result is NaN or rounds outside int64.
inline void SetNumeric(VmReg& r, double x, ValueType type) {
  if (type == ValueType::kInt) {
    if (!(x >= kInt64LowerBound && x < kInt64UpperBound)) {
      SetNull(r);
      return;
    }
    SetInt(r, static_cast<int64_t>(llround(x)));
    return;
  }
  SetFloat(r, x);
}

inline void SetFromValue(VmReg& r, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      SetNull(r);
      return;
    case ValueType::kBool:
      SetBool(r, v.AsBool());
      return;
    case ValueType::kInt:
      SetInt(r, v.AsInt());
      return;
    case ValueType::kFloat:
      SetFloat(r, v.AsFloat());
      return;
    case ValueType::kString:
      SetStringRef(r, &v.AsString());
      return;
  }
  SetNull(r);
}

inline Value ToValue(const VmReg& r) {
  switch (r.tag) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      return Value::Bool(r.b);
    case ValueType::kInt:
      return Value::Int(r.i);
    case ValueType::kFloat:
      return Value::Float(r.f);
    case ValueType::kString:
      return Value::String(*r.s);
  }
  return Value::Null();
}

// FetchAttr twin.
inline void LoadAttr(VmReg& r, const Event* event, int attr_index) {
  if (event == nullptr) {
    SetNull(r);
    return;
  }
  if (attr_index == kTimestampAttr) {
    SetInt(r, event->timestamp());
    return;
  }
  SetFromValue(r, event->value(static_cast<size_t>(attr_index)));
}

/// Runs `prog`, leaving the result in regs[0]. Returns nullptr on success or
/// a static error message (surfaced as Status::Internal, matching the AST
/// evaluator's error class).
const char* Exec(const BytecodeProgram& prog, const EvalContext& ctx,
                 VmReg* regs) {
  const Insn* code = prog.code.data();
  const size_t n = prog.code.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const Insn& in = code[pc];
    VmReg& d = regs[in.dst];
    switch (in.op) {
      case OpCode::kLoadConst:
        SetFromValue(d, prog.constants[static_cast<size_t>(in.imm)]);
        break;
      case OpCode::kLoadNull:
        SetNull(d);
        break;
      case OpCode::kLoadAttr:
        LoadAttr(d, ctx.SingleEvent(in.imm), in.imm2);
        break;
      case OpCode::kLoadIter: {
        const Event* ev =
            in.a == static_cast<int>(IterKind::kCurrent) ? ctx.KleeneCurrent(in.imm)
            : in.a == static_cast<int>(IterKind::kPrev)  ? ctx.KleeneLast(in.imm)
                                                         : ctx.KleeneFirst(in.imm);
        LoadAttr(d, ev, in.imm2);
        break;
      }

      case OpCode::kAggCount:
        SetInt(d, ctx.KleeneCount(in.imm));
        break;
      case OpCode::kAggFirst:
        LoadAttr(d, ctx.KleeneFirst(in.imm), in.imm2);
        break;
      case OpCode::kAggLast:
        LoadAttr(d, ctx.KleeneLast(in.imm), in.imm2);
        break;
      case OpCode::kAggAvg: {
        const int64_t count = ctx.KleeneCount(in.imm);
        if (count == 0) {
          SetNull(d);
          break;
        }
        if (in.imm2 < 0) return "AVG without slot";
        SetFloat(d, ctx.AggValue(in.imm2) / static_cast<double>(count));
        break;
      }
      case OpCode::kAggSum:
      case OpCode::kAggExtreme: {
        if (in.imm2 < 0) return "aggregate without slot";
        if (ctx.KleeneCount(in.imm) == 0) {
          SetNull(d);
          break;
        }
        const double v = ctx.AggValue(in.imm2);
        if (in.op == OpCode::kAggExtreme && !std::isfinite(v)) {
          SetNull(d);
          break;
        }
        SetNumeric(d, v, static_cast<ValueType>(in.a));
        break;
      }

      case OpCode::kNot: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (x.tag != ValueType::kBool) return "NOT on non-bool at runtime";
        SetBool(d, !x.b);
        break;
      }
      case OpCode::kNeg: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (!IsNum(x)) return "negation of non-numeric";
        if (x.tag == ValueType::kInt) {
          if (x.i == kInt64Min) {
            SetNull(d);
            break;
          }
          SetInt(d, -x.i);
          break;
        }
        SetFloat(d, -x.f);
        break;
      }

      case OpCode::kShortCircuit: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kBool && x.b == (in.b != 0)) {
          pc = static_cast<size_t>(in.imm) - 1;  // result already in dst
        }
        break;
      }
      case OpCode::kAndOrMerge: {
        const VmReg& l = regs[in.a];
        const VmReg& r = regs[in.b];
        const bool want = in.imm != 0;  // TRUE short-circuits OR
        if (r.tag == ValueType::kBool && r.b == want) {
          SetBool(d, want);
          break;
        }
        if (l.tag == ValueType::kNull || r.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (l.tag != ValueType::kBool || r.tag != ValueType::kBool) {
          return "AND/OR on non-bool at runtime";
        }
        const bool result = want ? (l.b || r.b) : (l.b && r.b);
        SetBool(d, result);
        break;
      }

      case OpCode::kEq:
      case OpCode::kNe: {
        const VmReg& x = regs[in.a];
        const VmReg& y = regs[in.b];
        const bool ne = in.op == OpCode::kNe;
        if (x.tag == ValueType::kNull || y.tag == ValueType::kNull) {
          // NULL = NULL is TRUE in CEPR (missing-vs-missing); NULL = x is NULL.
          if (x.tag == ValueType::kNull && y.tag == ValueType::kNull) {
            SetBool(d, !ne);
          } else {
            SetNull(d);
          }
          break;
        }
        bool eq;
        if (IsNum(x) && IsNum(y)) {
          eq = NumOf(x) == NumOf(y);  // Value::operator== compares via double
        } else if (x.tag != y.tag) {
          eq = false;
        } else if (x.tag == ValueType::kBool) {
          eq = x.b == y.b;
        } else {
          eq = *x.s == *y.s;
        }
        SetBool(d, ne ? !eq : eq);
        break;
      }

      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe: {
        const VmReg& x = regs[in.a];
        const VmReg& y = regs[in.b];
        if (x.tag == ValueType::kNull || y.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (x.tag == ValueType::kString && y.tag == ValueType::kString) {
          const int c = x.s->compare(*y.s);
          SetBool(d, in.op == OpCode::kCmpLt   ? c < 0
                     : in.op == OpCode::kCmpLe ? c <= 0
                     : in.op == OpCode::kCmpGt ? c > 0
                                               : c >= 0);
          break;
        }
        if (!IsNum(x) || !IsNum(y)) return "comparison on non-numeric at runtime";
        if (x.tag == ValueType::kInt && y.tag == ValueType::kInt) {
          SetBool(d, in.op == OpCode::kCmpLt   ? x.i < y.i
                     : in.op == OpCode::kCmpLe ? x.i <= y.i
                     : in.op == OpCode::kCmpGt ? x.i > y.i
                                               : x.i >= y.i);
          break;
        }
        const double a = NumOf(x);
        const double b = NumOf(y);
        SetBool(d, in.op == OpCode::kCmpLt   ? a < b
                   : in.op == OpCode::kCmpLe ? a <= b
                   : in.op == OpCode::kCmpGt ? a > b
                                             : a >= b);
        break;
      }

      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul: {
        const VmReg& x = regs[in.a];
        const VmReg& y = regs[in.b];
        if (x.tag == ValueType::kNull || y.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (!IsNum(x) || !IsNum(y)) return "arithmetic on non-numeric at runtime";
        const ValueType rt = static_cast<ValueType>(in.imm);
        if (x.tag == ValueType::kInt && y.tag == ValueType::kInt &&
            rt == ValueType::kInt) {
          int64_t r = 0;
          const bool overflow =
              in.op == OpCode::kAdd   ? __builtin_add_overflow(x.i, y.i, &r)
              : in.op == OpCode::kSub ? __builtin_sub_overflow(x.i, y.i, &r)
                                      : __builtin_mul_overflow(x.i, y.i, &r);
          if (overflow) {
            SetNull(d);
          } else {
            SetInt(d, r);
          }
          break;
        }
        const double a = NumOf(x);
        const double b = NumOf(y);
        const double r = in.op == OpCode::kAdd   ? a + b
                         : in.op == OpCode::kSub ? a - b
                                                 : a * b;
        SetNumeric(d, r, rt);
        break;
      }
      case OpCode::kDiv: {
        const VmReg& x = regs[in.a];
        const VmReg& y = regs[in.b];
        if (x.tag == ValueType::kNull || y.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (!IsNum(x) || !IsNum(y)) return "division on non-numeric at runtime";
        const double b = NumOf(y);
        if (b == 0.0) {
          SetNull(d);
          break;
        }
        SetFloat(d, NumOf(x) / b);
        break;
      }
      case OpCode::kMod: {
        const VmReg& x = regs[in.a];
        const VmReg& y = regs[in.b];
        if (x.tag == ValueType::kNull || y.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (x.tag != ValueType::kInt || y.tag != ValueType::kInt) {
          return "% on non-INT at runtime";
        }
        if (y.i == 0) {
          SetNull(d);
          break;
        }
        // x % -1 is 0 for every x; INT64_MIN % -1 overflows the hardware
        // divide (see eval.cc).
        if (y.i == -1) {
          SetInt(d, 0);
          break;
        }
        SetInt(d, x.i % y.i);
        break;
      }

      case OpCode::kJump:
        pc = static_cast<size_t>(in.imm) - 1;
        break;
      case OpCode::kJumpIfNotTrue: {
        const VmReg& x = regs[in.a];
        if (!(x.tag == ValueType::kBool && x.b)) {
          pc = static_cast<size_t>(in.imm) - 1;
        }
        break;
      }
      case OpCode::kPromoteFloat: {
        VmReg& x = regs[in.a];
        if (x.tag == ValueType::kInt) SetFloat(x, static_cast<double>(x.i));
        break;
      }

      case OpCode::kFuncArgCheck: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kNull) {
          SetNull(d);
          pc = static_cast<size_t>(in.imm) - 1;
          break;
        }
        if (!IsNum(x)) return "function arg non-numeric";
        break;
      }
      case OpCode::kAbs: {
        const VmReg& x = regs[in.a];
        const ValueType rt = static_cast<ValueType>(in.imm);
        if (x.tag == ValueType::kInt && rt == ValueType::kInt) {
          if (x.i == kInt64Min) {
            SetNull(d);
          } else {
            SetInt(d, x.i < 0 ? -x.i : x.i);
          }
          break;
        }
        SetNumeric(d, std::fabs(NumOf(x)), rt);
        break;
      }
      case OpCode::kSqrt: {
        const double a = NumOf(regs[in.a]);
        if (a < 0) {
          SetNull(d);
        } else {
          SetFloat(d, std::sqrt(a));
        }
        break;
      }
      case OpCode::kLog: {
        const double a = NumOf(regs[in.a]);
        if (a <= 0) {
          SetNull(d);
        } else {
          SetFloat(d, std::log(a));
        }
        break;
      }
      case OpCode::kExp:
        SetFloat(d, std::exp(NumOf(regs[in.a])));
        break;
      case OpCode::kPow:
        SetFloat(d, std::pow(NumOf(regs[in.a]), NumOf(regs[in.b])));
        break;
      case OpCode::kFloor: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kInt) break;  // already exact, in place
        SetNumeric(d, std::floor(x.f), ValueType::kInt);
        break;
      }
      case OpCode::kCeil: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kInt) break;
        SetNumeric(d, std::ceil(x.f), ValueType::kInt);
        break;
      }
      case OpCode::kRound: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kInt) break;
        SetNumeric(d, x.f, ValueType::kInt);
        break;
      }
      case OpCode::kLeast:
      case OpCode::kGreatest: {
        const VmReg& x = regs[in.a];
        const VmReg& y = regs[in.b];
        const ValueType rt = static_cast<ValueType>(in.imm);
        const bool greatest = in.op == OpCode::kGreatest;
        if (x.tag == ValueType::kInt && y.tag == ValueType::kInt &&
            rt == ValueType::kInt) {
          SetInt(d, greatest ? std::max(x.i, y.i) : std::min(x.i, y.i));
          break;
        }
        const double a = NumOf(x);
        const double b = NumOf(y);
        SetNumeric(d, greatest ? std::max(a, b) : std::min(a, b), rt);
        break;
      }

      case OpCode::kUpperLower: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (x.tag != ValueType::kString) return "string function on non-string";
        std::string out = *x.s;
        for (char& c : out) {
          c = in.b != 0
                  ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                  : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        SetOwnedString(d, std::move(out));
        break;
      }
      case OpCode::kLength: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (x.tag != ValueType::kString) return "string function on non-string";
        SetInt(d, static_cast<int64_t>(x.s->size()));
        break;
      }
      case OpCode::kConcatInit:
        d.sown.clear();
        d.s = &d.sown;
        d.tag = ValueType::kString;
        break;
      case OpCode::kConcatAppend: {
        const VmReg& x = regs[in.a];
        if (x.tag == ValueType::kNull) {
          SetNull(d);
          pc = static_cast<size_t>(in.imm) - 1;
          break;
        }
        if (x.tag != ValueType::kString) return "string function on non-string";
        d.sown += *x.s;
        break;
      }
      case OpCode::kSubstr: {
        const VmReg& str = regs[in.a];
        const VmReg& start = regs[in.b];
        const VmReg& len = regs[in.imm2];
        if (str.tag == ValueType::kNull || start.tag == ValueType::kNull ||
            len.tag == ValueType::kNull) {
          SetNull(d);
          break;
        }
        if (str.tag != ValueType::kString || start.tag != ValueType::kInt ||
            len.tag != ValueType::kInt) {
          return "SUBSTR argument type mismatch";
        }
        const std::string& text = *str.s;
        // SQL-style 1-based start; out-of-range clamps (mirrors eval.cc).
        int64_t begin = start.i - 1;
        int64_t count = len.i;
        if (begin < 0) {
          count += begin;  // shift the window right
          begin = 0;
        }
        if (begin >= static_cast<int64_t>(text.size()) || count <= 0) {
          SetOwnedString(d, std::string());
          break;
        }
        SetOwnedString(
            d, text.substr(static_cast<size_t>(begin),
                           static_cast<size_t>(std::min<int64_t>(
                               count, static_cast<int64_t>(text.size()) - begin))));
        break;
      }
    }
  }
  return nullptr;
}

}  // namespace

Result<Value> VmEvaluate(const BytecodeProgram& prog, const EvalContext& ctx,
                         VmState* state) {
  VmReg* regs = state->Acquire(prog.num_regs);
  if (const char* err = Exec(prog, ctx, regs)) return Status::Internal(err);
  return ToValue(regs[0]);
}

Result<bool> VmEvaluatePredicate(const BytecodeProgram& prog,
                                 const EvalContext& ctx, VmState* state) {
  VmReg* regs = state->Acquire(prog.num_regs);
  if (const char* err = Exec(prog, ctx, regs)) return Status::Internal(err);
  if (regs[0].tag == ValueType::kBool) return regs[0].b;
  if (regs[0].tag == ValueType::kNull) return false;
  return Status::Internal("predicate evaluated to non-bool (bytecode)");
}

double VmEvaluateScore(const BytecodeProgram& prog, const EvalContext& ctx,
                       VmState* state) {
  VmReg* regs = state->Acquire(prog.num_regs);
  if (Exec(prog, ctx, regs) != nullptr) {
    return -std::numeric_limits<double>::infinity();
  }
  const VmReg& r = regs[0];
  if (r.tag == ValueType::kInt) return static_cast<double>(r.i);
  if (r.tag == ValueType::kFloat) return r.f;
  return -std::numeric_limits<double>::infinity();
}

}  // namespace cepr
