#ifndef CEPR_EXPR_FOLD_H_
#define CEPR_EXPR_FOLD_H_

#include "expr/expr.h"

namespace cepr {

/// Compile-time expression simplification, run by the query compiler after
/// type checking and before predicate decomposition:
///
///  * constant subtrees collapse to literals (`2 * 3 + 1` -> `7`,
///    `UPPER('ibm')` -> `'IBM'`, `1 > 2` -> `FALSE`), using the same
///    evaluator as runtime so semantics (NULL propagation, division by
///    zero, ...) agree exactly;
///  * boolean identities shrink the tree: `TRUE AND x` -> `x`,
///    `FALSE AND x` -> `FALSE`, `TRUE OR x` -> `TRUE`, `FALSE OR x` -> `x`,
///    `NOT TRUE` -> `FALSE`;
///  * CASE drops WHEN arms whose condition folded to FALSE and collapses
///    entirely when an arm folded to TRUE.
///
/// The input must be resolved and type checked; the returned tree keeps
/// the original result_type. Folding never changes evaluation results.
ExprPtr FoldConstants(ExprPtr expr);

}  // namespace cepr

#endif  // CEPR_EXPR_FOLD_H_
