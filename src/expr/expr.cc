#include "expr/expr.h"

#include "common/logging.h"

namespace cepr {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kFirst:
      return "FIRST";
    case AggFunc::kLast:
      return "LAST";
  }
  return "?";
}

const char* ScalarFuncToString(ScalarFunc func) {
  switch (func) {
    case ScalarFunc::kAbs:
      return "ABS";
    case ScalarFunc::kSqrt:
      return "SQRT";
    case ScalarFunc::kLog:
      return "LOG";
    case ScalarFunc::kExp:
      return "EXP";
    case ScalarFunc::kPow:
      return "POW";
    case ScalarFunc::kFloor:
      return "FLOOR";
    case ScalarFunc::kCeil:
      return "CEIL";
    case ScalarFunc::kRound:
      return "ROUND";
    case ScalarFunc::kLeast:
      return "LEAST";
    case ScalarFunc::kGreatest:
      return "GREATEST";
    case ScalarFunc::kUpper:
      return "UPPER";
    case ScalarFunc::kLower:
      return "LOWER";
    case ScalarFunc::kLength:
      return "LENGTH";
    case ScalarFunc::kConcat:
      return "CONCAT";
    case ScalarFunc::kSubstr:
      return "SUBSTR";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::VarRef(std::string var, std::string attr) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVarRef;
  e->var_name = std::move(var);
  e->attr_name = std::move(attr);
  return e;
}

ExprPtr Expr::IterRef(std::string var, std::string attr, IterKind iter) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIterRef;
  e->var_name = std::move(var);
  e->attr_name = std::move(attr);
  e->iter_kind = iter;
  return e;
}

ExprPtr Expr::Aggregate(AggFunc func, std::string var, std::string attr) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAggregate;
  e->agg_func = func;
  e->var_name = std::move(var);
  e->attr_name = std::move(attr);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Func(ScalarFunc func, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunc;
  e->func = func;
  e->children = std::move(args);
  return e;
}

ExprPtr Expr::Case(std::vector<ExprPtr> children, bool has_else) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  e->children = std::move(children);
  e->has_else = has_else;
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->var_name = var_name;
  e->attr_name = attr_name;
  e->var_index = var_index;
  e->attr_index = attr_index;
  e->iter_kind = iter_kind;
  e->agg_func = agg_func;
  e->agg_slot = agg_slot;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  e->func = func;
  e->has_else = has_else;
  e->result_type = result_type;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kVarRef:
      return var_name + "." + attr_name;
    case ExprKind::kIterRef: {
      const char* idx = iter_kind == IterKind::kCurrent ? "[i]"
                        : iter_kind == IterKind::kPrev  ? "[i-1]"
                                                        : "[1]";
      return var_name + idx + "." + attr_name;
    }
    case ExprKind::kAggregate: {
      std::string out = AggFuncToString(agg_func);
      out += "(";
      out += var_name;
      if (agg_func == AggFunc::kFirst || agg_func == AggFunc::kLast) {
        out += ").";
        out += attr_name;
        return out;
      }
      if (!attr_name.empty()) {
        out += ".";
        out += attr_name;
      }
      out += ")";
      return out;
    }
    case ExprKind::kUnary: {
      CEPR_DCHECK(children.size() == 1);
      if (unary_op == UnaryOp::kNot) return "NOT (" + children[0]->ToString() + ")";
      return "-(" + children[0]->ToString() + ")";
    }
    case ExprKind::kBinary: {
      CEPR_DCHECK(children.size() == 2);
      return "(" + children[0]->ToString() + " " + BinaryOpToString(binary_op) +
             " " + children[1]->ToString() + ")";
    }
    case ExprKind::kFunc: {
      std::string out = ScalarFuncToString(func);
      out += "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      const size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToString();
        out += " THEN " + children[2 * i + 1]->ToString();
      }
      if (has_else) out += " ELSE " + children.back()->ToString();
      out += " END";
      return out;
    }
  }
  return "?";
}

void Expr::CollectVarIndices(std::vector<int>* out) const {
  if (kind == ExprKind::kVarRef || kind == ExprKind::kIterRef ||
      kind == ExprKind::kAggregate) {
    out->push_back(var_index);
  }
  for (const auto& c : children) c->CollectVarIndices(out);
}

}  // namespace cepr
