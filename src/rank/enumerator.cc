#include "rank/enumerator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <queue>
#include <utility>

#include "expr/eval.h"
#include "expr/interval.h"

namespace cepr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Immutable cons cell of the suffix unwound from the DAG so far. Walking
/// root-to-bottom visits events last-first, so consing each onto the head
/// yields forward (chronological) order when read head-first — the order
/// the owning run would have folded and bound them.
struct SuffixCell {
  EventPtr event;
  std::shared_ptr<const SuffixCell> next;
};
using SuffixPtr = std::shared_ptr<const SuffixCell>;

/// EvalContext over one group's closed prefix: the trailing variable is
/// unbound (its binding is whatever DAG path is under consideration);
/// everything else answers from the group's materialized bindings and
/// refolded accumulators, exactly as the owning Run would.
class ClosedContext : public EvalContext {
 public:
  ClosedContext(const DagGroupContext* group, int trailing_var)
      : group_(group), trailing_(trailing_var) {}

  const Event* SingleEvent(int var_index) const override {
    if (var_index == trailing_) return nullptr;
    const auto& b = group_->closed_bindings[static_cast<size_t>(var_index)];
    return b.empty() ? nullptr : b.front().get();
  }
  const Event* KleeneFirst(int var_index) const override {
    return SingleEvent(var_index);
  }
  const Event* KleeneLast(int var_index) const override {
    if (var_index == trailing_) return nullptr;
    const auto& b = group_->closed_bindings[static_cast<size_t>(var_index)];
    return b.empty() ? nullptr : b.back().get();
  }
  const Event* KleeneCurrent(int) const override { return nullptr; }
  int64_t KleeneCount(int var_index) const override {
    if (var_index == trailing_) return 0;
    return static_cast<int64_t>(
        group_->closed_bindings[static_cast<size_t>(var_index)].size());
  }
  double AggValue(int agg_slot) const override {
    return group_->base_aggs.value(static_cast<size_t>(agg_slot));
  }

 private:
  const DagGroupContext* group_;  // not owned; outlives the enumeration
  int trailing_;
};

/// BoundEnv handed to DeriveBounds: closed variables answer as points
/// through ClosedContext; the trailing Kleene variable is open but FINAL —
/// its per-slot intervals (node summary folded with the already-unwound
/// suffix) and iteration-count range replace the open-future widening a
/// live Run's environment needs. Rebind() repoints the per-entry state so
/// one env object serves every derivation of the walk.
class DagBoundEnv : public BoundEnv {
 public:
  DagBoundEnv(const CompiledQuery* plan, const MatchDagStore* store)
      : plan_(plan), store_(store) {}

  void Rebind(const ClosedContext* ctx, const std::vector<Interval>* slots,
              Interval count_range) {
    ctx_ = ctx;
    slots_ = slots;
    count_range_ = count_range;
  }

  Interval AttrRange(int attr_index) const override {
    if (attr_index < 0 ||
        attr_index >= static_cast<int>(plan_->attr_ranges.size())) {
      return Interval::Whole();
    }
    return plan_->attr_ranges[static_cast<size_t>(attr_index)];
  }
  bool IsClosed(int var_index) const override {
    return var_index != store_->trailing_var();
  }
  const EvalContext& Context() const override { return *ctx_; }

  std::optional<Interval> AggSlotRange(int agg_slot) const override {
    const int dense = store_->dense_slot_of(agg_slot);
    if (dense < 0) return std::nullopt;
    return (*slots_)[static_cast<size_t>(dense)];
  }
  std::optional<Interval> KleeneCountRange(int var_index) const override {
    if (var_index != store_->trailing_var()) return std::nullopt;
    return count_range_;
  }
  bool KleeneFinal(int var_index) const override {
    return var_index == store_->trailing_var();
  }

 private:
  const CompiledQuery* plan_;
  const MatchDagStore* store_;
  const ClosedContext* ctx_ = nullptr;
  const std::vector<Interval>* slots_ = nullptr;
  Interval count_range_ = Interval::Whole();
};

/// EvalContext over one fully materialized match (bindings plus refolded
/// accumulators). Answers exactly as the legacy Run did at detection time
/// (front / back / size / slot value, no candidate installed), so SELECT
/// rows and scores come out bit-identical.
class PathContext : public EvalContext {
 public:
  PathContext(const std::vector<std::vector<EventPtr>>* bindings,
              const AggStates* aggs)
      : bindings_(bindings), aggs_(aggs) {}

  const Event* SingleEvent(int var_index) const override {
    const auto& b = (*bindings_)[static_cast<size_t>(var_index)];
    return b.empty() ? nullptr : b.front().get();
  }
  const Event* KleeneFirst(int var_index) const override {
    return SingleEvent(var_index);
  }
  const Event* KleeneLast(int var_index) const override {
    const auto& b = (*bindings_)[static_cast<size_t>(var_index)];
    return b.empty() ? nullptr : b.back().get();
  }
  const Event* KleeneCurrent(int) const override { return nullptr; }
  int64_t KleeneCount(int var_index) const override {
    return static_cast<int64_t>(
        (*bindings_)[static_cast<size_t>(var_index)].size());
  }
  double AggValue(int agg_slot) const override {
    return aggs_->value(static_cast<size_t>(agg_slot));
  }

 private:
  const std::vector<std::vector<EventPtr>>* bindings_;
  const AggStates* aggs_;
};

double FoldIdentity(AggStorageKind kind) {
  switch (kind) {
    case AggStorageKind::kMin:
      return kInf;
    case AggStorageKind::kMax:
      return -kInf;
    case AggStorageKind::kSum:
      return 0.0;
  }
  return 0.0;
}

/// The slot value of `event` under `spec`, or false when the attribute is
/// NULL / non-numeric (skipped, as AggStates::Accept skips it).
bool EventSlotValue(const AggSpec& spec, const Event& event, double* x) {
  if (spec.attr_index == kTimestampAttr) {
    *x = static_cast<double>(event.timestamp());
    return true;
  }
  const Value& v = event.value(static_cast<size_t>(spec.attr_index));
  auto num = v.AsNumeric();
  if (!num.ok()) return false;
  *x = num.value();
  return true;
}

/// Interval containing fold(P ++ S) for every path P summarized by `node`
/// given the scalar fold `s` of the fixed suffix S: min/max/sum are
/// commutative monoids, so the two folds combine per storage kind, and the
/// combine is monotone in both interval endpoints (containment preserved).
Interval CombineSlot(AggStorageKind kind, Interval node, double s) {
  switch (kind) {
    case AggStorageKind::kMin:
      return {std::min(node.lo, s), std::min(node.hi, s)};
    case AggStorageKind::kMax:
      return {std::max(node.lo, s), std::max(node.hi, s)};
    case AggStorageKind::kSum:
      return {node.lo + s, node.hi + s};
  }
  return Interval::Whole();
}

/// One frontier entry: the matches formed by every path through `node`,
/// each suffixed with the already-unwound `suffix`, within set `set`.
struct Entry {
  size_t set = 0;
  const DagNode* node = nullptr;  // borrowed; reachable from sets[set]
  SuffixPtr suffix;
  uint32_t suffix_len = 0;
  std::vector<double> fold;  // scalar suffix fold per dense slot
  double bound = 0.0;        // score bound over every match of the entry
  uint64_t seq = 0;          // push order: pop determinism on equal bounds
};

/// priority_queue comparator — top() = best: largest bound under DESC,
/// smallest under ASC; earlier push wins ties (deterministic).
struct WorseEntry {
  bool desc;
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.bound != b.bound) {
      return desc ? a.bound < b.bound : a.bound > b.bound;
    }
    return a.seq > b.seq;
  }
};

}  // namespace

void EnumerateLazyMatches(const std::vector<LazyMatchSet>& sets, TopK* topk,
                          uint64_t* matches_enumerated,
                          uint64_t* enumeration_cutoffs) {
  if (sets.empty()) return;
  const CompiledQuery* plan = sets.front().group()->plan;
  const MatchDagStore* store = sets.front().group()->store.get();
  const std::vector<AggSpec>& specs = store->dense_specs();
  const int trailing = store->trailing_var();
  const bool desc = plan->rank_desc;

  std::vector<ClosedContext> ctxs;
  ctxs.reserve(sets.size());
  for (const LazyMatchSet& s : sets) {
    ctxs.emplace_back(s.group().get(), trailing);
  }

  DagBoundEnv env(plan, store);
  std::vector<Interval> slots(specs.size());
  const auto bound_of = [&](size_t set, const DagNode* node,
                            const std::vector<double>& fold, uint32_t len) {
    for (size_t i = 0; i < specs.size(); ++i) {
      slots[i] = CombineSlot(specs[i].kind, node->aggs[i], fold[i]);
    }
    env.Rebind(&ctxs[set], &slots,
               Interval::Of(static_cast<double>(node->cmin + len),
                            static_cast<double>(node->cmax + len)));
    const Interval b = DeriveBounds(*plan->score, env);
    return desc ? b.hi : b.lo;
  };

  std::vector<double> identity(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    identity[i] = FoldIdentity(specs[i].kind);
  }

  std::priority_queue<Entry, std::vector<Entry>, WorseEntry> frontier{
      WorseEntry{desc}};
  uint64_t seq = 0;
  for (size_t i = 0; i < sets.size(); ++i) {
    Entry e;
    e.set = i;
    e.node = sets[i].node();
    e.fold = identity;
    e.bound = bound_of(i, e.node, e.fold, 0);
    e.seq = seq++;
    frontier.push(std::move(e));
  }

  while (!frontier.empty()) {
    // top() is const; moving out is fine because the pop follows at once.
    Entry e = std::move(const_cast<Entry&>(frontier.top()));
    frontier.pop();
    if (topk->full()) {
      const std::optional<double> thr = topk->threshold();
      // Remaining entries all have bounds no better than this one (heap
      // order), so a STRICTLY-worse-than-bar bound ends the whole walk. An
      // equal bound continues: the content tie-break can still displace a
      // retained match at the same score. No bar at all (k == 0) retains
      // nothing, so everything left is cut.
      if (!thr.has_value() || (desc ? e.bound < *thr : e.bound > *thr)) {
        ++*enumeration_cutoffs;
        return;
      }
    }
    switch (e.node->kind) {
      case DagNode::Kind::kBottom: {
        const LazyMatchSet& s = sets[e.set];
        const DagGroupContext& g = *s.group();
        Match m;
        m.id = s.base_id();
        m.last_sequence = s.last_sequence();
        m.first_ts = g.first_ts;
        m.last_ts = s.last_ts();
        m.bindings = g.closed_bindings;
        auto& tb = m.bindings[static_cast<size_t>(trailing)];
        tb.clear();
        tb.reserve(e.suffix_len);
        for (const SuffixCell* c = e.suffix.get(); c != nullptr;
             c = c->next.get()) {
          tb.push_back(c->event);
        }
        // Refold the suffix in chronological order — the order the owning
        // run accepted those events, so float accumulation is identical.
        AggStates aggs = g.base_aggs;
        for (const EventPtr& ev : tb) aggs.Accept(trailing, *ev);
        PathContext ctx(&m.bindings, &aggs);
        m.row.reserve(plan->analyzed.ast.select.size());
        for (const auto& item : plan->analyzed.ast.select) {
          auto v = Evaluate(*item.expr, ctx);
          m.row.push_back(v.ok() ? std::move(v).value() : Value::Null());
        }
        m.score = EvaluateScore(*plan->score, ctx);
        ++*matches_enumerated;
        topk->Offer(std::move(m));
        break;
      }
      case DagNode::Kind::kExtend: {
        // The child covers exactly the same matches (the node's event moves
        // from the DAG into the fixed suffix), so the bound carries over.
        Entry child;
        child.set = e.set;
        child.node = e.node->prev;
        auto cell = std::make_shared<SuffixCell>();
        cell->event = e.node->event;
        cell->next = std::move(e.suffix);
        child.suffix = std::move(cell);
        child.suffix_len = e.suffix_len + 1;
        child.fold = std::move(e.fold);
        for (size_t i = 0; i < specs.size(); ++i) {
          double x = 0.0;
          if (!EventSlotValue(specs[i], *e.node->event, &x)) continue;
          double& f = child.fold[i];
          switch (specs[i].kind) {
            case AggStorageKind::kMin:
              f = std::min(f, x);
              break;
            case AggStorageKind::kMax:
              f = std::max(f, x);
              break;
            case AggStorageKind::kSum:
              f += x;
              break;
          }
        }
        child.bound = e.bound;
        child.seq = seq++;
        frontier.push(std::move(child));
        break;
      }
      case DagNode::Kind::kUnion: {
        // The children partition this entry's matches; each gets a fresh
        // (tighter) bound from its own summaries.
        const DagNode* kids[2] = {e.node->prev, e.node->other};
        for (int j = 0; j < 2; ++j) {
          Entry child;
          child.set = e.set;
          child.node = kids[j];
          child.suffix = j == 0 ? e.suffix : std::move(e.suffix);
          child.suffix_len = e.suffix_len;
          child.fold = j == 0 ? e.fold : std::move(e.fold);
          child.bound = bound_of(e.set, kids[j], child.fold, child.suffix_len);
          child.seq = seq++;
          frontier.push(std::move(child));
        }
        break;
      }
    }
  }
}

}  // namespace cepr
