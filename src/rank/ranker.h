#ifndef CEPR_RANK_RANKER_H_
#define CEPR_RANK_RANKER_H_

#include <memory>
#include <vector>

#include "common/counters.h"
#include "engine/match_dag.h"
#include "rank/score.h"
#include "rank/topk.h"

namespace cepr {

class BinWriter;
class BinReader;
class EventInterner;
class EventUninterner;

/// How a query's matches are ranked and retained. kHeap is CEPR's default;
/// kNaiveSort and kPassthrough are the evaluation baselines; kPruned adds
/// the partial-match upper-bound pruner on top of kHeap.
enum class RankerPolicy {
  /// No ranking: matches leave in detection order (LIMIT = first-k).
  kPassthrough,
  /// Baseline: buffer every match of the window, sort at close, cut to k.
  kNaiveSort,
  /// Incremental bounded top-k heap; O(log k) per match.
  kHeap,
  /// kHeap + ScorePruner feeding a threshold back into the matcher.
  kPruned,
};

const char* RankerPolicyToString(RankerPolicy policy);

/// One ranked output row.
struct RankedResult {
  Match match;
  int64_t window_id = 0;
  /// 0-based rank within the report window. Final for buffered emission;
  /// the rank at emission time for eager (provisional) emission.
  size_t rank = 0;
  /// True when emitted eagerly (EMIT ON COMPLETE) — a later match may
  /// retroactively outrank it.
  bool provisional = false;
};

/// Maintains the ranked state of one query's report window and decides
/// when results leave. Single-threaded, driven by the query runtime.
class Ranker {
 public:
  /// `plan` supplies direction, limit and emission policy. For kPruned the
  /// ranker creates a ScorePruner the matcher should be wired to.
  Ranker(CompiledQueryPtr plan, RankerPolicy policy);

  RankerPolicy policy() const { return policy_; }

  /// The pruner to install into the matcher; null unless policy == kPruned
  /// and the query has a statically boundable score.
  const RunPruner* pruner() const { return pruner_.get(); }
  const ScorePruner* score_pruner() const { return pruner_.get(); }

  /// Accepts one detected match assigned to `window_id`. Windows must be
  /// non-decreasing (in-order streams); moving to a newer window closes the
  /// previous one, appending its ordered results to `out`. Under eager
  /// emission (EMIT ON COMPLETE) accepted matches are also appended
  /// immediately, flagged provisional.
  void OnMatch(Match match, int64_t window_id, std::vector<RankedResult>* out);

  /// Accepts deferred lazy-DAG match sets assigned to `window_id`. The sets
  /// buffer until the window closes, when the best-first enumerator
  /// (rank/enumerator.h) materializes only the matches the top-k order
  /// needs. Valid only for buffered kHeap/kPruned windows — the engines
  /// gate dag mode to exactly those policies.
  void OnLazySets(std::vector<LazyMatchSet> sets, int64_t window_id,
                  std::vector<RankedResult>* out);

  /// Informs the ranker that the stream has progressed to `window_id`
  /// (independent of matches), closing any older window.
  void AdvanceTo(int64_t window_id, std::vector<RankedResult>* out);

  /// End of stream: closes the open window.
  void Finish(std::vector<RankedResult>* out);

  /// Matches accepted into ranked state so far (diagnostics). In dag mode
  /// each LazyMatchSet counts once (the matcher's detection unit).
  uint64_t matches_seen() const { return matches_seen_; }

  /// Lazy-enumeration counters (0 outside dag mode): matches the
  /// enumerator materialized, and frontier cutoffs (walks abandoned once
  /// every remaining bound fell strictly below the k-th threshold).
  /// Relaxed atomics — the sharded snapshot path reads them while the
  /// owning shard thread keeps ranking (same contract as the pruner's).
  uint64_t matches_enumerated() const { return matches_enumerated_.Load(); }
  uint64_t enumeration_cutoffs() const { return enumeration_cutoffs_.Load(); }

  /// Installs the matcher scope's DAG store so LoadState can rebuild
  /// pending lazy sets. Must be called before LoadState when the engine
  /// runs in dag mode; a null store is fine otherwise.
  void BindDagStore(std::shared_ptr<MatchDagStore> store) {
    dag_store_ = std::move(store);
  }

  /// True iff an open window holds buffered matches that only a future
  /// AdvanceTo / Finish will release — i.e. window progress must not be
  /// postponed past the next boundary. Eager and passthrough windows
  /// already emitted everything; closing them is a pure state reset that
  /// any later OnMatch/AdvanceTo performs equivalently.
  bool has_buffered_results() const {
    return window_open_ && !eager_ && policy_ != RankerPolicy::kPassthrough;
  }

  /// Checkpoint serialization of the mutable ranking state: window cursor,
  /// retained matches (heap or sort buffer) and pruner counters. Structural
  /// configuration (policy, k, direction, pruner existence) is rebuilt from
  /// the plan at construction; LoadState then reinstates the pruner
  /// threshold exactly as the last OnMatch/CloseWindow left it.
  void SaveState(EventInterner* in, BinWriter* w) const;
  bool LoadState(EventUninterner* in, BinReader* r);

 private:
  void CloseWindow(std::vector<RankedResult>* out);
  void EmitOrdered(std::vector<Match> ordered, std::vector<RankedResult>* out);
  size_t EffectiveK() const;

  CompiledQueryPtr plan_;
  RankerPolicy policy_;
  bool eager_;  // EMIT ON COMPLETE
  std::unique_ptr<ScorePruner> pruner_;

  int64_t current_window_ = 0;
  bool window_open_ = false;
  uint64_t matches_seen_ = 0;
  uint64_t passthrough_emitted_ = 0;  // per window, for kPassthrough LIMIT

  std::unique_ptr<TopK> topk_;       // kHeap / kPruned
  std::vector<Match> buffer_;        // kNaiveSort

  /// Deferred lazy-DAG match sets of the open window (dag mode only).
  std::vector<LazyMatchSet> pending_;
  std::shared_ptr<MatchDagStore> dag_store_;  // for LoadState of pending_
  RelaxedCounter matches_enumerated_;
  RelaxedCounter enumeration_cutoffs_;
};

}  // namespace cepr

#endif  // CEPR_RANK_RANKER_H_
