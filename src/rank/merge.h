#ifndef CEPR_RANK_MERGE_H_
#define CEPR_RANK_MERGE_H_

#include <cstddef>
#include <vector>

#include "rank/ranker.h"

namespace cepr {

/// How per-shard result lists of one report window are combined.
struct ShardMergeOptions {
  /// True for ranked queries (order by OutranksMatch); false for
  /// passthrough emission (order by detection position).
  bool by_score = true;
  /// RANK BY direction (ignored for passthrough).
  bool desc = true;
  /// LIMIT k; TopK::kUnlimited keeps everything.
  size_t limit = static_cast<size_t>(-1);
};

/// Deterministic detection-order comparator used for passthrough merges:
/// (detecting event's stream sequence, matcher-local id). True iff `a`
/// was detected before `b`.
bool DetectedBefore(const Match& a, const Match& b);

/// K-way merge of one report window's per-shard emissions into the single
/// globally ordered top-k the serial engine would have produced.
///
/// Each inner vector is one shard's already-ordered output for the window
/// (its local top-k for ranked queries, its local first-k for passthrough).
/// Because every match's global rank is at least its shard-local rank, the
/// union of shard-local top-k lists is a superset of the global top-k, so
/// merging and cutting to `limit` is exact. Ranks are reassigned 0..m-1;
/// window ids and provisional flags pass through.
std::vector<RankedResult> MergeShardResults(
    std::vector<std::vector<RankedResult>> shard_lists,
    const ShardMergeOptions& options);

}  // namespace cepr

#endif  // CEPR_RANK_MERGE_H_
