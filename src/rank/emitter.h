#ifndef CEPR_RANK_EMITTER_H_
#define CEPR_RANK_EMITTER_H_

#include <vector>

#include "common/binio.h"
#include "engine/window.h"
#include "rank/ranker.h"

namespace cepr {

/// Glues report-window assignment to the ranker: the per-query runtime
/// feeds it the matches detected for each input event, and it produces the
/// ordered RankedResults the query's sink receives. Also closes windows on
/// pure time progress (events without matches).
class Emitter {
 public:
  Emitter(CompiledQueryPtr plan, RankerPolicy policy);

  /// Pruner the matcher should be wired to (null if pruning is off).
  const RunPruner* pruner() const { return ranker_.pruner(); }
  const ScorePruner* score_pruner() const { return ranker_.score_pruner(); }

  /// Processes the matches detected while ingesting the event at
  /// (`ts`, per-query ordinal `ordinal`). Appends any results that become
  /// final (window closes) or are emitted eagerly.
  void OnEvent(Timestamp ts, uint64_t ordinal, std::vector<Match> matches,
               std::vector<RankedResult>* out);

  /// Dag-mode variant: also forwards the event's deferred LazyMatchSets to
  /// the ranker, which buffers them for best-first enumeration at window
  /// close.
  void OnEvent(Timestamp ts, uint64_t ordinal, std::vector<Match> matches,
               std::vector<LazyMatchSet> lazy, std::vector<RankedResult>* out);

  /// End of stream: flushes the open window.
  void Finish(std::vector<RankedResult>* out);

  const Ranker& ranker() const { return ranker_; }
  const ReportWindowAssigner& windows() const { return windows_; }

  /// Forwards the matcher scope's DAG store to the ranker for checkpoint
  /// restore of pending lazy sets (null is fine outside dag mode).
  void BindDagStore(std::shared_ptr<MatchDagStore> store) {
    ranker_.BindDagStore(std::move(store));
  }

  /// True iff buffered matches await a window close (see
  /// Ranker::has_buffered_results); the shared evaluation layer uses this
  /// to decide which skipped queries need window advancement at a report
  /// boundary.
  bool has_buffered_results() const { return ranker_.has_buffered_results(); }

  /// Event-time position of the stream as this emitter last saw it; the
  /// reference point for emission-delay metrics (how long a match waited
  /// in a buffered window before leaving).
  Timestamp last_event_ts() const { return last_event_ts_; }

  /// Checkpoint serialization: the ranker's mutable state plus the
  /// last-seen event time (the window assigner is stateless).
  void SaveState(EventInterner* in, BinWriter* w) const {
    w->I64(last_event_ts_);
    ranker_.SaveState(in, w);
  }
  bool LoadState(EventUninterner* in, BinReader* r) {
    return r->I64(&last_event_ts_) && ranker_.LoadState(in, r);
  }

 private:
  ReportWindowAssigner windows_;
  Ranker ranker_;
  Timestamp last_event_ts_ = 0;
};

}  // namespace cepr

#endif  // CEPR_RANK_EMITTER_H_
