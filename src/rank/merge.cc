#include "rank/merge.h"

#include <algorithm>

#include "rank/topk.h"

namespace cepr {

bool DetectedBefore(const Match& a, const Match& b) {
  if (a.last_sequence != b.last_sequence) {
    return a.last_sequence < b.last_sequence;
  }
  return a.id < b.id;
}

std::vector<RankedResult> MergeShardResults(
    std::vector<std::vector<RankedResult>> shard_lists,
    const ShardMergeOptions& options) {
  const auto outranks = [&options](const RankedResult& a,
                                   const RankedResult& b) {
    return options.by_score ? OutranksMatch(a.match, b.match, options.desc)
                            : DetectedBefore(a.match, b.match);
  };

  // Heap of (shard, cursor) keyed by each shard's current head; the lists
  // are already ordered, so repeatedly taking the best head is a full
  // ordered merge in O(total log shards).
  struct Cursor {
    size_t shard;
    size_t index;
  };
  std::vector<Cursor> heads;
  heads.reserve(shard_lists.size());
  for (size_t s = 0; s < shard_lists.size(); ++s) {
    if (!shard_lists[s].empty()) heads.push_back(Cursor{s, 0});
  }
  // std::push_heap keeps the comparator-max at the root; we want the best
  // head there, so "less" = is outranked by.
  const auto head_less = [&](const Cursor& a, const Cursor& b) {
    return outranks(shard_lists[b.shard][b.index],
                    shard_lists[a.shard][a.index]);
  };
  std::make_heap(heads.begin(), heads.end(), head_less);

  std::vector<RankedResult> merged;
  while (!heads.empty() && merged.size() < options.limit) {
    std::pop_heap(heads.begin(), heads.end(), head_less);
    Cursor cur = heads.back();
    heads.pop_back();
    RankedResult& r = shard_lists[cur.shard][cur.index];
    r.rank = merged.size();
    merged.push_back(std::move(r));
    if (++cur.index < shard_lists[cur.shard].size()) {
      heads.push_back(cur);
      std::push_heap(heads.begin(), heads.end(), head_less);
    }
  }
  return merged;
}

}  // namespace cepr
