#include "rank/ranker.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "rank/enumerator.h"
#include "runtime/serde.h"

namespace cepr {

const char* RankerPolicyToString(RankerPolicy policy) {
  switch (policy) {
    case RankerPolicy::kPassthrough:
      return "passthrough";
    case RankerPolicy::kNaiveSort:
      return "naive-sort";
    case RankerPolicy::kHeap:
      return "heap";
    case RankerPolicy::kPruned:
      return "pruned";
  }
  return "?";
}

Ranker::Ranker(CompiledQueryPtr plan, RankerPolicy policy)
    : plan_(std::move(plan)),
      policy_(policy),
      eager_(plan_->emit == EmitPolicy::kOnComplete) {
  if (plan_->score == nullptr &&
      (policy_ == RankerPolicy::kNaiveSort || policy_ == RankerPolicy::kHeap ||
       policy_ == RankerPolicy::kPruned)) {
    // Without RANK BY every policy degenerates to detection order.
    policy_ = RankerPolicy::kPassthrough;
  }
  if (policy_ == RankerPolicy::kPruned && plan_->score != nullptr &&
      plan_->score_prunable && plan_->limit >= 0 &&
      plan_->emit != EmitPolicy::kEveryNEvents) {
    // Count-based windows give runs no event-time deadline, so no run can
    // ever be proven unable to reach the next (fresh) window: no pruner.
    const PruneScope scope = plan_->emit == EmitPolicy::kOnComplete
                                 ? PruneScope::kGlobal
                                 : PruneScope::kTimeWindow;
    pruner_ = std::make_unique<ScorePruner>(plan_->score, plan_->rank_desc,
                                            scope, plan_->within_micros);
  }
  if (policy_ == RankerPolicy::kHeap || policy_ == RankerPolicy::kPruned) {
    topk_ = std::make_unique<TopK>(EffectiveK(), plan_->rank_desc);
  }
}

size_t Ranker::EffectiveK() const {
  return plan_->limit < 0 ? TopK::kUnlimited : static_cast<size_t>(plan_->limit);
}

void Ranker::OnMatch(Match match, int64_t window_id,
                     std::vector<RankedResult>* out) {
  AdvanceTo(window_id, out);
  window_open_ = true;
  ++matches_seen_;

  switch (policy_) {
    case RankerPolicy::kPassthrough: {
      const size_t k = EffectiveK();
      if (k != TopK::kUnlimited && passthrough_emitted_ >= k) return;
      RankedResult r;
      r.window_id = window_id;
      r.rank = passthrough_emitted_++;
      r.provisional = false;
      r.match = std::move(match);
      out->push_back(std::move(r));
      return;
    }

    case RankerPolicy::kNaiveSort:
      buffer_.push_back(std::move(match));
      return;

    case RankerPolicy::kHeap:
    case RankerPolicy::kPruned: {
      Match copy_for_eager;
      if (eager_) copy_for_eager = match;  // shallow-ish: shared EventPtrs
      const bool accepted = topk_->Offer(std::move(match));
      if (accepted && eager_) {
        RankedResult r;
        r.window_id = window_id;
        // Rank under the full tie-break order, so equal-score matches get
        // the same provisional ranks Drain() would assign.
        r.rank = topk_->RankOf(copy_for_eager);
        r.provisional = true;
        r.match = std::move(copy_for_eager);
        out->push_back(std::move(r));
      }
      if (pruner_ != nullptr) {
        // A full heap with a real worst score is the only state that sets
        // a bar (k = 0 keeps full() true on an empty heap — no bar).
        const std::optional<double> bar =
            topk_->full() ? topk_->threshold() : std::nullopt;
        if (bar.has_value()) {
          // For time windows the pruner also needs the current window's
          // event-time end; window ids are ts / span.
          const Timestamp window_end =
              pruner_->scope() == PruneScope::kTimeWindow
                  ? (current_window_ + 1) * plan_->within_micros
                  : std::numeric_limits<Timestamp>::max();
          pruner_->SetThreshold(*bar, window_end);
        } else {
          pruner_->ClearThreshold();
        }
      }
      return;
    }
  }
}

void Ranker::OnLazySets(std::vector<LazyMatchSet> sets, int64_t window_id,
                        std::vector<RankedResult>* out) {
  if (sets.empty()) return;
  AdvanceTo(window_id, out);
  window_open_ = true;
  matches_seen_ += sets.size();
  // Buffer only: enumeration waits for the window close, when the k-th
  // threshold is as tight as it will get. The pruner (kPruned) stays idle
  // mid-window in dag mode — matches exist only as deferred sets, so no
  // bar can be derived from them yet.
  for (LazyMatchSet& s : sets) pending_.push_back(std::move(s));
}

void Ranker::AdvanceTo(int64_t window_id, std::vector<RankedResult>* out) {
  if (window_id <= current_window_) return;
  if (window_open_) CloseWindow(out);
  current_window_ = window_id;
}

void Ranker::Finish(std::vector<RankedResult>* out) {
  if (window_open_) CloseWindow(out);
}

void Ranker::CloseWindow(std::vector<RankedResult>* out) {
  switch (policy_) {
    case RankerPolicy::kPassthrough:
      break;  // already emitted eagerly
    case RankerPolicy::kNaiveSort: {
      std::sort(buffer_.begin(), buffer_.end(),
                [this](const Match& a, const Match& b) {
                  return OutranksMatch(a, b, plan_->rank_desc);
                });
      const size_t k = EffectiveK();
      if (k != TopK::kUnlimited && buffer_.size() > k) buffer_.resize(k);
      EmitOrdered(std::move(buffer_), out);
      buffer_.clear();
      break;
    }
    case RankerPolicy::kHeap:
    case RankerPolicy::kPruned: {
      if (!eager_) {
        if (!pending_.empty()) {
          // Best-first lazy enumeration: materialize deferred DAG matches
          // in score-bound order, stopping once every remaining bound is
          // strictly worse than the k-th retained score.
          uint64_t enumerated = 0;
          uint64_t cutoffs = 0;
          EnumerateLazyMatches(pending_, topk_.get(), &enumerated, &cutoffs);
          matches_enumerated_.Add(enumerated);
          enumeration_cutoffs_.Add(cutoffs);
          pending_.clear();
        }
        EmitOrdered(topk_->Drain(), out);
      } else {
        // Eager mode already streamed results; just reset the heap.
        topk_ = std::make_unique<TopK>(EffectiveK(), plan_->rank_desc);
      }
      if (pruner_ != nullptr) pruner_->ClearThreshold();
      break;
    }
  }
  passthrough_emitted_ = 0;
  window_open_ = false;
}

void Ranker::SaveState(EventInterner* in, BinWriter* w) const {
  w->I64(current_window_);
  w->Bool(window_open_);
  w->U64(matches_seen_);
  w->U64(passthrough_emitted_);
  w->Bool(topk_ != nullptr);
  if (topk_ != nullptr) topk_->SaveState(in, w);
  w->U32(static_cast<uint32_t>(buffer_.size()));
  for (const Match& m : buffer_) SaveMatch(in, w, m);
  w->Bool(pruner_ != nullptr);
  if (pruner_ != nullptr) {
    w->U64(pruner_->checks());
    w->U64(pruner_->prunes());
  }
  w->U64(matches_enumerated_.Load());
  w->U64(enumeration_cutoffs_.Load());
  w->U32(static_cast<uint32_t>(pending_.size()));
  if (!pending_.empty()) {
    DagWriter dag_writer(in, w);
    for (const LazyMatchSet& s : pending_) {
      w->U64(s.base_id());
      w->U64(s.last_sequence());
      w->I64(s.last_ts());
      SaveDagGroupContext(in, w, *s.group());
      dag_writer.Save(s.node());
    }
  }
}

bool Ranker::LoadState(EventUninterner* in, BinReader* r) {
  bool has_topk = false;
  if (!r->I64(&current_window_) || !r->Bool(&window_open_) ||
      !r->U64(&matches_seen_) || !r->U64(&passthrough_emitted_) ||
      !r->Bool(&has_topk)) {
    return false;
  }
  // Structural shape is derived from the plan; a mismatch means the
  // snapshot was written by a different query.
  if (has_topk != (topk_ != nullptr)) {
    r->Fail();
    return false;
  }
  if (topk_ != nullptr && !topk_->LoadState(in, r)) return false;
  uint32_t buffered = 0;
  if (!r->U32(&buffered)) return false;
  buffer_.clear();
  buffer_.reserve(buffered);
  for (uint32_t i = 0; i < buffered; ++i) {
    Match m;
    if (!LoadMatch(in, r, &m)) return false;
    buffer_.push_back(std::move(m));
  }
  bool has_pruner = false;
  if (!r->Bool(&has_pruner)) return false;
  if (has_pruner != (pruner_ != nullptr)) {
    r->Fail();
    return false;
  }
  if (pruner_ != nullptr) {
    uint64_t checks = 0, prunes = 0;
    if (!r->U64(&checks) || !r->U64(&prunes)) return false;
    pruner_->RestoreCounters(checks, prunes);
    // Reinstate the threshold exactly as the ranker's last action left it:
    // OnMatch sets a bar iff the heap is full with a real worst score (and
    // the window is still open — CloseWindow always clears).
    const std::optional<double> bar =
        window_open_ && topk_ != nullptr && topk_->full() ? topk_->threshold()
                                                          : std::nullopt;
    if (bar.has_value()) {
      const Timestamp window_end =
          pruner_->scope() == PruneScope::kTimeWindow
              ? (current_window_ + 1) * plan_->within_micros
              : std::numeric_limits<Timestamp>::max();
      pruner_->SetThreshold(*bar, window_end);
    } else {
      pruner_->ClearThreshold();
    }
  }
  uint64_t enumerated = 0;
  uint64_t cutoffs = 0;
  uint32_t pending_count = 0;
  if (!r->U64(&enumerated) || !r->U64(&cutoffs) || !r->U32(&pending_count)) {
    return false;
  }
  matches_enumerated_.Store(enumerated);
  enumeration_cutoffs_.Store(cutoffs);
  pending_.clear();
  if (pending_count > 0) {
    // Pending lazy sets need the matcher scope's DAG store: the restoring
    // engine must have bound it (same shared_match_dag knob as the save).
    if (dag_store_ == nullptr) {
      r->Fail();
      return false;
    }
    DagReader dag_reader(in, r, dag_store_.get());
    pending_.reserve(pending_count);
    for (uint32_t i = 0; i < pending_count; ++i) {
      uint64_t base_id = 0;
      uint64_t last_seq = 0;
      int64_t last_ts = 0;
      if (!r->U64(&base_id) || !r->U64(&last_seq) || !r->I64(&last_ts)) {
        return false;
      }
      DagGroupContextPtr ctx =
          LoadDagGroupContext(plan_.get(), dag_store_, in, r);
      if (ctx == nullptr) return false;
      DagNode* node = dag_reader.Load();
      if (node == nullptr) return false;
      dag_store_->Ref(node);  // the set owns its reference; the reader's
                              // table reference is released on scope exit
      pending_.emplace_back(std::move(ctx), node, base_id, last_seq, last_ts);
    }
    dag_store_->DiscardDeltas();
  }
  return true;
}

void Ranker::EmitOrdered(std::vector<Match> ordered,
                         std::vector<RankedResult>* out) {
  for (size_t i = 0; i < ordered.size(); ++i) {
    RankedResult r;
    r.window_id = current_window_;
    r.rank = i;
    r.provisional = false;
    r.match = std::move(ordered[i]);
    out->push_back(std::move(r));
  }
}

}  // namespace cepr
