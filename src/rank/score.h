#ifndef CEPR_RANK_SCORE_H_
#define CEPR_RANK_SCORE_H_

#include <cstdint>
#include <limits>

#include "common/counters.h"
#include "engine/matcher.h"
#include "expr/interval.h"

namespace cepr {

/// Which report windows a pruned run could still have fed.
enum class PruneScope {
  /// One unbounded window (EMIT ON COMPLETE): the top-k bar only rises, so
  /// any run whose bound fails it is safe to discard.
  kGlobal,
  /// Tumbling event-time windows (EMIT ON WINDOW CLOSE): the bar resets at
  /// each boundary, so a run may only be pruned if it cannot complete
  /// after the current window ends (first_ts + WITHIN < window end).
  kTimeWindow,
};

/// The partial-match pruner (CEPR's key ranking optimization): a run whose
/// best achievable score — per interval-arithmetic bound derivation over
/// the run's binding state and the stream's attribute ranges — cannot beat
/// the current k-th best score is discarded before it wastes further work.
///
/// The ranker owns the threshold (and, for kTimeWindow, the current window
/// end) and updates them as the top-k evolves; the matcher consults
/// ShouldPrune on every run state change. Pruning is inactive until the
/// top-k is full (there is no bar to clear yet). Count-based report windows
/// get no pruner at all: any run may outlive the current window there.
class ScorePruner : public RunPruner {
 public:
  /// `score` must outlive the pruner (owned by the compiled query).
  /// `within_micros` is the query's WITHIN span (bounds a run's lifetime);
  /// only used for kTimeWindow scope.
  ScorePruner(const Expr* score, bool desc, PruneScope scope,
              Timestamp within_micros)
      : score_(score), desc_(desc), scope_(scope), within_(within_micros) {}

  /// Installs the current entry bar: with DESC ranking a run is pruned when
  /// its score upper bound is <= threshold (ties lose to earlier matches);
  /// with ASC when its lower bound is >= threshold. `window_end` is the
  /// exclusive event-time end of the currently open report window
  /// (ignored for kGlobal scope).
  void SetThreshold(double threshold,
                    Timestamp window_end = std::numeric_limits<Timestamp>::max()) {
    active_ = true;
    threshold_ = threshold;
    window_end_ = window_end;
  }
  /// Deactivates pruning (e.g. after a report window closed).
  void ClearThreshold() { active_ = false; }

  bool active() const { return active_; }
  PruneScope scope() const { return scope_; }

  /// Instrumentation for the pruning experiment (E3) and the metrics
  /// snapshots; readable from any thread (single-writer relaxed atomics —
  /// only the thread driving the matcher increments them).
  uint64_t checks() const { return checks_.Load(); }
  uint64_t prunes() const { return prunes_.Load(); }

  /// Checkpoint restore: reinstates the instrumentation counters (the
  /// threshold itself is recomputed from the restored top-k heap).
  void RestoreCounters(uint64_t checks, uint64_t prunes) {
    checks_.Store(checks);
    prunes_.Store(prunes);
  }

  bool ShouldPrune(const Run& run) const override;

 private:
  const Expr* score_;
  bool desc_;
  PruneScope scope_;
  Timestamp within_;
  bool active_ = false;
  double threshold_ = 0.0;
  Timestamp window_end_ = 0;
  mutable RelaxedCounter checks_;
  mutable RelaxedCounter prunes_;
};

}  // namespace cepr

#endif  // CEPR_RANK_SCORE_H_
