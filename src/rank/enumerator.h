#ifndef CEPR_RANK_ENUMERATOR_H_
#define CEPR_RANK_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "engine/match_dag.h"
#include "rank/topk.h"

namespace cepr {

/// Rank-ordered lazy enumeration of deferred match sets — the consumer
/// side of the shared partial-match DAG (engine/match_dag.h).
///
/// Each LazyMatchSet encodes one batch of matches: every root-to-bottom DAG
/// path, suffixed onto its group's closed prefix. Instead of materializing
/// them all, the enumerator runs best-first search over a global frontier
/// of (node, unwound-suffix) entries ordered by the score bound that
/// DeriveBounds derives from the node's aggregate summaries. Popping an
/// entry either deepens it (extend — the child covers exactly the same
/// matches, so the bound carries over), splits it (union — each child gets
/// a recomputed, tighter bound), or materializes one match (bottom).
///
/// Once `topk` is full and the best remaining bound is STRICTLY worse than
/// the k-th score, everything left is provably beaten and the walk stops.
/// Equal bounds must keep going: the content tie-break (OutranksMatch) can
/// still displace a retained match at the same score.
///
/// Offers every materialized match to `topk`. `matches_enumerated` counts
/// materializations and `enumeration_cutoffs` counts early stops; both are
/// incremented (never reset) so callers aggregate across windows.
void EnumerateLazyMatches(const std::vector<LazyMatchSet>& sets, TopK* topk,
                          uint64_t* matches_enumerated,
                          uint64_t* enumeration_cutoffs);

}  // namespace cepr

#endif  // CEPR_RANK_ENUMERATOR_H_
