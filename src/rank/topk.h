#ifndef CEPR_RANK_TOPK_H_
#define CEPR_RANK_TOPK_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "engine/run.h"

namespace cepr {

class BinWriter;
class BinReader;
class EventInterner;
class EventUninterner;

/// Deterministic total order on matches used everywhere in the ranking
/// layer: primarily by score (direction per query), ties broken by earlier
/// detection — the detecting event's stream sequence, then the bound-event
/// content (lexicographic per-variable event-sequence compare, shorter
/// prefix first), then the matcher-local id as a duplicate-only fallback.
/// Every component is a content property of the match, so the order is
/// identical under serial, sharded, and lazy-DAG enumeration. Returns true
/// iff `a` outranks `b`.
bool OutranksMatch(const Match& a, const Match& b, bool desc);

/// Bounded top-k accumulator over matches: a size-k binary heap with the
/// *worst retained* match at the root, O(log k) per accepted offer and O(1)
/// rejection once full. k = npos means "keep everything" (used for ranked
/// queries without LIMIT).
class TopK {
 public:
  static constexpr size_t kUnlimited = static_cast<size_t>(-1);

  TopK(size_t k, bool desc);

  /// Offers a match; returns true iff it was retained (it currently ranks
  /// within the top k). The displaced match (if any) is discarded.
  bool Offer(Match m);

  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  /// True once k matches are held (never true for kUnlimited).
  bool full() const { return k_ != kUnlimited && heap_.size() >= k_; }

  /// Score of the worst retained match — the entry bar when full().
  /// nullopt while empty (an empty heap has no bar; 0.0 would be a real,
  /// ambiguous score).
  std::optional<double> threshold() const;

  /// Current rank (0-based) the given match would receive: the number of
  /// retained matches that outrank it under the full OutranksMatch order
  /// (score, then detecting-event sequence, then binding content, then
  /// id), so ties resolve exactly as Drain() would order them. A retained
  /// copy of `m` itself contributes nothing (the order is irreflexive).
  /// O(size).
  size_t RankOf(const Match& m) const;

  /// Removes and returns all matches, best first.
  std::vector<Match> Drain();

  /// Checkpoint serialization of the retained matches, in raw heap-array
  /// order (the array already satisfies the heap property, so a verbatim
  /// restore reproduces every future Offer/Drain decision bit-exactly).
  /// k and direction come from the plan at construction, not the file.
  void SaveState(EventInterner* in, BinWriter* w) const;
  bool LoadState(EventUninterner* in, BinReader* r);

 private:
  bool WorseInHeap(const Match& a, const Match& b) const;

  size_t k_;
  bool desc_;
  std::vector<Match> heap_;  // root = worst retained
};

}  // namespace cepr

#endif  // CEPR_RANK_TOPK_H_
