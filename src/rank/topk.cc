#include "rank/topk.h"

#include <algorithm>

#include "runtime/serde.h"

namespace cepr {

namespace {

// Lexicographic comparison of two matches' bound-event sequence numbers,
// variable by variable in layout order, shorter prefix first. Returns <0,
// 0, >0. Every bound event carries a global stream sequence, so this key
// is a pure content property: it does not depend on which matcher detected
// the match or in which order matches were materialized.
int CompareBindings(const Match& a, const Match& b) {
  const size_t vars = std::min(a.bindings.size(), b.bindings.size());
  for (size_t v = 0; v < vars; ++v) {
    const auto& av = a.bindings[v];
    const auto& bv = b.bindings[v];
    const size_t n = std::min(av.size(), bv.size());
    for (size_t i = 0; i < n; ++i) {
      const uint64_t as = av[i] ? av[i]->sequence() : 0;
      const uint64_t bs = bv[i] ? bv[i]->sequence() : 0;
      if (as != bs) return as < bs ? -1 : 1;
    }
    if (av.size() != bv.size()) return av.size() < bv.size() ? -1 : 1;
  }
  if (a.bindings.size() != b.bindings.size())
    return a.bindings.size() < b.bindings.size() ? -1 : 1;
  return 0;
}

}  // namespace

bool OutranksMatch(const Match& a, const Match& b, bool desc) {
  if (a.score != b.score) return desc ? a.score > b.score : a.score < b.score;
  // Earlier detection wins ties. The detecting event's stream sequence is
  // the primary key so the order is shard-independent; equal-score matches
  // detected by the same event are settled by their bound-event content
  // (which events, in which variables) — a key that is identical whether
  // the matches were materialized eagerly per run or enumerated lazily
  // from the shared match DAG, and across serial/sharded execution. The
  // matcher-local id is a last-resort fallback for byte-identical matches
  // (it only decides between duplicates, so any outcome is equivalent).
  if (a.last_sequence != b.last_sequence) return a.last_sequence < b.last_sequence;
  const int c = CompareBindings(a, b);
  if (c != 0) return c < 0;
  return a.id < b.id;
}

TopK::TopK(size_t k, bool desc) : k_(k), desc_(desc) {}

bool TopK::WorseInHeap(const Match& a, const Match& b) const {
  // std::push_heap keeps the comparator-max at the root; we want the WORST
  // retained match there, so "less" = outranks.
  return OutranksMatch(a, b, desc_);
}

bool TopK::Offer(Match m) {
  if (k_ == 0) return false;
  const auto cmp = [this](const Match& a, const Match& b) {
    return WorseInHeap(a, b);
  };
  if (!full()) {
    heap_.push_back(std::move(m));
    std::push_heap(heap_.begin(), heap_.end(), cmp);
    return true;
  }
  // Full: the offer must outrank the current worst to enter.
  if (!OutranksMatch(m, heap_.front(), desc_)) return false;
  std::pop_heap(heap_.begin(), heap_.end(), cmp);
  heap_.back() = std::move(m);
  std::push_heap(heap_.begin(), heap_.end(), cmp);
  return true;
}

std::optional<double> TopK::threshold() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front().score;
}

size_t TopK::RankOf(const Match& m) const {
  size_t better = 0;
  for (const Match& held : heap_) {
    if (OutranksMatch(held, m, desc_)) ++better;
  }
  return better;
}

void TopK::SaveState(EventInterner* in, BinWriter* w) const {
  w->U32(static_cast<uint32_t>(heap_.size()));
  for (const Match& m : heap_) SaveMatch(in, w, m);
}

bool TopK::LoadState(EventUninterner* in, BinReader* r) {
  heap_.clear();
  uint32_t n = 0;
  if (!r->U32(&n)) return false;
  heap_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Match m;
    if (!LoadMatch(in, r, &m)) return false;
    heap_.push_back(std::move(m));
  }
  return true;
}

std::vector<Match> TopK::Drain() {
  std::vector<Match> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [this](const Match& a, const Match& b) {
    return OutranksMatch(a, b, desc_);
  });
  return out;
}

}  // namespace cepr
