#include "rank/topk.h"

#include <algorithm>

#include "runtime/serde.h"

namespace cepr {

bool OutranksMatch(const Match& a, const Match& b, bool desc) {
  if (a.score != b.score) return desc ? a.score > b.score : a.score < b.score;
  // Earlier detection wins ties. The detecting event's stream sequence is
  // the primary key so the order is shard-independent; the per-matcher id
  // settles matches detected by the same event (single-threaded, ids grow
  // in exactly this order, so the total order is unchanged).
  if (a.last_sequence != b.last_sequence) return a.last_sequence < b.last_sequence;
  return a.id < b.id;
}

TopK::TopK(size_t k, bool desc) : k_(k), desc_(desc) {}

bool TopK::WorseInHeap(const Match& a, const Match& b) const {
  // std::push_heap keeps the comparator-max at the root; we want the WORST
  // retained match there, so "less" = outranks.
  return OutranksMatch(a, b, desc_);
}

bool TopK::Offer(Match m) {
  if (k_ == 0) return false;
  const auto cmp = [this](const Match& a, const Match& b) {
    return WorseInHeap(a, b);
  };
  if (!full()) {
    heap_.push_back(std::move(m));
    std::push_heap(heap_.begin(), heap_.end(), cmp);
    return true;
  }
  // Full: the offer must outrank the current worst to enter.
  if (!OutranksMatch(m, heap_.front(), desc_)) return false;
  std::pop_heap(heap_.begin(), heap_.end(), cmp);
  heap_.back() = std::move(m);
  std::push_heap(heap_.begin(), heap_.end(), cmp);
  return true;
}

std::optional<double> TopK::threshold() const {
  if (heap_.empty()) return std::nullopt;
  return heap_.front().score;
}

size_t TopK::RankOf(const Match& m) const {
  size_t better = 0;
  for (const Match& held : heap_) {
    if (OutranksMatch(held, m, desc_)) ++better;
  }
  return better;
}

void TopK::SaveState(EventInterner* in, BinWriter* w) const {
  w->U32(static_cast<uint32_t>(heap_.size()));
  for (const Match& m : heap_) SaveMatch(in, w, m);
}

bool TopK::LoadState(EventUninterner* in, BinReader* r) {
  heap_.clear();
  uint32_t n = 0;
  if (!r->U32(&n)) return false;
  heap_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Match m;
    if (!LoadMatch(in, r, &m)) return false;
    heap_.push_back(std::move(m));
  }
  return true;
}

std::vector<Match> TopK::Drain() {
  std::vector<Match> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), [this](const Match& a, const Match& b) {
    return OutranksMatch(a, b, desc_);
  });
  return out;
}

}  // namespace cepr
