#include "rank/score.h"

#include "engine/run.h"

namespace cepr {

bool ScorePruner::ShouldPrune(const Run& run) const {
  if (!active_ || score_ == nullptr) return false;
  if (scope_ == PruneScope::kTimeWindow) {
    // The run can still complete inside the *next* window, whose top-k bar
    // is unknown (it starts empty); pruning it against the current bar
    // would be unsound. Only runs trapped in the current window qualify.
    if (within_ <= 0 || run.first_ts() + within_ >= window_end_) return false;
  }
  checks_.Increment();
  const Interval bound = DeriveBounds(*score_, run);
  const bool prune = desc_ ? bound.hi <= threshold_ : bound.lo >= threshold_;
  if (prune) prunes_.Increment();
  return prune;
}

}  // namespace cepr
