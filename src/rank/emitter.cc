#include "rank/emitter.h"

namespace cepr {

Emitter::Emitter(CompiledQueryPtr plan, RankerPolicy policy)
    : windows_(ReportWindowAssigner::ForQuery(*plan)),
      ranker_(plan, policy) {}

void Emitter::OnEvent(Timestamp ts, uint64_t ordinal, std::vector<Match> matches,
                      std::vector<RankedResult>* out) {
  last_event_ts_ = ts;
  const int64_t window = windows_.WindowOf(ts, ordinal);
  ranker_.AdvanceTo(window, out);
  for (Match& m : matches) {
    ranker_.OnMatch(std::move(m), window, out);
  }
}

void Emitter::OnEvent(Timestamp ts, uint64_t ordinal,
                      std::vector<Match> matches,
                      std::vector<LazyMatchSet> lazy,
                      std::vector<RankedResult>* out) {
  last_event_ts_ = ts;
  const int64_t window = windows_.WindowOf(ts, ordinal);
  ranker_.AdvanceTo(window, out);
  for (Match& m : matches) {
    ranker_.OnMatch(std::move(m), window, out);
  }
  ranker_.OnLazySets(std::move(lazy), window, out);
}

void Emitter::Finish(std::vector<RankedResult>* out) { ranker_.Finish(out); }

}  // namespace cepr
