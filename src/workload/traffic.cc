#include "workload/traffic.h"

#include <algorithm>

#include "common/logging.h"

namespace cepr {

SchemaPtr TrafficGenerator::MakeSchema() {
  // One shared instance: the Engine matches events to streams by schema
  // object identity, so every generator and harness must use the same one.
  static const SchemaPtr* kSchema = nullptr;
  if (kSchema != nullptr) return *kSchema;
  auto schema = Schema::Make(
      "Traffic",
      {
          Attribute{"sensor", ValueType::kInt, AttributeRange{0.0, 1e6}},
          Attribute{"speed", ValueType::kFloat, AttributeRange{0.0, 130.0}},
          Attribute{"occupancy", ValueType::kFloat, AttributeRange{0.0, 1.0}},
          Attribute{"vehicles", ValueType::kInt, AttributeRange{0.0, 200.0}},
      });
  CEPR_CHECK(schema.ok());
  kSchema = new SchemaPtr(schema.value());
  return *kSchema;
}

TrafficGenerator::TrafficGenerator(const TrafficOptions& options)
    : options_(options),
      schema_(MakeSchema()),
      rng_(options.base.seed),
      next_ts_(options.base.start_ts),
      speed_(static_cast<size_t>(std::max(options.num_sensors, 1))),
      occupancy_(speed_.size()),
      jam_remaining_(speed_.size(), 0) {
  for (size_t i = 0; i < speed_.size(); ++i) {
    speed_[i] = rng_.UniformDouble(80.0, 120.0);
    occupancy_[i] = rng_.UniformDouble(0.05, 0.2);
  }
}

Event TrafficGenerator::Next() {
  const auto sensor =
      static_cast<size_t>(rng_.Uniform(static_cast<uint64_t>(speed_.size())));

  if (jam_remaining_[sensor] > 0) {
    speed_[sensor] *= rng_.UniformDouble(0.6, 0.85);
    occupancy_[sensor] += rng_.UniformDouble(0.05, 0.15);
    --jam_remaining_[sensor];
    if (jam_remaining_[sensor] == 0) {
      speed_[sensor] = rng_.UniformDouble(80.0, 120.0);
      occupancy_[sensor] = rng_.UniformDouble(0.05, 0.2);
    }
  } else {
    speed_[sensor] += rng_.NextGaussian() * 3.0;
    occupancy_[sensor] += rng_.NextGaussian() * 0.01;
    if (rng_.OneIn(options_.jam_probability)) {
      jam_remaining_[sensor] = options_.jam_length;
    }
  }
  speed_[sensor] = std::clamp(speed_[sensor], 0.0, 130.0);
  occupancy_[sensor] = std::clamp(occupancy_[sensor], 0.0, 1.0);

  Event e(schema_, next_ts_,
          {Value::Int(static_cast<int64_t>(sensor)), Value::Float(speed_[sensor]),
           Value::Float(occupancy_[sensor]),
           Value::Int(rng_.UniformInt(0, 200))});
  next_ts_ += options_.base.interval_micros;
  return e;
}

}  // namespace cepr
