#ifndef CEPR_WORKLOAD_STOCK_H_
#define CEPR_WORKLOAD_STOCK_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace cepr {

/// Options for the stock-tick generator.
struct StockOptions {
  GeneratorOptions base;
  /// Number of distinct symbols ("S0".."S{n-1}").
  int num_symbols = 10;
  /// Zipf skew of symbol popularity (0 = uniform).
  double symbol_skew = 0.5;
  /// Per-tick relative price noise (stddev of the random walk step).
  double volatility = 0.01;
  /// Probability that a tick starts a planted V-shape episode: `v_depth`
  /// consecutive down-ticks followed by a sharp rebound — the canonical
  /// "falling pattern then recovery" CEPR stock demo query. Controls match
  /// density for the experiments.
  double v_probability = 0.01;
  /// Number of forced down-ticks in a planted V.
  int v_depth = 4;
  /// Relative size of each forced down-tick and of the rebound.
  double v_step = 0.02;
  double v_rebound = 0.1;
};

/// Stock(symbol STRING, price FLOAT RANGE [1, 1000], volume INT RANGE
/// [1, 10000]): a mean-reverting random walk per symbol, with optional
/// planted V-shape crash/recovery episodes.
class StockGenerator : public WorkloadGenerator {
 public:
  explicit StockGenerator(const StockOptions& options);

  /// The Stock schema (with declared ranges, enabling score pruning).
  static SchemaPtr MakeSchema();

  const SchemaPtr& schema() const override { return schema_; }
  Event Next() override;

 private:
  StockOptions options_;
  SchemaPtr schema_;
  Random rng_;
  ZipfSampler symbol_sampler_;
  Timestamp next_ts_;
  std::vector<double> price_;                   // per symbol
  std::vector<std::deque<double>> scripted_;    // forced relative moves
};

}  // namespace cepr

#endif  // CEPR_WORKLOAD_STOCK_H_
