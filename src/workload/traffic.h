#ifndef CEPR_WORKLOAD_TRAFFIC_H_
#define CEPR_WORKLOAD_TRAFFIC_H_

#include <vector>

#include "workload/generator.h"

namespace cepr {

/// Options for the road-sensor generator.
struct TrafficOptions {
  GeneratorOptions base;
  int num_sensors = 16;
  /// Probability that a reading starts a congestion episode: speed decays
  /// over `jam_length` readings while occupancy climbs, then clears — the
  /// traffic-monitoring CEPR demo scenario.
  double jam_probability = 0.004;
  int jam_length = 8;
};

/// Traffic(sensor INT, speed FLOAT RANGE [0, 130], occupancy FLOAT RANGE
/// [0, 1], vehicles INT RANGE [0, 200]).
class TrafficGenerator : public WorkloadGenerator {
 public:
  explicit TrafficGenerator(const TrafficOptions& options);

  static SchemaPtr MakeSchema();

  const SchemaPtr& schema() const override { return schema_; }
  Event Next() override;

 private:
  TrafficOptions options_;
  SchemaPtr schema_;
  Random rng_;
  Timestamp next_ts_;
  std::vector<double> speed_;      // per sensor
  std::vector<double> occupancy_;
  std::vector<int> jam_remaining_;
};

}  // namespace cepr

#endif  // CEPR_WORKLOAD_TRAFFIC_H_
