#include "workload/health.h"

#include <algorithm>

#include "common/logging.h"

namespace cepr {

SchemaPtr HealthGenerator::MakeSchema() {
  // One shared instance: the Engine matches events to streams by schema
  // object identity, so every generator and harness must use the same one.
  static const SchemaPtr* kSchema = nullptr;
  if (kSchema != nullptr) return *kSchema;
  auto schema = Schema::Make(
      "Vitals",
      {
          Attribute{"patient", ValueType::kInt, AttributeRange{0.0, 1e6}},
          Attribute{"heart_rate", ValueType::kFloat, AttributeRange{30.0, 220.0}},
          Attribute{"spo2", ValueType::kFloat, AttributeRange{50.0, 100.0}},
          Attribute{"temp", ValueType::kFloat, AttributeRange{34.0, 43.0}},
      });
  CEPR_CHECK(schema.ok());
  kSchema = new SchemaPtr(schema.value());
  return *kSchema;
}

HealthGenerator::HealthGenerator(const HealthOptions& options)
    : options_(options),
      schema_(MakeSchema()),
      rng_(options.base.seed),
      next_ts_(options.base.start_ts),
      heart_rate_(static_cast<size_t>(std::max(options.num_patients, 1))),
      spo2_(heart_rate_.size()),
      episode_remaining_(heart_rate_.size(), 0) {
  for (size_t i = 0; i < heart_rate_.size(); ++i) {
    heart_rate_[i] = rng_.UniformDouble(60.0, 90.0);
    spo2_[i] = rng_.UniformDouble(95.0, 99.0);
  }
}

Event HealthGenerator::Next() {
  const auto patient = static_cast<size_t>(
      rng_.Uniform(static_cast<uint64_t>(heart_rate_.size())));

  if (episode_remaining_[patient] > 0) {
    // Deterioration: heart rate ramps, SpO2 sags.
    heart_rate_[patient] += rng_.UniformDouble(8.0, 15.0);
    spo2_[patient] -= rng_.UniformDouble(1.0, 2.5);
    --episode_remaining_[patient];
    if (episode_remaining_[patient] == 0) {
      // Recovery snaps vitals back toward baseline.
      heart_rate_[patient] = rng_.UniformDouble(60.0, 90.0);
      spo2_[patient] = rng_.UniformDouble(95.0, 99.0);
    }
  } else {
    heart_rate_[patient] += rng_.NextGaussian() * 2.0;
    spo2_[patient] += rng_.NextGaussian() * 0.3;
    if (rng_.OneIn(options_.episode_probability)) {
      episode_remaining_[patient] = options_.episode_length;
    }
  }
  heart_rate_[patient] = std::clamp(heart_rate_[patient], 30.0, 220.0);
  spo2_[patient] = std::clamp(spo2_[patient], 50.0, 100.0);

  Event e(schema_, next_ts_,
          {Value::Int(static_cast<int64_t>(patient)),
           Value::Float(heart_rate_[patient]), Value::Float(spo2_[patient]),
           Value::Float(36.5 + rng_.NextGaussian() * 0.3)});
  next_ts_ += options_.base.interval_micros;
  return e;
}

}  // namespace cepr
