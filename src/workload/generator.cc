#include "workload/generator.h"

namespace cepr {

std::vector<Event> WorkloadGenerator::Take(size_t n) {
  std::vector<Event> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace cepr
