#include "workload/stock.h"

#include <algorithm>

#include "common/logging.h"

namespace cepr {

SchemaPtr StockGenerator::MakeSchema() {
  // One shared instance: the Engine matches events to streams by schema
  // object identity, so every generator and harness must use the same one.
  static const SchemaPtr* kSchema = nullptr;
  if (kSchema != nullptr) return *kSchema;
  auto schema = Schema::Make(
      "Stock", {
                   Attribute{"symbol", ValueType::kString, std::nullopt},
                   Attribute{"price", ValueType::kFloat, AttributeRange{1.0, 1000.0}},
                   Attribute{"volume", ValueType::kInt, AttributeRange{1.0, 10000.0}},
               });
  CEPR_CHECK(schema.ok());
  kSchema = new SchemaPtr(schema.value());
  return *kSchema;
}

StockGenerator::StockGenerator(const StockOptions& options)
    : options_(options),
      schema_(MakeSchema()),
      rng_(options.base.seed),
      symbol_sampler_(static_cast<uint64_t>(std::max(options.num_symbols, 1)),
                      options.symbol_skew, options.base.seed ^ 0x5bd1e995ULL),
      next_ts_(options.base.start_ts),
      price_(static_cast<size_t>(std::max(options.num_symbols, 1))),
      scripted_(static_cast<size_t>(std::max(options.num_symbols, 1))) {
  for (auto& p : price_) p = rng_.UniformDouble(50.0, 500.0);
}

Event StockGenerator::Next() {
  const auto symbol = static_cast<size_t>(symbol_sampler_.Next());

  double rel_move;
  if (!scripted_[symbol].empty()) {
    rel_move = scripted_[symbol].front();
    scripted_[symbol].pop_front();
  } else {
    rel_move = rng_.NextGaussian() * options_.volatility;
    // Mild mean reversion toward 100 keeps prices inside the declared range.
    rel_move += (100.0 - price_[symbol]) / price_[symbol] * 0.001;
    if (options_.v_probability > 0 && rng_.OneIn(options_.v_probability)) {
      // Plant a V: force v_depth down-ticks then one rebound, starting with
      // the next tick of this symbol.
      for (int i = 0; i < options_.v_depth; ++i) {
        scripted_[symbol].push_back(-options_.v_step *
                                    rng_.UniformDouble(0.8, 1.2));
      }
      scripted_[symbol].push_back(options_.v_rebound *
                                  rng_.UniformDouble(0.8, 1.2));
    }
  }

  price_[symbol] = std::clamp(price_[symbol] * (1.0 + rel_move), 1.0, 1000.0);

  Event e(schema_, next_ts_,
          {Value::String("S" + std::to_string(symbol)),
           Value::Float(price_[symbol]), Value::Int(rng_.UniformInt(1, 10000))});
  next_ts_ += options_.base.interval_micros;
  return e;
}

}  // namespace cepr
