#ifndef CEPR_WORKLOAD_HEALTH_H_
#define CEPR_WORKLOAD_HEALTH_H_

#include <vector>

#include "workload/generator.h"

namespace cepr {

/// Options for the patient-vitals generator.
struct HealthOptions {
  GeneratorOptions base;
  int num_patients = 20;
  /// Probability that a reading starts a tachycardia episode for its
  /// patient: heart rate ramps up over `episode_length` readings while
  /// SpO2 sags — the health-monitoring CEPR demo scenario.
  double episode_probability = 0.005;
  int episode_length = 6;
};

/// Vitals(patient INT, heart_rate FLOAT RANGE [30, 220], spo2 FLOAT RANGE
/// [50, 100], temp FLOAT RANGE [34, 43]): baseline noise with planted
/// deterioration episodes.
class HealthGenerator : public WorkloadGenerator {
 public:
  explicit HealthGenerator(const HealthOptions& options);

  static SchemaPtr MakeSchema();

  const SchemaPtr& schema() const override { return schema_; }
  Event Next() override;

 private:
  HealthOptions options_;
  SchemaPtr schema_;
  Random rng_;
  Timestamp next_ts_;
  std::vector<double> heart_rate_;      // per patient
  std::vector<double> spo2_;
  std::vector<int> episode_remaining_;  // readings left in an episode
};

}  // namespace cepr

#endif  // CEPR_WORKLOAD_HEALTH_H_
