#include "workload/forkheavy.h"

#include <algorithm>
#include <string>

#include "common/logging.h"

namespace cepr {

SchemaPtr ForkHeavyGenerator::MakeSchema() {
  // One shared instance: the Engine matches events to streams by schema
  // object identity, so every generator and harness must use the same one.
  static const SchemaPtr* kSchema = nullptr;
  if (kSchema != nullptr) return *kSchema;
  auto schema = Schema::Make(
      "ForkTick",
      {
          Attribute{"sym", ValueType::kString, std::nullopt},
          Attribute{"anchor", ValueType::kInt, AttributeRange{0.0, 1.0}},
          Attribute{"price", ValueType::kFloat, AttributeRange{1.0, 1000.0}},
      });
  CEPR_CHECK(schema.ok());
  kSchema = new SchemaPtr(schema.value());
  return *kSchema;
}

ForkHeavyGenerator::ForkHeavyGenerator(const ForkHeavyOptions& options)
    : options_(options),
      schema_(MakeSchema()),
      rng_(options.base.seed),
      next_ts_(options.base.start_ts) {}

Event ForkHeavyGenerator::Next() {
  const int64_t stream =
      rng_.UniformInt(0, std::max(options_.num_streams, 1) - 1);
  const int64_t anchor = rng_.OneIn(options_.anchor_probability) ? 1 : 0;
  Event e(schema_, next_ts_,
          {Value::String("F" + std::to_string(stream)), Value::Int(anchor),
           Value::Float(rng_.UniformDouble(1.0, 1000.0))});
  next_ts_ += options_.base.interval_micros;
  return e;
}

}  // namespace cepr
