#ifndef CEPR_WORKLOAD_GENERATOR_H_
#define CEPR_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "event/event.h"

namespace cepr {

/// Common knobs for the synthetic domain generators. All generators are
/// deterministic functions of their options (fixed seed => identical
/// stream), which is what makes the reconstructed experiments repeatable.
struct GeneratorOptions {
  uint64_t seed = 42;
  /// Event time of the first event.
  Timestamp start_ts = 0;
  /// Event-time gap between consecutive events.
  Timestamp interval_micros = 1000;  // 1ms => 1000 events/simulated second
};

/// A deterministic, infinite synthetic event source.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Schema of the produced events.
  virtual const SchemaPtr& schema() const = 0;

  /// Produces the next event (timestamps strictly increase).
  virtual Event Next() = 0;

  /// Convenience: materializes the next `n` events.
  std::vector<Event> Take(size_t n);
};

}  // namespace cepr

#endif  // CEPR_WORKLOAD_GENERATOR_H_
