#ifndef CEPR_WORKLOAD_FORKHEAVY_H_
#define CEPR_WORKLOAD_FORKHEAVY_H_

#include "workload/generator.h"

namespace cepr {

/// Options for the fork-heavy tick generator.
struct ForkHeavyOptions {
  GeneratorOptions base;
  /// Number of distinct sources ("F0".."F{n-1}") for PARTITION BY sym.
  int num_streams = 1;
  /// Probability that a tick is an anchor (anchor = 1). Every non-anchor
  /// tick extends *all* live trailing-Kleene runs of its stream, so match
  /// state doubles per extension under SKIP_TILL_ANY_MATCH; a low anchor
  /// probability yields long fork cascades between anchors.
  double anchor_probability = 0.02;
};

/// ForkTick(sym STRING, anchor INT RANGE [0, 1], price FLOAT RANGE
/// [1, 1000]): the adversarial workload for trailing-Kleene
/// SKIP_TILL_ANY_MATCH patterns like SEQ(a, b+) with event-only iteration
/// predicates. Anchors start runs; the dense non-anchor ticks between them
/// drive the 2^n per-run fork explosion that the shared match DAG collapses
/// to O(events) nodes.
class ForkHeavyGenerator : public WorkloadGenerator {
 public:
  explicit ForkHeavyGenerator(const ForkHeavyOptions& options);

  /// The ForkTick schema (with declared ranges, enabling score bounds).
  static SchemaPtr MakeSchema();

  const SchemaPtr& schema() const override { return schema_; }
  Event Next() override;

 private:
  ForkHeavyOptions options_;
  SchemaPtr schema_;
  Random rng_;
  Timestamp next_ts_;
};

}  // namespace cepr

#endif  // CEPR_WORKLOAD_FORKHEAVY_H_
