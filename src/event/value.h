#ifndef CEPR_EVENT_VALUE_H_
#define CEPR_EVENT_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace cepr {

/// Runtime type of a Value / static type of a schema attribute or
/// expression. kNull is the type of the NULL literal and of values missing
/// from a partial match binding.
enum class ValueType { kNull = 0, kBool, kInt, kFloat, kString };

/// Stable name: "NULL", "BOOL", "INT", "FLOAT", "STRING".
const char* ValueTypeToString(ValueType type);

/// Parses a type name as written in CEPR-QL (case-insensitive).
Result<ValueType> ValueTypeFromString(std::string_view name);

/// A dynamically typed scalar: the cell type of events and the result type
/// of expression evaluation. Small, copyable, and totally ordered within a
/// type (cross-type comparison between kInt and kFloat is numeric; any other
/// cross-type comparison orders by type tag).
class Value {
 public:
  /// Constructs the NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Data(b)); }
  static Value Int(int64_t i) { return Value(Data(i)); }
  static Value Float(double d) { return Value(Data(d)); }
  static Value String(std::string s) { return Value(Data(std::move(s))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Calling the wrong accessor is a checked error in debug
  /// builds and undefined in release; use type() first.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsFloat() const;
  const std::string& AsString() const;

  /// Numeric view: kInt and kFloat values as double; error otherwise.
  Result<double> AsNumeric() const;

  /// True iff both values have the same type and equal contents, except
  /// that kInt and kFloat compare numerically (Int(2) == Float(2.0)).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order used by ranking tie-breaks and tests; numeric across
  /// kInt/kFloat, lexicographic for strings, false < true for bools, and
  /// NULL sorts first.
  bool operator<(const Value& other) const;

  /// CEPR-QL literal syntax: NULL, TRUE, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Hash compatible with operator== (numeric kInt/kFloat hash equal when
  /// the double is integral).
  size_t Hash() const;

 private:
  using Data = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace cepr

#endif  // CEPR_EVENT_VALUE_H_
