#include "event/schema.h"

#include "common/strings.h"

namespace cepr {

Result<std::shared_ptr<const Schema>> Schema::Make(
    std::string stream_name, std::vector<Attribute> attributes) {
  if (stream_name.empty()) {
    return Status::InvalidArgument("stream name must be non-empty");
  }
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    if (attributes[i].type == ValueType::kNull) {
      return Status::InvalidArgument("attribute '" + attributes[i].name +
                                     "' must have a concrete type");
    }
    for (size_t j = 0; j < i; ++j) {
      if (EqualsIgnoreCase(attributes[i].name, attributes[j].name)) {
        return Status::InvalidArgument("duplicate attribute name: " +
                                       attributes[i].name);
      }
    }
    if (attributes[i].range.has_value()) {
      if (attributes[i].type != ValueType::kInt &&
          attributes[i].type != ValueType::kFloat) {
        return Status::InvalidArgument("range declared for non-numeric attribute: " +
                                       attributes[i].name);
      }
      if (attributes[i].range->lo > attributes[i].range->hi) {
        return Status::InvalidArgument("empty range for attribute: " +
                                       attributes[i].name);
      }
    }
  }
  return std::shared_ptr<const Schema>(
      new Schema(std::move(stream_name), std::move(attributes)));
}

Result<size_t> Schema::IndexOf(std::string_view attr_name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (EqualsIgnoreCase(attributes_[i].name, attr_name)) return i;
  }
  return Status::NotFound("no attribute '" + std::string(attr_name) +
                          "' in stream " + name_);
}

std::string Schema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += " ";
    out += ValueTypeToString(attributes_[i].type);
    if (attributes_[i].range.has_value()) {
      out += " RANGE [" + FormatDouble(attributes_[i].range->lo) + ", " +
             FormatDouble(attributes_[i].range->hi) + "]";
    }
  }
  out += ")";
  return out;
}

}  // namespace cepr
