#ifndef CEPR_EVENT_SCHEMA_H_
#define CEPR_EVENT_SCHEMA_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "event/value.h"

namespace cepr {

/// Closed numeric range [lo, hi] declared or learned for an attribute; feeds
/// the ranking pruner's interval arithmetic.
struct AttributeRange {
  double lo = 0.0;
  double hi = 0.0;
};

/// One attribute of a stream schema.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kNull;
  /// Optional declared value range (CREATE STREAM ... RANGE [lo, hi]);
  /// only meaningful for numeric attributes.
  std::optional<AttributeRange> range;
};

/// The shape of events on one stream: a name plus an ordered attribute list.
/// Immutable after construction; shared by reference among events, plans and
/// queries via shared_ptr<const Schema>.
class Schema {
 public:
  /// Builds a schema; attribute names must be non-empty and unique
  /// (case-insensitively, since CEPR-QL identifiers are case-insensitive).
  static Result<std::shared_ptr<const Schema>> Make(
      std::string stream_name, std::vector<Attribute> attributes);

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the attribute with the given (case-insensitive) name, or
  /// NotFound.
  Result<size_t> IndexOf(std::string_view attr_name) const;

  /// "Stock(symbol STRING, price FLOAT, volume INT)".
  std::string ToString() const;

 private:
  Schema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  std::string name_;
  std::vector<Attribute> attributes_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace cepr

#endif  // CEPR_EVENT_SCHEMA_H_
