#include "event/event.h"

#include "common/logging.h"

namespace cepr {

Result<Value> Event::ValueOf(std::string_view attr_name) const {
  CEPR_ASSIGN_OR_RETURN(const size_t idx, schema_->IndexOf(attr_name));
  return values_[idx];
}

std::string Event::ToString() const {
  std::string out = schema_ ? schema_->name() : "<unbound>";
  if (!type_tag_.empty()) {
    out += "/";
    out += type_tag_;
  }
  out += "@" + std::to_string(timestamp_) + " {";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    if (schema_) {
      out += schema_->attribute(i).name;
      out += "=";
    }
    out += values_[i].ToString();
  }
  out += "}";
  return out;
}

EventBuilder& EventBuilder::Set(std::string_view name, Value v) {
  auto idx = schema_->IndexOf(name);
  CEPR_CHECK(idx.ok()) << "EventBuilder: " << idx.status().ToString();
  values_[idx.value()] = std::move(v);
  return *this;
}

Event EventBuilder::Build() const {
  Event e(schema_, timestamp_, values_);
  if (!tag_.empty()) e.set_type_tag(tag_);
  return e;
}

}  // namespace cepr
