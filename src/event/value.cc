#include "event/value.h"

#include <cmath>
#include <functional>
#include <ostream>

#include "common/logging.h"
#include "common/strings.h"

namespace cepr {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kFloat:
      return "FLOAT";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

Result<ValueType> ValueTypeFromString(std::string_view name) {
  if (EqualsIgnoreCase(name, "BOOL") || EqualsIgnoreCase(name, "BOOLEAN")) {
    return ValueType::kBool;
  }
  if (EqualsIgnoreCase(name, "INT") || EqualsIgnoreCase(name, "INTEGER") ||
      EqualsIgnoreCase(name, "BIGINT")) {
    return ValueType::kInt;
  }
  if (EqualsIgnoreCase(name, "FLOAT") || EqualsIgnoreCase(name, "DOUBLE") ||
      EqualsIgnoreCase(name, "REAL")) {
    return ValueType::kFloat;
  }
  if (EqualsIgnoreCase(name, "STRING") || EqualsIgnoreCase(name, "VARCHAR") ||
      EqualsIgnoreCase(name, "TEXT")) {
    return ValueType::kString;
  }
  return Status::TypeError("unknown type name: " + std::string(name));
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kFloat;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

bool Value::AsBool() const {
  CEPR_DCHECK(type() == ValueType::kBool);
  return std::get<bool>(data_);
}

int64_t Value::AsInt() const {
  CEPR_DCHECK(type() == ValueType::kInt);
  return std::get<int64_t>(data_);
}

double Value::AsFloat() const {
  CEPR_DCHECK(type() == ValueType::kFloat);
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  CEPR_DCHECK(type() == ValueType::kString);
  return std::get<std::string>(data_);
}

Result<double> Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kFloat:
      return AsFloat();
    default:
      return Status::TypeError(std::string("value is not numeric: ") + ToString());
  }
}

namespace {
bool IsNumericType(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kFloat;
}

double NumericOf(const Value& v) {
  return v.type() == ValueType::kInt ? static_cast<double>(v.AsInt()) : v.AsFloat();
}
}  // namespace

bool Value::operator==(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (IsNumericType(a) && IsNumericType(b)) {
    return NumericOf(*this) == NumericOf(other);
  }
  return data_ == other.data_;
}

bool Value::operator<(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (IsNumericType(a) && IsNumericType(b)) {
    return NumericOf(*this) < NumericOf(other);
  }
  if (a != b) return static_cast<int>(a) < static_cast<int>(b);
  switch (a) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return !AsBool() && other.AsBool();
    case ValueType::kString:
      return AsString() < other.AsString();
    default:
      return false;  // unreachable: numeric handled above
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kFloat:
      return FormatDouble(AsFloat());
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";  // SQL-style quote doubling
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return AsBool() ? 0x5bd1e995 : 0xc2b2ae35;
    case ValueType::kInt:
      return std::hash<double>{}(static_cast<double>(AsInt()));
    case ValueType::kFloat: {
      // Integral doubles hash like the corresponding int (== compatibility).
      return std::hash<double>{}(AsFloat());
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace cepr
