#ifndef CEPR_EVENT_EVENT_H_
#define CEPR_EVENT_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/schema.h"
#include "event/value.h"

namespace cepr {

/// Event time in microseconds since an arbitrary epoch. The matcher
/// requires timestamp-monotone input per stream (window expiry relies on
/// it); the ingest layer enforces this, either strictly (the default) or
/// by reordering bounded disorder behind a watermark — see
/// runtime/reorder.h and EngineOptions::max_lateness_micros.
using Timestamp = int64_t;

constexpr Timestamp kMicrosPerSecond = 1000 * 1000;
constexpr Timestamp kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr Timestamp kMicrosPerHour = 60 * kMicrosPerMinute;

/// One stream element: a timestamped tuple conforming to a Schema, plus a
/// per-stream sequence number assigned at ingestion (used for deterministic
/// tie-breaking in ranking) and an optional event-type tag for typed
/// patterns like SEQ(Buy a, Sell+ b).
class Event {
 public:
  Event() = default;
  Event(SchemaPtr schema, Timestamp ts, std::vector<Value> values)
      : schema_(std::move(schema)), timestamp_(ts), values_(std::move(values)) {}

  const SchemaPtr& schema() const { return schema_; }
  Timestamp timestamp() const { return timestamp_; }
  uint64_t sequence() const { return sequence_; }
  const std::string& type_tag() const { return type_tag_; }
  const std::vector<Value>& values() const { return values_; }

  void set_sequence(uint64_t seq) { sequence_ = seq; }
  void set_type_tag(std::string tag) { type_tag_ = std::move(tag); }
  void set_timestamp(Timestamp ts) { timestamp_ = ts; }

  /// Value of attribute i. Bounds-checked in debug builds.
  const Value& value(size_t i) const { return values_[i]; }

  /// Value by attribute name; NotFound if the schema lacks it.
  Result<Value> ValueOf(std::string_view attr_name) const;

  /// "Stock@1000 {symbol='IBM', price=42.0}".
  std::string ToString() const;

 private:
  SchemaPtr schema_;
  Timestamp timestamp_ = 0;
  uint64_t sequence_ = 0;
  std::string type_tag_;
  std::vector<Value> values_;
};

/// Convenience builder for tests and generators:
///   EventBuilder(schema).Set("price", Value::Float(42)).At(ts).Build()
class EventBuilder {
 public:
  explicit EventBuilder(SchemaPtr schema)
      : schema_(std::move(schema)), values_(schema_->num_attributes()) {}

  /// Sets attribute `name`; fatal if the schema lacks it (builder misuse is
  /// a programming error, not an input error).
  EventBuilder& Set(std::string_view name, Value v);
  EventBuilder& At(Timestamp ts) {
    timestamp_ = ts;
    return *this;
  }
  EventBuilder& Tagged(std::string tag) {
    tag_ = std::move(tag);
    return *this;
  }

  Event Build() const;

 private:
  SchemaPtr schema_;
  Timestamp timestamp_ = 0;
  std::string tag_;
  std::vector<Value> values_;
};

}  // namespace cepr

#endif  // CEPR_EVENT_EVENT_H_
