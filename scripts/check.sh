#!/usr/bin/env bash
# Tier-1 gate: plain build + full test suite, then a ThreadSanitizer build
# running the concurrency-sensitive suites (SPSC ring, sharded engine, and
# the live-metrics race test). Run from the repo root:
#
#   scripts/check.sh            # both stages
#   scripts/check.sh --plain    # skip the TSan stage
#   scripts/check.sh --tsan     # TSan stage only
#
# The TSan stage uses its own build tree (build-tsan) so it never dirties
# the primary build.
set -euo pipefail

cd "$(dirname "$0")/.."

run_plain=1
run_tsan=1
case "${1:-}" in
  --plain) run_tsan=0 ;;
  --tsan) run_plain=0 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--tsan]" >&2; exit 2 ;;
esac

if [[ $run_plain -eq 1 ]]; then
  echo "== plain build + full suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)"
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== TSan build + concurrency suites =="
  cmake -B build-tsan -S . -DCEPR_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target common_test integration_test
  ./build-tsan/tests/common_test --gtest_filter='SpscQueue*'
  ./build-tsan/tests/integration_test \
    --gtest_filter='Sharded*:ShardedMetricsRaceTest.*'
fi

echo "check.sh: all stages passed"
