#!/usr/bin/env bash
# Tier-1 gate: plain build + full test suite, then a ThreadSanitizer build
# running the concurrency-sensitive suites (SPSC ring, sharded engine, and
# the live-metrics race test), then an AddressSanitizer build running the
# memory-churn-heavy suites (robustness fuzz, overload shedding, fault
# injection, CSV parsing). Run from the repo root:
#
#   scripts/check.sh            # all stages
#   scripts/check.sh --plain    # plain stage only
#   scripts/check.sh --tsan     # TSan stage only
#   scripts/check.sh --asan     # ASan stage only
#
# The sanitizer stages use their own build trees (build-tsan, build-asan)
# so they never dirty the primary build.
set -euo pipefail

cd "$(dirname "$0")/.."

run_plain=1
run_tsan=1
run_asan=1
case "${1:-}" in
  --plain) run_tsan=0; run_asan=0 ;;
  --tsan) run_plain=0; run_asan=0 ;;
  --asan) run_plain=0; run_tsan=0 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--tsan|--asan]" >&2; exit 2 ;;
esac

if [[ $run_plain -eq 1 ]]; then
  echo "== plain build + full suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)"
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== TSan build + concurrency suites =="
  cmake -B build-tsan -S . -DCEPR_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target common_test integration_test
  ./build-tsan/tests/common_test --gtest_filter='SpscQueue*'
  ./build-tsan/tests/integration_test \
    --gtest_filter='Sharded*:ShardedMetricsRaceTest.*:ShardCounts/ShardedFault*:CowEquivalenceTest.HotPathCountersMatchSerialTotals:Disorder*:ShardCounts/Disorder*'
fi

if [[ $run_asan -eq 1 ]]; then
  echo "== ASan build + robustness suites =="
  cmake -B build-asan -S . -DCEPR_SANITIZE=address -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j "$(nproc)" --target integration_test runtime_test
  ./build-asan/tests/integration_test \
    --gtest_filter='Robustness*:Overload*:FaultInjection*:ShardedFault*:ShardCounts/ShardedFault*:CowEquivalence*:Disorder*:ShardCounts/Disorder*'
  ./build-asan/tests/runtime_test --gtest_filter='Csv*:ReorderBuffer*'
fi

echo "check.sh: all stages passed"
