#!/usr/bin/env bash
# Tier-1 gate: plain build + full test suite, then a ThreadSanitizer build
# running the concurrency-sensitive suites (SPSC ring, sharded engine, and
# the live-metrics race test), then an AddressSanitizer build running the
# memory-churn-heavy suites (robustness fuzz, overload shedding, fault
# injection, CSV parsing, crash recovery, torn-file fuzz, the refcounted
# match-DAG store and its lazy enumerator), then a UBSan
# build running the arithmetic-heavy suites (evaluator/VM extremes, the
# bytecode differential fuzzer, rank math, snapshot/WAL decoding of
# corrupted bytes). Run from the repo root:
#
#   scripts/check.sh            # all stages
#   scripts/check.sh --plain    # plain stage only
#   scripts/check.sh --tsan     # TSan stage only
#   scripts/check.sh --asan     # ASan stage only
#   scripts/check.sh --ubsan    # UBSan stage only
#
# The sanitizer stages use their own build trees (build-tsan, build-asan,
# build-ubsan) so they never dirty the primary build.
set -euo pipefail

cd "$(dirname "$0")/.."

run_plain=1
run_tsan=1
run_asan=1
run_ubsan=1
case "${1:-}" in
  --plain) run_tsan=0; run_asan=0; run_ubsan=0 ;;
  --tsan) run_plain=0; run_asan=0; run_ubsan=0 ;;
  --asan) run_plain=0; run_tsan=0; run_ubsan=0 ;;
  --ubsan) run_plain=0; run_tsan=0; run_asan=0 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--tsan|--asan|--ubsan]" >&2; exit 2 ;;
esac

if [[ $run_plain -eq 1 ]]; then
  echo "== plain build + full suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$(nproc)"
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== TSan build + concurrency suites =="
  cmake -B build-tsan -S . -DCEPR_SANITIZE=thread -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-tsan -j "$(nproc)" --target common_test integration_test
  ./build-tsan/tests/common_test --gtest_filter='SpscQueue*:ErrnoString*'
  # The sharded recovery tests exercise the quiesce barrier (Checkpoint
  # cuts while worker threads drain) — one shard count keeps the stage fast.
  ./build-tsan/tests/integration_test \
    --gtest_filter='Sharded*:ShardedMetricsRaceTest.*:ShardCounts/ShardedFault*:CowEquivalenceTest.HotPathCountersMatchSerialTotals:CowEquivalenceTest.SharedMatchDagMatchesPerRunPath:Disorder*:ShardCounts/Disorder*:Engines/RecoveryTest.*/sharded2'
  # The network server is accept thread + session threads + checkpoint
  # timer all sharing one engine lock; the kill/restart and robustness
  # suites drive every cross-thread edge (subscribe/detach, timer cuts,
  # mid-write teardown).
  ./build-tsan/tests/integration_test \
    --gtest_filter='ServerTest.*:ServerRecoveryTest.*:ServerRobustnessTest.*'
fi

if [[ $run_asan -eq 1 ]]; then
  echo "== ASan build + robustness suites =="
  cmake -B build-asan -S . -DCEPR_SANITIZE=address -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-asan -j "$(nproc)" --target integration_test runtime_test \
    engine_test rank_test net_test
  # ServerRobustnessTest feeds the wire decoder torn frames and garbage —
  # attacker-controlled lengths and truncated bodies are ASan's home turf;
  # net_test fuzzes the framing layer directly over socketpairs.
  ./build-asan/tests/integration_test \
    --gtest_filter='Robustness*:Overload*:FaultInjection*:ShardedFault*:ShardCounts/ShardedFault*:CowEquivalence*:Disorder*:ShardCounts/Disorder*:*Recovery*:ServerTest.*:ServerRobustnessTest.*'
  ./build-asan/tests/net_test
  ./build-asan/tests/runtime_test \
    --gtest_filter='Csv*:ReorderBuffer*:Idempotence*:Snapshot*:TornFileFuzz*'
  # The shared match DAG is manually refcounted arena memory — exactly what
  # ASan exists to audit; the enumerator suite drives its free/reuse cycle.
  ./build-asan/tests/engine_test --gtest_filter='MatchDag*'
  ./build-asan/tests/rank_test --gtest_filter='Enumerator*'
fi

if [[ $run_ubsan -eq 1 ]]; then
  echo "== UBSan build + arithmetic suites =="
  cmake -B build-ubsan -S . -DCEPR_SANITIZE=undefined -DCMAKE_BUILD_TYPE=Debug >/dev/null
  cmake --build build-ubsan -j "$(nproc)" --target expr_test rank_test integration_test runtime_test
  ./build-ubsan/tests/expr_test
  ./build-ubsan/tests/rank_test
  # SkipTillAnyForkHeavyWithShedding is ~15x the cost of the other five
  # combined under UBSan (fork-heavy matching, not arithmetic) and the plain
  # and ASan stages already run it; keep the UBSan stage focused.
  ./build-ubsan/tests/integration_test \
    --gtest_filter='CowEquivalenceTest.*:*Recovery*:-CowEquivalenceTest.SkipTillAnyForkHeavyWithShedding'
  # Torn-file fuzzing decodes attacker-controlled lengths/offsets — exactly
  # where unchecked size arithmetic would be UB.
  ./build-ubsan/tests/runtime_test \
    --gtest_filter='Idempotence*:Snapshot*:TornFileFuzz*'
fi

echo "check.sh: all stages passed"
