#!/usr/bin/env bash
# End-to-end smoke check of the network server over a real socket:
# start cepr_serverd, deploy the dip query over the wire, push 10k stock
# events, then diff the server's metrics counters against what the client
# sent. Fails if the server does not come up, the client cannot complete
# its session, or the ingest counter disagrees.
#
#   scripts/server_smoke.sh [BUILD_DIR]   # default: build
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SERVERD="$BUILD_DIR/examples/cepr_serverd"
CLIENT="$BUILD_DIR/examples/cepr_client"
PORT="${CEPR_SMOKE_PORT:-17687}"
EVENTS=10000

[[ -x "$SERVERD" && -x "$CLIENT" ]] || {
  echo "server_smoke: build cepr_serverd and cepr_client first (dir: $BUILD_DIR)" >&2
  exit 2
}

"$SERVERD" --port "$PORT" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the listening socket (the daemon prints its banner once bound).
for _ in $(seq 1 50); do
  if "$CLIENT" --port "$PORT" --metrics-only >/dev/null 2>&1; then break; fi
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server_smoke: server died" >&2; exit 1; }
  sleep 0.1
done

# Deploy + push over the wire; the client prints ranked matches + metrics.
"$CLIENT" --port "$PORT" --events "$EVENTS"

# Independent metrics fetch: the ingest counter must equal what we pushed.
METRICS="$("$CLIENT" --port "$PORT" --metrics-only)"
echo "$METRICS"
if ! grep -q "\"events_ingested\":$EVENTS" <<<"$METRICS"; then
  echo "server_smoke: FAIL — expected events_ingested == $EVENTS" >&2
  exit 1
fi

# Clean shutdown path: SIGTERM must quiesce and exit zero.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
trap - EXIT
echo "server_smoke: PASS ($EVENTS events over the wire)"
