#include "event/value.h"

#include <gtest/gtest.h>

namespace cepr {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-9).AsInt(), -9);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).AsFloat(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, AsNumericCoversIntAndFloat) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsNumeric().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Float(3.5).AsNumeric().value(), 3.5);
  EXPECT_FALSE(Value::String("x").AsNumeric().ok());
  EXPECT_FALSE(Value::Null().AsNumeric().ok());
  EXPECT_FALSE(Value::Bool(true).AsNumeric().ok());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(2), Value::Float(2.0));
  EXPECT_EQ(Value::Float(2.0), Value::Int(2));
  EXPECT_NE(Value::Int(2), Value::Float(2.5));
}

TEST(ValueTest, SameTypeEquality) {
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Bool(false), Value::Bool(false));
  EXPECT_NE(Value::Bool(false), Value::Bool(true));
}

TEST(ValueTest, CrossTypeInequality) {
  EXPECT_NE(Value::String("1"), Value::Int(1));
  EXPECT_NE(Value::Bool(true), Value::Int(1));
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, OrderingNumeric) {
  EXPECT_LT(Value::Int(1), Value::Float(1.5));
  EXPECT_LT(Value::Float(1.5), Value::Int(2));
  EXPECT_FALSE(Value::Int(2) < Value::Int(2));
}

TEST(ValueTest, OrderingStrings) {
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_FALSE(Value::String("b") < Value::String("a"));
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value::Int(-1000000));
  EXPECT_LT(Value::Null(), Value::String(""));
  EXPECT_FALSE(Value::Int(0) < Value::Null());
}

TEST(ValueTest, ToStringLiteralSyntax) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Float(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
}

TEST(ValueTest, ToStringEscapesQuotes) {
  EXPECT_EQ(Value::String("it's").ToString(), "'it''s'");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Float(5.0).Hash());
  EXPECT_EQ(Value::String("key").Hash(), Value::String("key").Hash());
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt), "INT");
  EXPECT_STREQ(ValueTypeToString(ValueType::kFloat), "FLOAT");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "STRING");
  EXPECT_STREQ(ValueTypeToString(ValueType::kBool), "BOOL");
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "NULL");
}

TEST(ValueTypeTest, FromStringAliases) {
  EXPECT_EQ(ValueTypeFromString("int").value(), ValueType::kInt);
  EXPECT_EQ(ValueTypeFromString("INTEGER").value(), ValueType::kInt);
  EXPECT_EQ(ValueTypeFromString("BIGINT").value(), ValueType::kInt);
  EXPECT_EQ(ValueTypeFromString("double").value(), ValueType::kFloat);
  EXPECT_EQ(ValueTypeFromString("REAL").value(), ValueType::kFloat);
  EXPECT_EQ(ValueTypeFromString("varchar").value(), ValueType::kString);
  EXPECT_EQ(ValueTypeFromString("TEXT").value(), ValueType::kString);
  EXPECT_EQ(ValueTypeFromString("BOOLEAN").value(), ValueType::kBool);
  EXPECT_FALSE(ValueTypeFromString("blob").ok());
}

}  // namespace
}  // namespace cepr
