#include "event/event.h"

#include <gtest/gtest.h>

namespace cepr {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make("Stock",
                      {Attribute{"symbol", ValueType::kString, std::nullopt},
                       Attribute{"price", ValueType::kFloat, std::nullopt}})
      .value();
}

TEST(EventTest, BasicFields) {
  auto schema = TestSchema();
  Event e(schema, 1234, {Value::String("IBM"), Value::Float(42.0)});
  EXPECT_EQ(e.timestamp(), 1234);
  EXPECT_EQ(e.schema(), schema);
  EXPECT_EQ(e.value(0), Value::String("IBM"));
  EXPECT_EQ(e.value(1), Value::Float(42.0));
  EXPECT_EQ(e.sequence(), 0u);
  EXPECT_TRUE(e.type_tag().empty());
}

TEST(EventTest, ValueOfByName) {
  Event e(TestSchema(), 0, {Value::String("IBM"), Value::Float(42.0)});
  EXPECT_EQ(e.ValueOf("price").value(), Value::Float(42.0));
  EXPECT_EQ(e.ValueOf("SYMBOL").value(), Value::String("IBM"));
  EXPECT_FALSE(e.ValueOf("missing").ok());
}

TEST(EventTest, SettersWork) {
  Event e(TestSchema(), 0, {Value::Null(), Value::Null()});
  e.set_sequence(7);
  e.set_type_tag("Buy");
  e.set_timestamp(99);
  EXPECT_EQ(e.sequence(), 7u);
  EXPECT_EQ(e.type_tag(), "Buy");
  EXPECT_EQ(e.timestamp(), 99);
}

TEST(EventTest, ToStringIncludesSchemaAndValues) {
  Event e(TestSchema(), 5, {Value::String("A"), Value::Float(1.5)});
  e.set_type_tag("Buy");
  const std::string s = e.ToString();
  EXPECT_NE(s.find("Stock/Buy@5"), std::string::npos);
  EXPECT_NE(s.find("symbol='A'"), std::string::npos);
  EXPECT_NE(s.find("price=1.5"), std::string::npos);
}

TEST(EventBuilderTest, BuildsBySettingNames) {
  auto schema = TestSchema();
  const Event e = EventBuilder(schema)
                      .Set("price", Value::Float(10.5))
                      .Set("symbol", Value::String("X"))
                      .At(777)
                      .Tagged("Sell")
                      .Build();
  EXPECT_EQ(e.timestamp(), 777);
  EXPECT_EQ(e.type_tag(), "Sell");
  EXPECT_EQ(e.value(0), Value::String("X"));
  EXPECT_EQ(e.value(1), Value::Float(10.5));
}

TEST(EventBuilderTest, UnsetAttributesAreNull) {
  const Event e = EventBuilder(TestSchema()).Set("price", Value::Float(1)).Build();
  EXPECT_TRUE(e.value(0).is_null());
  EXPECT_FALSE(e.value(1).is_null());
}

TEST(EventBuilderTest, ReusableForMultipleBuilds) {
  EventBuilder b(TestSchema());
  b.Set("price", Value::Float(1));
  const Event e1 = b.At(1).Build();
  const Event e2 = b.At(2).Build();
  EXPECT_EQ(e1.timestamp(), 1);
  EXPECT_EQ(e2.timestamp(), 2);
  EXPECT_EQ(e1.value(1), e2.value(1));
}

}  // namespace
}  // namespace cepr
