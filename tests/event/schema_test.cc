#include "event/schema.h"

#include <gtest/gtest.h>

namespace cepr {
namespace {

std::vector<Attribute> StockAttrs() {
  return {Attribute{"symbol", ValueType::kString, std::nullopt},
          Attribute{"price", ValueType::kFloat, AttributeRange{1.0, 1000.0}},
          Attribute{"volume", ValueType::kInt, std::nullopt}};
}

TEST(SchemaTest, MakeAndInspect) {
  auto schema = Schema::Make("Stock", StockAttrs());
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->name(), "Stock");
  EXPECT_EQ((*schema)->num_attributes(), 3u);
  EXPECT_EQ((*schema)->attribute(1).name, "price");
  ASSERT_TRUE((*schema)->attribute(1).range.has_value());
  EXPECT_EQ((*schema)->attribute(1).range->hi, 1000.0);
}

TEST(SchemaTest, IndexOfIsCaseInsensitive) {
  auto schema = Schema::Make("Stock", StockAttrs()).value();
  EXPECT_EQ(schema->IndexOf("price").value(), 1u);
  EXPECT_EQ(schema->IndexOf("PRICE").value(), 1u);
  EXPECT_EQ(schema->IndexOf("Volume").value(), 2u);
  EXPECT_FALSE(schema->IndexOf("missing").ok());
}

TEST(SchemaTest, RejectsEmptyStreamName) {
  EXPECT_FALSE(Schema::Make("", StockAttrs()).ok());
}

TEST(SchemaTest, RejectsEmptyAttributeName) {
  EXPECT_FALSE(
      Schema::Make("S", {Attribute{"", ValueType::kInt, std::nullopt}}).ok());
}

TEST(SchemaTest, RejectsDuplicateAttributesCaseInsensitively) {
  auto result = Schema::Make("S", {Attribute{"x", ValueType::kInt, std::nullopt},
                                   Attribute{"X", ValueType::kFloat, std::nullopt}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsNullTypedAttribute) {
  EXPECT_FALSE(
      Schema::Make("S", {Attribute{"x", ValueType::kNull, std::nullopt}}).ok());
}

TEST(SchemaTest, RejectsRangeOnNonNumeric) {
  EXPECT_FALSE(Schema::Make("S", {Attribute{"s", ValueType::kString,
                                            AttributeRange{0, 1}}})
                   .ok());
}

TEST(SchemaTest, RejectsEmptyRange) {
  EXPECT_FALSE(
      Schema::Make("S", {Attribute{"x", ValueType::kFloat, AttributeRange{5, 1}}})
          .ok());
}

TEST(SchemaTest, ToStringShowsTypesAndRanges) {
  auto schema = Schema::Make("Stock", StockAttrs()).value();
  const std::string s = schema->ToString();
  EXPECT_NE(s.find("Stock("), std::string::npos);
  EXPECT_NE(s.find("symbol STRING"), std::string::npos);
  EXPECT_NE(s.find("price FLOAT RANGE [1.0, 1000.0]"), std::string::npos);
  EXPECT_NE(s.find("volume INT"), std::string::npos);
}

TEST(SchemaTest, ZeroAttributeSchemaAllowed) {
  auto schema = Schema::Make("Heartbeat", {});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->num_attributes(), 0u);
}

}  // namespace
}  // namespace cepr
