#include "workload/generator.h"

#include <gtest/gtest.h>

#include "workload/health.h"
#include "workload/stock.h"
#include "workload/traffic.h"

namespace cepr {
namespace {

TEST(StockGeneratorTest, DeterministicForSeed) {
  StockOptions options;
  StockGenerator g1(options);
  StockGenerator g2(options);
  for (int i = 0; i < 200; ++i) {
    const Event a = g1.Next();
    const Event b = g2.Next();
    EXPECT_EQ(a.timestamp(), b.timestamp());
    EXPECT_EQ(a.value(0), b.value(0));
    EXPECT_EQ(a.value(1), b.value(1));
  }
}

TEST(StockGeneratorTest, TimestampsStrictlyIncrease) {
  StockGenerator gen(StockOptions{});
  Timestamp prev = -1;
  for (const Event& e : gen.Take(1000)) {
    EXPECT_GT(e.timestamp(), prev);
    prev = e.timestamp();
  }
}

TEST(StockGeneratorTest, PricesWithinDeclaredRange) {
  StockOptions options;
  options.volatility = 0.2;  // stress the clamp
  StockGenerator gen(options);
  for (const Event& e : gen.Take(5000)) {
    const double p = e.value(1).AsFloat();
    EXPECT_GE(p, 1.0);
    EXPECT_LE(p, 1000.0);
    const int64_t v = e.value(2).AsInt();
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10000);
  }
}

TEST(StockGeneratorTest, SymbolsRespectCount) {
  StockOptions options;
  options.num_symbols = 3;
  StockGenerator gen(options);
  for (const Event& e : gen.Take(500)) {
    const std::string& s = e.value(0).AsString();
    EXPECT_TRUE(s == "S0" || s == "S1" || s == "S2") << s;
  }
}

TEST(StockGeneratorTest, PlantedVsCreateDownRuns) {
  StockOptions options;
  options.num_symbols = 1;
  options.v_probability = 0.05;
  options.v_depth = 4;
  options.volatility = 0.0;  // only scripted moves change the price
  StockGenerator gen(options);
  // With zero noise, any 4-run of strictly falling prices is a planted V.
  int down_runs = 0;
  double prev = 0;
  int streak = 0;
  for (const Event& e : gen.Take(5000)) {
    const double p = e.value(1).AsFloat();
    if (prev > 0 && p < prev) {
      ++streak;
      if (streak == 4) ++down_runs;
    } else {
      streak = 0;
    }
    prev = p;
  }
  EXPECT_GT(down_runs, 10);
}

TEST(StockGeneratorTest, VProbabilityZeroMeansNoScripts) {
  StockOptions options;
  options.num_symbols = 1;
  options.v_probability = 0.0;
  options.volatility = 0.0;
  StockGenerator gen(options);
  // Mean reversion only: tiny moves, no 2% drops.
  double prev = gen.Next().value(1).AsFloat();
  for (const Event& e : gen.Take(100)) {
    const double p = e.value(1).AsFloat();
    EXPECT_LT(std::abs(p - prev) / prev, 0.01);
    prev = p;
  }
}

TEST(HealthGeneratorTest, VitalsWithinPhysiologicalRanges) {
  HealthGenerator gen(HealthOptions{});
  for (const Event& e : gen.Take(5000)) {
    EXPECT_GE(e.value(1).AsFloat(), 30.0);
    EXPECT_LE(e.value(1).AsFloat(), 220.0);
    EXPECT_GE(e.value(2).AsFloat(), 50.0);
    EXPECT_LE(e.value(2).AsFloat(), 100.0);
  }
}

TEST(HealthGeneratorTest, EpisodesRampHeartRate) {
  HealthOptions options;
  options.num_patients = 1;
  options.episode_probability = 0.05;
  options.episode_length = 5;
  HealthGenerator gen(options);
  // Count runs of >=3 consecutive increases of >5 bpm: only episodes do that.
  int ramps = 0;
  double prev = 0;
  int streak = 0;
  for (const Event& e : gen.Take(5000)) {
    const double hr = e.value(1).AsFloat();
    if (prev > 0 && hr - prev > 5.0) {
      if (++streak == 3) ++ramps;
    } else {
      streak = 0;
    }
    prev = hr;
  }
  EXPECT_GT(ramps, 5);
}

TEST(TrafficGeneratorTest, ReadingsWithinRanges) {
  TrafficGenerator gen(TrafficOptions{});
  for (const Event& e : gen.Take(5000)) {
    EXPECT_GE(e.value(1).AsFloat(), 0.0);
    EXPECT_LE(e.value(1).AsFloat(), 130.0);
    EXPECT_GE(e.value(2).AsFloat(), 0.0);
    EXPECT_LE(e.value(2).AsFloat(), 1.0);
  }
}

TEST(TrafficGeneratorTest, JamsDepressSpeed) {
  TrafficOptions options;
  options.num_sensors = 1;
  options.jam_probability = 0.02;
  options.jam_length = 6;
  TrafficGenerator gen(options);
  int slow = 0;
  for (const Event& e : gen.Take(5000)) {
    if (e.value(1).AsFloat() < 40.0) ++slow;
  }
  EXPECT_GT(slow, 50);  // jams visibly depress speed
}

TEST(GeneratorTest, TakeProducesExactlyN) {
  StockGenerator gen(StockOptions{});
  EXPECT_EQ(gen.Take(0).size(), 0u);
  EXPECT_EQ(gen.Take(17).size(), 17u);
}

TEST(GeneratorTest, SchemasHaveDeclaredRanges) {
  // Ranges power the ranking pruner; all three demo schemas declare them.
  for (const SchemaPtr& schema :
       {StockGenerator::MakeSchema(), HealthGenerator::MakeSchema(),
        TrafficGenerator::MakeSchema()}) {
    int ranged = 0;
    for (const Attribute& attr : schema->attributes()) {
      if (attr.range.has_value()) ++ranged;
    }
    EXPECT_GT(ranged, 0) << schema->name();
  }
}

}  // namespace
}  // namespace cepr
