#include "engine/partition.h"

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

std::vector<Match> FeedTicks(PartitionedMatcher* pm,
                       const std::vector<std::pair<std::string, double>>& ticks) {
  std::vector<Match> all;
  uint64_t seq = 0;
  for (const auto& [symbol, price] : ticks) {
    Event e = Tick(static_cast<Timestamp>(seq) * 1000, price, 100, symbol);
    e.set_sequence(seq++);
    std::vector<Match> out;
    pm->OnEvent(std::make_shared<const Event>(std::move(e)), &out);
    for (auto& m : out) all.push_back(std::move(m));
  }
  return all;
}

TEST(PartitionTest, UnpartitionedUsesOneMatcher) {
  auto plan = CompileQueryText(
      "SELECT a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "WHERE a.price < 10 AND c.price > 20",
      StockSchema());
  PartitionedMatcher pm(plan.value(), MatcherOptions{}, nullptr);
  const auto matches =
      FeedTicks(&pm, {{"A", 5.0}, {"B", 25.0}});  // symbols mix freely
  EXPECT_EQ(pm.num_partitions(), 1u);
  EXPECT_EQ(matches.size(), 1u);
}

TEST(PartitionTest, PartitionByKeepsSymbolsApart) {
  auto plan = CompileQueryText(
      "SELECT a.symbol, a.price, c.price FROM Stock MATCH PATTERN SEQ(a, c) "
      "PARTITION BY symbol "
      "WHERE a.price < 10 AND c.price > 20",
      StockSchema());
  PartitionedMatcher pm(plan.value(), MatcherOptions{}, nullptr);
  // A starts at 5; B's 25 must NOT complete A's run.
  auto matches = FeedTicks(&pm, {{"A", 5.0}, {"B", 25.0}, {"A", 30.0}});
  EXPECT_EQ(pm.num_partitions(), 2u);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].row[0], Value::String("A"));
  EXPECT_EQ(matches[0].row[2], Value::Float(30.0));
}

TEST(PartitionTest, MatchIdsGloballyOrdered) {
  auto plan = CompileQueryText(
      "SELECT a.symbol FROM Stock MATCH PATTERN SEQ(a) WHERE a.price > 0",
      StockSchema());
  auto plan2 = plan.value();
  // Re-compile with PARTITION BY to exercise the shared id counter.
  auto partitioned = CompileQueryText(
      "SELECT a.symbol FROM Stock MATCH PATTERN SEQ(a) PARTITION BY symbol "
      "WHERE a.price > 0",
      StockSchema());
  PartitionedMatcher pm(partitioned.value(), MatcherOptions{}, nullptr);
  const auto matches = FeedTicks(&pm, {{"A", 1}, {"B", 2}, {"A", 3}, {"C", 4}});
  ASSERT_EQ(matches.size(), 4u);
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i].id, i);
  }
}

TEST(PartitionTest, StatsAggregateAcrossPartitions) {
  auto plan = CompileQueryText(
      "SELECT a.symbol FROM Stock MATCH PATTERN SEQ(a, c) "
      "PARTITION BY symbol WHERE a.price < 10 AND c.price > 1000",
      StockSchema());
  PartitionedMatcher pm(plan.value(), MatcherOptions{}, nullptr);
  FeedTicks(&pm, {{"A", 1}, {"B", 2}, {"C", 3}});
  EXPECT_EQ(pm.num_partitions(), 3u);
  EXPECT_EQ(pm.stats().runs_created, 3u);
  EXPECT_EQ(pm.active_runs(), 3u);
  EXPECT_GT(pm.MemoryEstimate(), 0u);
}

TEST(PartitionTest, IntegerPartitionKeys) {
  // Partition on the INT volume attribute to exercise non-string keys.
  auto plan = CompileQueryText(
      "SELECT a.volume FROM Stock MATCH PATTERN SEQ(a, c) "
      "PARTITION BY volume WHERE c.price > a.price",
      StockSchema());
  PartitionedMatcher pm(plan.value(), MatcherOptions{}, nullptr);
  std::vector<Match> all;
  uint64_t seq = 0;
  auto push = [&](double price, int64_t volume) {
    Event e = Tick(static_cast<Timestamp>(seq) * 1000, price, volume);
    e.set_sequence(seq++);
    std::vector<Match> out;
    pm.OnEvent(std::make_shared<const Event>(std::move(e)), &out);
    for (auto& m : out) all.push_back(std::move(m));
  };
  push(10, 1);
  push(20, 2);  // different partition: no completion
  EXPECT_TRUE(all.empty());
  push(30, 1);  // completes the volume=1 run
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].row[0], Value::Int(1));
  EXPECT_EQ(pm.num_partitions(), 2u);
}

}  // namespace
}  // namespace cepr
