// Direct unit tests for the Run state machine (most behaviour is covered
// through the matcher; these pin the run-level invariants the pruner and
// evaluator rely on).

#include "engine/run.h"

#include <cmath>

#include <gtest/gtest.h>

#include "testing/helpers.h"

namespace cepr {
namespace {

using testing::StockSchema;
using testing::Tick;

CompiledQueryPtr AbcPlan() {
  return CompileQueryText(
             "SELECT a.price FROM Stock MATCH PATTERN SEQ(a, b+, c) "
             "WHERE b[i].price < a.price "
             "RANK BY MIN(b.price) ASC LIMIT 1",
             StockSchema())
      .value();
}

EventPtr Ev(Timestamp ts, double price) {
  Event e = Tick(ts, price);
  e.set_sequence(static_cast<uint64_t>(ts / 1000));
  return std::make_shared<const Event>(std::move(e));
}

TEST(RunTest, FreshRunState) {
  auto plan = AbcPlan();
  ::cepr::Run run(plan.get(), 7);
  EXPECT_EQ(run.id(), 7u);
  EXPECT_EQ(run.next_component(), 0);
  EXPECT_FALSE(run.complete());
  EXPECT_FALSE(run.kleene_open());
  EXPECT_EQ(run.SingleEvent(0), nullptr);
  EXPECT_EQ(run.KleeneCount(1), 0);
}

TEST(RunTest, BeginAndExtendTrackState) {
  auto plan = AbcPlan();
  ::cepr::Run run(plan.get(), 0);
  run.BeginComponent(0, Ev(1000, 100));
  EXPECT_EQ(run.next_component(), 1);
  EXPECT_EQ(run.first_ts(), 1000);
  EXPECT_EQ(run.first_sequence(), 1u);
  EXPECT_FALSE(run.kleene_open());

  run.BeginComponent(1, Ev(2000, 50));
  EXPECT_TRUE(run.kleene_open());
  EXPECT_EQ(run.open_component(), 1);
  EXPECT_EQ(run.KleeneCount(1), 1);

  run.ExtendKleene(Ev(3000, 40));
  EXPECT_EQ(run.KleeneCount(1), 2);
  EXPECT_EQ(run.KleeneFirst(1)->timestamp(), 2000);
  EXPECT_EQ(run.KleeneLast(1)->timestamp(), 3000);

  run.BeginComponent(2, Ev(4000, 120));
  EXPECT_TRUE(run.complete());
  EXPECT_FALSE(run.kleene_open());
}

TEST(RunTest, AggregatesTrackAcceptedEvents) {
  auto plan = AbcPlan();
  ::cepr::Run run(plan.get(), 0);
  run.BeginComponent(0, Ev(0, 100));
  run.BeginComponent(1, Ev(1000, 50));
  run.ExtendKleene(Ev(2000, 30));
  // MIN(b.price) occupies slot 0 (the only accumulator in the plan).
  ASSERT_EQ(plan->pattern.agg_specs.size(), 1u);
  EXPECT_EQ(run.AggValue(0), 30.0);
}

TEST(RunTest, CandidateShadowsBindings) {
  auto plan = AbcPlan();
  ::cepr::Run run(plan.get(), 0);
  const Event cand = Tick(5000, 77);
  run.SetCandidate(0, &cand);
  EXPECT_EQ(run.SingleEvent(0), &cand);
  EXPECT_EQ(run.KleeneCurrent(0), &cand);
  run.ClearCandidate();
  EXPECT_EQ(run.SingleEvent(0), nullptr);
  EXPECT_EQ(run.KleeneCurrent(0), nullptr);
}

TEST(RunTest, IsClosedFollowsProgress) {
  auto plan = AbcPlan();
  ::cepr::Run run(plan.get(), 0);
  // Nothing bound: nothing closed.
  EXPECT_FALSE(run.IsClosed(0));
  EXPECT_FALSE(run.IsClosed(1));

  run.BeginComponent(0, Ev(0, 100));
  EXPECT_TRUE(run.IsClosed(0));   // single binds and closes atomically
  EXPECT_FALSE(run.IsClosed(1));

  run.BeginComponent(1, Ev(1000, 50));
  EXPECT_FALSE(run.IsClosed(1));  // Kleene stays open while last-begun

  run.BeginComponent(2, Ev(2000, 120));
  EXPECT_TRUE(run.IsClosed(1));
  EXPECT_TRUE(run.IsClosed(2));
}

TEST(RunTest, CloneIsIndependent) {
  auto plan = AbcPlan();
  ::cepr::Run run(plan.get(), 0);
  run.BeginComponent(0, Ev(0, 100));
  run.BeginComponent(1, Ev(1000, 50));

  auto clone = run.Clone(99);
  EXPECT_EQ(clone->id(), 99u);
  EXPECT_EQ(clone->next_component(), run.next_component());
  EXPECT_EQ(clone->first_ts(), run.first_ts());

  clone->ExtendKleene(Ev(2000, 40));
  EXPECT_EQ(clone->KleeneCount(1), 2);
  EXPECT_EQ(run.KleeneCount(1), 1);       // original untouched
  EXPECT_EQ(run.AggValue(0), 50.0);
  EXPECT_EQ(clone->AggValue(0), 40.0);
}

TEST(RunTest, AttrRangeComesFromPlan) {
  auto plan = AbcPlan();
  ::cepr::Run run(plan.get(), 0);
  const Interval price = run.AttrRange(1);
  EXPECT_EQ(price.lo, 1.0);
  EXPECT_EQ(price.hi, 1000.0);
  EXPECT_TRUE(std::isinf(run.AttrRange(0).hi));   // STRING attr: whole
  EXPECT_TRUE(std::isinf(run.AttrRange(-5).hi));  // out of range: whole
}

TEST(RunTest, MemoryEstimateGrowsWithBindings) {
  auto plan = AbcPlan();
  ::cepr::Run run(plan.get(), 0);
  const size_t empty = run.MemoryEstimate();
  run.BeginComponent(0, Ev(0, 100));
  run.BeginComponent(1, Ev(1000, 50));
  for (int i = 0; i < 16; ++i) run.ExtendKleene(Ev(2000 + i * 1000, 40 - i));
  EXPECT_GT(run.MemoryEstimate(), empty);
}

TEST(BindingListTest, SharedForkKeepsPrefixAliveAfterClear) {
  BindingArena arena;
  BindingList a;
  a.InitArena(&arena);
  a.Append(Ev(1000, 10));
  a.Append(Ev(2000, 20));
  a.Append(Ev(3000, 30));

  BindingList b;
  b.InitArena(&arena);
  b.CopySharedFrom(a);
  b.Append(Ev(4000, 40));
  // The fork added exactly one node; the prefix is shared, not copied.
  EXPECT_EQ(arena.constructed(), 4u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front_event()->timestamp(), 1000);
  EXPECT_EQ(b.back_event()->timestamp(), 4000);

  // Dropping the fork releases only its unshared suffix.
  b.Clear();
  ASSERT_EQ(a.size(), 3u);
  std::vector<EventPtr> events;
  a.AppendTo(&events);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0]->timestamp(), 1000);
  EXPECT_EQ(events[1]->timestamp(), 2000);
  EXPECT_EQ(events[2]->timestamp(), 3000);
}

TEST(RunTest, DeepCopyModeMatchesCowObservationally) {
  auto plan = AbcPlan();
  BindingArena cow_arena;
  BindingArena deep_arena;
  for (bool cow : {true, false}) {
    BindingArena* arena = cow ? &cow_arena : &deep_arena;
    ::cepr::Run run(plan.get(), 0, arena, cow);
    run.BeginComponent(0, Ev(0, 100));
    run.BeginComponent(1, Ev(1000, 50));
    run.ExtendKleene(Ev(2000, 40));

    auto clone = run.Clone(1);
    clone->ExtendKleene(Ev(3000, 30));
    EXPECT_EQ(run.KleeneCount(1), 2) << "cow=" << cow;
    EXPECT_EQ(clone->KleeneCount(1), 3) << "cow=" << cow;
    EXPECT_EQ(clone->AggValue(0), 30.0) << "cow=" << cow;
    const auto original = run.MaterializeBindings();
    const auto forked = clone->MaterializeBindings();
    ASSERT_EQ(original.size(), forked.size());
    for (size_t v = 0; v < original.size(); ++v) {
      // The fork's bindings start with exactly the original's events.
      ASSERT_GE(forked[v].size(), original[v].size());
      for (size_t i = 0; i < original[v].size(); ++i) {
        EXPECT_EQ(forked[v][i].get(), original[v][i].get());
      }
    }
    EXPECT_EQ(clone->LastBoundEvent()->timestamp(), 3000);
  }
  // COW forking allocated one node per bound event + one for the fork's
  // extension; deep copy re-allocated the whole matrix for the clone.
  EXPECT_EQ(cow_arena.constructed(), 4u);
  EXPECT_EQ(deep_arena.constructed(), 7u);
}

TEST(RunPoolTest, RecycleReusesRunObject) {
  auto plan = AbcPlan();
  RunMemory memory(plan.get(), /*cow_bindings=*/true, /*use_arena=*/true);
  RunHandle run = memory.runs.Acquire(1);
  run->BeginComponent(0, Ev(0, 100));
  run->BeginComponent(1, Ev(1000, 50));
  const ::cepr::Run* address = run.get();
  run.reset();  // recycles into the pool (and frees the binding nodes)

  RunHandle reused = memory.runs.Acquire(2);
  EXPECT_EQ(reused.get(), address);
  EXPECT_EQ(reused->id(), 2u);
  EXPECT_EQ(reused->next_component(), 0);
  EXPECT_EQ(reused->KleeneCount(1), 0);
  EXPECT_EQ(reused->SingleEvent(0), nullptr);
}

TEST(MatchTest, ToStringMentionsScoreAndRow) {
  Match m;
  m.id = 3;
  m.first_ts = 10;
  m.last_ts = 20;
  m.score = 1.5;
  m.row = {Value::Int(4), Value::String("x")};
  const std::string s = m.ToString();
  EXPECT_NE(s.find("match#3"), std::string::npos);
  EXPECT_NE(s.find("4"), std::string::npos);
  EXPECT_NE(s.find("'x'"), std::string::npos);
}

}  // namespace
}  // namespace cepr
